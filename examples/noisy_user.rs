//! Noisy users — the paper's stated future work, implemented.
//!
//! Real users misclick. [`NoisyUser`] flips each answer independently with
//! probability `q`; this example measures how each algorithm's round count
//! and result quality degrade as `q` grows. Geometric stopping conditions
//! are brittle under contradictory answers (the region can collapse to
//! empty), so watch the `truncated` column, too.
//!
//! ```text
//! cargo run -p isrl-core --release --example noisy_user
//! ```

use isrl_core::prelude::*;
use isrl_core::regret::regret_ratio_of_index;
use isrl_data::{generate, skyline, Distribution};

fn main() {
    let eps = 0.1;
    let d = 4;
    let data = skyline(&generate(1_500, d, Distribution::AntiCorrelated, 21));
    println!("dataset: {} skyline tuples, d = {d}\n", data.len());

    let train_users = sample_users(d, 60, 6);
    let test_users = sample_users(d, 10, 7);

    for flip in [0.0, 0.05, 0.10, 0.20] {
        println!("— answer flip probability {flip} —");
        // Fresh agents per noise level (training itself stays clean: the
        // paper trains on simulated truthful users).
        let mut ea = EaAgent::new(d, EaConfig::paper_default().with_seed(8));
        ea.train(&data, &train_users, eps);
        let mut aa = AaAgent::new(d, AaConfig::paper_default().with_seed(8));
        aa.train(&data, &train_users, eps);
        let mut algos: Vec<Box<dyn InteractiveAlgorithm>> = vec![
            Box::new(ea),
            Box::new(aa),
            Box::new(UhBaseline::simplex(8)),
            Box::new(SinglePass::seeded(8)),
        ];
        for algo in &mut algos {
            let mut rounds = 0usize;
            let mut regret = 0.0;
            let mut truncated = 0usize;
            for (i, u) in test_users.iter().enumerate() {
                let mut user = NoisyUser::new(u.clone(), flip, 100 + i as u64);
                let out = algo.run(&data, &mut user, eps, TraceMode::Off);
                rounds += out.rounds;
                regret += regret_ratio_of_index(&data, out.point_index, u);
                truncated += usize::from(out.truncated);
            }
            let n = test_users.len() as f64;
            println!(
                "  {:<11} mean rounds {:>6.1}, mean regret {:.4}, truncated {}/{}",
                algo.name(),
                rounds as f64 / n,
                regret / n,
                truncated,
                test_users.len()
            );
        }
        println!();
    }
    println!(
        "Noise inflates both rounds and regret; handling it robustly is the paper's open problem."
    );
}
