//! A real interactive session: *you* are the user.
//!
//! The agent interviews you about used cars on stdin; answer `1` or `2` to
//! each question until the stopping condition fires, then see your car.
//! Pass `--aa` to use the approximate agent instead of the exact one, or
//! `--checkpoint <path>` to save/reuse the trained policy between runs.
//!
//! ```text
//! cargo run -p isrl-core --release --example interactive_cli
//! cargo run -p isrl-core --release --example interactive_cli -- --aa --checkpoint /tmp/aa.ckpt
//! ```

use isrl_core::prelude::*;
use isrl_data::{real, skyline, Dataset};
use std::io::Write;

/// A user oracle backed by stdin.
struct TerminalUser {
    data_attributes: Vec<String>,
    asked: usize,
}

impl TerminalUser {
    fn describe(&self, label: &str, p: &[f64]) {
        print!("  {label}: ");
        let parts: Vec<String> = self
            .data_attributes
            .iter()
            .zip(p)
            .map(|(a, v)| format!("{a} {:.0}%", v * 100.0))
            .collect();
        println!("{}", parts.join(", "));
    }
}

impl User for TerminalUser {
    fn prefers(&mut self, p_i: &[f64], p_j: &[f64]) -> bool {
        self.asked += 1;
        println!("\nQuestion {} — which car do you prefer?", self.asked);
        self.describe("car 1", p_i);
        self.describe("car 2", p_j);
        loop {
            print!("answer [1/2]: ");
            std::io::stdout().flush().expect("stdout");
            let mut line = String::new();
            if std::io::stdin().read_line(&mut line).is_err() {
                println!("(read error — assuming 1)");
                return true;
            }
            match line.trim() {
                "1" => return true,
                "2" => return false,
                other => println!("please type 1 or 2 (got {other:?})"),
            }
        }
    }

    fn questions_asked(&self) -> usize {
        self.asked
    }
}

fn train_or_load(
    data: &Dataset,
    use_aa: bool,
    ckpt: Option<&str>,
    eps: f64,
) -> Box<dyn InteractiveAlgorithm> {
    let d = data.dim();
    if let Some(path) = ckpt {
        if let Ok(bytes) = std::fs::read(path) {
            if use_aa {
                if let Ok(agent) = isrl_core::checkpoint::load_aa(&bytes) {
                    println!("loaded trained AA policy from {path}");
                    return Box::new(agent);
                }
            } else if let Ok(agent) = isrl_core::checkpoint::load_ea(&bytes) {
                println!("loaded trained EA policy from {path}");
                return Box::new(agent);
            }
            println!("checkpoint at {path} unusable; retraining");
        }
    }
    println!(
        "training the {} agent on simulated users (one-time)…",
        if use_aa { "AA" } else { "EA" }
    );
    let train = sample_users(d, 80, 12);
    let (boxed, bytes): (Box<dyn InteractiveAlgorithm>, Vec<u8>) = if use_aa {
        let mut agent = AaAgent::new(d, AaConfig::paper_default().with_seed(1));
        agent.train(data, &train, eps);
        let b = isrl_core::checkpoint::save_aa(&agent);
        (Box::new(agent), b)
    } else {
        let mut agent = EaAgent::new(d, EaConfig::paper_default().with_seed(1));
        agent.train(data, &train, eps);
        let b = isrl_core::checkpoint::save_ea(&agent);
        (Box::new(agent), b)
    };
    if let Some(path) = ckpt {
        match std::fs::write(path, &bytes) {
            Ok(()) => println!("saved trained policy to {path}"),
            Err(e) => println!("could not save checkpoint: {e}"),
        }
    }
    boxed
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let use_aa = args.iter().any(|a| a == "--aa");
    let ckpt = args
        .iter()
        .position(|a| a == "--checkpoint")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);

    let eps = 0.1;
    let data = skyline(&real::car_like_sized(4_000, 3));
    println!(
        "Welcome to ISRL car search — {} candidate cars, attributes {:?}.",
        data.len(),
        data.attributes()
    );
    println!("(scores are percentages: 100% price = cheapest, 100% mpg = most efficient)");

    let mut agent = train_or_load(&data, use_aa, ckpt, eps);
    let mut user = TerminalUser {
        data_attributes: data.attributes().to_vec(),
        asked: 0,
    };
    let outcome = agent.run(&data, &mut user, eps, TraceMode::Off);

    let p = data.point(outcome.point_index);
    println!("\ndone after {} questions — your car:", outcome.rounds);
    let parts: Vec<String> = data
        .attributes()
        .iter()
        .zip(p)
        .map(|(a, v)| format!("{a} {:.0}%", v * 100.0))
        .collect();
    println!("  {}", parts.join(", "));
    println!(
        "guarantee: regret ratio below {}{}",
        if use_aa {
            format!("{} (d²ε worst case; ≤ ε in practice)", eps * 9.0)
        } else {
            eps.to_string()
        },
        if outcome.truncated {
            " — NOTE: stopped at the round cap"
        } else {
            ""
        }
    );
}
