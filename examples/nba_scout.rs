//! NBA scouting — the paper's high-dimensional *Player* scenario.
//!
//! A scout searches 17,386 player-seasons described by twenty box-score
//! attributes. At d = 20 the polytope-maintaining algorithms (EA, UH-*) are
//! out of their depth — exactly the regime the approximate agent AA was
//! built for. The example pits AA against SinglePass, the only baseline
//! that also scales, mirroring the paper's Figure 16.
//!
//! ```text
//! cargo run -p isrl-core --release --example nba_scout
//! ```

use isrl_core::prelude::*;
use isrl_core::regret::regret_ratio_of_index;
use isrl_data::real;

fn main() {
    let eps = 0.15;
    // High-dimensional data is effectively all-skyline; no preprocessing.
    let data = real::player_like(5);
    let d = data.dim();
    println!("player database: {} tuples × {d} attributes", data.len());

    // The scout's hidden priorities: scoring and playmaking first.
    let mut scout = vec![1.0f64; d];
    scout[2] = 6.0; // points
    scout[12] = 4.0; // assists
    scout[17] = 3.0; // fg%
    let total: f64 = scout.iter().sum();
    scout.iter_mut().for_each(|w| *w /= total);

    // Train AA once (this is the expensive offline step), then interview.
    let mut aa = AaAgent::new(d, AaConfig::paper_default().with_seed(11));
    let train_users = sample_users(d, 60, 4);
    println!("training AA on {} simulated scouts…", train_users.len());
    let report = aa.train(&data, &train_users, eps);
    println!(
        "done ({} episodes, final-quarter mean rounds {:.1})\n",
        report.episodes, report.mean_rounds_final_quarter
    );

    let mut algos: Vec<Box<dyn InteractiveAlgorithm>> =
        vec![Box::new(aa), Box::new(SinglePass::seeded(11))];
    for algo in &mut algos {
        let mut user = SimulatedUser::new(scout.clone());
        let out = algo.run(&data, &mut user, eps, TraceMode::Off);
        let regret = regret_ratio_of_index(&data, out.point_index, &scout);
        println!(
            "{:<11} asked {:>4} questions in {:>7.1}ms, regret {:.4} — player #{}",
            algo.name(),
            out.rounds,
            out.elapsed.as_secs_f64() * 1e3,
            regret,
            out.point_index
        );
        let p = data.point(out.point_index);
        println!(
            "            scores: points {:.2}, assists {:.2}, fg% {:.2}",
            p[2], p[12], p[17]
        );
    }
    println!(
        "\nAA's bound is d²ε in theory (Lemma 9) but ≤ ε in practice — the paper's §V observation."
    );
}
