//! Quickstart: train the exact RL agent (EA) on a small synthetic market
//! and run one interactive session against a simulated user.
//!
//! ```text
//! cargo run -p isrl-core --release --example quickstart
//! ```

use isrl_core::prelude::*;
use isrl_core::regret::regret_ratio_of_index;
use isrl_data::{generate, skyline, Distribution};

fn main() {
    // 1. Data: 1,000 anti-correlated 3-attribute tuples, skyline-preprocessed
    //    (only skyline tuples can be anyone's favorite under linear utility).
    let d = 3;
    let raw = generate(1_000, d, Distribution::AntiCorrelated, 42);
    let data = skyline(&raw);
    println!(
        "dataset: {} tuples ({} after skyline), d = {d}",
        raw.len(),
        data.len()
    );

    // 2. Train EA on simulated users drawn uniformly from the utility simplex.
    let eps = 0.1;
    let mut agent = EaAgent::new(d, EaConfig::paper_default().with_seed(7));
    let train_users = sample_users(d, 60, 1);
    let report = agent.train(&data, &train_users, eps);
    println!(
        "trained {} episodes; mean rounds over the final quarter: {:.2}",
        report.episodes, report.mean_rounds_final_quarter
    );

    // 3. Interact with a fresh user whose (hidden) preference weights the
    //    first attribute twice as much as the others.
    let mut user = SimulatedUser::new(vec![0.5, 0.25, 0.25]);
    let outcome = agent.run(&data, &mut user, eps, TraceMode::PerRound);

    println!("\ninteraction finished in {} rounds:", outcome.rounds);
    for t in &outcome.trace {
        println!(
            "  after round {}: current recommendation is tuple #{}",
            t.round, t.best_index
        );
    }
    let p = data.point(outcome.point_index);
    let regret = regret_ratio_of_index(&data, outcome.point_index, user.ground_truth());
    println!("\nreturned tuple #{}: {p:?}", outcome.point_index);
    println!(
        "regret ratio: {regret:.4} (threshold {eps}) — {}",
        if regret < eps {
            "within guarantee"
        } else {
            "VIOLATION"
        }
    );
    assert!(regret < eps, "EA is exact: the guarantee must hold");
}
