//! Car search — the paper's Table I scenario end-to-end.
//!
//! Alice wants a used car. The database has 10,668 cars over three
//! attributes (price, mileage, mpg — the *Car* dataset's shape). Every
//! algorithm in the repository interviews a simulated Alice; the output
//! compares how many questions each one needed and what it returned.
//!
//! ```text
//! cargo run -p isrl-core --release --example car_search
//! ```

use isrl_core::prelude::*;
use isrl_core::regret::regret_ratio_of_index;
use isrl_data::{real, skyline};

fn main() {
    let eps = 0.1;
    let raw = real::car_like(9);
    let data = skyline(&raw);
    println!(
        "car market: {} cars, {} on the skyline; attributes {:?}\n",
        raw.len(),
        data.len(),
        data.attributes()
    );

    // Alice cares mostly about price, some about mileage, a bit about mpg.
    let alice = vec![0.55, 0.30, 0.15];
    let d = data.dim();

    // RL agents train once on simulated users, then serve Alice.
    let train_users = sample_users(d, 80, 2);
    let mut ea = EaAgent::new(d, EaConfig::paper_default().with_seed(3));
    ea.train(&data, &train_users, eps);
    let mut aa = AaAgent::new(d, AaConfig::paper_default().with_seed(3));
    aa.train(&data, &train_users, eps);

    let mut algos: Vec<Box<dyn InteractiveAlgorithm>> = vec![
        Box::new(ea),
        Box::new(aa),
        Box::new(UhBaseline::random(3)),
        Box::new(UhBaseline::simplex(3)),
        Box::new(SinglePass::seeded(3)),
        Box::new(UtilityApprox::default()),
    ];

    println!(
        "{:<14} {:>9} {:>12} {:>10}   returned car (price, mileage, mpg scores)",
        "algorithm", "questions", "time", "regret"
    );
    for algo in &mut algos {
        let mut user = SimulatedUser::new(alice.clone());
        let out = algo.run(&data, &mut user, eps, TraceMode::Off);
        let regret = regret_ratio_of_index(&data, out.point_index, &alice);
        let p = data.point(out.point_index);
        println!(
            "{:<14} {:>9} {:>11.1}ms {:>10.4}   ({:.2}, {:.2}, {:.2})",
            algo.name(),
            out.rounds,
            out.elapsed.as_secs_f64() * 1e3,
            regret,
            p[0],
            p[1],
            p[2]
        );
    }

    println!("\n(lower questions = less user burden; every algorithm should land regret < {eps})");
}
