//! Cross-crate geometric consistency: the LP view of the utility range
//! (`Region`, used by AA) and the vertex-enumeration view (`Polytope`,
//! used by EA) must describe the same set.

use isrl_geometry::{Halfspace, Polytope, Region};
use isrl_linalg::vector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random region built from hyperplanes through preference pairs.
fn random_region(d: usize, cuts: usize, seed: u64) -> Region {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut region = Region::full(d);
    let mut added = 0;
    while added < cuts {
        let a: Vec<f64> = (0..d).map(|_| rng.gen_range(0.01..1.0)).collect();
        let b: Vec<f64> = (0..d).map(|_| rng.gen_range(0.01..1.0)).collect();
        if let Some(h) = Halfspace::preferring(&a, &b) {
            // Keep the region non-empty: orient toward the barycenter.
            let bary = vec![1.0 / d as f64; d];
            let oriented = if h.contains(&bary, 0.0) {
                h
            } else {
                h.flipped()
            };
            region.add(oriented);
            added += 1;
        }
    }
    region
}

#[test]
fn polytope_vertices_satisfy_the_region() {
    for seed in 0..8 {
        for d in [2usize, 3, 4, 5] {
            let region = random_region(d, 4, seed * 10 + d as u64);
            let Some(polytope) = Polytope::from_region(&region) else {
                continue;
            };
            for v in polytope.vertices() {
                assert!(
                    region.contains(v, 1e-6),
                    "vertex {v:?} violates region (d={d}, seed={seed})"
                );
            }
        }
    }
}

#[test]
fn inner_sphere_center_is_inside_the_polytope_hull() {
    for seed in 0..6 {
        let region = random_region(3, 3, 100 + seed);
        let (Some(sphere), Some(polytope)) =
            (region.inner_sphere(), Polytope::from_region(&region))
        else {
            continue;
        };
        // The LP center satisfies every constraint the vertices satisfy.
        assert!(region.contains(sphere.center(), 1e-6));
        // And lies inside the outer sphere of the vertex hull.
        let outer = polytope.outer_sphere();
        assert!(
            outer.contains(sphere.center(), 1e-4),
            "inner center outside outer sphere (seed {seed})"
        );
    }
}

#[test]
fn outer_rectangle_brackets_every_vertex() {
    for seed in 0..6 {
        for d in [2usize, 3, 4] {
            let region = random_region(d, 3, 200 + seed * 7 + d as u64);
            let (Some(rect), Some(polytope)) =
                (region.outer_rectangle(), Polytope::from_region(&region))
            else {
                continue;
            };
            for v in polytope.vertices() {
                assert!(
                    rect.contains(v, 1e-5),
                    "vertex {v:?} escapes rectangle [{:?}, {:?}]",
                    rect.min(),
                    rect.max()
                );
            }
        }
    }
}

#[test]
fn rectangle_corners_are_attained_by_vertices() {
    // The outer rectangle is the *smallest* box: each face must touch the
    // polytope, i.e. some vertex attains each per-axis min/max (vertices of
    // a polytope attain all linear extrema).
    for seed in 0..5 {
        let region = random_region(3, 2, 300 + seed);
        let (Some(rect), Some(polytope)) =
            (region.outer_rectangle(), Polytope::from_region(&region))
        else {
            continue;
        };
        for axis in 0..3 {
            let vmin = polytope
                .vertices()
                .iter()
                .map(|v| v[axis])
                .fold(f64::INFINITY, f64::min);
            let vmax = polytope
                .vertices()
                .iter()
                .map(|v| v[axis])
                .fold(f64::NEG_INFINITY, f64::max);
            assert!(
                (vmin - rect.min()[axis]).abs() < 1e-5,
                "axis {axis} min: vertices {vmin} vs LP {}",
                rect.min()[axis]
            );
            assert!(
                (vmax - rect.max()[axis]).abs() < 1e-5,
                "axis {axis} max: vertices {vmax} vs LP {}",
                rect.max()[axis]
            );
        }
    }
}

#[test]
fn emptiness_verdicts_agree() {
    // Build shrinking regions; the LP (has_interior) and vertex enumeration
    // must agree on "effectively empty" up to boundary degeneracy.
    let mut region = Region::full(3);
    region.add(Halfspace::new(vec![1.0, -1.0, 0.0]));
    region.add(Halfspace::new(vec![-1.0, 1.0, 0.001])); // nearly opposite
    let lp_alive = region.has_interior();
    let poly_alive = Polytope::from_region(&region).is_some();
    // A region with LP interior must have vertices.
    if lp_alive {
        assert!(poly_alive, "LP sees interior but no vertices found");
    }
}

#[test]
fn hit_and_run_samples_agree_with_region_membership() {
    let region = random_region(4, 3, 400);
    let Some(start) = region.feasible_point() else {
        panic!("random region unexpectedly empty");
    };
    let mut rng = StdRng::seed_from_u64(5);
    for u in isrl_geometry::sampling::hit_and_run(4, region.halfspaces(), &start, 200, 2, &mut rng)
    {
        assert!(region.contains(&u, 1e-7), "sample {u:?} escaped the region");
        assert!((vector::sum(&u) - 1.0).abs() < 1e-9);
    }
}
