//! End-to-end integration: data generation → skyline → RL training →
//! interaction → regret guarantees, across every algorithm in the
//! repository. These tests exercise the same pipeline as the `figures`
//! harness, at test-suite scale.

use isrl_core::prelude::*;
use isrl_core::regret::regret_ratio_of_index;
use isrl_data::{generate, skyline, Distribution};

fn dataset(n: usize, d: usize, seed: u64) -> isrl_data::Dataset {
    skyline(&generate(n, d, Distribution::AntiCorrelated, seed))
}

#[test]
fn every_algorithm_meets_its_regret_contract_at_d3() {
    let data = dataset(600, 3, 1);
    let eps = 0.15;
    let users = sample_users(3, 6, 2);
    let train = sample_users(3, 30, 3);

    let mut ea = EaAgent::new(3, EaConfig::paper_default().with_seed(4));
    ea.train(&data, &train, eps);
    let mut aa = AaAgent::new(3, AaConfig::paper_default().with_seed(4));
    aa.train(&data, &train, eps);

    let mut algos: Vec<(Box<dyn InteractiveAlgorithm>, f64)> = vec![
        (Box::new(ea), eps),                     // exact
        (Box::new(aa), 9.0 * eps),               // Lemma 9: d²ε hard bound
        (Box::new(UhBaseline::random(4)), eps),  // exact
        (Box::new(UhBaseline::simplex(4)), eps), // exact
        (Box::new(SinglePass::seeded(4)), 9.0 * eps),
        (Box::new(UtilityApprox::default()), 9.0 * eps),
    ];
    for (algo, bound) in &mut algos {
        for u in &users {
            let mut user = SimulatedUser::new(u.clone());
            let out = algo.run(&data, &mut user, eps, TraceMode::Off);
            let regret = regret_ratio_of_index(&data, out.point_index, u);
            assert!(
                regret <= *bound + 1e-9,
                "{}: regret {regret} exceeds bound {bound} for user {u:?} ({} rounds)",
                algo.name(),
                out.rounds
            );
        }
    }
}

#[test]
fn trained_rl_agents_beat_single_pass_on_rounds() {
    // The paper's headline: RL agents need far fewer questions. SinglePass
    // is the weakest-information baseline, so the gap must be wide even at
    // test scale.
    let data = dataset(800, 4, 5);
    let eps = 0.1;
    let users = sample_users(4, 5, 6);
    let train = sample_users(4, 40, 7);

    let mut ea = EaAgent::new(4, EaConfig::paper_default().with_seed(8));
    ea.train(&data, &train, eps);
    let ea_eval = evaluate(&mut ea, &data, &users, eps, TraceMode::Off);

    let mut sp = SinglePass::seeded(8);
    let sp_eval = evaluate(&mut sp, &data, &users, eps, TraceMode::Off);

    assert!(
        ea_eval.stats.mean_rounds * 2.0 < sp_eval.stats.mean_rounds,
        "EA ({:.1} rounds) should need well under half of SinglePass ({:.1})",
        ea_eval.stats.mean_rounds,
        sp_eval.stats.mean_rounds
    );
}

#[test]
fn aa_handles_high_dimension_where_ea_is_not_run() {
    // d = 12 — beyond the paper's polytope cap of 10; AA must still finish
    // with bounded rounds and sane regret.
    let d = 12;
    let data = generate(500, d, Distribution::AntiCorrelated, 9);
    let eps = 0.2;
    let mut aa = AaAgent::new(d, AaConfig::paper_default().with_seed(10));
    let train = sample_users(d, 15, 11);
    aa.train(&data, &train, eps);
    for u in sample_users(d, 4, 12) {
        let mut user = SimulatedUser::new(u.clone());
        let out = aa.run(&data, &mut user, eps, TraceMode::Off);
        let regret = regret_ratio_of_index(&data, out.point_index, &u);
        assert!(out.rounds <= aa.config().max_rounds);
        assert!(
            regret <= (d * d) as f64 * eps,
            "hard bound violated: {regret}"
        );
        // The paper's empirical finding: regret typically below ε itself.
        assert!(
            regret <= 2.0 * eps,
            "regret {regret} surprisingly high at d = {d}"
        );
    }
}

#[test]
fn interaction_outcomes_are_internally_consistent() {
    let data = dataset(300, 3, 13);
    let mut aa = AaAgent::new(3, AaConfig::paper_default().with_seed(14));
    let mut user = SimulatedUser::new(vec![0.2, 0.5, 0.3]);
    let out = aa.run(&data, &mut user, 0.1, TraceMode::PerRound);
    // Rounds == questions the user actually saw == trace length.
    assert_eq!(out.rounds, user.questions_asked());
    assert_eq!(out.rounds, out.trace.len());
    // Region grows by exactly one half-space per round.
    for (k, t) in out.trace.iter().enumerate() {
        assert_eq!(t.region.len(), k + 1);
    }
    // Elapsed times are monotone along the trace.
    for w in out.trace.windows(2) {
        assert!(w[1].elapsed >= w[0].elapsed);
    }
    // The returned point exists.
    assert!(out.point_index < data.len());
}

#[test]
fn evaluation_runner_matches_manual_loop() {
    let data = dataset(200, 3, 15);
    let users = sample_users(3, 3, 16);
    let mut algo = UtilityApprox::default();
    let eval = evaluate(&mut algo, &data, &users, 0.15, TraceMode::Off);
    // Re-run manually; UtilityApprox is deterministic given the user.
    let mut algo2 = UtilityApprox::default();
    for (i, u) in users.iter().enumerate() {
        let mut user = SimulatedUser::new(u.clone());
        let out = algo2.run(&data, &mut user, 0.15, TraceMode::Off);
        assert_eq!(out.rounds, eval.outcomes[i].rounds);
        assert_eq!(out.point_index, eval.outcomes[i].point_index);
    }
}

#[test]
fn max_regret_estimates_shrink_along_any_interaction() {
    // The quantity behind the paper's Figures 7–8 must (weakly) improve as
    // answers accumulate, for any algorithm producing a trace.
    let data = dataset(400, 3, 17);
    let mut algo = UhBaseline::simplex(18);
    let mut user = SimulatedUser::new(vec![0.4, 0.35, 0.25]);
    let out = algo.run(&data, &mut user, 0.1, TraceMode::PerRound);
    assert!(out.rounds >= 2, "need at least two rounds to compare");
    let first = max_regret_estimate(
        &data,
        &out.trace[0].region,
        out.trace[0].best_index,
        2_000,
        1,
    )
    .unwrap();
    let last_t = out.trace.last().unwrap();
    let last = max_regret_estimate(&data, &last_t.region, last_t.best_index, 2_000, 1).unwrap();
    assert!(
        last <= first + 0.05,
        "max regret should not grow along the interaction: {first} -> {last}"
    );
}
