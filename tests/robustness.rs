//! Failure-injection tests: adversarial, inconsistent, and degenerate
//! users, plus degenerate datasets. No algorithm may panic or loop forever;
//! each must terminate with an honest outcome (`truncated` set when the
//! stopping condition could not be certified).

use isrl_core::prelude::*;
use isrl_data::{generate, skyline, Dataset, Distribution};

/// A user who always prefers the second point — internally inconsistent
/// (violates any fixed linear utility after a few answers).
struct Contrarian {
    asked: usize,
}

impl User for Contrarian {
    fn prefers(&mut self, _p_i: &[f64], _p_j: &[f64]) -> bool {
        self.asked += 1;
        false
    }
    fn questions_asked(&self) -> usize {
        self.asked
    }
}

/// A user who alternates answers regardless of content.
struct Alternator {
    asked: usize,
}

impl User for Alternator {
    fn prefers(&mut self, _p_i: &[f64], _p_j: &[f64]) -> bool {
        self.asked += 1;
        self.asked % 2 == 0
    }
    fn questions_asked(&self) -> usize {
        self.asked
    }
}

fn all_algorithms(d: usize, data: &Dataset) -> Vec<Box<dyn InteractiveAlgorithm>> {
    let mut ea = EaAgent::new(d, EaConfig::paper_default().with_seed(1));
    let mut aa = AaAgent::new(d, AaConfig::paper_default().with_seed(1));
    // Light training so the DQN path is exercised too.
    let train = sample_users(d, 5, 2);
    ea.train(data, &train, 0.15);
    aa.train(data, &train, 0.15);
    vec![
        Box::new(ea),
        Box::new(aa),
        Box::new(UhBaseline::random(1)),
        Box::new(UhBaseline::simplex(1)),
        Box::new(SinglePass::seeded(1)),
        Box::new(UtilityApprox::default()),
    ]
}

#[test]
fn contrarian_user_cannot_hang_any_algorithm() {
    let data = skyline(&generate(300, 3, Distribution::AntiCorrelated, 3));
    for algo in &mut all_algorithms(3, &data) {
        let mut user = Contrarian { asked: 0 };
        let out = algo.run(&data, &mut user, 0.1, TraceMode::Off);
        assert!(
            out.point_index < data.len(),
            "{} returned junk index",
            algo.name()
        );
        // Bounded by each algorithm's internal cap at worst.
        assert!(
            out.rounds <= 5_000,
            "{} ran away: {} rounds",
            algo.name(),
            out.rounds
        );
    }
}

#[test]
fn alternating_user_terminates_everywhere() {
    let data = skyline(&generate(300, 3, Distribution::AntiCorrelated, 4));
    for algo in &mut all_algorithms(3, &data) {
        let mut user = Alternator { asked: 0 };
        let out = algo.run(&data, &mut user, 0.1, TraceMode::Off);
        assert!(out.point_index < data.len());
    }
}

#[test]
fn maximally_noisy_user_still_yields_a_point() {
    // flip_prob near 1 is systematically wrong — worse than random.
    let data = skyline(&generate(200, 3, Distribution::AntiCorrelated, 5));
    for algo in &mut all_algorithms(3, &data) {
        let mut user = NoisyUser::new(vec![0.4, 0.3, 0.3], 0.95, 6);
        let out = algo.run(&data, &mut user, 0.1, TraceMode::Off);
        assert!(
            out.point_index < data.len(),
            "{} failed under noise",
            algo.name()
        );
    }
}

#[test]
fn single_point_dataset_returns_immediately() {
    let data = Dataset::from_points(vec![vec![0.5, 0.5, 0.5]], 3);
    for algo in &mut all_algorithms(3, &skyline(&generate(100, 3, Distribution::Independent, 7))) {
        let mut user = SimulatedUser::new(vec![0.3, 0.3, 0.4]);
        let out = algo.run(&data, &mut user, 0.1, TraceMode::Off);
        assert_eq!(out.point_index, 0, "{}", algo.name());
        // One tuple has regret 0 by definition; no more than a handful of
        // rounds should ever be needed (zero for the geometric stoppers).
        assert!(
            out.rounds <= 15,
            "{} asked {} rounds",
            algo.name(),
            out.rounds
        );
    }
}

#[test]
fn duplicate_points_do_not_confuse_the_agents() {
    // Many exact duplicates: hyperplanes between duplicates are degenerate
    // (zero normals) and must be skipped, not panicked on.
    let base = vec![vec![0.9, 0.2], vec![0.2, 0.9], vec![0.6, 0.6]];
    let mut pts = Vec::new();
    for _ in 0..5 {
        pts.extend(base.clone());
    }
    let data = Dataset::from_points(pts, 2);
    let mut ea = EaAgent::new(2, EaConfig::paper_default().with_seed(8));
    let mut user = SimulatedUser::new(vec![0.5, 0.5]);
    let out = ea.run(&data, &mut user, 0.1, TraceMode::Off);
    assert!(out.point_index < data.len());
    let mut aa = AaAgent::new(2, AaConfig::paper_default().with_seed(8));
    let mut user = SimulatedUser::new(vec![0.5, 0.5]);
    let out = aa.run(&data, &mut user, 0.1, TraceMode::Off);
    assert!(out.point_index < data.len());
}

#[test]
fn tiny_epsilon_is_survivable() {
    // ε so small the stopping conditions barely fire: round caps must keep
    // everything finite and `truncated` must report honestly.
    let data = skyline(&generate(150, 3, Distribution::AntiCorrelated, 9));
    let mut aa = AaAgent::new(3, AaConfig::paper_default().with_seed(10));
    let mut user = SimulatedUser::new(vec![0.4, 0.35, 0.25]);
    let out = aa.run(&data, &mut user, 1e-6, TraceMode::Off);
    assert!(out.rounds <= aa.config().max_rounds);
    // Either it certified the (absurd) threshold or it reported truncation.
    if out.rounds == aa.config().max_rounds {
        assert!(out.truncated);
    }
}

#[test]
fn huge_epsilon_stops_immediately() {
    let data = skyline(&generate(150, 3, Distribution::AntiCorrelated, 11));
    for algo in &mut all_algorithms(3, &data) {
        let mut user = SimulatedUser::new(vec![0.3, 0.3, 0.4]);
        let out = algo.run(&data, &mut user, 0.95, TraceMode::Off);
        assert!(
            out.rounds <= 12,
            "{}: with eps ~ 1 almost any tuple qualifies, got {} rounds",
            algo.name(),
            out.rounds
        );
    }
}
