//! Property-based tests on the core invariants, spanning crates.

use isrl_core::regret::regret_ratio;
use isrl_data::{skyline, Dataset};
use isrl_geometry::hull::dominates;
use isrl_geometry::lp::{LpBuilder, Rel};
use isrl_geometry::{Halfspace, Polytope, Region};
use proptest::prelude::*;

/// Strategy: a point in (0, 1]^d.
fn point(d: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..=1.0, d)
}

/// Strategy: a utility vector on the simplex.
fn utility(d: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..1.0, d).prop_map(|v| {
        let s: f64 = v.iter().sum();
        v.into_iter().map(|x| x / s).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn regret_ratio_is_in_unit_interval(
        pts in prop::collection::vec(point(3), 2..30),
        u in utility(3),
        q_idx in 0usize..30,
    ) {
        let data = Dataset::from_points(pts.clone(), 3);
        let q = q_idx % data.len();
        let r = regret_ratio(&data, data.point(q), &u);
        prop_assert!((0.0..=1.0).contains(&r));
        // The favorite always has regret 0.
        let best = data.argmax_utility(&u);
        prop_assert!(regret_ratio(&data, data.point(best), &u) < 1e-12);
    }

    #[test]
    fn skyline_preserves_every_utility_maximizer(
        pts in prop::collection::vec(point(3), 3..40),
        u in utility(3),
    ) {
        let data = Dataset::from_points(pts, 3);
        let sky = skyline(&data);
        let best_full = data.max_utility(&u);
        let best_sky = sky.max_utility(&u);
        // Linear maximization over the skyline loses nothing.
        prop_assert!((best_full - best_sky).abs() < 1e-12);
    }

    #[test]
    fn skyline_members_are_mutually_non_dominating(
        pts in prop::collection::vec(point(4), 3..30),
    ) {
        let data = Dataset::from_points(pts, 4);
        let sky = skyline(&data);
        for i in 0..sky.len() {
            for j in 0..sky.len() {
                if i != j {
                    prop_assert!(!dominates(sky.point(i), sky.point(j)));
                }
            }
        }
    }

    #[test]
    fn answers_never_evict_the_true_user(
        pts in prop::collection::vec(point(3), 4..20),
        u in utility(3),
    ) {
        // Lemma 1, end to end: after any sequence of truthful answers the
        // region still contains the true utility vector.
        let data = Dataset::from_points(pts, 3);
        let mut region = Region::full(3);
        for i in 0..data.len().min(6) {
            for j in (i + 1)..data.len().min(6) {
                let (w, l) = if data.utility(i, &u) >= data.utility(j, &u) {
                    (i, j)
                } else {
                    (j, i)
                };
                if let Some(h) = Halfspace::preferring(data.point(w), data.point(l)) {
                    region.add(h);
                }
            }
        }
        prop_assert!(region.contains(&u, 1e-9), "true u evicted from region");
        // And vertex enumeration agrees the region is non-empty.
        prop_assert!(Polytope::from_region(&region).is_some());
    }

    #[test]
    fn rectangle_diagonal_never_grows(
        pts in prop::collection::vec(point(3), 4..12),
        u in utility(3),
    ) {
        let data = Dataset::from_points(pts, 3);
        let mut region = Region::full(3);
        let mut prev = region.outer_rectangle().unwrap().diagonal();
        for i in 1..data.len().min(5) {
            let (w, l) = if data.utility(0, &u) >= data.utility(i, &u) {
                (0, i)
            } else {
                (i, 0)
            };
            if let Some(h) = Halfspace::preferring(data.point(w), data.point(l)) {
                region.add(h);
            }
            let diag = region.outer_rectangle().unwrap().diagonal();
            prop_assert!(diag <= prev + 1e-7, "diagonal grew {prev} -> {diag}");
            prev = diag;
        }
    }

    #[test]
    fn lp_optimum_dominates_random_feasible_points(
        c0 in -1.0f64..1.0,
        c1 in -1.0f64..1.0,
        cut in 0.2f64..0.8,
    ) {
        // maximize c·u over the simplex slice u0 ≤ cut: the LP optimum must
        // beat every feasible grid point.
        let out = LpBuilder::maximize(&[c0, c1])
            .constraint(&[1.0, 1.0], Rel::Eq, 1.0)
            .constraint(&[1.0, 0.0], Rel::Le, cut)
            .solve()
            .unwrap();
        let sol = out.optimal().expect("bounded feasible LP");
        for k in 0..=20 {
            let u0 = cut * k as f64 / 20.0;
            let u1 = 1.0 - u0;
            let val = c0 * u0 + c1 * u1;
            prop_assert!(val <= sol.objective + 1e-7, "grid beats LP: {val} > {}", sol.objective);
        }
    }

    #[test]
    fn min_enclosing_sphere_encloses_and_beats_naive(
        pts in prop::collection::vec(point(4), 2..25),
    ) {
        let sphere = isrl_geometry::min_enclosing_sphere(
            &pts,
            isrl_geometry::EnclosingSphereParams::default(),
        );
        for p in &pts {
            prop_assert!(sphere.contains(p, 1e-5), "point escapes sphere");
        }
        // Not worse than the centroid-centered enclosing sphere.
        let centroid = isrl_linalg::vector::mean(&pts);
        let naive = pts
            .iter()
            .map(|p| isrl_linalg::vector::dist(&centroid, p))
            .fold(0.0f64, f64::max);
        prop_assert!(sphere.radius() <= naive + 1e-6);
    }

    #[test]
    fn eps_halfspace_certificate_is_correct(
        pts in prop::collection::vec(point(3), 3..15),
        u in utility(3),
        eps in 0.05f64..0.3,
    ) {
        // Lemma 4 end-to-end: u inside T_i really means regret(p_i, u) < eps.
        let data = Dataset::from_points(pts, 3);
        for i in 0..data.len() {
            if isrl_core::ea::in_terminal_polyhedron(&data, i, &u, eps) {
                let r = regret_ratio(&data, data.point(i), &u);
                prop_assert!(r < eps, "T_{i} membership but regret {r} >= {eps}");
            }
        }
    }
}
