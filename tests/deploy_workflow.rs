//! The production deployment journey, end to end: train an agent offline,
//! checkpoint it to disk, reload it in a "server", and serve interactions
//! through the step-wise session API — verifying the served guarantees
//! match what was measured at training time.

use isrl_core::checkpoint;
use isrl_core::prelude::*;
use isrl_core::regret::regret_ratio_of_index;
use isrl_data::{generate, skyline, Dataset, Distribution};
use isrl_linalg::vector;

fn training_environment() -> Dataset {
    skyline(&generate(800, 3, Distribution::AntiCorrelated, 31))
}

#[test]
fn train_ship_serve_round_trip_ea() {
    let data = training_environment();
    let eps = 0.1;
    let dir = std::env::temp_dir().join(format!("isrl_deploy_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ea.ckpt");

    // Offline: train and ship.
    {
        let mut agent = EaAgent::new(3, EaConfig::paper_default().with_seed(1));
        agent.train(&data, &sample_users(3, 40, 2), eps);
        std::fs::write(&path, checkpoint::save_ea(&agent)).unwrap();
    }

    // Online: reload and serve three users through sessions.
    let bytes = std::fs::read(&path).unwrap();
    let mut served = checkpoint::load_ea(&bytes).unwrap();
    for truth in [
        vec![0.5, 0.3, 0.2],
        vec![0.2, 0.2, 0.6],
        vec![0.34, 0.33, 0.33],
    ] {
        let mut session = served.start_session(&data, eps);
        let mut rounds_guard = 0;
        while let Some((p, q)) = session
            .current_points()
            .map(|(a, b)| (a.to_vec(), b.to_vec()))
        {
            session.answer(vector::dot(&truth, &p) >= vector::dot(&truth, &q));
            rounds_guard += 1;
            assert!(rounds_guard < 200, "session ran away");
        }
        let regret = regret_ratio_of_index(&data, session.recommendation(), &truth);
        assert!(
            regret < eps,
            "served EA must keep its exactness guarantee: regret {regret}"
        );
        assert!(!session.truncated());
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn train_ship_serve_round_trip_aa() {
    let data = training_environment();
    let eps = 0.15;
    let dir = std::env::temp_dir().join(format!("isrl_deploy_aa_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("aa.ckpt");

    {
        let mut agent = AaAgent::new(3, AaConfig::paper_default().with_seed(3));
        agent.train(&data, &sample_users(3, 30, 4), eps);
        std::fs::write(&path, checkpoint::save_aa(&agent)).unwrap();
    }

    let bytes = std::fs::read(&path).unwrap();
    let mut served = checkpoint::load_aa(&bytes).unwrap();
    let truth = vec![0.25, 0.45, 0.3];
    let mut session = served.start_session(&data, eps);
    while let Some((p, q)) = session
        .current_points()
        .map(|(a, b)| (a.to_vec(), b.to_vec()))
    {
        session.answer(vector::dot(&truth, &p) >= vector::dot(&truth, &q));
    }
    let regret = regret_ratio_of_index(&data, session.recommendation(), &truth);
    assert!(
        regret <= 9.0 * eps + 1e-9,
        "served AA must keep its d²ε bound: {regret}"
    );
    // The session exposes the learned region for downstream explanation UIs.
    assert_eq!(session.region().len(), session.rounds());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn diagnostics_integrate_with_served_sessions() {
    // Trace a served interaction via run(), then analyze it — the tuning
    // loop an operator would actually use.
    let data = training_environment();
    let mut agent = AaAgent::new(3, AaConfig::paper_default().with_seed(5));
    let mut user = SimulatedUser::new(vec![0.4, 0.3, 0.3]);
    let out = agent.run(&data, &mut user, 0.1, TraceMode::PerRound);
    // Geometric mode (the default) reads the traced volume proxies, so
    // the operator loop needs no Monte-Carlo sample budget at all.
    let report =
        isrl_core::diagnostics::analyze(&out, &DiagnosticsConfig::default()).expect("traced");
    assert_eq!(report.rounds.len(), out.rounds);
    // AA's near-center questions should act like (approximate) bisection.
    assert!(
        report.mean_decay < 0.95,
        "served AA made no progress per round: {}",
        report.mean_decay
    );
}
