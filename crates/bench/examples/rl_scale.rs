//! Does the RL benefit emerge with dataset scale? The paper trains at
//! n = 100,000 where the skyline (and hence the anchor pool P_R) is large
//! and candidate questions genuinely differ; this probe compares
//! untrained vs trained EA/AA across dataset sizes.
//!
//! ```text
//! cargo run -p isrl-bench --release --example rl_scale
//! ```

use isrl_core::prelude::*;
use isrl_data::{generate, skyline, Distribution};

fn main() {
    let d = 4;
    let eps = 0.1;
    for n in [2_000usize, 20_000, 60_000] {
        let data = skyline(&generate(n, d, Distribution::AntiCorrelated, 13));
        let users = sample_users(d, 25, 99);
        let train = sample_users(d, 300, 5);
        print!("n={n} (skyline {}): ", data.len());

        let mut cfg = EaConfig::paper_default().with_seed(21);
        cfg.n_samples = 80;
        let mut ea0 = EaAgent::new(d, cfg.clone());
        let e0 = evaluate(&mut ea0, &data, &users, eps, TraceMode::Off);
        let mut ea1 = EaAgent::new(d, cfg);
        ea1.train(&data, &train, eps);
        let e1 = evaluate(&mut ea1, &data, &users, eps, TraceMode::Off);

        let mut aa0 = AaAgent::new(d, AaConfig::paper_default().with_seed(21));
        let a0 = evaluate(&mut aa0, &data, &users, eps, TraceMode::Off);
        let mut aa1 = AaAgent::new(d, AaConfig::paper_default().with_seed(21));
        aa1.train(&data, &train, eps);
        let a1 = evaluate(&mut aa1, &data, &users, eps, TraceMode::Off);

        println!(
            "EA untrained {:.2} -> trained {:.2} | AA untrained {:.2} -> trained {:.2}",
            e0.stats.mean_rounds, e1.stats.mean_rounds, a0.stats.mean_rounds, a1.stats.mean_rounds
        );
    }
}
