//! RL convergence study: how many training episodes (and which optimizer
//! cadence) the DQN needs before its question policy beats the untrained
//! agent. The paper trains on 10,000 users; repo-scale sweeps use far
//! fewer, and this harness quantifies what that costs.
//!
//! ```text
//! cargo run -p isrl-bench --release --example rl_convergence
//! ```

use isrl_core::prelude::*;
use isrl_data::{generate, skyline, Distribution};

fn main() {
    let d = 4;
    let eps = 0.1;
    let data = skyline(&generate(2_000, d, Distribution::AntiCorrelated, 13));
    let users = sample_users(d, 40, 99);
    println!(
        "d={d}, eps={eps}, {} skyline tuples, {} test users\n",
        data.len(),
        users.len()
    );
    println!(
        "{:<42} {:>12} {:>12}",
        "configuration", "EA rounds", "AA rounds"
    );

    for (episodes, steps, adam) in [
        (0usize, 1usize, false),
        (100, 1, false),
        (400, 1, false),
        (1600, 1, false),
        (400, 4, false),
        (400, 1, true),
        (400, 4, true),
    ] {
        let train = sample_users(d, episodes, 5);

        let mut ea_cfg = EaConfig::paper_default().with_seed(21);
        ea_cfg.n_samples = 80;
        ea_cfg.train_steps_per_round = steps;
        ea_cfg.use_adam = adam;
        let mut ea = EaAgent::new(d, ea_cfg);
        if episodes > 0 {
            ea.train(&data, &train, eps);
        }
        let ea_eval = evaluate(&mut ea, &data, &users, eps, TraceMode::Off);

        let mut aa_cfg = AaConfig::paper_default().with_seed(21);
        aa_cfg.train_steps_per_round = steps;
        aa_cfg.use_adam = adam;
        let mut aa = AaAgent::new(d, aa_cfg);
        if episodes > 0 {
            aa.train(&data, &train, eps);
        }
        let aa_eval = evaluate(&mut aa, &data, &users, eps, TraceMode::Off);

        let label = format!(
            "episodes={episodes} steps/round={steps} {}",
            if adam { "adam" } else { "sgd" }
        );
        println!(
            "{label:<42} {:>12.2} {:>12.2}",
            ea_eval.stats.mean_rounds, aa_eval.stats.mean_rounds
        );
    }
}
