//! Result tables: aligned terminal rendering plus CSV export, one table per
//! paper exhibit. EXPERIMENTS.md is assembled from these.

use std::fmt::Write as _;
use std::path::Path;

/// A rectangular result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Identifier matching the paper exhibit (e.g. "fig9a").
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: impl Into<String>, title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the cell count disagrees with the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in {}",
            self.id
        );
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// CSV serialization (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Writes `<dir>/<id>.csv`, creating the directory as needed.
    pub fn save_csv(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{}.csv", self.id)), self.to_csv())
    }

    /// JSON serialization: `{id, title, rows: [{header: cell, ...}, ...]}`.
    /// Cells that parse as finite numbers are emitted as JSON numbers,
    /// everything else as escaped strings. Hand-rolled because the tree
    /// carries no serde_json.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"id\": {},\n  \"title\": {},\n  \"rows\": [",
            json_string(&self.id),
            json_string(&self.title)
        );
        for (i, row) in self.rows.iter().enumerate() {
            let _ = write!(out, "{}\n    {{", if i == 0 { "" } else { "," });
            for (j, (h, cell)) in self.headers.iter().zip(row).enumerate() {
                let sep = if j == 0 { "" } else { ", " };
                let _ = write!(out, "{sep}{}: {}", json_string(h), json_cell(cell));
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Writes the JSON serialization to `path`.
    pub fn save_json(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Escapes a string for JSON embedding (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A table cell as a JSON value: verbatim when it is a finite number in
/// plain decimal notation (which is also valid JSON), quoted otherwise.
fn json_cell(cell: &str) -> String {
    let body = cell.strip_prefix('-').unwrap_or(cell);
    let plain = body.starts_with(|c: char| c.is_ascii_digit())
        && !body.ends_with('.')
        && body.chars().all(|c| c.is_ascii_digit() || c == '.')
        && body.chars().filter(|&c| c == '.').count() <= 1;
    if plain {
        cell.to_string()
    } else {
        json_string(cell)
    }
}

/// Formats a float with 2 decimal places (the paper's table precision).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 4 decimal places (regret ratios).
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a duration in seconds with adaptive precision.
pub fn secs(s: f64) -> String {
    if s < 0.001 {
        format!("{:.2}ms", s * 1e3)
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("t1", "demo", &["algo", "rounds"]);
        t.push_row(vec!["EA".into(), "4.20".into()]);
        t.push_row(vec!["SinglePass".into(), "727.00".into()]);
        let r = t.render();
        assert!(r.contains("t1"));
        assert!(r.contains("SinglePass"));
        // Both data rows end aligned on the rounds column.
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn csv_round_trips_through_data_crate() {
        let mut t = Table::new("t2", "demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let parsed = isrl_data::csv::parse(&t.to_csv()).unwrap();
        assert_eq!(parsed.header, vec!["a", "b"]);
        assert_eq!(parsed.rows[0], vec!["1", "2"]);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn push_row_checks_width() {
        let mut t = Table::new("t3", "demo", &["only"]);
        t.push_row(vec!["a".into(), "b".into()]);
    }

    #[test]
    fn json_emits_numbers_verbatim_and_quotes_the_rest() {
        let mut t = Table::new("hp", "hot path", &["algo", "ms", "note"]);
        t.push_row(vec!["EA".into(), "3.40".into(), "d=4 \"cap\"".into()]);
        t.push_row(vec!["AA".into(), "-0.5".into(), "".into()]);
        let j = t.to_json();
        assert!(j.contains("\"ms\": 3.40"), "number left verbatim: {j}");
        assert!(j.contains("\"ms\": -0.5"), "negatives too: {j}");
        assert!(j.contains("\"algo\": \"EA\""), "strings quoted: {j}");
        assert!(j.contains(r#"\"cap\""#), "quotes escaped: {j}");
        // Non-JSON numeric shapes must fall back to strings.
        assert_eq!(super::json_cell("1e9"), "\"1e9\"");
        assert_eq!(super::json_cell(".5"), "\".5\"");
        assert_eq!(super::json_cell("3."), "\"3.\"");
        assert_eq!(super::json_cell("1.2.3"), "\"1.2.3\"");
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(3.46159), "3.46");
        assert_eq!(f4(0.123456), "0.1235");
        assert_eq!(secs(0.0000005), "0.00ms");
        assert_eq!(secs(0.5), "500.0ms");
        assert_eq!(secs(2.0), "2.00s");
    }
}
