//! Result tables: aligned terminal rendering plus CSV export, one table per
//! paper exhibit. EXPERIMENTS.md is assembled from these.

use std::fmt::Write as _;
use std::path::Path;

/// A rectangular result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Identifier matching the paper exhibit (e.g. "fig9a").
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: impl Into<String>, title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the cell count disagrees with the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch in {}", self.id);
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let _ = writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// CSV serialization (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Writes `<dir>/<id>.csv`, creating the directory as needed.
    pub fn save_csv(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{}.csv", self.id)), self.to_csv())
    }
}

/// Formats a float with 2 decimal places (the paper's table precision).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 4 decimal places (regret ratios).
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a duration in seconds with adaptive precision.
pub fn secs(s: f64) -> String {
    if s < 0.001 {
        format!("{:.2}ms", s * 1e3)
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("t1", "demo", &["algo", "rounds"]);
        t.push_row(vec!["EA".into(), "4.20".into()]);
        t.push_row(vec!["SinglePass".into(), "727.00".into()]);
        let r = t.render();
        assert!(r.contains("t1"));
        assert!(r.contains("SinglePass"));
        // Both data rows end aligned on the rounds column.
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn csv_round_trips_through_data_crate() {
        let mut t = Table::new("t2", "demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let parsed = isrl_data::csv::parse(&t.to_csv()).unwrap();
        assert_eq!(parsed.header, vec!["a", "b"]);
        assert_eq!(parsed.rows[0], vec!["1", "2"]);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn push_row_checks_width() {
        let mut t = Table::new("t3", "demo", &["only"]);
        t.push_row(vec!["a".into(), "b".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(3.14159), "3.14");
        assert_eq!(f4(0.123456), "0.1235");
        assert_eq!(secs(0.0000005), "0.00ms");
        assert_eq!(secs(0.5), "500.0ms");
        assert_eq!(secs(2.0), "2.00s");
    }
}
