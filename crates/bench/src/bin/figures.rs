//! Regenerates every figure of the paper's evaluation (§V).
//!
//! ```text
//! cargo run -p isrl-bench --release --bin figures -- all
//! cargo run -p isrl-bench --release --bin figures -- fig9 fig15 --scale 2 --out results
//! ```
//!
//! Experiments: fig6a fig6b fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14
//! fig15 fig16 ablation noise (or `all`). `--scale` multiplies the dataset
//! sizes and training budgets (1.0 = the repo's laptop-scale defaults;
//! absolute numbers differ from the paper's M3/Python setup by design —
//! EXPERIMENTS.md compares *shapes*). Tables print to stdout and land as
//! CSV under `--out` (default `results/`).

use isrl_bench::report::{f2, f4, secs, Table};
use isrl_bench::sweep::{
    run_algos, run_progress, run_sweep, AlgoKind, DataSpec, SweepCell, SweepParams,
};
use isrl_core::prelude::*;
use isrl_core::regret::regret_ratio_of_index;
use isrl_data::Distribution;
use std::path::PathBuf;

#[derive(Debug, Clone)]
struct Cli {
    experiments: Vec<String>,
    scale: f64,
    out: PathBuf,
    users: usize,
    train: usize,
    trace_out: Option<PathBuf>,
    metrics_interval: Option<f64>,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        experiments: Vec::new(),
        scale: 1.0,
        out: PathBuf::from("results"),
        users: 15,
        train: 100,
        trace_out: None,
        metrics_interval: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => cli.scale = args.next().expect("--scale needs a value").parse().unwrap(),
            "--out" => cli.out = PathBuf::from(args.next().expect("--out needs a value")),
            "--users" => cli.users = args.next().expect("--users needs a value").parse().unwrap(),
            "--train" => cli.train = args.next().expect("--train needs a value").parse().unwrap(),
            "--trace-out" => {
                cli.trace_out = Some(PathBuf::from(
                    args.next().expect("--trace-out needs a value"),
                ));
            }
            "--metrics-interval" => {
                cli.metrics_interval = Some(
                    args.next()
                        .expect("--metrics-interval needs seconds")
                        .parse()
                        .expect("--metrics-interval must be a number of seconds"),
                );
            }
            other => cli.experiments.push(other.to_string()),
        }
    }
    if cli.experiments.is_empty() {
        eprintln!(
            "usage: figures <exp>... [--scale X] [--out DIR] [--users N] [--train N] [--trace-out t.jsonl] [--metrics-interval s]"
        );
        eprintln!(
            "exps: fig6a fig6b fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15 fig16 ablation noise all"
        );
        std::process::exit(2);
    }
    cli
}

const EPS_SWEEP: [f64; 5] = [0.05, 0.10, 0.15, 0.20, 0.25];

fn sc(base: usize, scale: f64) -> usize {
    ((base as f64 * scale).round() as usize).max(2)
}

struct Ctx {
    scale: f64,
    users: usize,
    train: usize,
}

impl Ctx {
    fn params(&self, seed: u64) -> SweepParams {
        SweepParams {
            test_users: self.users,
            train_episodes: sc(self.train, self.scale),
            ea_samples: 80,
            seed,
        }
    }

    fn synth(&self, d: usize) -> DataSpec {
        DataSpec::Synthetic {
            n: sc(2_000, self.scale),
            d,
            dist: Distribution::AntiCorrelated,
        }
    }
}

/// Builds the (rounds, time, regret) table triple over a labelled x-axis;
/// shared by fig9/10/15/16 (ε sweeps) and fig11–14 (n/d sweeps).
fn sweep_tables(
    id: &str,
    title: &str,
    xlabel: &str,
    xs: &[String],
    per_x: Vec<Vec<(AlgoKind, Evaluation)>>,
) -> Vec<Table> {
    let algos: Vec<AlgoKind> = per_x[0].iter().map(|(k, _)| *k).collect();
    let names: Vec<String> = algos.iter().map(|a| a.name().to_string()).collect();
    let mut headers = vec![xlabel];
    headers.extend(names.iter().map(String::as_str));
    let mut rounds = Table::new(format!("{id}a"), format!("{title} — rounds"), &headers);
    let mut time = Table::new(format!("{id}b"), format!("{title} — time"), &headers);
    let mut regret = Table::new(
        format!("{id}c"),
        format!("{title} — final regret"),
        &headers,
    );
    for (x, evals) in xs.iter().zip(&per_x) {
        let mut r = vec![x.clone()];
        let mut t = vec![x.clone()];
        let mut g = vec![x.clone()];
        for (_, e) in evals {
            r.push(f2(e.stats.mean_rounds));
            t.push(secs(e.stats.mean_seconds));
            g.push(f4(e.stats.mean_regret));
        }
        rounds.push_row(r);
        time.push_row(t);
        regret.push_row(g);
    }
    vec![rounds, time, regret]
}

fn fig6a(ctx: &Ctx) -> Vec<Table> {
    // Vary the training-set size; report mean inference rounds of EA and AA.
    let data = ctx.synth(4).build(11);
    let sizes = [
        0,
        sc(25, ctx.scale),
        sc(50, ctx.scale),
        sc(100, ctx.scale),
        sc(200, ctx.scale),
    ];
    let mut t = Table::new(
        "fig6a",
        "Vary training size (d=4 synthetic)",
        &["train", "EA", "AA"],
    );
    for &s in &sizes {
        let params = SweepParams {
            train_episodes: s,
            ..ctx.params(21)
        };
        let evals = run_algos(&data, &[AlgoKind::Ea, AlgoKind::Aa], 0.1, &params);
        t.push_row(vec![
            s.to_string(),
            f2(evals[0].1.stats.mean_rounds),
            f2(evals[1].1.stats.mean_rounds),
        ]);
    }
    vec![t]
}

fn fig6b(ctx: &Ctx) -> Vec<Table> {
    // Vary the action-space size m_h.
    let data = ctx.synth(4).build(12);
    let mut t = Table::new(
        "fig6b",
        "Vary action-space size m_h (d=4 synthetic)",
        &["m_h", "EA", "AA"],
    );
    for m_h in [2usize, 5, 10, 20] {
        let params = ctx.params(22);
        let users = sample_users(4, params.test_users, params.seed.wrapping_add(300));
        let train = sample_users(4, params.train_episodes, params.seed.wrapping_add(100));
        let mut ea_cfg = EaConfig::paper_default().with_seed(params.seed);
        ea_cfg.m_h = m_h;
        ea_cfg.n_samples = params.ea_samples;
        let mut ea = EaAgent::new(4, ea_cfg);
        ea.train(&data, &train, 0.1);
        let ea_eval = evaluate(&mut ea, &data, &users, 0.1, TraceMode::Off);
        let mut aa_cfg = AaConfig::paper_default().with_seed(params.seed);
        aa_cfg.m_h = m_h;
        let mut aa = AaAgent::new(4, aa_cfg);
        aa.train(&data, &train, 0.1);
        let aa_eval = evaluate(&mut aa, &data, &users, 0.1, TraceMode::Off);
        t.push_row(vec![
            m_h.to_string(),
            f2(ea_eval.stats.mean_rounds),
            f2(aa_eval.stats.mean_rounds),
        ]);
    }
    vec![t]
}

fn progress_tables(
    id: &str,
    title: &str,
    data: &isrl_data::Dataset,
    kinds: &[AlgoKind],
    ctx: &Ctx,
    max_round: usize,
    regret_samples: usize,
) -> Vec<Table> {
    let params = SweepParams {
        test_users: ctx.users.min(5),
        ..ctx.params(31)
    };
    let progress = run_progress(data, kinds, 0.1, &params, max_round, regret_samples);
    let mut headers = vec!["round".to_string()];
    for p in &progress {
        headers.push(format!("{} maxregret", p.kind.name()));
        headers.push(format!("{} cum.time", p.kind.name()));
    }
    let hdr_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(id, title, &hdr_refs);
    for round in 1..=max_round {
        let mut row = vec![round.to_string()];
        let mut any = false;
        for p in &progress {
            match p.rows.iter().find(|r| r.0 == round) {
                Some(&(_, mr, ts)) => {
                    row.push(f4(mr));
                    row.push(secs(ts));
                    any = true;
                }
                None => {
                    row.push("-".into());
                    row.push("-".into());
                }
            }
        }
        if any {
            t.push_row(row);
        }
    }
    vec![t]
}

fn fig7(ctx: &Ctx) -> Vec<Table> {
    let data = ctx.synth(4).build(13);
    progress_tables(
        "fig7",
        "Interaction progress (d=4 synthetic, eps=0.1)",
        &data,
        &[
            AlgoKind::Ea,
            AlgoKind::Aa,
            AlgoKind::UhRandom,
            AlgoKind::UhSimplex,
        ],
        ctx,
        10,
        800,
    )
}

fn fig8(ctx: &Ctx) -> Vec<Table> {
    let data = ctx.synth(20).build(14);
    progress_tables(
        "fig8",
        "Interaction progress (d=20 synthetic, eps=0.1)",
        &data,
        &[AlgoKind::Aa, AlgoKind::SinglePass],
        ctx,
        15,
        400,
    )
}

fn eps_sweep(ctx: &Ctx, id: &str, title: &str, spec: DataSpec, kinds: &[AlgoKind]) -> Vec<Table> {
    let data = spec.build(15);
    let params = ctx.params(41);
    // Train each RL agent once (at ε = 0.1) and reuse it across the sweep —
    // the policy only selects questions; the ε-dependent stopping condition
    // is applied at inference (documented in EXPERIMENTS.md; the paper
    // retrains per setting, which changes constants, not trends).
    let users = sample_users(data.dim(), params.test_users, params.seed.wrapping_add(300));
    let mut algos: Vec<Box<dyn InteractiveAlgorithm + Send>> = kinds
        .iter()
        .map(|&k| isrl_bench::sweep::make_algo(k, &data, 0.1, &params))
        .collect();
    let xs: Vec<String> = EPS_SWEEP.iter().map(|e| format!("{e}")).collect();
    let per_x: Vec<Vec<(AlgoKind, Evaluation)>> = EPS_SWEEP
        .iter()
        .map(|&eps| {
            kinds
                .iter()
                .zip(algos.iter_mut())
                .map(|(&k, algo)| {
                    (
                        k,
                        evaluate(algo.as_mut(), &data, &users, eps, TraceMode::Off),
                    )
                })
                .collect()
        })
        .collect();
    sweep_tables(id, title, "eps", &xs, per_x)
}

fn fig9(ctx: &Ctx) -> Vec<Table> {
    eps_sweep(
        ctx,
        "fig9",
        "Vary eps (d=4 synthetic)",
        ctx.synth(4),
        &AlgoKind::roster(4),
    )
}

fn fig10(ctx: &Ctx) -> Vec<Table> {
    eps_sweep(
        ctx,
        "fig10",
        "Vary eps (d=20 synthetic)",
        ctx.synth(20),
        &AlgoKind::roster(20),
    )
}

fn n_sweep(ctx: &Ctx, id: &str, title: &str, d: usize) -> Vec<Table> {
    let kinds = AlgoKind::roster(d);
    let ns: Vec<usize> = [500usize, 2_000, 8_000]
        .iter()
        .map(|&n| sc(n, ctx.scale))
        .collect();
    let xs: Vec<String> = ns.iter().map(|n| n.to_string()).collect();
    // One shared work queue across every n-cell: training and per-user
    // items from all cells interleave instead of running cell-by-cell.
    let cells: Vec<SweepCell> = ns
        .iter()
        .map(|&n| SweepCell {
            spec: DataSpec::Synthetic {
                n,
                d,
                dist: Distribution::AntiCorrelated,
            },
            eps: 0.1,
            kinds: kinds.clone(),
            data_seed: 16,
        })
        .collect();
    let per_x = run_sweep(&cells, &ctx.params(42));
    sweep_tables(id, title, "n", &xs, per_x)
}

fn fig11(ctx: &Ctx) -> Vec<Table> {
    n_sweep(ctx, "fig11", "Vary n (d=4 synthetic)", 4)
}

fn fig12(ctx: &Ctx) -> Vec<Table> {
    n_sweep(ctx, "fig12", "Vary n (d=20 synthetic)", 20)
}

fn d_sweep(ctx: &Ctx, id: &str, title: &str, dims: &[usize], kinds: &[AlgoKind]) -> Vec<Table> {
    let xs: Vec<String> = dims.iter().map(|d| d.to_string()).collect();
    let cells: Vec<SweepCell> = dims
        .iter()
        .map(|&d| SweepCell {
            spec: ctx.synth(d),
            eps: 0.1,
            kinds: kinds.to_vec(),
            data_seed: 17,
        })
        .collect();
    let per_x = run_sweep(&cells, &ctx.params(43));
    sweep_tables(id, title, "d", &xs, per_x)
}

fn fig13(ctx: &Ctx) -> Vec<Table> {
    d_sweep(
        ctx,
        "fig13",
        "Vary d (low-dimensional)",
        &[2, 3, 4, 5],
        &AlgoKind::roster(4),
    )
}

fn fig14(ctx: &Ctx) -> Vec<Table> {
    d_sweep(
        ctx,
        "fig14",
        "Vary d (high-dimensional)",
        &[5, 10, 15, 20, 25],
        &AlgoKind::roster(20),
    )
}

fn fig15(ctx: &Ctx) -> Vec<Table> {
    let n = sc(isrl_data::real::CAR_N, ctx.scale.min(1.0));
    eps_sweep(
        ctx,
        "fig15",
        "Vary eps (Car)",
        DataSpec::Car { n },
        &AlgoKind::roster(3),
    )
}

fn fig16(ctx: &Ctx) -> Vec<Table> {
    let n = sc(isrl_data::real::PLAYER_N, ctx.scale.min(1.0));
    eps_sweep(
        ctx,
        "fig16",
        "Vary eps (Player)",
        DataSpec::Player { n },
        &AlgoKind::roster(20),
    )
}

fn ablation(ctx: &Ctx) -> Vec<Table> {
    let data = ctx.synth(4).build(18);
    let params = ctx.params(51);
    let users = sample_users(4, params.test_users, params.seed.wrapping_add(300));
    let train = sample_users(4, params.train_episodes, params.seed.wrapping_add(100));
    let mut t = Table::new(
        "ablation",
        "Design-choice ablations (d=4 synthetic, eps=0.1)",
        &["variant", "mean rounds", "mean regret"],
    );
    let push = |t: &mut Table, label: &str, eval: &Evaluation| {
        t.push_row(vec![
            label.to_string(),
            f2(eval.stats.mean_rounds),
            f4(eval.stats.mean_regret),
        ]);
    };

    // (a) RL value: trained vs untrained agents.
    let mut ea_cfg = EaConfig::paper_default().with_seed(params.seed);
    ea_cfg.n_samples = params.ea_samples;
    let mut ea_untrained = EaAgent::new(4, ea_cfg.clone());
    let e = evaluate(&mut ea_untrained, &data, &users, 0.1, TraceMode::Off);
    push(&mut t, "EA untrained", &e);
    let mut ea_trained = EaAgent::new(4, ea_cfg.clone());
    ea_trained.train(&data, &train, 0.1);
    let e = evaluate(&mut ea_trained, &data, &users, 0.1, TraceMode::Off);
    push(&mut t, "EA trained", &e);

    let aa_cfg = AaConfig::paper_default().with_seed(params.seed);
    let mut aa_untrained = AaAgent::new(4, aa_cfg.clone());
    let e = evaluate(&mut aa_untrained, &data, &users, 0.1, TraceMode::Off);
    push(&mut t, "AA untrained", &e);
    let mut aa_trained = AaAgent::new(4, aa_cfg.clone());
    aa_trained.train(&data, &train, 0.1);
    let e = evaluate(&mut aa_trained, &data, &users, 0.1, TraceMode::Off);
    push(&mut t, "AA trained", &e);

    // (b) AA's inner-sphere ranking vs random candidate order.
    let mut aa_rand_cfg = AaConfig::paper_default().with_seed(params.seed);
    aa_rand_cfg.pair_gen.rank_by_distance = false;
    let mut aa_rand = AaAgent::new(4, aa_rand_cfg);
    aa_rand.train(&data, &train, 0.1);
    let e = evaluate(&mut aa_rand, &data, &users, 0.1, TraceMode::Off);
    push(&mut t, "AA random-rank actions", &e);

    // (c) EA's Lemma-5 sampling budget.
    for n_samples in [10usize, 80] {
        let mut cfg = ea_cfg.clone();
        cfg.n_samples = n_samples;
        let mut ea = EaAgent::new(4, cfg);
        ea.train(&data, &train, 0.1);
        let e = evaluate(&mut ea, &data, &users, 0.1, TraceMode::Off);
        push(&mut t, &format!("EA n_samples={n_samples}"), &e);
    }

    // (d) EA's two-part state design (§IV-B): drop either part, or replace
    // the greedy max-coverage representative selection.
    use isrl_core::ea::StateVariant;
    for (variant, label) in [
        (StateVariant::RepsOnly, "EA state reps-only"),
        (StateVariant::SphereOnly, "EA state sphere-only"),
        (StateVariant::StridedReps, "EA state strided-reps"),
    ] {
        let mut cfg = ea_cfg.clone();
        cfg.state_variant = variant;
        let mut ea = EaAgent::new(4, cfg);
        ea.train(&data, &train, 0.1);
        let e = evaluate(&mut ea, &data, &users, 0.1, TraceMode::Off);
        push(&mut t, label, &e);
    }
    vec![t]
}

fn noise(ctx: &Ctx) -> Vec<Table> {
    // The paper's future work: users who answer incorrectly with some
    // probability. Measures robustness of each stopping condition.
    let data = ctx.synth(4).build(19);
    let params = ctx.params(52);
    let users = sample_users(4, params.test_users, params.seed.wrapping_add(300));
    let mut t = Table::new(
        "noise",
        "Noisy users (d=4 synthetic, eps=0.1): mean rounds / mean regret",
        &["flip prob", "EA", "AA", "UH-Simplex", "SinglePass"],
    );
    for &flip in &[0.0, 0.05, 0.10, 0.20] {
        let mut row = vec![format!("{flip}")];
        for kind in [
            AlgoKind::Ea,
            AlgoKind::Aa,
            AlgoKind::UhSimplex,
            AlgoKind::SinglePass,
        ] {
            let mut algo = isrl_bench::sweep::make_algo(kind, &data, 0.1, &params);
            let mut rounds = 0.0;
            let mut regret = 0.0;
            for (ui, u) in users.iter().enumerate() {
                let mut user = NoisyUser::new(u.clone(), flip, params.seed + ui as u64);
                let out = algo.run(&data, &mut user, 0.1, TraceMode::Off);
                rounds += out.rounds as f64;
                regret += regret_ratio_of_index(&data, out.point_index, u);
            }
            let n = users.len() as f64;
            row.push(format!("{} / {}", f2(rounds / n), f4(regret / n)));
        }
        t.push_row(row);
    }
    vec![t]
}

fn main() {
    let cli = parse_cli();
    let mut snapshotter = None;
    if cli.trace_out.is_some() || cli.metrics_interval.is_some() {
        isrl_obs::reset();
        isrl_obs::set_enabled(true);
        if let Some(secs) = cli.metrics_interval.filter(|&s| s > 0.0) {
            snapshotter = Some(isrl_obs::Snapshotter::start(
                std::time::Duration::from_secs_f64(secs),
                true,
            ));
        }
    }
    let ctx = Ctx {
        scale: cli.scale,
        users: cli.users,
        train: cli.train,
    };
    let all = [
        "fig6a", "fig6b", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
        "fig15", "fig16", "ablation", "noise",
    ];
    let wanted: Vec<&str> = if cli.experiments.iter().any(|e| e == "all") {
        all.to_vec()
    } else {
        cli.experiments.iter().map(String::as_str).collect()
    };

    for exp in wanted {
        let start = std::time::Instant::now();
        eprintln!(">> running {exp} (scale {})", ctx.scale);
        let tables = match exp {
            "fig6a" => fig6a(&ctx),
            "fig6b" => fig6b(&ctx),
            "fig7" => fig7(&ctx),
            "fig8" => fig8(&ctx),
            "fig9" => fig9(&ctx),
            "fig10" => fig10(&ctx),
            "fig11" => fig11(&ctx),
            "fig12" => fig12(&ctx),
            "fig13" => fig13(&ctx),
            "fig14" => fig14(&ctx),
            "fig15" => fig15(&ctx),
            "fig16" => fig16(&ctx),
            "ablation" => ablation(&ctx),
            "noise" => noise(&ctx),
            other => {
                eprintln!("unknown experiment {other:?}; skipping");
                continue;
            }
        };
        for table in &tables {
            println!("{}", table.render());
            if let Err(e) = table.save_csv(&cli.out) {
                eprintln!("warning: could not save {}: {e}", table.id);
            }
        }
        eprintln!("<< {exp} done in {:.1}s", start.elapsed().as_secs_f64());
    }

    // Per-item sweep telemetry rides along with the tables: every
    // evaluated (cell, algo, user) item is a `sweep_item` event, and the
    // trailing summary line carries the LP/sampling/scan aggregates.
    if let Some(s) = snapshotter.take() {
        s.stop();
    }
    if let Some(path) = &cli.trace_out {
        isrl_obs::set_enabled(false);
        let snap = isrl_obs::snapshot();
        match std::fs::File::create(path) {
            Ok(file) => {
                let mut w = std::io::BufWriter::new(file);
                if let Err(e) = snap.write_jsonl(&mut w) {
                    eprintln!("warning: could not write trace: {e}");
                } else {
                    eprintln!(
                        "trace: {} events written to {}",
                        snap.n_events(),
                        path.display()
                    );
                }
            }
            Err(e) => eprintln!("warning: could not create {}: {e}", path.display()),
        }
    }
}
