//! Emits `BENCH_geom_scale.json`: per-round wall-clock of full untrained
//! EA episodes on the *sampled* utility-region backend across
//! d ∈ {8, 12, 16, 20, 24} at n = 2000 anti-correlated tuples — the scaling
//! regime where exact vertex enumeration is hopeless — plus one measured
//! exact-backend row at d = 20 (stepped over a bounded round prefix via the
//! session API, since a full exact interaction there does not terminate in
//! reasonable time). The artifact carries an explicit
//! `speedup_sampled_vs_exact_d20` figure so the ≥10x acceptance criterion
//! of the sampled-geometry layer is self-contained; `perf_check` gates the
//! same quantity continuously through its `round.ea_sampled_d20` ceiling.
//!
//! Usage: `cargo run -p isrl-bench --release --bin geom_scale [-- out.json]`
//! (run from the repository root so the artifact lands next to ROADMAP.md).

use isrl_bench::report::{f2, Table};
use isrl_core::prelude::*;
use isrl_data::{generate, Dataset, Distribution};
use isrl_geometry::GeometryBackend;
use isrl_linalg::vector;

/// Runs `ea` to completion once per user and reports
/// `(mean rounds, wall-clock ms per round, total seconds)`.
fn per_round_full(
    ea: &mut EaAgent,
    data: &Dataset,
    users: &[Vec<f64>],
    eps: f64,
) -> (f64, f64, f64) {
    let mut rounds = 0usize;
    let mut secs = 0.0f64;
    for (i, u) in users.iter().enumerate() {
        ea.reseed(0x5eed + i as u64);
        let mut user = SimulatedUser::new(u.clone());
        let out = ea.run(data, &mut user, eps, TraceMode::Off);
        rounds += out.rounds;
        secs += out.elapsed.as_secs_f64();
    }
    let mean_rounds = rounds as f64 / users.len() as f64;
    let ms = if rounds == 0 {
        0.0
    } else {
        secs * 1e3 / rounds as f64
    };
    (mean_rounds, ms, secs)
}

/// Steps an exact-backend EA session for at most `cap` rounds per user —
/// the bounded-prefix measurement the d = 20 exact row needs.
fn per_round_capped(
    ea: &mut EaAgent,
    data: &Dataset,
    users: &[Vec<f64>],
    eps: f64,
    cap: usize,
) -> (f64, f64, f64) {
    let mut rounds = 0usize;
    let mut secs = 0.0f64;
    for (i, u) in users.iter().enumerate() {
        ea.reseed(0x5eed + i as u64);
        let mut session = ea.start_session(data, eps);
        while !session.is_finished() && session.rounds() < cap {
            let (p_i, p_j) = session.current_points().expect("unfinished session");
            let prefers_first = vector::dot(u, p_i) >= vector::dot(u, p_j);
            session.answer(prefers_first);
        }
        rounds += session.rounds();
        secs += session.elapsed().as_secs_f64();
    }
    let mean_rounds = rounds as f64 / users.len() as f64;
    let ms = if rounds == 0 {
        0.0
    } else {
        secs * 1e3 / rounds as f64
    };
    (mean_rounds, ms, secs)
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_geom_scale.json"));
    let mut table = Table::new(
        "geom_scale",
        "Untrained EA per-round wall-clock by dimensionality and geometry backend",
        &[
            "backend",
            "d",
            "n",
            "eval_users",
            "mode",
            "mean_rounds",
            "per_round_ms",
            "total_s",
        ],
    );
    let eps = 0.15;
    let n = 2_000usize;

    let mut sampled_d20_ms = f64::NAN;
    for d in [8usize, 12, 16, 20, 24] {
        let data = generate(n, d, Distribution::AntiCorrelated, 1);
        let users = sample_users(d, 4, 6);
        let mut cfg = EaConfig::paper_default().with_seed(7);
        cfg.geometry = GeometryBackend::Sampled;
        let mut ea = EaAgent::new(d, cfg);
        let m = per_round_full(&mut ea, &data, &users, eps);
        eprintln!(
            "sampled d={d}: {:.2} rounds, {:.3} ms/round ({:.1}s total)",
            m.0, m.1, m.2
        );
        if d == 20 {
            sampled_d20_ms = m.1;
        }
        table.push_row(vec![
            "sampled".into(),
            d.to_string(),
            n.to_string(),
            users.len().to_string(),
            "full".into(),
            f2(m.0),
            f2(m.1),
            f2(m.2),
        ]);
    }

    // The exact baseline at d = 20, over a 6-round prefix: the very
    // workload whose measured per-round cost (1427.9 ms at the time the
    // sampled backend landed) set the 10x acceptance bar.
    let d = 20usize;
    let data = generate(n, d, Distribution::AntiCorrelated, 1);
    let users = sample_users(d, 4, 6);
    let mut cfg = EaConfig::paper_default().with_seed(7);
    cfg.geometry = GeometryBackend::Exact;
    let mut ea = EaAgent::new(d, cfg);
    let m = per_round_capped(&mut ea, &data, &users, eps, 6);
    eprintln!(
        "exact d={d} (first6): {:.2} rounds, {:.3} ms/round ({:.1}s total)",
        m.0, m.1, m.2
    );
    let exact_d20_ms = m.1;
    table.push_row(vec![
        "exact".into(),
        d.to_string(),
        n.to_string(),
        users.len().to_string(),
        "first6".into(),
        f2(m.0),
        f2(m.1),
        f2(m.2),
    ]);

    let speedup = exact_d20_ms / sampled_d20_ms;
    let combined = format!(
        "{{\n\"geom_scale\": {},\n\"speedup_sampled_vs_exact_d20\": {:.2}\n}}\n",
        table.to_json().trim_end(),
        speedup
    );
    std::fs::write(&out, combined).expect("writing the geom-scale artifact");
    println!("{}", table.render());
    println!("sampled-vs-exact speedup at d=20: {speedup:.2}x");
    println!("wrote {}", out.display());
}
