//! `perf-check` — the noise-aware perf-regression gate.
//!
//! Runs a fixed set of quick seeded benches (min of [`REPS`] reps each):
//!
//! * `kernel.vertex_update` — incremental vertex enumeration on a 14-cut
//!   region at d = 4 (the hot-path layer's headline kernel);
//! * `kernel.top1_batch` — the batched top-1 utility scan at n = 50k,
//!   d = 20, 32 utility vectors;
//! * `kernel.dot` — the scalar dot product over a 20k × 24 flat buffer
//!   (the innermost loop of every utility scan);
//! * `kernel.dot_simd` — the same sweep through the runtime-detected
//!   AVX2 `simd::dot` (bit-identical results, fewer instructions);
//! * `scan.top1_soa` — the structure-of-arrays top-1 scan at the same
//!   shape as `kernel.top1_batch` (n = 50k, d = 20, 32 utilities), the
//!   default (`ScanBackend::Auto`) serving/estimator scan path;
//! * `lp.warm_replay` / `lp.cold_replay` — the warm-started vs cold LP
//!   replay of a 15-cut sequence at d = 8 with candidate-cut probes;
//! * `geom.cloud_cut` — building a d = 20 sample cloud and pushing a
//!   12-cut sequence through its incremental resample-on-cut path;
//! * `round.ea_untrained` — per-round milliseconds of an untrained EA
//!   interaction at d = 4 over seeded simulated users;
//! * `round.ea_sampled_d20` — per-round milliseconds of full untrained EA
//!   episodes on the sampled geometry backend at d = 20, n = 2000. This
//!   metric also carries an *absolute* ceiling ([`CEILINGS`]): 142.79 ms,
//!   one tenth of the exact backend's measured per-round cost at the same
//!   shape, checked even on a fresh history;
//! * `p99.round_ea_untrained` / `p99.round_ea_sampled_d20` — the p99
//!   *tail* of the same two round workloads, estimated by the
//!   `isrl_obs::QuantileSketch` over per-round `elapsed` deltas of
//!   `TraceMode::PerRound` runs (sink disabled, so the mean metrics above
//!   are undisturbed). The mean metrics miss a regression that only
//!   inflates occasional rounds (a degenerate cut, an LP repair storm);
//!   the tail metrics exist to catch exactly those, under the wider
//!   `p99.` tolerance band;
//! * `serve.session_ms` / `serve.round_p99` — the multi-session serving
//!   core: 64 untrained-EA sessions driven lockstep through one
//!   `SessionRegistry` with cross-user batching on (n = 1000, d = 4).
//!   `session_ms` is mean wall milliseconds per completed session;
//!   `round_p99` is the sketched p99 of one coalesced `pump_all` cycle
//!   (the serving analogue of a round's server-side latency).
//!
//! The run is compared against the median-of-window baseline with
//! per-metric relative tolerances (`bench::history`; rationale in
//! DESIGN.md §11) and, on a clean pass, appended to `BENCH_history.jsonl`
//! (commit, timestamp, metric map) — a regressed run never becomes part
//! of the baseline it failed against. Exits nonzero when any metric
//! regressed. An empty or missing history seeds the baseline and passes.
//!
//! Usage:
//!   cargo run -p isrl-bench --release --bin perf_check [-- flags]
//!     --history <path>   history file (default BENCH_history.jsonl)
//!     --dry-run          measure and compare, but do not append
//!     --scale <x>        multiply every measured timing by <x>
//!                        (CI self-test hook: --scale 2.0 simulates a
//!                        uniform 2x slowdown and must fail the gate)

use std::collections::BTreeMap;
use std::hint::black_box;
use std::io::Write as _;

use isrl_bench::history::{
    baseline_of, check, check_ceilings, parse_history, HistoryRecord, BASELINE_WINDOW, CEILINGS,
    HISTORY_FILE,
};
use isrl_core::prelude::*;
use isrl_data::{generate, skyline, Distribution};
use isrl_geometry::{
    GeometryBackend, Halfspace, Polytope, Region, RegionGeometry, RegionLpCache, WalkConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Reps per metric; the recorded value is their minimum — the achievable
/// floor is far more stable under transient scheduler/frequency noise
/// than the median, and a *code* regression raises the floor too.
const REPS: usize = 5;

/// Milliseconds of one `f()` call.
fn ms_of<F: FnMut()>(mut f: F) -> f64 {
    let t = std::time::Instant::now();
    f();
    t.elapsed().as_secs_f64() * 1e3
}

/// Min-of-[`REPS`] milliseconds of `f`, after one warm-up call.
fn bench<F: FnMut()>(mut f: F) -> f64 {
    f();
    (0..REPS)
        .map(|_| ms_of(&mut f))
        .fold(f64::INFINITY, f64::min)
}

/// A seeded cut sequence keeping the barycenter feasible, plus probe
/// hyperplanes (the same construction as the lp_warm artifact).
fn cut_workload(
    d: usize,
    cuts: usize,
    probes: usize,
    seed: u64,
) -> (Vec<Halfspace>, Vec<Halfspace>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let bary = vec![1.0 / d as f64; d];
    let mut seq = Vec::with_capacity(cuts);
    while seq.len() < cuts {
        let a: Vec<f64> = (0..d).map(|_| rng.gen_range(0.01..1.0)).collect();
        let b: Vec<f64> = (0..d).map(|_| rng.gen_range(0.01..1.0)).collect();
        if let Some(h) = Halfspace::preferring(&a, &b) {
            seq.push(if h.contains(&bary, 0.0) {
                h
            } else {
                h.flipped()
            });
        }
    }
    let probe_set = (0..probes)
        .map(|_| {
            let v: Vec<f64> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
            Halfspace::new(v)
        })
        .collect();
    (seq, probe_set)
}

fn kernel_vertex_update() -> f64 {
    let (d, cuts) = (4usize, 14usize);
    let (seq, _) = cut_workload(d, cuts, 0, 6);
    let mut prior = Region::full(d);
    for h in &seq[..cuts - 1] {
        prior.add(h.clone());
    }
    let last = seq[cuts - 1].clone();
    let prior_polytope = Polytope::from_region(&prior).expect("barycenter kept feasible");
    // 5000 updates per sample keeps one sample around a millisecond —
    // a 50-iteration sample sits at ~10 us, where timer and scheduling
    // jitter alone produce 1.7x run-to-run scatter.
    bench(|| {
        for _ in 0..5000 {
            black_box(prior_polytope.update(&prior, &last));
        }
    })
}

fn kernel_top1_batch() -> f64 {
    let data = generate(50_000, 20, Distribution::AntiCorrelated, 11);
    let d = data.dim();
    let utilities = sample_users(d, 32, 12);
    let flat = data.as_flat();
    bench(|| {
        black_box(isrl_linalg::top1_batch(&utilities, flat, d));
    })
}

fn kernel_dot() -> f64 {
    let data = generate(20_000, 24, Distribution::Independent, 13);
    let d = data.dim();
    let u = sample_users(d, 1, 14).pop().expect("one user");
    let flat = data.as_flat();
    bench(|| {
        let mut acc = 0.0f64;
        for p in flat.chunks_exact(d) {
            acc += isrl_linalg::vector::dot(p, &u);
        }
        black_box(acc);
    })
}

fn kernel_dot_simd() -> f64 {
    let data = generate(20_000, 24, Distribution::Independent, 13);
    let d = data.dim();
    let u = sample_users(d, 1, 14).pop().expect("one user");
    let flat = data.as_flat();
    bench(|| {
        let mut acc = 0.0f64;
        for p in flat.chunks_exact(d) {
            acc += isrl_linalg::simd::dot(p, &u);
        }
        black_box(acc);
    })
}

fn scan_top1_soa() -> f64 {
    let data = generate(50_000, 20, Distribution::AntiCorrelated, 11);
    let utilities = sample_users(data.dim(), 32, 12);
    let soa = data.soa(); // mirror built outside the timed region
    bench(|| {
        black_box(isrl_linalg::top1_soa(&utilities, soa));
    })
}

fn geom_cloud_cut() -> f64 {
    let d = 20usize;
    let (seq, _) = cut_workload(d, 12, 0, 21);
    bench(|| {
        let mut geom = RegionGeometry::sampled(d, WalkConfig::default(), 77);
        for h in &seq {
            geom.add(h.clone());
        }
        black_box(geom.support_size());
    })
}

fn lp_replays() -> (f64, f64) {
    let (d, cuts, probes) = (8usize, 15usize, 6usize);
    let (seq, probe_set) = cut_workload(d, cuts, probes, 1);
    let replay_cold = || {
        let mut region = Region::full(d);
        for h in &seq {
            region.add(h.clone());
            black_box(region.inner_sphere());
            black_box(region.outer_rectangle());
            for p in &probe_set {
                black_box(region.is_cut_by(p));
            }
        }
    };
    let replay_warm = || {
        let mut region = Region::full(d);
        let mut cache = RegionLpCache::new();
        for h in &seq {
            region.add(h.clone());
            black_box(region.inner_sphere_with(&mut cache));
            black_box(region.outer_rectangle_with(&mut cache));
            for p in &probe_set {
                black_box(region.is_cut_by_with(p, &mut cache));
            }
        }
    };
    (bench(replay_warm), bench(replay_cold))
}

fn round_ea_untrained() -> f64 {
    let data = skyline(&generate(400, 4, Distribution::AntiCorrelated, 1));
    let d = data.dim();
    let eps = 0.15;
    let users = sample_users(d, 3, 3);
    let mut ea = EaAgent::new(d, EaConfig::paper_default().with_seed(4));
    let run_all = |ea: &mut EaAgent| {
        let mut rounds = 0usize;
        let mut secs = 0.0f64;
        for (i, u) in users.iter().enumerate() {
            ea.reseed(0x5eed + i as u64);
            let mut user = SimulatedUser::new(u.clone());
            let out = ea.run(&data, &mut user, eps, TraceMode::Off);
            rounds += out.rounds;
            secs += out.elapsed.as_secs_f64();
        }
        (rounds, secs)
    };
    run_all(&mut ea); // warm-up
    (0..REPS)
        .map(|_| {
            let (rounds, secs) = run_all(&mut ea);
            secs * 1e3 / rounds.max(1) as f64
        })
        .fold(f64::INFINITY, f64::min)
}

fn round_ea_sampled_d20() -> f64 {
    let data = generate(2_000, 20, Distribution::AntiCorrelated, 1);
    let d = data.dim();
    let eps = 0.15;
    let users = sample_users(d, 2, 6);
    let mut cfg = EaConfig::paper_default().with_seed(7);
    cfg.geometry = GeometryBackend::Sampled;
    let mut ea = EaAgent::new(d, cfg);
    let run_all = |ea: &mut EaAgent| {
        let mut rounds = 0usize;
        let mut secs = 0.0f64;
        for (i, u) in users.iter().enumerate() {
            ea.reseed(0x5eed + i as u64);
            let mut user = SimulatedUser::new(u.clone());
            let out = ea.run(&data, &mut user, eps, TraceMode::Off);
            rounds += out.rounds;
            secs += out.elapsed.as_secs_f64();
        }
        (rounds, secs)
    };
    run_all(&mut ea); // warm-up
    (0..REPS)
        .map(|_| {
            let (rounds, secs) = run_all(&mut ea);
            secs * 1e3 / rounds.max(1) as f64
        })
        .fold(f64::INFINITY, f64::min)
}

/// Per-round latencies (ms) of one replay of `users`, taken as deltas of
/// the cumulative per-round `elapsed` stamps of a `TraceMode::PerRound`
/// run. The telemetry sink stays disabled — the round trace is part of the
/// interaction API, not the global sink.
fn round_latencies(ea: &mut EaAgent, data: &isrl_data::Dataset, users: &[Vec<f64>]) -> Vec<f64> {
    let eps = 0.15;
    let mut out = Vec::new();
    for (i, u) in users.iter().enumerate() {
        ea.reseed(0x5eed + i as u64);
        let mut user = SimulatedUser::new(u.clone());
        let outcome = ea.run(data, &mut user, eps, TraceMode::PerRound);
        let mut prev = 0.0f64;
        for rt in &outcome.trace {
            let e = rt.elapsed.as_secs_f64() * 1e3;
            out.push(e - prev);
            prev = e;
        }
    }
    out
}

/// Min-of-[`REPS`] sketched p99 of per-round latency: each rep feeds one
/// replay's rounds into a fresh `QuantileSketch` (1% relative error) and
/// reads its p99; the minimum is the achievable tail floor, stable under
/// transient noise for the same reason the mean metrics use min.
fn p99_of<F: FnMut() -> Vec<f64>>(mut latencies: F) -> f64 {
    latencies(); // warm-up
    (0..REPS)
        .map(|_| {
            let mut sk = isrl_obs::QuantileSketch::default_config();
            for ms in latencies() {
                sk.record(ms);
            }
            sk.quantile(0.99)
        })
        .fold(f64::INFINITY, f64::min)
}

fn p99_round_ea_untrained() -> f64 {
    let data = skyline(&generate(400, 4, Distribution::AntiCorrelated, 1));
    let d = data.dim();
    let users = sample_users(d, 3, 3);
    let mut ea = EaAgent::new(d, EaConfig::paper_default().with_seed(4));
    p99_of(|| round_latencies(&mut ea, &data, &users))
}

fn p99_round_ea_sampled_d20() -> f64 {
    let data = generate(2_000, 20, Distribution::AntiCorrelated, 1);
    let d = data.dim();
    let users = sample_users(d, 2, 6);
    let mut cfg = EaConfig::paper_default().with_seed(7);
    cfg.geometry = GeometryBackend::Sampled;
    let mut ea = EaAgent::new(d, cfg);
    p99_of(|| round_latencies(&mut ea, &data, &users))
}

/// The serving-core bench: 64 untrained-EA sessions through one registry,
/// answered lockstep by seeded simulated utilities, batching enabled.
/// Returns `(serve.session_ms, serve.round_p99)`: mean wall ms per
/// session, and the sketched p99 of one coalesced `pump_all` cycle.
fn serve_registry() -> (f64, f64) {
    use std::sync::Arc;
    let data = Arc::new(generate(1_000, 4, Distribution::AntiCorrelated, 9));
    let d = data.dim();
    let n_sessions = 64usize;
    let eps = 0.15;
    let users = sample_users(d, n_sessions, 17);
    let policy = Arc::new(ServePolicy::Ea(EaAgent::new(
        d,
        EaConfig::paper_default().with_seed(4),
    )));
    let run_once = || -> (f64, f64) {
        let mut registry = SessionRegistry::new(Arc::clone(&data));
        registry.register(Arc::clone(&policy));
        let ids: Vec<u64> = (0..n_sessions)
            .map(|i| registry.open(AlgoKind::Ea, eps, 0x5eed + i as u64).unwrap())
            .collect();
        let t0 = std::time::Instant::now();
        let mut sk = isrl_obs::QuantileSketch::default_config();
        loop {
            let t = std::time::Instant::now();
            registry.pump_all();
            sk.record(t.elapsed().as_secs_f64() * 1e3);
            let mut any_open = false;
            for (k, id) in ids.iter().enumerate() {
                let Some(session) = registry.session(*id) else {
                    continue;
                };
                if session.is_finished() {
                    continue;
                }
                any_open = true;
                let (p1, p2) = session.current_points().expect("pumped sessions ask");
                let prefers = isrl_linalg::vector::dot(&users[k], p1)
                    >= isrl_linalg::vector::dot(&users[k], p2);
                registry.answer(*id, prefers).unwrap();
            }
            if !any_open {
                break;
            }
        }
        let total_ms = t0.elapsed().as_secs_f64() * 1e3;
        (total_ms / n_sessions as f64, sk.quantile(0.99))
    };
    run_once(); // warm-up
    (0..REPS)
        .map(|_| run_once())
        .fold((f64::INFINITY, f64::INFINITY), |acc, (s, p)| {
            (acc.0.min(s), acc.1.min(p))
        })
}

fn current_commit() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.is_empty() {
            return sha;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut history_path = HISTORY_FILE.to_string();
    let mut dry_run = false;
    let mut scale = 1.0f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--history" => {
                history_path = it.next().expect("--history needs a path").clone();
            }
            "--dry-run" => dry_run = true,
            "--scale" => {
                scale = it
                    .next()
                    .expect("--scale needs a factor")
                    .parse()
                    .expect("--scale factor must be a number");
            }
            other => {
                eprintln!("unknown flag {other:?} (see the module docs)");
                std::process::exit(2);
            }
        }
    }

    eprintln!("perf-check: {REPS} reps per metric, min recorded");
    let mut metrics: BTreeMap<String, f64> = BTreeMap::new();
    let t0 = std::time::Instant::now();
    metrics.insert("kernel.vertex_update".into(), kernel_vertex_update());
    metrics.insert("kernel.top1_batch".into(), kernel_top1_batch());
    metrics.insert("kernel.dot".into(), kernel_dot());
    metrics.insert("kernel.dot_simd".into(), kernel_dot_simd());
    metrics.insert("scan.top1_soa".into(), scan_top1_soa());
    let (warm, cold) = lp_replays();
    metrics.insert("lp.warm_replay".into(), warm);
    metrics.insert("lp.cold_replay".into(), cold);
    metrics.insert("geom.cloud_cut".into(), geom_cloud_cut());
    metrics.insert("round.ea_untrained".into(), round_ea_untrained());
    metrics.insert("round.ea_sampled_d20".into(), round_ea_sampled_d20());
    metrics.insert("p99.round_ea_untrained".into(), p99_round_ea_untrained());
    metrics.insert(
        "p99.round_ea_sampled_d20".into(),
        p99_round_ea_sampled_d20(),
    );
    let (serve_session, serve_p99) = serve_registry();
    metrics.insert("serve.session_ms".into(), serve_session);
    metrics.insert("serve.round_p99".into(), serve_p99);
    for v in metrics.values_mut() {
        *v *= scale;
    }
    for (name, v) in &metrics {
        eprintln!("  {name:<24} {v:>10.4} ms");
    }
    eprintln!("measured in {:.1}s", t0.elapsed().as_secs_f64());

    let history_text = std::fs::read_to_string(&history_path).unwrap_or_default();
    let history = match parse_history(&history_text) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: {history_path}: {e}");
            std::process::exit(2);
        }
    };
    let record = HistoryRecord {
        commit: current_commit(),
        unix_secs: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs()),
        metrics,
    };

    let regressions = if history.is_empty() {
        eprintln!("{history_path}: no history — this run seeds the baseline");
        Vec::new()
    } else {
        let baseline = baseline_of(&history, BASELINE_WINDOW);
        check(&baseline, &record.metrics)
    };
    // Absolute ceilings hold even on a fresh history: a first run that
    // breaches one must not seed the baseline.
    let ceilings = check_ceilings(&record.metrics);
    if !ceilings.is_empty() {
        eprintln!("({} absolute ceiling(s) configured)", CEILINGS.len());
    }

    // Append only on a clean pass: a regressed run must not become part
    // of the baseline it just failed against.
    if dry_run {
        eprintln!("--dry-run: not appending to {history_path}");
    } else if !regressions.is_empty() || !ceilings.is_empty() {
        eprintln!("regressions detected: not appending to {history_path}");
    } else {
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&history_path)
            .expect("opening the history file");
        writeln!(file, "{}", record.to_jsonl()).expect("appending the history record");
        eprintln!(
            "appended record for {} to {history_path} ({} total)",
            record.commit,
            history.len() + 1
        );
    }

    if regressions.is_empty() && ceilings.is_empty() {
        println!("perf-check: OK ({} metric(s))", record.metrics.len());
    } else {
        for r in &regressions {
            eprintln!("REGRESSION {r}");
        }
        for v in &ceilings {
            eprintln!("CEILING {v}");
        }
        println!(
            "perf-check: FAILED ({} regression(s), {} ceiling breach(es))",
            regressions.len(),
            ceilings.len()
        );
        std::process::exit(1);
    }
}
