//! Emits `BENCH_lp_warm.json`: warm-started vs cold LP solving on AA's
//! per-round workload — replaying a seeded cut sequence and recomputing
//! the region summaries (inner sphere, outer rectangle) plus a batch of
//! candidate cut tests after every cut, once through a carried
//! [`RegionLpCache`] and once cold.
//!
//! Besides the timing ratio, the sweep replays both paths side by side and
//! counts *divergences* (summary or verdict mismatches beyond 1e-9); the
//! artifact must report zero. Warm-path telemetry (`lp.warm.*` hit/fallback
//! counters) is captured for the same sweep so the hit rate is on record.
//!
//! Usage: `cargo run -p isrl-bench --release --bin lp_warm [-- out.json]`
//! (run from the repository root so the artifact lands next to ROADMAP.md).

use isrl_bench::report::{f2, Table};
use isrl_geometry::{Halfspace, Region, RegionLpCache};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::path::PathBuf;

/// A cut sequence keeping the barycenter feasible, plus probe hyperplanes
/// standing in for the candidate cut tests of each round.
fn workload(d: usize, cuts: usize, probes: usize, seed: u64) -> (Vec<Halfspace>, Vec<Halfspace>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let bary = vec![1.0 / d as f64; d];
    let mut seq = Vec::with_capacity(cuts);
    while seq.len() < cuts {
        let a: Vec<f64> = (0..d).map(|_| rng.gen_range(0.01..1.0)).collect();
        let b: Vec<f64> = (0..d).map(|_| rng.gen_range(0.01..1.0)).collect();
        if let Some(h) = Halfspace::preferring(&a, &b) {
            seq.push(if h.contains(&bary, 0.0) {
                h
            } else {
                h.flipped()
            });
        }
    }
    let probe_set = (0..probes)
        .map(|_| {
            let v: Vec<f64> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
            Halfspace::new(v)
        })
        .collect();
    (seq, probe_set)
}

fn replay_cold(d: usize, seq: &[Halfspace], probes: &[Halfspace]) {
    let mut region = Region::full(d);
    for h in seq {
        region.add(h.clone());
        black_box(region.inner_sphere());
        black_box(region.outer_rectangle());
        for p in probes {
            black_box(region.is_cut_by(p));
        }
    }
}

fn replay_warm(d: usize, seq: &[Halfspace], probes: &[Halfspace]) {
    let mut region = Region::full(d);
    let mut cache = RegionLpCache::new();
    for h in seq {
        region.add(h.clone());
        black_box(region.inner_sphere_with(&mut cache));
        black_box(region.outer_rectangle_with(&mut cache));
        for p in probes {
            black_box(region.is_cut_by_with(p, &mut cache));
        }
    }
}

/// Replays both paths in lockstep and counts summary/verdict mismatches.
fn count_divergences(d: usize, seq: &[Halfspace], probes: &[Halfspace]) -> usize {
    const TOL: f64 = 1e-9;
    let mut region = Region::full(d);
    let mut cache = RegionLpCache::new();
    let mut divergences = 0usize;
    for h in seq {
        region.add(h.clone());
        match (region.inner_sphere(), region.inner_sphere_with(&mut cache)) {
            (Some(c), Some(w)) => {
                if (c.radius() - w.radius()).abs() > TOL * c.radius().abs().max(1.0) {
                    divergences += 1;
                }
            }
            (None, None) => {}
            _ => divergences += 1,
        }
        match (
            region.outer_rectangle(),
            region.outer_rectangle_with(&mut cache),
        ) {
            (Some(c), Some(w)) => {
                let off = |a: &[f64], b: &[f64]| a.iter().zip(b).any(|(x, y)| (x - y).abs() > TOL);
                if off(c.min(), w.min()) || off(c.max(), w.max()) {
                    divergences += 1;
                }
            }
            (None, None) => {}
            _ => divergences += 1,
        }
        for p in probes {
            if region.is_cut_by(p) != region.is_cut_by_with(p, &mut cache) {
                divergences += 1;
            }
        }
    }
    divergences
}

/// Mean milliseconds per call of `f` over `iters` calls.
fn time_ms<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    let t = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    t.elapsed().as_secs_f64() * 1e3 / iters as f64
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_lp_warm.json"));
    let mut table = Table::new(
        "lp_warm",
        "Warm-started vs cold LP solving on the per-round geometry workload",
        &[
            "d",
            "cuts",
            "probes",
            "cold_ms",
            "warm_ms",
            "speedup",
            "divergences",
        ],
    );

    let configs = [(4usize, 15usize), (8, 15), (12, 15), (20, 15)];
    let probes = 6usize;
    let mut total_divergences = 0usize;
    for (d, cuts) in configs {
        let (seq, probe_set) = workload(d, cuts, probes, 1);
        let divergences = count_divergences(d, &seq, &probe_set);
        total_divergences += divergences;
        let iters = if d >= 12 { 20 } else { 60 };
        // Interleave a warm-up of each path before timing it.
        replay_cold(d, &seq, &probe_set);
        let cold_ms = time_ms(iters, || replay_cold(d, &seq, &probe_set));
        replay_warm(d, &seq, &probe_set);
        let warm_ms = time_ms(iters, || replay_warm(d, &seq, &probe_set));
        eprintln!(
            "d={d} cuts={cuts}: cold {cold_ms:.3} ms, warm {warm_ms:.3} ms, \
             speedup {:.2}, divergences {divergences}",
            cold_ms / warm_ms
        );
        table.push_row(vec![
            d.to_string(),
            cuts.to_string(),
            probes.to_string(),
            format!("{cold_ms:.4}"),
            format!("{warm_ms:.4}"),
            f2(cold_ms / warm_ms),
            divergences.to_string(),
        ]);
    }

    // Warm-path telemetry over one representative sweep: how often the
    // carried basis survives vs falls back to the cold path.
    isrl_obs::set_enabled(true);
    isrl_obs::reset();
    for (d, cuts) in configs {
        let (seq, probe_set) = workload(d, cuts, probes, 1);
        replay_warm(d, &seq, &probe_set);
    }
    let snap = isrl_obs::snapshot();
    isrl_obs::set_enabled(false);
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0, |(_, v)| *v)
    };
    let (attempts, hits, fallbacks) = (
        counter("lp.warm.attempts"),
        counter("lp.warm.hits"),
        counter("lp.warm.fallbacks"),
    );
    let counters_json = format!(
        "{{\"lp.warm.attempts\": {attempts}, \"lp.warm.hits\": {hits}, \
         \"lp.warm.fallbacks\": {fallbacks}, \"lp.warm.repair_pivots\": {}, \
         \"lp.warm.refactor_pivots\": {}, \"hit_rate\": {:.4}}}",
        counter("lp.warm.repair_pivots"),
        counter("lp.warm.refactor_pivots"),
        if attempts == 0 {
            0.0
        } else {
            hits as f64 / attempts as f64
        },
    );

    let combined = format!(
        "{{\n\"lp_warm\": {},\n\"warm_counters\": {},\n\"total_divergences\": {}\n}}\n",
        table.to_json().trim_end(),
        counters_json,
        total_divergences
    );
    std::fs::write(&out, combined).expect("writing the lp_warm artifact");
    println!("{}", table.render());
    println!("warm counters: attempts={attempts} hits={hits} fallbacks={fallbacks}");
    println!("wrote {}", out.display());
    assert_eq!(
        total_divergences, 0,
        "warm and cold LP paths disagreed {total_divergences} times"
    );
}
