//! Emits `BENCH_hotpath.json`: per-round wall-clock of the learned agents
//! (EA, AA) at the paper's two focus dimensionalities, measured end-to-end
//! through the hot-path layer — incremental vertex enumeration inside EA's
//! region state and the batched utility-scan kernel under both agents'
//! per-round scoring.
//!
//! EA at d = 20 runs full interactions on the sampled geometry backend
//! (the default auto-by-dimension resolution): its exact vertex set grows
//! combinatorially with the cut count, but the hit-and-run sample cloud
//! keeps per-round cost flat. `BENCH_geom_scale.json` (the `geom_scale`
//! bin) holds the exact-vs-sampled comparison across dimensionalities;
//! this artifact records the end-to-end agent rows.
//!
//! Usage: `cargo run -p isrl-bench --release --bin hotpath [-- out.json]`
//! (run from the repository root so the artifact lands next to ROADMAP.md).

use isrl_bench::report::{f2, Table};
use isrl_core::prelude::*;
use isrl_data::{generate, skyline, Dataset, Distribution};
use isrl_linalg::vector;
use std::path::PathBuf;

/// Runs `algo` to completion once per evaluation user and reports
/// `(mean rounds, wall-clock ms per round, total seconds)`.
fn per_round_full(
    algo: &mut dyn InteractiveAlgorithm,
    data: &Dataset,
    users: &[Vec<f64>],
    eps: f64,
) -> (f64, f64, f64) {
    let mut rounds = 0usize;
    let mut secs = 0.0f64;
    for (i, u) in users.iter().enumerate() {
        algo.reseed(0x5eed + i as u64);
        let mut user = SimulatedUser::new(u.clone());
        let out = algo.run(data, &mut user, eps, TraceMode::Off);
        rounds += out.rounds;
        secs += out.elapsed.as_secs_f64();
    }
    let mean_rounds = rounds as f64 / users.len() as f64;
    let ms = if rounds == 0 {
        0.0
    } else {
        secs * 1e3 / rounds as f64
    };
    (mean_rounds, ms, secs)
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_hotpath.json"));
    let mut table = Table::new(
        "hotpath",
        "Per-round wall-clock of the learned agents through the hot-path layer",
        &[
            "algorithm",
            "d",
            "n",
            "eval_users",
            "mode",
            "mean_rounds",
            "per_round_ms",
            "total_s",
        ],
    );
    let record = |table: &mut Table,
                  name: &str,
                  d: usize,
                  n: usize,
                  users: usize,
                  mode: &str,
                  m: (f64, f64, f64)| {
        eprintln!(
            "{name} d={d} ({mode}): {:.2} rounds, {:.3} ms/round",
            m.0, m.1
        );
        table.push_row(vec![
            name.into(),
            d.to_string(),
            n.to_string(),
            users.to_string(),
            mode.into(),
            f2(m.0),
            f2(m.1),
            f2(m.2),
        ]);
    };

    // d = 4: the low-dimensional regime where EA's vertex-based state is
    // exact (Figures 9-12). Skyline-pruned anti-correlated data, as in the
    // paper's synthetic setup.
    {
        let data = skyline(&generate(2_000, 4, Distribution::AntiCorrelated, 1));
        let d = data.dim();
        let eps = 0.1;
        let train = sample_users(d, 40, 2);
        let eval = sample_users(d, 8, 3);
        eprintln!("training EA/AA at d={d} on {} users...", train.len());
        let mut ea = EaAgent::new(d, EaConfig::paper_default().with_seed(4));
        ea.train(&data, &train, eps);
        let mut aa = AaAgent::new(d, AaConfig::paper_default().with_seed(4));
        aa.train(&data, &train, eps);
        let m = per_round_full(&mut ea, &data, &eval, eps);
        record(&mut table, "EA", d, data.len(), eval.len(), "full", m);
        let m = per_round_full(&mut aa, &data, &eval, eps);
        record(&mut table, "AA", d, data.len(), eval.len(), "full", m);
    }

    // d = 20: the high-dimensional regime (Figures 13-16). AA runs to
    // completion as always; EA now does too — the auto backend resolves
    // to the sampled utility-region geometry above d = 7, so full
    // episodes terminate instead of drowning in vertex enumeration. The
    // EA policy stays untrained here (the row measures the hot path, not
    // the learned question order).
    {
        let data = generate(2_000, 20, Distribution::AntiCorrelated, 1);
        let d = data.dim();
        let eps = 0.15;
        let eval = sample_users(d, 4, 6);
        eprintln!("training AA at d={d} on 20 users...");
        let mut aa = AaAgent::new(d, AaConfig::paper_default().with_seed(7));
        aa.train(&data, &sample_users(d, 20, 5), eps);
        let m = per_round_full(&mut aa, &data, &eval, eps);
        record(&mut table, "AA", d, data.len(), eval.len(), "full", m);
        let mut ea = EaAgent::new(d, EaConfig::paper_default().with_seed(7));
        let m = per_round_full(&mut ea, &data, &eval, eps);
        record(&mut table, "EA", d, data.len(), eval.len(), "full", m);
    }

    let kernels = kernel_before_after();
    let overhead = profiling_overhead();

    let combined = format!(
        "{{\n\"per_round\": {},\n\"kernels\": {},\n\"profiling_overhead\": {}\n}}\n",
        table.to_json().trim_end(),
        kernels.to_json().trim_end(),
        overhead.to_json().trim_end()
    );
    std::fs::write(&out, combined).expect("writing the hot-path artifact");
    println!("{}", table.render());
    println!("{}", kernels.render());
    println!("{}", overhead.render());
    println!("wrote {}", out.display());
}

/// Cost of the span-profiler instrumentation with the sink *disabled* —
/// the state every benchmark and production run above pays. Measures the
/// per-call cost of a disabled `isrl_obs::span` (one relaxed atomic load),
/// counts how many spans one real EA round actually opens (by running a
/// round with the profiler on and summing span counts), and expresses
/// their product as a percentage of the measured per-round wall time. The
/// budget is < 1%: instrumentation must be free when nobody is looking.
fn profiling_overhead() -> Table {
    // Per-call cost, amortized over a tight loop. The sink is disabled
    // (default state), so span() takes the early-out path.
    assert!(
        !isrl_obs::enabled(),
        "sink must be off for the overhead row"
    );
    let calls = 2_000_000usize;
    let ns_per_span = time_ms(1, || {
        for _ in 0..calls {
            let _guard = std::hint::black_box(isrl_obs::span("overhead_probe"));
        }
    }) * 1e6
        / calls as f64;

    // Spans per round, counted on the same d = 4 EA workload as the
    // per-round rows: one profiled run, total span count / total rounds.
    let data = skyline(&generate(2_000, 4, Distribution::AntiCorrelated, 1));
    let d = data.dim();
    let eps = 0.1;
    let users = sample_users(d, 4, 3);
    let mut ea = EaAgent::new(d, EaConfig::paper_default().with_seed(4));
    let mut rounds = 0usize;
    let mut secs = 0.0f64;
    isrl_obs::reset();
    isrl_obs::set_enabled(true);
    for (i, u) in users.iter().enumerate() {
        ea.reseed(0x5eed + i as u64);
        let mut user = SimulatedUser::new(u.clone());
        let out = ea.run(&data, &mut user, eps, TraceMode::Off);
        rounds += out.rounds;
        secs += out.elapsed.as_secs_f64();
    }
    isrl_obs::set_enabled(false);
    // Each interaction emitted one `profile` event; its per-path counts
    // are exactly the spans the round hot path opens.
    let mut jsonl = Vec::new();
    isrl_obs::snapshot()
        .write_jsonl(&mut jsonl)
        .expect("serializing the profile events");
    let spans: u64 = isrl_obs::profile::ProfileAccum::from_trace(
        &String::from_utf8(jsonl).expect("trace is utf-8"),
    )
    .expect("profile events parse")
    .spans
    .values()
    .map(|s| s.count)
    .sum();
    isrl_obs::reset();

    let spans_per_round = spans as f64 / rounds.max(1) as f64;
    let round_ms = secs * 1e3 / rounds.max(1) as f64;
    let overhead_pct = spans_per_round * ns_per_span / 1e6 / round_ms * 100.0;
    eprintln!(
        "profiling overhead (sink off): {ns_per_span:.2} ns/span x {spans_per_round:.1} \
         spans/round = {overhead_pct:.4}% of a {round_ms:.3} ms round"
    );
    assert!(
        overhead_pct < 1.0,
        "disabled-sink profiling overhead {overhead_pct:.4}% breaches the 1% budget"
    );

    let mut table = Table::new(
        "profiling_overhead",
        "Disabled-sink span instrumentation cost on the EA round hot path",
        &[
            "ns_per_span",
            "spans_per_round",
            "round_ms",
            "overhead_pct",
            "budget_pct",
        ],
    );
    table.push_row(vec![
        format!("{ns_per_span:.2}"),
        f2(spans_per_round),
        format!("{round_ms:.3}"),
        format!("{overhead_pct:.4}"),
        "1.0".into(),
    ]);
    table
}

/// Mean milliseconds per call of `f` over `iters` calls.
fn time_ms<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    let t = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    t.elapsed().as_secs_f64() * 1e3 / iters as f64
}

/// Minimum single-run wall-clock over `runs` repeats — the scan-kernel
/// rows compare mins so a scheduler hiccup in one run cannot flip a
/// before/after ratio.
fn min_ms<F: FnMut()>(runs: usize, mut f: F) -> f64 {
    (0..runs)
        .map(|_| {
            let t = std::time::Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

/// Direct before/after timings of the two kernels this layer replaced:
/// from-scratch vs incremental vertex enumeration on a deep region, and
/// the scalar vs batched top-1 utility scan at the regret estimator's
/// working size. The criterion benches measure the same pairs with proper
/// statistics; these rows make the artifact self-contained.
fn kernel_before_after() -> Table {
    use isrl_geometry::{Halfspace, Polytope, Region};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut table = Table::new(
        "hotpath_kernels",
        "Kernel wall-clock before/after the hot-path layer",
        &["kernel", "params", "before_ms", "after_ms", "speedup"],
    );

    // Vertex enumeration: 14-cut region at d = 4, barycenter kept feasible.
    let (d, cuts) = (4usize, 14usize);
    let mut rng = StdRng::seed_from_u64(6);
    let bary = vec![1.0 / d as f64; d];
    let mut region = Region::full(d);
    while region.len() < cuts {
        let a: Vec<f64> = (0..d).map(|_| rng.gen_range(0.01..1.0)).collect();
        let b: Vec<f64> = (0..d).map(|_| rng.gen_range(0.01..1.0)).collect();
        if let Some(h) = Halfspace::preferring(&a, &b) {
            region.add(if h.contains(&bary, 0.0) {
                h
            } else {
                h.flipped()
            });
        }
    }
    let mut prior = Region::full(d);
    for h in &region.halfspaces()[..cuts - 1] {
        prior.add(h.clone());
    }
    let last = region.halfspaces()[cuts - 1].clone();
    let prior_polytope = Polytope::from_region(&prior).expect("barycenter kept feasible");
    let before = time_ms(200, || {
        std::hint::black_box(Polytope::from_region(&region));
    });
    let after = time_ms(200, || {
        std::hint::black_box(prior_polytope.update(&prior, &last));
    });
    table.push_row(vec![
        "vertex_enumeration".into(),
        format!("d={d} cuts={cuts}"),
        format!("{before:.4}"),
        format!("{after:.4}"),
        f2(before / after),
    ]);

    // Top-1 utility scan: n = 100k, d = 20, 32 utility vectors.
    let data = generate(100_000, 20, Distribution::AntiCorrelated, 11);
    let sd = data.dim();
    let utilities = sample_users(sd, 32, 12);
    let flat = data.as_flat();
    let before = min_ms(4, || {
        for u in &utilities {
            let mut best = (0usize, f64::NEG_INFINITY);
            for (i, p) in flat.chunks_exact(sd).enumerate() {
                let v = vector::dot(p, u);
                if v > best.1 {
                    best = (i, v);
                }
            }
            std::hint::black_box(best);
        }
    });
    let after = min_ms(4, || {
        std::hint::black_box(isrl_linalg::top1_batch(&utilities, flat, sd));
    });
    table.push_row(vec![
        "top1_scan".into(),
        format!("n={} d={sd} k={}", data.len(), utilities.len()),
        format!("{before:.2}"),
        format!("{after:.2}"),
        f2(before / after),
    ]);

    // Dot kernel: portable 4-lane unrolled loop vs the runtime-detected
    // AVX2 path (bit-identical results).
    let dot_before = min_ms(20, || {
        let mut acc = 0.0f64;
        for p in flat.chunks_exact(sd) {
            acc += vector::dot(p, &utilities[0]);
        }
        std::hint::black_box(acc);
    });
    let dot_after = min_ms(20, || {
        let mut acc = 0.0f64;
        for p in flat.chunks_exact(sd) {
            acc += isrl_linalg::simd::dot(p, &utilities[0]);
        }
        std::hint::black_box(acc);
    });
    table.push_row(vec![
        "dot_simd".into(),
        format!("n={} d={sd}", data.len()),
        format!("{dot_before:.2}"),
        format!("{dot_after:.2}"),
        f2(dot_before / dot_after),
    ]);

    // Data layout: the blocked row-major scan above vs the
    // structure-of-arrays scan streaming one dimension at a time
    // (`ScanBackend::Auto`'s choice), and the f32-with-f64-rescan
    // variant. `before_ms` is the row-major blocked scalar kernel —
    // the acceptance target is soa >= 1.5x over it at this shape.
    let soa = data.soa();
    let soa_ms = min_ms(4, || {
        std::hint::black_box(isrl_linalg::top1_soa(&utilities, soa));
    });
    table.push_row(vec![
        "top1_soa".into(),
        format!("n={} d={sd} k={}", data.len(), utilities.len()),
        format!("{after:.2}"),
        format!("{soa_ms:.2}"),
        f2(after / soa_ms),
    ]);
    let f32_ms = min_ms(4, || {
        std::hint::black_box(isrl_linalg::top1_soa_f32(&utilities, soa, flat));
    });
    table.push_row(vec![
        "top1_soa_f32".into(),
        format!("n={} d={sd} k={}", data.len(), utilities.len()),
        format!("{after:.2}"),
        format!("{f32_ms:.2}"),
        f2(after / f32_ms),
    ]);

    // Serve path: the same multi-session registry pump as perf_check's
    // serve bench (scan-heavy at this n), before = forced scalar
    // row-major backend, after = the Auto (SoA + SIMD) backend every
    // serving deployment gets by default.
    let serve_before = serve_pump_ms(isrl_linalg::ScanBackend::Scalar);
    let serve_after = serve_pump_ms(isrl_linalg::ScanBackend::Auto);
    isrl_linalg::set_scan_backend(isrl_linalg::ScanBackend::Auto);
    table.push_row(vec![
        "serve_registry_scan".into(),
        "sessions=16 n=20000 d=4".into(),
        format!("{serve_before:.2}"),
        format!("{serve_after:.2}"),
        f2(serve_before / serve_after),
    ]);
    table
}

/// Wall milliseconds to drive 16 untrained-EA sessions to completion
/// through one `SessionRegistry` (coalesced cross-user scan batches)
/// under the given scan backend. The backends are bit-exact, so every
/// session asks the identical question sequence — the delta is pure
/// kernel/layout speed. Best of 2 runs after a warm-up.
fn serve_pump_ms(backend: isrl_linalg::ScanBackend) -> f64 {
    use std::sync::Arc;
    isrl_linalg::set_scan_backend(backend);
    let data = Arc::new(generate(20_000, 4, Distribution::AntiCorrelated, 9));
    let d = data.dim();
    let n_sessions = 16usize;
    let eps = 0.15;
    let users = sample_users(d, n_sessions, 17);
    let policy = Arc::new(ServePolicy::Ea(EaAgent::new(
        d,
        EaConfig::paper_default().with_seed(4),
    )));
    let run_once = || -> f64 {
        let mut registry = SessionRegistry::new(Arc::clone(&data));
        registry.register(Arc::clone(&policy));
        let ids: Vec<u64> = (0..n_sessions)
            .map(|i| registry.open(AlgoKind::Ea, eps, 0x5eed + i as u64).unwrap())
            .collect();
        let t0 = std::time::Instant::now();
        loop {
            registry.pump_all();
            let mut any_open = false;
            for (k, id) in ids.iter().enumerate() {
                let Some(session) = registry.session(*id) else {
                    continue;
                };
                if session.is_finished() {
                    continue;
                }
                any_open = true;
                let (p1, p2) = session.current_points().expect("pumped sessions ask");
                let prefers = vector::dot(&users[k], p1) >= vector::dot(&users[k], p2);
                registry.answer(*id, prefers).unwrap();
            }
            if !any_open {
                break;
            }
        }
        t0.elapsed().as_secs_f64() * 1e3
    };
    run_once(); // warm-up (also builds the SoA mirror outside timing)
    run_once().min(run_once())
}
