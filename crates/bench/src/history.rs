//! Bench-history records and the noise-aware perf-regression gate.
//!
//! The `perf-check` binary appends one [`HistoryRecord`] per run to
//! `BENCH_history.jsonl` — commit, timestamp, and a flat metric map of
//! kernel and per-round timings (milliseconds; lower is better) — and then
//! compares the new run against the history with [`baseline_of`] +
//! [`check`]. The comparison is noise-aware in two ways:
//!
//! * the **baseline** for each metric is the *median* of its last `k`
//!   recorded values, so one anomalously fast (or slow) historical run
//!   cannot move the bar;
//! * each metric carries a **relative tolerance** (see [`TOLERANCES`]):
//!   a regression is flagged only when `current > median * (1 + tol)`.
//!   Sub-millisecond kernels jitter more than end-to-end replays, so
//!   their tolerance is wider.
//!
//! The format and threshold rationale are documented in DESIGN.md §11.

use std::collections::BTreeMap;

use isrl_obs::json::{parse, Json};

/// Default history file name, expected at the repository root.
pub const HISTORY_FILE: &str = "BENCH_history.jsonl";

/// How many trailing history records the per-metric median is taken over.
pub const BASELINE_WINDOW: usize = 5;

/// Relative tolerance per metric-name prefix, first match wins; metrics
/// with no matching prefix use [`DEFAULT_TOLERANCE`]. Rationale: the
/// sub-millisecond geometry kernels (`kernel.*`) run hundreds of reps but
/// still see allocator/cache jitter in shared CI runners; the LP replays
/// and agent rounds (`lp.*`, `round.*`) integrate more work per sample and
/// sit closer to their medians.
pub const TOLERANCES: &[(&str, f64)] = &[
    ("kernel.", 0.50),
    ("lp.", 0.35),
    ("geom.", 0.40),
    ("round.", 0.35),
    // Tail quantiles are inherently noisier than means/minima: one
    // scheduler hiccup lands straight in the p99, so the band is the
    // widest of the table.
    ("p99.", 0.60),
    // Serving metrics drive whole multi-session registries (pump loops,
    // coalesced scans) and include a p99 pump tail, so they get the same
    // wide band as the other tail quantiles.
    ("serve.", 0.60),
    // Single-digit-millisecond SIMD/SoA scan kernels: same jitter class
    // as `kernel.*`.
    ("scan.", 0.50),
];

/// Fallback relative tolerance for unprefixed metrics.
pub const DEFAULT_TOLERANCE: f64 = 0.40;

/// Absolute per-metric ceilings in milliseconds, checked regardless of
/// history (a drifting baseline can never re-legitimize breaking these).
/// `round.ea_sampled_d20` pins the sampled-geometry acceptance criterion:
/// one tenth of the 1427.9 ms/round the exact backend measured at
/// d = 20, n = 2000 before the sampled backend existed.
pub const CEILINGS: &[(&str, f64)] = &[("round.ea_sampled_d20", 142.79)];

/// One breached absolute ceiling from [`check_ceilings`].
#[derive(Debug, Clone, PartialEq)]
pub struct CeilingViolation {
    /// Metric name.
    pub metric: String,
    /// The absolute ceiling in milliseconds.
    pub ceiling_ms: f64,
    /// Current milliseconds.
    pub current_ms: f64,
}

impl std::fmt::Display for CeilingViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {:.4} ms exceeds the absolute ceiling of {:.4} ms",
            self.metric, self.current_ms, self.ceiling_ms
        )
    }
}

/// Flags every metric in `current` above its [`CEILINGS`] entry. Unlike
/// [`check`], this needs no baseline: it also guards the very first run.
pub fn check_ceilings(current: &BTreeMap<String, f64>) -> Vec<CeilingViolation> {
    CEILINGS
        .iter()
        .filter_map(|&(metric, ceiling_ms)| {
            current.get(metric).and_then(|&current_ms| {
                (current_ms > ceiling_ms).then(|| CeilingViolation {
                    metric: metric.to_string(),
                    ceiling_ms,
                    current_ms,
                })
            })
        })
        .collect()
}

/// The tolerance applied to `metric`.
pub fn tolerance_of(metric: &str) -> f64 {
    TOLERANCES
        .iter()
        .find(|(prefix, _)| metric.starts_with(prefix))
        .map_or(DEFAULT_TOLERANCE, |&(_, tol)| tol)
}

/// One perf-check run: commit, unix timestamp, and metric → milliseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryRecord {
    /// Commit hash (or `"unknown"` outside a git checkout).
    pub commit: String,
    /// Seconds since the unix epoch at record time.
    pub unix_secs: u64,
    /// Metric name → measured milliseconds (lower is better).
    pub metrics: BTreeMap<String, f64>,
}

impl HistoryRecord {
    /// The single-line JSON form appended to `BENCH_history.jsonl`.
    pub fn to_jsonl(&self) -> String {
        let metrics = Json::Obj(
            self.metrics
                .iter()
                .map(|(k, v)| (k.clone(), Json::from(*v)))
                .collect(),
        );
        Json::Obj(vec![
            ("commit".into(), Json::from(self.commit.as_str())),
            ("unix_secs".into(), Json::from(self.unix_secs)),
            ("metrics".into(), metrics),
        ])
        .to_string()
    }
}

/// Parses a `BENCH_history.jsonl` file (empty lines skipped). Errors carry
/// the offending line number.
pub fn parse_history(text: &str) -> Result<Vec<HistoryRecord>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let commit = doc
            .get("commit")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing 'commit'", lineno + 1))?
            .to_string();
        let unix_secs = doc
            .get("unix_secs")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("line {}: missing 'unix_secs'", lineno + 1))?
            as u64;
        let metrics = doc
            .get("metrics")
            .ok_or_else(|| format!("line {}: missing 'metrics'", lineno + 1))?
            .to_num_map();
        out.push(HistoryRecord {
            commit,
            unix_secs,
            metrics,
        });
    }
    Ok(out)
}

/// Median of `values` (mean of the two middle elements for even counts) —
/// `norms::percentile` at p = 50, which computes exactly that.
///
/// # Panics
/// Panics on an empty slice or a NaN timing: a NaN in the bench history
/// means a measurement bug, and silently tolerating it (the old
/// `partial_cmp ... unwrap_or(Equal)` sort) could corrupt the baseline a
/// regression is judged against.
pub fn median(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "median of an empty slice");
    isrl_linalg::norms::percentile(values, 50.0).expect("NaN timing in bench history")
}

/// Per-metric baseline: the median over each metric's last `window`
/// appearances in `history`. Metrics absent from the entire history get no
/// baseline (first run records, later runs compare).
pub fn baseline_of(history: &[HistoryRecord], window: usize) -> BTreeMap<String, f64> {
    let mut series: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    for rec in history {
        for (name, &v) in &rec.metrics {
            series.entry(name).or_default().push(v);
        }
    }
    series
        .into_iter()
        .map(|(name, values)| {
            let tail = &values[values.len().saturating_sub(window)..];
            (name.to_string(), median(tail))
        })
        .collect()
}

/// One flagged regression from [`check`].
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Metric name.
    pub metric: String,
    /// Baseline (median-of-window) milliseconds.
    pub baseline_ms: f64,
    /// Current milliseconds.
    pub current_ms: f64,
    /// `current / baseline`.
    pub ratio: f64,
    /// The relative tolerance that was exceeded.
    pub tolerance: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {:.4} ms vs baseline {:.4} ms ({:.2}x > allowed {:.2}x)",
            self.metric,
            self.current_ms,
            self.baseline_ms,
            self.ratio,
            1.0 + self.tolerance
        )
    }
}

/// Compares `current` against `baseline`, flagging every metric whose
/// timing exceeds its baseline by more than its relative tolerance.
/// Metrics without a baseline (first appearance) and baseline metrics
/// missing from `current` (a bench was removed) are not regressions.
pub fn check(baseline: &BTreeMap<String, f64>, current: &BTreeMap<String, f64>) -> Vec<Regression> {
    let mut out = Vec::new();
    for (metric, &current_ms) in current {
        let Some(&baseline_ms) = baseline.get(metric) else {
            continue;
        };
        if baseline_ms <= 0.0 {
            continue;
        }
        let tolerance = tolerance_of(metric);
        let ratio = current_ms / baseline_ms;
        if ratio > 1.0 + tolerance {
            out.push(Regression {
                metric: metric.clone(),
                baseline_ms,
                current_ms,
                ratio,
                tolerance,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(commit: &str, metrics: &[(&str, f64)]) -> HistoryRecord {
        HistoryRecord {
            commit: commit.into(),
            unix_secs: 1_700_000_000,
            metrics: metrics.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
        }
    }

    #[test]
    fn records_roundtrip_through_jsonl() {
        let r = rec(
            "abc123",
            &[("kernel.top1_batch", 1.25), ("lp.warm_replay", 40.0)],
        );
        let text = format!("{}\n\n{}\n", r.to_jsonl(), r.to_jsonl());
        let parsed = parse_history(&text).unwrap();
        assert_eq!(parsed, vec![r.clone(), r]);
        assert!(parse_history("{\"commit\":\"x\"}").is_err());
        assert!(parse_history("garbage").unwrap_err().starts_with("line 1"));
    }

    #[test]
    fn baseline_is_median_of_trailing_window() {
        // Six records; window 5 → the first (outlier 100.0) falls out, and
        // the one remaining fast outlier (0.1) cannot move the median.
        let vals = [100.0, 1.0, 1.1, 0.1, 1.2, 1.0];
        let history: Vec<_> = vals
            .iter()
            .map(|&v| rec("c", &[("kernel.vertex_update", v)]))
            .collect();
        let base = baseline_of(&history, 5);
        assert_eq!(base["kernel.vertex_update"], 1.0);

        // Odd/even medians.
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn synthetic_top1_slowdown_fails_and_steady_state_passes() {
        let history = vec![
            rec("a", &[("kernel.top1_batch", 1.0), ("lp.warm_replay", 40.0)]),
            rec("b", &[("kernel.top1_batch", 1.1), ("lp.warm_replay", 41.0)]),
            rec("c", &[("kernel.top1_batch", 0.9), ("lp.warm_replay", 39.0)]),
        ];
        let base = baseline_of(&history, BASELINE_WINDOW);

        // Same-speed run (within tolerance): no regression.
        let steady = rec("d", &[("kernel.top1_batch", 1.2), ("lp.warm_replay", 44.0)]);
        assert!(check(&base, &steady.metrics).is_empty());

        // Synthetic 2x slowdown of the top1_batch kernel: flagged, with
        // the untouched metric left alone.
        let slow = rec("e", &[("kernel.top1_batch", 2.0), ("lp.warm_replay", 40.0)]);
        let regs = check(&base, &slow.metrics);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "kernel.top1_batch");
        assert!((regs[0].ratio - 2.0).abs() < 1e-9);
        assert!(regs[0].to_string().contains("kernel.top1_batch"));
    }

    #[test]
    fn new_and_removed_metrics_are_not_regressions() {
        let base = baseline_of(&[rec("a", &[("kernel.old", 1.0)])], BASELINE_WINDOW);
        let current = rec("b", &[("kernel.new", 50.0)]);
        assert!(check(&base, &current.metrics).is_empty());
    }

    #[test]
    fn tolerances_are_prefix_matched() {
        assert_eq!(tolerance_of("kernel.top1_batch"), 0.50);
        assert_eq!(tolerance_of("lp.warm_replay"), 0.35);
        assert_eq!(tolerance_of("geom.cloud_cut"), 0.40);
        assert_eq!(tolerance_of("round.ea_untrained"), 0.35);
        assert_eq!(tolerance_of("p99.round_ea_untrained"), 0.60);
        assert_eq!(tolerance_of("scan.top1_soa"), 0.50);
        assert_eq!(tolerance_of("something.else"), DEFAULT_TOLERANCE);
    }

    #[test]
    #[should_panic(expected = "NaN timing")]
    fn median_rejects_nan_timings_loudly() {
        median(&[1.0, f64::NAN, 2.0]);
    }

    #[test]
    fn ceilings_flag_without_any_history() {
        // Under the ceiling (and metrics with no ceiling): clean.
        let ok = rec("a", &[("round.ea_sampled_d20", 90.0), ("kernel.dot", 1e6)]);
        assert!(check_ceilings(&ok.metrics).is_empty());

        // Over the ceiling: flagged even though there is no baseline.
        let bad = rec("b", &[("round.ea_sampled_d20", 150.0)]);
        let v = check_ceilings(&bad.metrics);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].metric, "round.ea_sampled_d20");
        assert_eq!(v[0].ceiling_ms, 142.79);
        assert!(v[0].to_string().contains("absolute ceiling"));

        // A missing metric is not a violation (the bench may be filtered).
        assert!(check_ceilings(&rec("c", &[("kernel.dot", 1.0)]).metrics).is_empty());
    }
}
