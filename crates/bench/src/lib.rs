//! Benchmark harness for the ISRL reproduction.
//!
//! * [`sweep`] — dataset specs, algorithm factories, parallel evaluation;
//! * [`report`] — result tables (terminal + CSV);
//! * [`history`] — bench-history records and the noise-aware
//!   perf-regression gate behind the `perf_check` binary;
//! * the `figures` binary regenerates every figure of the paper's §V
//!   (`cargo run -p isrl-bench --release --bin figures -- all`);
//! * `benches/` holds the Criterion micro-benchmarks for per-round costs.

pub mod history;
pub mod report;
pub mod sweep;
