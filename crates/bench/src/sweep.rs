//! Experiment plumbing: dataset construction, algorithm factories, and
//! parallel evaluation sweeps shared by the `figures` binary and the
//! Criterion benches.

use isrl_core::prelude::*;
use isrl_data::{real, skyline, synthetic, Dataset, Distribution};
use parking_lot::Mutex;

/// Skyline preprocessing is skipped above this dimensionality: in high
/// dimension nearly every anti-correlated point is a skyline point, so the
/// quadratic-ish SFS pass buys nothing (consistent with the paper's setup,
/// which only reports polytope algorithms up to d = 10 anyway).
pub const SKYLINE_DIM_CAP: usize = 8;

/// What data an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DataSpec {
    /// Börzsönyi synthetic data.
    Synthetic {
        /// Tuples before skyline preprocessing.
        n: usize,
        /// Dimensionality.
        d: usize,
        /// Correlation structure.
        dist: Distribution,
    },
    /// The Car stand-in (d = 3), sized to `n` tuples.
    Car {
        /// Tuples before skyline preprocessing.
        n: usize,
    },
    /// The Player stand-in (d = 20), sized to `n` tuples.
    Player {
        /// Tuples before skyline preprocessing.
        n: usize,
    },
}

impl DataSpec {
    /// Dimensionality of the spec.
    pub fn dim(&self) -> usize {
        match self {
            DataSpec::Synthetic { d, .. } => *d,
            DataSpec::Car { .. } => real::CAR_D,
            DataSpec::Player { .. } => real::PLAYER_D,
        }
    }

    /// Builds (and skyline-preprocesses, when `d ≤` [`SKYLINE_DIM_CAP`])
    /// the dataset.
    pub fn build(&self, seed: u64) -> Dataset {
        let raw = match *self {
            DataSpec::Synthetic { n, d, dist } => synthetic::generate(n, d, dist, seed),
            DataSpec::Car { n } => real::car_like_sized(n, seed),
            DataSpec::Player { n } => real::player_like_sized(n, seed),
        };
        if raw.dim() <= SKYLINE_DIM_CAP {
            skyline(&raw)
        } else {
            raw
        }
    }
}

/// The algorithms of the paper's §V (plus the related-work UtilityApprox).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoKind {
    /// The exact RL agent.
    Ea,
    /// The approximate RL agent.
    Aa,
    /// UH-Random (SIGMOD'19).
    UhRandom,
    /// UH-Simplex (SIGMOD'19).
    UhSimplex,
    /// SinglePass (KDD'23).
    SinglePass,
    /// UtilityApprox (SIGMOD'12).
    UtilityApprox,
}

impl AlgoKind {
    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            AlgoKind::Ea => "EA",
            AlgoKind::Aa => "AA",
            AlgoKind::UhRandom => "UH-Random",
            AlgoKind::UhSimplex => "UH-Simplex",
            AlgoKind::SinglePass => "SinglePass",
            AlgoKind::UtilityApprox => "UtilityApprox",
        }
    }

    /// Whether the algorithm maintains explicit polytopes (and so, like in
    /// the paper, is only run at low dimensionality).
    pub fn needs_polytopes(&self) -> bool {
        matches!(
            self,
            AlgoKind::Ea | AlgoKind::UhRandom | AlgoKind::UhSimplex
        )
    }

    /// The paper's §V roster for a given dimensionality: polytope
    /// algorithms are dropped above d = 10.
    pub fn roster(d: usize) -> Vec<AlgoKind> {
        if d <= 10 {
            vec![
                AlgoKind::Ea,
                AlgoKind::Aa,
                AlgoKind::UhRandom,
                AlgoKind::UhSimplex,
                AlgoKind::SinglePass,
            ]
        } else {
            vec![AlgoKind::Aa, AlgoKind::SinglePass]
        }
    }
}

/// Sweep-wide knobs (scaled by the binary's `--scale`).
#[derive(Debug, Clone, Copy)]
pub struct SweepParams {
    /// Number of test users per measurement.
    pub test_users: usize,
    /// RL training episodes for EA/AA.
    pub train_episodes: usize,
    /// EA per-round sampling budget.
    pub ea_samples: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for SweepParams {
    fn default() -> Self {
        Self {
            test_users: 20,
            train_episodes: 120,
            ea_samples: 80,
            seed: 7,
        }
    }
}

/// Builds (training included, for the RL agents) an algorithm instance.
pub fn make_algo(
    kind: AlgoKind,
    data: &Dataset,
    eps: f64,
    params: &SweepParams,
) -> Box<dyn InteractiveAlgorithm + Send> {
    let d = data.dim();
    match kind {
        AlgoKind::Ea => {
            let mut cfg = EaConfig::paper_default().with_seed(params.seed);
            cfg.n_samples = params.ea_samples;
            let mut agent = EaAgent::new(d, cfg);
            let train = sample_users(d, params.train_episodes, params.seed.wrapping_add(100));
            agent.train(data, &train, eps);
            Box::new(agent)
        }
        AlgoKind::Aa => {
            let cfg = AaConfig::paper_default().with_seed(params.seed);
            let mut agent = AaAgent::new(d, cfg);
            let train = sample_users(d, params.train_episodes, params.seed.wrapping_add(200));
            agent.train(data, &train, eps);
            Box::new(agent)
        }
        AlgoKind::UhRandom => Box::new(UhBaseline::random(params.seed)),
        AlgoKind::UhSimplex => Box::new(UhBaseline::simplex(params.seed)),
        AlgoKind::SinglePass => Box::new(SinglePass::seeded(params.seed)),
        AlgoKind::UtilityApprox => Box::new(UtilityApprox::default()),
    }
}

/// One sweep cell: a dataset spec evaluated at one regret threshold over
/// one algorithm roster. [`run_sweep`] flattens a batch of these into a
/// shared (algorithm × cell × user) work queue.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Data to run on.
    pub spec: DataSpec,
    /// Regret threshold ε.
    pub eps: f64,
    /// Algorithms to evaluate.
    pub kinds: Vec<AlgoKind>,
    /// Dataset construction seed.
    pub data_seed: u64,
}

/// SplitMix64 finalizer: mixes the sweep seed with a work item's
/// (cell, algorithm, user) coordinates so every interaction gets an
/// independent, schedule-invariant RNG stream.
fn item_seed(base: u64, cell: usize, algo: usize, user: usize) -> u64 {
    let mut z = base
        .wrapping_add((cell as u64).wrapping_mul(0x9e3779b97f4a7c15))
        .wrapping_add((algo as u64).wrapping_mul(0xbf58476d1ce4e5b9))
        .wrapping_add((user as u64).wrapping_mul(0x94d049bb133111eb))
        .wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// One trained-agent slot per (cell, algorithm): filled by the training
/// phase, then locked per evaluation item (agents are stateful).
type AgentSlots = Vec<Vec<Mutex<Option<Box<dyn InteractiveAlgorithm + Send>>>>>;

fn worker_count(items: usize) -> usize {
    std::thread::available_parallelism()
        .map_or(4, |n| n.get())
        .min(items.max(1))
}

/// The work-queue core shared by [`run_algos`] and [`run_sweep`]: trains
/// every (cell × algorithm) pair, then evaluates (cell × algorithm × user)
/// items, both phases drained by a fixed worker pool.
///
/// Parallelism is fine-grained: a slow algorithm (EA at d = 4) no longer
/// serializes the whole cell behind its single thread — its per-user items
/// interleave with every other cell and algorithm on the queue. Items for
/// one trained agent still exclude each other (the agent is stateful), so
/// the schedule never runs one agent concurrently; [`item_seed`] +
/// [`InteractiveAlgorithm::reseed`] make each item's outcome a pure
/// function of its coordinates, independent of pop order.
fn run_cells(
    cells: &[(&Dataset, f64, &[AlgoKind])],
    params: &SweepParams,
) -> Vec<Vec<(AlgoKind, Evaluation)>> {
    // Per-cell test users (same seed per cell as the historical single-cell
    // sweep, so user populations are comparable across cells of equal dim).
    let users: Vec<Vec<Vec<f64>>> = cells
        .iter()
        .map(|(data, _, _)| {
            sample_users(data.dim(), params.test_users, params.seed.wrapping_add(300))
        })
        .collect();

    // Phase 1 — training queue over (cell, algo).
    let agents: AgentSlots = cells
        .iter()
        .map(|(_, _, kinds)| kinds.iter().map(|_| Mutex::new(None)).collect())
        .collect();
    let train_queue: crossbeam::queue::SegQueue<(usize, usize)> = crossbeam::queue::SegQueue::new();
    for (c, (_, _, kinds)) in cells.iter().enumerate() {
        for a in 0..kinds.len() {
            train_queue.push((c, a));
        }
    }
    crossbeam::scope(|scope| {
        for _ in 0..worker_count(train_queue.len()) {
            scope.spawn(|_| {
                while let Some((c, a)) = train_queue.pop() {
                    let (data, eps, kinds) = cells[c];
                    *agents[c][a].lock() = Some(make_algo(kinds[a], data, eps, params));
                }
            });
        }
    })
    .expect("training worker panicked");

    // Phase 2 — evaluation queue over (cell, algo, user).
    type UserResult = (usize, usize, usize, InteractionOutcome, f64);
    let eval_queue: crossbeam::queue::SegQueue<(usize, usize, usize)> =
        crossbeam::queue::SegQueue::new();
    for (c, (_, _, kinds)) in cells.iter().enumerate() {
        for a in 0..kinds.len() {
            for u in 0..users[c].len() {
                eval_queue.push((c, a, u));
            }
        }
    }
    let results: Mutex<Vec<UserResult>> = Mutex::new(Vec::new());
    crossbeam::scope(|scope| {
        for _ in 0..worker_count(eval_queue.len()) {
            scope.spawn(|_| {
                while let Some((c, a, u)) = eval_queue.pop() {
                    let (data, eps, kinds) = cells[c];
                    let truth = &users[c][u];
                    let mut guard = agents[c][a].lock();
                    let algo = guard.as_mut().expect("trained in phase 1");
                    algo.reseed(item_seed(params.seed, c, a, u));
                    let mut user = SimulatedUser::new(truth.clone());
                    let out = algo.run(data, &mut user, eps, TraceMode::Off);
                    drop(guard);
                    let regret =
                        isrl_core::regret::regret_ratio_of_index(data, out.point_index, truth);
                    if isrl_obs::enabled() {
                        // Schema (DESIGN.md §9) wants a human-readable cell
                        // label; cells here are anonymous, so derive one.
                        let cell = format!("c{c}_d{}_n{}_eps{eps}", data.dim(), data.len());
                        isrl_obs::emit(
                            isrl_obs::Event::new("sweep_item")
                                .field("cell", cell)
                                .field("algo", kinds[a].name())
                                .field("user", u as u64)
                                .field("rounds", out.rounds as u64)
                                .field("secs", out.elapsed.as_secs_f64())
                                .field("regret", regret)
                                .field("truncated", out.truncated),
                        );
                    }
                    results.lock().push((c, a, u, out, regret));
                }
            });
        }
    })
    .expect("evaluation worker panicked");

    // Reassemble per-(cell, algo) evaluations in user order.
    let mut per_user = results.into_inner();
    per_user.sort_by_key(|&(c, a, u, _, _)| (c, a, u));
    let mut out: Vec<Vec<(AlgoKind, Evaluation)>> = cells
        .iter()
        .map(|(_, _, kinds)| {
            kinds
                .iter()
                .map(|&k| {
                    (
                        k,
                        Evaluation {
                            stats: Default::default(),
                            outcomes: Vec::new(),
                            regrets: Vec::new(),
                        },
                    )
                })
                .collect()
        })
        .collect();
    for (c, a, _, outcome, regret) in per_user {
        let eval = &mut out[c][a].1;
        eval.regrets.push(regret);
        eval.outcomes.push(outcome);
    }
    for cell in &mut out {
        for (_, eval) in cell {
            let obs: Vec<(usize, f64, f64, bool)> = eval
                .outcomes
                .iter()
                .zip(&eval.regrets)
                .map(|(o, &r)| (o.rounds, o.elapsed.as_secs_f64(), r, o.truncated))
                .collect();
            eval.stats = RunStats::from_observations(&obs);
        }
    }
    out
}

/// Builds and evaluates a whole batch of sweep cells on one shared work
/// queue — dataset construction, training, and per-user evaluation all
/// overlap across cells. Results come back in cell order, each cell's
/// algorithms in roster order.
pub fn run_sweep(cells: &[SweepCell], params: &SweepParams) -> Vec<Vec<(AlgoKind, Evaluation)>> {
    let datasets: Vec<Dataset> = cells.iter().map(|c| c.spec.build(c.data_seed)).collect();
    let flat: Vec<(&Dataset, f64, &[AlgoKind])> = cells
        .iter()
        .zip(&datasets)
        .map(|(c, d)| (d, c.eps, c.kinds.as_slice()))
        .collect();
    run_cells(&flat, params)
}

/// Evaluates each algorithm (trained where applicable) on the same test
/// users, in parallel over a fine-grained (algorithm × user) work queue.
/// Results come back in the input order.
pub fn run_algos(
    data: &Dataset,
    kinds: &[AlgoKind],
    eps: f64,
    params: &SweepParams,
) -> Vec<(AlgoKind, Evaluation)> {
    run_cells(&[(data, eps, kinds)], params).remove(0)
}

/// Per-round interaction progress (Figures 7–8): mean max-regret-so-far and
/// mean cumulative seconds at each round index, averaged over users.
pub struct Progress {
    /// Algorithm measured.
    pub kind: AlgoKind,
    /// `(round, mean max regret, mean cumulative seconds)` rows.
    pub rows: Vec<(usize, f64, f64)>,
}

/// Runs each algorithm with per-round tracing and estimates the maximum
/// regret ratio of the current recommendation after every round.
pub fn run_progress(
    data: &Dataset,
    kinds: &[AlgoKind],
    eps: f64,
    params: &SweepParams,
    max_round: usize,
    regret_samples: usize,
) -> Vec<Progress> {
    let users = sample_users(data.dim(), params.test_users, params.seed.wrapping_add(300));
    kinds
        .iter()
        .map(|&kind| {
            let mut algo = make_algo(kind, data, eps, params);
            // For each round index: collected (regret, secs) pairs.
            let mut acc: Vec<Vec<(f64, f64)>> = vec![Vec::new(); max_round];
            for (ui, u) in users.iter().enumerate() {
                let mut user = SimulatedUser::new(u.clone());
                // Cap tracing: snapshots beyond max_round are never read,
                // and an uncapped SinglePass trace costs O(rounds²) memory.
                let out = algo.run(data, &mut user, eps, TraceMode::FirstRounds(max_round));
                for t in out.trace.iter().take(max_round) {
                    let r = max_regret_estimate(
                        data,
                        &t.region,
                        t.best_index,
                        regret_samples,
                        params.seed.wrapping_add(ui as u64),
                    )
                    .unwrap_or(0.0);
                    acc[t.round - 1].push((r, t.elapsed.as_secs_f64()));
                }
                // Runs that stop before max_round keep their final state for
                // the remaining rounds (regret of the returned point, final time).
                if out.rounds < max_round {
                    let final_regret =
                        isrl_core::regret::regret_ratio_of_index(data, out.point_index, u);
                    for slot in acc.iter_mut().take(max_round).skip(out.rounds) {
                        slot.push((final_regret, out.elapsed.as_secs_f64()));
                    }
                }
            }
            let rows = acc
                .iter()
                .enumerate()
                .filter(|(_, v)| !v.is_empty())
                .map(|(i, v)| {
                    let n = v.len() as f64;
                    let mr = v.iter().map(|x| x.0).sum::<f64>() / n;
                    let ms = v.iter().map(|x| x.1).sum::<f64>() / n;
                    (i + 1, mr, ms)
                })
                .collect();
            Progress { kind, rows }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataspec_builds_and_preprocesses() {
        let spec = DataSpec::Synthetic {
            n: 300,
            d: 3,
            dist: Distribution::AntiCorrelated,
        };
        let data = spec.build(1);
        assert_eq!(data.dim(), 3);
        assert!(data.len() <= 300, "skyline only removes points");
        let hi = DataSpec::Synthetic {
            n: 100,
            d: 12,
            dist: Distribution::Independent,
        };
        assert_eq!(hi.build(1).len(), 100, "no skyline pass above the cap");
    }

    #[test]
    fn roster_follows_the_paper() {
        assert_eq!(AlgoKind::roster(4).len(), 5);
        let high = AlgoKind::roster(20);
        assert_eq!(high, vec![AlgoKind::Aa, AlgoKind::SinglePass]);
        assert!(AlgoKind::Ea.needs_polytopes());
        assert!(!AlgoKind::SinglePass.needs_polytopes());
    }

    #[test]
    fn run_algos_returns_in_order() {
        let spec = DataSpec::Synthetic {
            n: 120,
            d: 2,
            dist: Distribution::AntiCorrelated,
        };
        let data = spec.build(2);
        let params = SweepParams {
            test_users: 3,
            train_episodes: 4,
            ea_samples: 30,
            seed: 5,
        };
        let kinds = [AlgoKind::UtilityApprox, AlgoKind::SinglePass];
        let res = run_algos(&data, &kinds, 0.15, &params);
        assert_eq!(res.len(), 2);
        assert_eq!(res[0].0, AlgoKind::UtilityApprox);
        assert_eq!(res[1].0, AlgoKind::SinglePass);
        assert_eq!(res[0].1.stats.runs, 3);
    }

    #[test]
    fn run_algos_is_schedule_invariant() {
        // Per-item reseeding makes every (algorithm × user) outcome a pure
        // function of its coordinates: two sweeps over the same cell must
        // agree exactly, however the queue was drained.
        let spec = DataSpec::Synthetic {
            n: 100,
            d: 2,
            dist: Distribution::AntiCorrelated,
        };
        let data = spec.build(4);
        let params = SweepParams {
            test_users: 4,
            train_episodes: 3,
            ea_samples: 30,
            seed: 9,
        };
        let kinds = [
            AlgoKind::UhRandom,
            AlgoKind::SinglePass,
            AlgoKind::UtilityApprox,
        ];
        let a = run_algos(&data, &kinds, 0.15, &params);
        let b = run_algos(&data, &kinds, 0.15, &params);
        for ((ka, ea), (kb, eb)) in a.iter().zip(&b) {
            assert_eq!(ka, kb);
            assert_eq!(ea.regrets, eb.regrets, "{}", ka.name());
            let rounds = |e: &Evaluation| e.outcomes.iter().map(|o| o.rounds).collect::<Vec<_>>();
            assert_eq!(rounds(ea), rounds(eb), "{}", ka.name());
        }
    }

    #[test]
    fn run_sweep_covers_every_cell_in_order() {
        let params = SweepParams {
            test_users: 2,
            train_episodes: 2,
            ea_samples: 30,
            seed: 11,
        };
        let cells = vec![
            SweepCell {
                spec: DataSpec::Synthetic {
                    n: 80,
                    d: 2,
                    dist: Distribution::Independent,
                },
                eps: 0.2,
                kinds: vec![AlgoKind::SinglePass, AlgoKind::UtilityApprox],
                data_seed: 21,
            },
            SweepCell {
                spec: DataSpec::Synthetic {
                    n: 60,
                    d: 3,
                    dist: Distribution::AntiCorrelated,
                },
                eps: 0.15,
                kinds: vec![AlgoKind::UtilityApprox],
                data_seed: 22,
            },
        ];
        let res = run_sweep(&cells, &params);
        assert_eq!(res.len(), 2);
        assert_eq!(res[0].len(), 2);
        assert_eq!(res[0][0].0, AlgoKind::SinglePass);
        assert_eq!(res[0][1].0, AlgoKind::UtilityApprox);
        assert_eq!(res[1].len(), 1);
        for cell in &res {
            for (_, eval) in cell {
                assert_eq!(eval.stats.runs, params.test_users);
                assert_eq!(eval.outcomes.len(), params.test_users);
            }
        }
    }

    #[test]
    fn item_seeds_are_distinct_across_coordinates() {
        let mut seen = std::collections::HashSet::new();
        for c in 0..4 {
            for a in 0..6 {
                for u in 0..50 {
                    assert!(
                        seen.insert(item_seed(7, c, a, u)),
                        "collision at {c}/{a}/{u}"
                    );
                }
            }
        }
    }

    #[test]
    fn progress_rows_are_monotone_in_round() {
        let spec = DataSpec::Synthetic {
            n: 100,
            d: 2,
            dist: Distribution::AntiCorrelated,
        };
        let data = spec.build(3);
        let params = SweepParams {
            test_users: 2,
            train_episodes: 0,
            ea_samples: 30,
            seed: 6,
        };
        let prog = run_progress(&data, &[AlgoKind::SinglePass], 0.1, &params, 5, 200);
        assert_eq!(prog.len(), 1);
        for w in prog[0].rows.windows(2) {
            assert!(w[1].0 <= w[0].0 + 1); // rounds increase
        }
    }
}
