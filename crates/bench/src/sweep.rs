//! Experiment plumbing: dataset construction, algorithm factories, and
//! parallel evaluation sweeps shared by the `figures` binary and the
//! Criterion benches.

use isrl_core::prelude::*;
use isrl_data::{real, skyline, synthetic, Dataset, Distribution};
use parking_lot::Mutex;

/// Skyline preprocessing is skipped above this dimensionality: in high
/// dimension nearly every anti-correlated point is a skyline point, so the
/// quadratic-ish SFS pass buys nothing (consistent with the paper's setup,
/// which only reports polytope algorithms up to d = 10 anyway).
pub const SKYLINE_DIM_CAP: usize = 8;

/// What data an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DataSpec {
    /// Börzsönyi synthetic data.
    Synthetic {
        /// Tuples before skyline preprocessing.
        n: usize,
        /// Dimensionality.
        d: usize,
        /// Correlation structure.
        dist: Distribution,
    },
    /// The Car stand-in (d = 3), sized to `n` tuples.
    Car {
        /// Tuples before skyline preprocessing.
        n: usize,
    },
    /// The Player stand-in (d = 20), sized to `n` tuples.
    Player {
        /// Tuples before skyline preprocessing.
        n: usize,
    },
}

impl DataSpec {
    /// Dimensionality of the spec.
    pub fn dim(&self) -> usize {
        match self {
            DataSpec::Synthetic { d, .. } => *d,
            DataSpec::Car { .. } => real::CAR_D,
            DataSpec::Player { .. } => real::PLAYER_D,
        }
    }

    /// Builds (and skyline-preprocesses, when `d ≤` [`SKYLINE_DIM_CAP`])
    /// the dataset.
    pub fn build(&self, seed: u64) -> Dataset {
        let raw = match *self {
            DataSpec::Synthetic { n, d, dist } => synthetic::generate(n, d, dist, seed),
            DataSpec::Car { n } => real::car_like_sized(n, seed),
            DataSpec::Player { n } => real::player_like_sized(n, seed),
        };
        if raw.dim() <= SKYLINE_DIM_CAP {
            skyline(&raw)
        } else {
            raw
        }
    }
}

/// The algorithms of the paper's §V (plus the related-work UtilityApprox).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoKind {
    /// The exact RL agent.
    Ea,
    /// The approximate RL agent.
    Aa,
    /// UH-Random (SIGMOD'19).
    UhRandom,
    /// UH-Simplex (SIGMOD'19).
    UhSimplex,
    /// SinglePass (KDD'23).
    SinglePass,
    /// UtilityApprox (SIGMOD'12).
    UtilityApprox,
}

impl AlgoKind {
    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            AlgoKind::Ea => "EA",
            AlgoKind::Aa => "AA",
            AlgoKind::UhRandom => "UH-Random",
            AlgoKind::UhSimplex => "UH-Simplex",
            AlgoKind::SinglePass => "SinglePass",
            AlgoKind::UtilityApprox => "UtilityApprox",
        }
    }

    /// Whether the algorithm maintains explicit polytopes (and so, like in
    /// the paper, is only run at low dimensionality).
    pub fn needs_polytopes(&self) -> bool {
        matches!(self, AlgoKind::Ea | AlgoKind::UhRandom | AlgoKind::UhSimplex)
    }

    /// The paper's §V roster for a given dimensionality: polytope
    /// algorithms are dropped above d = 10.
    pub fn roster(d: usize) -> Vec<AlgoKind> {
        if d <= 10 {
            vec![
                AlgoKind::Ea,
                AlgoKind::Aa,
                AlgoKind::UhRandom,
                AlgoKind::UhSimplex,
                AlgoKind::SinglePass,
            ]
        } else {
            vec![AlgoKind::Aa, AlgoKind::SinglePass]
        }
    }
}

/// Sweep-wide knobs (scaled by the binary's `--scale`).
#[derive(Debug, Clone, Copy)]
pub struct SweepParams {
    /// Number of test users per measurement.
    pub test_users: usize,
    /// RL training episodes for EA/AA.
    pub train_episodes: usize,
    /// EA per-round sampling budget.
    pub ea_samples: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for SweepParams {
    fn default() -> Self {
        Self { test_users: 20, train_episodes: 120, ea_samples: 80, seed: 7 }
    }
}

/// Builds (training included, for the RL agents) an algorithm instance.
pub fn make_algo(
    kind: AlgoKind,
    data: &Dataset,
    eps: f64,
    params: &SweepParams,
) -> Box<dyn InteractiveAlgorithm + Send> {
    let d = data.dim();
    match kind {
        AlgoKind::Ea => {
            let mut cfg = EaConfig::paper_default().with_seed(params.seed);
            cfg.n_samples = params.ea_samples;
            let mut agent = EaAgent::new(d, cfg);
            let train = sample_users(d, params.train_episodes, params.seed.wrapping_add(100));
            agent.train(data, &train, eps);
            Box::new(agent)
        }
        AlgoKind::Aa => {
            let cfg = AaConfig::paper_default().with_seed(params.seed);
            let mut agent = AaAgent::new(d, cfg);
            let train = sample_users(d, params.train_episodes, params.seed.wrapping_add(200));
            agent.train(data, &train, eps);
            Box::new(agent)
        }
        AlgoKind::UhRandom => Box::new(UhBaseline::random(params.seed)),
        AlgoKind::UhSimplex => Box::new(UhBaseline::simplex(params.seed)),
        AlgoKind::SinglePass => Box::new(SinglePass::seeded(params.seed)),
        AlgoKind::UtilityApprox => Box::new(UtilityApprox::default()),
    }
}

/// Evaluates each algorithm (trained where applicable) on the same test
/// users, in parallel — one thread per algorithm. Results come back in the
/// input order.
pub fn run_algos(
    data: &Dataset,
    kinds: &[AlgoKind],
    eps: f64,
    params: &SweepParams,
) -> Vec<(AlgoKind, Evaluation)> {
    let users = sample_users(data.dim(), params.test_users, params.seed.wrapping_add(300));
    let results: Mutex<Vec<(usize, AlgoKind, Evaluation)>> = Mutex::new(Vec::new());
    crossbeam::scope(|scope| {
        for (i, &kind) in kinds.iter().enumerate() {
            let users = &users;
            let results = &results;
            let params = params;
            scope.spawn(move |_| {
                let mut algo = make_algo(kind, data, eps, params);
                let eval = evaluate(algo.as_mut(), data, users, eps, TraceMode::Off);
                results.lock().push((i, kind, eval));
            });
        }
    })
    .expect("sweep thread panicked");
    let mut out = results.into_inner();
    out.sort_by_key(|(i, _, _)| *i);
    out.into_iter().map(|(_, k, e)| (k, e)).collect()
}

/// Per-round interaction progress (Figures 7–8): mean max-regret-so-far and
/// mean cumulative seconds at each round index, averaged over users.
pub struct Progress {
    /// Algorithm measured.
    pub kind: AlgoKind,
    /// `(round, mean max regret, mean cumulative seconds)` rows.
    pub rows: Vec<(usize, f64, f64)>,
}

/// Runs each algorithm with per-round tracing and estimates the maximum
/// regret ratio of the current recommendation after every round.
pub fn run_progress(
    data: &Dataset,
    kinds: &[AlgoKind],
    eps: f64,
    params: &SweepParams,
    max_round: usize,
    regret_samples: usize,
) -> Vec<Progress> {
    let users = sample_users(data.dim(), params.test_users, params.seed.wrapping_add(300));
    kinds
        .iter()
        .map(|&kind| {
            let mut algo = make_algo(kind, data, eps, params);
            // For each round index: collected (regret, secs) pairs.
            let mut acc: Vec<Vec<(f64, f64)>> = vec![Vec::new(); max_round];
            for (ui, u) in users.iter().enumerate() {
                let mut user = SimulatedUser::new(u.clone());
                // Cap tracing: snapshots beyond max_round are never read,
                // and an uncapped SinglePass trace costs O(rounds²) memory.
                let out = algo.run(data, &mut user, eps, TraceMode::FirstRounds(max_round));
                for t in out.trace.iter().take(max_round) {
                    let r = max_regret_estimate(
                        data,
                        &t.region,
                        t.best_index,
                        regret_samples,
                        params.seed.wrapping_add(ui as u64),
                    )
                    .unwrap_or(0.0);
                    acc[t.round - 1].push((r, t.elapsed.as_secs_f64()));
                }
                // Runs that stop before max_round keep their final state for
                // the remaining rounds (regret of the returned point, final time).
                if out.rounds < max_round {
                    let final_regret = isrl_core::regret::regret_ratio_of_index(
                        data,
                        out.point_index,
                        u,
                    );
                    for slot in acc.iter_mut().take(max_round).skip(out.rounds) {
                        slot.push((final_regret, out.elapsed.as_secs_f64()));
                    }
                }
            }
            let rows = acc
                .iter()
                .enumerate()
                .filter(|(_, v)| !v.is_empty())
                .map(|(i, v)| {
                    let n = v.len() as f64;
                    let mr = v.iter().map(|x| x.0).sum::<f64>() / n;
                    let ms = v.iter().map(|x| x.1).sum::<f64>() / n;
                    (i + 1, mr, ms)
                })
                .collect();
            Progress { kind, rows }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataspec_builds_and_preprocesses() {
        let spec = DataSpec::Synthetic { n: 300, d: 3, dist: Distribution::AntiCorrelated };
        let data = spec.build(1);
        assert_eq!(data.dim(), 3);
        assert!(data.len() <= 300, "skyline only removes points");
        let hi = DataSpec::Synthetic { n: 100, d: 12, dist: Distribution::Independent };
        assert_eq!(hi.build(1).len(), 100, "no skyline pass above the cap");
    }

    #[test]
    fn roster_follows_the_paper() {
        assert_eq!(AlgoKind::roster(4).len(), 5);
        let high = AlgoKind::roster(20);
        assert_eq!(high, vec![AlgoKind::Aa, AlgoKind::SinglePass]);
        assert!(AlgoKind::Ea.needs_polytopes());
        assert!(!AlgoKind::SinglePass.needs_polytopes());
    }

    #[test]
    fn run_algos_returns_in_order() {
        let spec = DataSpec::Synthetic { n: 120, d: 2, dist: Distribution::AntiCorrelated };
        let data = spec.build(2);
        let params = SweepParams { test_users: 3, train_episodes: 4, ea_samples: 30, seed: 5 };
        let kinds = [AlgoKind::UtilityApprox, AlgoKind::SinglePass];
        let res = run_algos(&data, &kinds, 0.15, &params);
        assert_eq!(res.len(), 2);
        assert_eq!(res[0].0, AlgoKind::UtilityApprox);
        assert_eq!(res[1].0, AlgoKind::SinglePass);
        assert_eq!(res[0].1.stats.runs, 3);
    }

    #[test]
    fn progress_rows_are_monotone_in_round() {
        let spec = DataSpec::Synthetic { n: 100, d: 2, dist: Distribution::AntiCorrelated };
        let data = spec.build(3);
        let params = SweepParams { test_users: 2, train_episodes: 0, ea_samples: 30, seed: 6 };
        let prog = run_progress(&data, &[AlgoKind::SinglePass], 0.1, &params, 5, 200);
        assert_eq!(prog.len(), 1);
        for w in prog[0].rows.windows(2) {
            assert!(w[1].0 <= w[0].0 + 1); // rounds increase
        }
    }
}
