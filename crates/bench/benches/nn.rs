//! DQN cost benchmarks: the paper's network (input → 64 SELU → 1) forward
//! pass, backward pass, and one full replay minibatch update — the fixed
//! per-round overhead the RL agents add on top of the geometry.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isrl_nn::{loss, Activation, Init, Mlp};
use isrl_rl::{Dqn, DqnConfig, NextState, Transition};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_forward_backward(c: &mut Criterion) {
    let mut g = c.benchmark_group("mlp");
    for input_dim in [29usize, 65] {
        // 29 = EA state at d=4 (4·5+4+1) + nothing; 65 ≈ AA state at d=20 (61) + margin.
        let mut rng = StdRng::seed_from_u64(1);
        let net = Mlp::new(
            &[input_dim, 64, 1],
            Activation::Selu,
            Init::LecunNormal,
            &mut rng,
        );
        let x = vec![0.1; input_dim];
        g.bench_function(BenchmarkId::new("forward", input_dim), |b| {
            b.iter(|| black_box(net.forward(&x)))
        });
        g.bench_function(BenchmarkId::new("forward_backward", input_dim), |b| {
            b.iter(|| {
                let (y, cache) = net.forward_cached(&x);
                let g = net.backward(&cache, &loss::mse_grad(&y, &[0.5]));
                black_box(g)
            })
        });
    }
    g.finish();
}

fn bench_dqn_train_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("dqn");
    g.sample_size(30);
    for (state_dim, action_dim) in [(25usize, 8usize), (61, 40)] {
        let mut dqn = Dqn::new(DqnConfig::paper_default(state_dim, action_dim));
        // Pre-fill replay with a full batch.
        for k in 0..128 {
            dqn.push_transition(Transition {
                state: vec![0.1 * (k % 7) as f64; state_dim],
                action: vec![0.2; action_dim],
                reward: if k % 9 == 0 { 100.0 } else { 0.0 },
                next: if k % 2 == 0 {
                    None
                } else {
                    Some(NextState {
                        state: vec![0.3; state_dim],
                        actions: vec![vec![0.4; action_dim]; 5],
                    })
                },
            });
        }
        g.bench_function(
            BenchmarkId::new("train_step", format!("s{state_dim}_a{action_dim}")),
            |b| b.iter(|| black_box(dqn.train_step())),
        );
        g.bench_function(
            BenchmarkId::new("best_action_m5", format!("s{state_dim}_a{action_dim}")),
            |b| {
                let state = vec![0.1; state_dim];
                let actions = vec![vec![0.2; action_dim]; 5];
                b.iter(|| black_box(dqn.best_action(&state, &actions)))
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_forward_backward, bench_dqn_train_step);
criterion_main!(benches);
