//! Warm-started vs cold LP solving on AA's actual per-round workload:
//! replaying a cut sequence and recomputing the region summaries (inner
//! sphere, outer rectangle) plus a batch of candidate cut tests after
//! every cut — once through a carried [`RegionLpCache`], once cold.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isrl_geometry::{Halfspace, Region, RegionLpCache};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// A cut sequence keeping the barycenter feasible, plus probe hyperplanes
/// standing in for the candidate cut tests of each round.
fn workload(d: usize, cuts: usize, probes: usize, seed: u64) -> (Vec<Halfspace>, Vec<Halfspace>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let bary = vec![1.0 / d as f64; d];
    let mut seq = Vec::with_capacity(cuts);
    while seq.len() < cuts {
        let a: Vec<f64> = (0..d).map(|_| rng.gen_range(0.01..1.0)).collect();
        let b: Vec<f64> = (0..d).map(|_| rng.gen_range(0.01..1.0)).collect();
        if let Some(h) = Halfspace::preferring(&a, &b) {
            seq.push(if h.contains(&bary, 0.0) {
                h
            } else {
                h.flipped()
            });
        }
    }
    let probe_set = (0..probes)
        .map(|_| {
            let v: Vec<f64> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
            Halfspace::new(v)
        })
        .collect();
    (seq, probe_set)
}

/// One interactive episode's LP bill, cold: every summary and cut test
/// solved from scratch.
fn replay_cold(d: usize, seq: &[Halfspace], probes: &[Halfspace]) {
    let mut region = Region::full(d);
    for h in seq {
        region.add(h.clone());
        black_box(region.inner_sphere());
        black_box(region.outer_rectangle());
        for p in probes {
            black_box(region.is_cut_by(p));
        }
    }
}

/// The same bill through a carried basis cache.
fn replay_warm(d: usize, seq: &[Halfspace], probes: &[Halfspace]) {
    let mut region = Region::full(d);
    let mut cache = RegionLpCache::new();
    for h in seq {
        region.add(h.clone());
        black_box(region.inner_sphere_with(&mut cache));
        black_box(region.outer_rectangle_with(&mut cache));
        for p in probes {
            black_box(region.is_cut_by_with(p, &mut cache));
        }
    }
}

fn bench_warm_vs_cold(c: &mut Criterion) {
    let mut g = c.benchmark_group("lp_warm_vs_cold");
    for (d, cuts) in [(4usize, 15usize), (8, 15), (20, 15)] {
        let (seq, probes) = workload(d, cuts, 6, 1);
        g.bench_with_input(
            BenchmarkId::new("cold", format!("d{d}_H{cuts}")),
            &(d, &seq, &probes),
            |b, (d, seq, probes)| b.iter(|| replay_cold(*d, seq, probes)),
        );
        g.bench_with_input(
            BenchmarkId::new("warm", format!("d{d}_H{cuts}")),
            &(d, &seq, &probes),
            |b, (d, seq, probes)| b.iter(|| replay_warm(*d, seq, probes)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_warm_vs_cold);
criterion_main!(benches);
