//! Micro-benchmarks of the geometry kernel: the per-round primitives whose
//! costs explain why EA is capped at low dimensionality (Figures 13–14) and
//! why AA's LP-only state scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isrl_geometry::{
    min_enclosing_sphere, sampling, EnclosingSphereParams, Halfspace, Polytope, Region,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn region_with_cuts(d: usize, cuts: usize, seed: u64) -> Region {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut region = Region::full(d);
    let bary = vec![1.0 / d as f64; d];
    while region.len() < cuts {
        let a: Vec<f64> = (0..d).map(|_| rng.gen_range(0.01..1.0)).collect();
        let b: Vec<f64> = (0..d).map(|_| rng.gen_range(0.01..1.0)).collect();
        if let Some(h) = Halfspace::preferring(&a, &b) {
            region.add(if h.contains(&bary, 0.0) {
                h
            } else {
                h.flipped()
            });
        }
    }
    region
}

fn bench_vertex_enumeration(c: &mut Criterion) {
    let mut g = c.benchmark_group("vertex_enumeration");
    for d in [2usize, 3, 4, 5] {
        for cuts in [4usize, 8] {
            let region = region_with_cuts(d, cuts, 1);
            g.bench_with_input(
                BenchmarkId::from_parameter(format!("d{d}_cuts{cuts}")),
                &region,
                |b, r| b.iter(|| black_box(Polytope::from_region(r))),
            );
        }
    }
    g.finish();
}

fn bench_incremental_vs_scratch(c: &mut Criterion) {
    // The per-round choice EA faces after each question: re-enumerate the
    // whole region or patch the previous round's vertex set with the one
    // new halfspace. Measured on a deep (≥10-cut) region where re-running
    // the full combinatorial enumeration is at its most expensive.
    let mut g = c.benchmark_group("incremental_vs_scratch_vertex_enum");
    for d in [3usize, 4] {
        for cuts in [10usize, 14] {
            let region = region_with_cuts(d, cuts, 6);
            let mut prior = Region::full(d);
            for h in &region.halfspaces()[..cuts - 1] {
                prior.add(h.clone());
            }
            let last = region.halfspaces()[cuts - 1].clone();
            let prior_polytope = Polytope::from_region(&prior).expect("barycenter kept feasible");
            g.bench_function(
                BenchmarkId::new("scratch", format!("d{d}_cuts{cuts}")),
                |b| b.iter(|| black_box(Polytope::from_region(&region))),
            );
            g.bench_function(
                BenchmarkId::new("incremental", format!("d{d}_cuts{cuts}")),
                |b| b.iter(|| black_box(prior_polytope.update(&prior, &last))),
            );
        }
    }
    g.finish();
}

fn bench_outer_sphere(c: &mut Criterion) {
    let mut g = c.benchmark_group("outer_sphere");
    for d in [3usize, 5] {
        let polytope = Polytope::from_region(&region_with_cuts(d, 6, 2)).unwrap();
        let vertices = polytope.vertices().to_vec();
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("d{d}")),
            &vertices,
            |b, v| b.iter(|| black_box(min_enclosing_sphere(v, EnclosingSphereParams::default()))),
        );
    }
    g.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let mut g = c.benchmark_group("sampling");
    for d in [4usize, 20] {
        g.bench_function(BenchmarkId::new("simplex_100", format!("d{d}")), |b| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| {
                for _ in 0..100 {
                    black_box(sampling::sample_simplex(d, &mut rng));
                }
            })
        });
        let region = region_with_cuts(d, 5, 4);
        let start = region.feasible_point().unwrap();
        g.bench_function(BenchmarkId::new("hit_and_run_100", format!("d{d}")), |b| {
            let mut rng = StdRng::seed_from_u64(5);
            b.iter(|| {
                black_box(sampling::hit_and_run(
                    d,
                    region.halfspaces(),
                    &start,
                    100,
                    2,
                    &mut rng,
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_vertex_enumeration,
    bench_incremental_vs_scratch,
    bench_outer_sphere,
    bench_sampling
);
criterion_main!(benches);
