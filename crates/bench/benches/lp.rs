//! LP-solver benchmarks: AA's per-round state costs (inner sphere + outer
//! rectangle) and the strict-feasibility cut test, as functions of the
//! dimensionality and the number of answered questions |H|.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isrl_geometry::{Halfspace, Region};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn region_with_cuts(d: usize, cuts: usize, seed: u64) -> Region {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut region = Region::full(d);
    let bary = vec![1.0 / d as f64; d];
    while region.len() < cuts {
        let a: Vec<f64> = (0..d).map(|_| rng.gen_range(0.01..1.0)).collect();
        let b: Vec<f64> = (0..d).map(|_| rng.gen_range(0.01..1.0)).collect();
        if let Some(h) = Halfspace::preferring(&a, &b) {
            region.add(if h.contains(&bary, 0.0) {
                h
            } else {
                h.flipped()
            });
        }
    }
    region
}

fn bench_inner_sphere(c: &mut Criterion) {
    let mut g = c.benchmark_group("inner_sphere_lp");
    for (d, cuts) in [(4usize, 5usize), (4, 20), (20, 5), (20, 20)] {
        let region = region_with_cuts(d, cuts, 1);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("d{d}_H{cuts}")),
            &region,
            |b, r| b.iter(|| black_box(r.inner_sphere())),
        );
    }
    g.finish();
}

fn bench_outer_rectangle(c: &mut Criterion) {
    let mut g = c.benchmark_group("outer_rectangle_2d_lps");
    for (d, cuts) in [(4usize, 10usize), (20, 10)] {
        let region = region_with_cuts(d, cuts, 2);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("d{d}_H{cuts}")),
            &region,
            |b, r| b.iter(|| black_box(r.outer_rectangle())),
        );
    }
    g.finish();
}

fn bench_cut_test(c: &mut Criterion) {
    let mut g = c.benchmark_group("strict_feasibility_cut_test");
    for d in [4usize, 20] {
        let region = region_with_cuts(d, 10, 3);
        let mut probe = vec![0.0; d];
        probe[0] = 1.0;
        probe[1] = -1.0;
        let h = Halfspace::new(probe);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("d{d}")),
            &region,
            |b, r| b.iter(|| black_box(r.is_cut_by(&h))),
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_inner_sphere,
    bench_outer_rectangle,
    bench_cut_test
);
criterion_main!(benches);
