//! End-to-end interaction benchmarks: one full interactive session per
//! algorithm, at the two dimensionalities the paper's figures focus on.
//! These are the numbers behind the "execution time" columns of
//! Figures 9–16 (absolute values differ from the paper's Python/M3 setup;
//! relative ordering is the reproduction target).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isrl_core::prelude::*;
use isrl_data::{generate, skyline, Distribution};
use std::hint::black_box;

fn low_dim_data() -> isrl_data::Dataset {
    skyline(&generate(2_000, 4, Distribution::AntiCorrelated, 1))
}

fn high_dim_data() -> isrl_data::Dataset {
    generate(2_000, 20, Distribution::AntiCorrelated, 1)
}

fn bench_low_dim(c: &mut Criterion) {
    let data = low_dim_data();
    let d = data.dim();
    let eps = 0.1;
    let train = sample_users(d, 40, 2);
    let user_vec = sample_users(d, 1, 3).pop().unwrap();

    let mut ea = EaAgent::new(d, EaConfig::paper_default().with_seed(4));
    ea.train(&data, &train, eps);
    let mut aa = AaAgent::new(d, AaConfig::paper_default().with_seed(4));
    aa.train(&data, &train, eps);

    let mut g = c.benchmark_group("interaction_d4");
    g.sample_size(10);
    let mut algos: Vec<Box<dyn InteractiveAlgorithm>> = vec![
        Box::new(ea),
        Box::new(aa),
        Box::new(UhBaseline::random(4)),
        Box::new(UhBaseline::simplex(4)),
        Box::new(SinglePass::seeded(4)),
        Box::new(UtilityApprox::default()),
    ];
    for algo in &mut algos {
        let name = algo.name();
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let mut user = SimulatedUser::new(user_vec.clone());
                black_box(algo.run(&data, &mut user, eps, TraceMode::Off))
            })
        });
    }
    g.finish();
}

fn bench_high_dim(c: &mut Criterion) {
    let data = high_dim_data();
    let d = data.dim();
    let eps = 0.15;
    let train = sample_users(d, 20, 5);
    let user_vec = sample_users(d, 1, 6).pop().unwrap();

    let mut aa = AaAgent::new(d, AaConfig::paper_default().with_seed(7));
    aa.train(&data, &train, eps);

    let mut g = c.benchmark_group("interaction_d20");
    g.sample_size(10);
    let mut algos: Vec<Box<dyn InteractiveAlgorithm>> =
        vec![Box::new(aa), Box::new(SinglePass::seeded(7))];
    for algo in &mut algos {
        let name = algo.name();
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let mut user = SimulatedUser::new(user_vec.clone());
                black_box(algo.run(&data, &mut user, eps, TraceMode::Off))
            })
        });
    }
    g.finish();
}

fn bench_top1_batch_vs_scalar(c: &mut Criterion) {
    // The utility-scan kernel at the regret estimator's working size:
    // n = 100k points, d = 20, a batch of sampled utility vectors. The
    // scalar path streams the 16 MB point buffer once per utility vector;
    // the batched kernel streams it once in total.
    let data = generate(100_000, 20, Distribution::AntiCorrelated, 11);
    let d = data.dim();
    let utilities = sample_users(d, 32, 12);
    let flat = data.as_flat();

    let mut g = c.benchmark_group("top1_batch_vs_scalar");
    g.sample_size(10);
    g.bench_function("scalar", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(utilities.len());
            for u in &utilities {
                let mut best = (0usize, f64::NEG_INFINITY);
                for (i, p) in flat.chunks_exact(d).enumerate() {
                    let v = isrl_linalg::vector::dot(p, u);
                    if v > best.1 {
                        best = (i, v);
                    }
                }
                out.push(best);
            }
            black_box(out)
        })
    });
    g.bench_function("batched", |b| {
        b.iter(|| black_box(isrl_linalg::top1_batch(&utilities, flat, d)))
    });
    g.finish();
}

fn bench_training_episode(c: &mut Criterion) {
    // Cost of one RL training episode (the offline side of the system).
    let data = low_dim_data();
    let d = data.dim();
    let mut g = c.benchmark_group("training_episode_d4");
    g.sample_size(10);
    g.bench_function("EA", |b| {
        let mut ea = EaAgent::new(d, EaConfig::paper_default().with_seed(8));
        let users = sample_users(d, 1, 9);
        b.iter(|| black_box(ea.train(&data, &users, 0.1)))
    });
    g.bench_function("AA", |b| {
        let mut aa = AaAgent::new(d, AaConfig::paper_default().with_seed(8));
        let users = sample_users(d, 1, 9);
        b.iter(|| black_box(aa.train(&data, &users, 0.1)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_low_dim,
    bench_high_dim,
    bench_top1_batch_vs_scalar,
    bench_training_episode
);
criterion_main!(benches);
