//! Dataset-substrate benchmarks: generation, skyline preprocessing, and the
//! utility scans that dominate every algorithm's inner loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isrl_data::{generate, skyline, Distribution};
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("generate");
    g.sample_size(20);
    for (n, d) in [(10_000usize, 4usize), (10_000, 20)] {
        g.bench_function(
            BenchmarkId::from_parameter(format!("anti_n{n}_d{d}")),
            |b| b.iter(|| black_box(generate(n, d, Distribution::AntiCorrelated, 1))),
        );
    }
    g.finish();
}

fn bench_skyline(c: &mut Criterion) {
    let mut g = c.benchmark_group("skyline");
    g.sample_size(10);
    for dist in [Distribution::Correlated, Distribution::AntiCorrelated] {
        let data = generate(10_000, 4, dist, 2);
        g.bench_function(
            BenchmarkId::from_parameter(format!("{dist:?}_10k_d4")),
            |b| b.iter(|| black_box(skyline(&data))),
        );
    }
    g.finish();
}

fn bench_utility_scans(c: &mut Criterion) {
    let mut g = c.benchmark_group("argmax_utility");
    for (n, d) in [(10_000usize, 4usize), (100_000, 4), (10_000, 20)] {
        let data = generate(n, d, Distribution::AntiCorrelated, 3);
        let u = vec![1.0 / d as f64; d];
        g.bench_function(BenchmarkId::from_parameter(format!("n{n}_d{d}")), |b| {
            b.iter(|| black_box(data.argmax_utility(&u)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_generation,
    bench_skyline,
    bench_utility_scans
);
criterion_main!(benches);
