#![warn(missing_docs)]
//! Dense linear-algebra kernel for the ISRL workspace.
//!
//! This crate provides the small set of numerical primitives everything else
//! in the workspace is built on: free functions over `&[f64]` slices for
//! vector arithmetic ([`vector`]), a row-major dense [`matrix::Matrix`],
//! Gaussian-elimination linear solves ([`solve`]), and cache-blocked
//! batched utility scans ([`scan`]) with runtime-detected SIMD kernels
//! ([`simd`]) and a structure-of-arrays layout ([`soa`]).
//!
//! The geometry kernel (`isrl-geometry`) uses these for hyperplane and
//! polytope computations; the neural-network crate (`isrl-nn`) uses them for
//! forward/backward passes. Everything is `f64`: the polytopes involved in
//! interactive regret queries shrink geometrically with each question, so
//! single precision runs out of head-room after a dozen rounds.

pub mod matrix;
pub mod norms;
pub mod scan;
pub mod simd;
pub mod soa;
pub mod solve;
pub mod vector;

pub use matrix::Matrix;
pub use scan::{
    row_dots, row_dots_simd, scan_backend, set_scan_backend, top1_batch, top1_batch_simd,
    top1_scalar, ScanBackend, Top1,
};
pub use soa::{row_dots_soa, top1_soa, top1_soa_f32, SoaBuffer};
pub use solve::{solve_linear_system, SolveError};

/// Absolute tolerance used throughout the workspace for geometric predicates.
///
/// Chosen so that after ~30 half-space intersections on the unit simplex the
/// accumulated rounding error of vertex enumeration stays well below it.
pub const EPS: f64 = 1e-9;

/// Returns `true` if `a` and `b` are equal within [`EPS`] (absolute).
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS
}

/// Returns `true` if `a` and `b` are equal within the given absolute tolerance.
#[inline]
pub fn approx_eq_tol(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}
