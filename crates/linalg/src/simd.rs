//! Runtime-feature-detected SIMD kernels for the scan hot path.
//!
//! [`dot`] and [`axpy`] dispatch to hand-written AVX2 implementations when
//! the running CPU supports them (checked once, cached) and otherwise fall
//! back to the portable 4-lane-unrolled loops in [`crate::vector`]. The
//! detection is per-process and costs one atomic load after the first call.
//!
//! # Bit-compatibility contract
//!
//! Every SIMD kernel here is **bit-compatible** with its portable
//! counterpart. For [`dot`] that means the AVX2 path keeps exactly the
//! same floating-point evaluation order as [`crate::vector::dot`]: four
//! independent f64 accumulator lanes over 4-element chunks (one 256-bit
//! register = the four scalar lanes `s0..s3`), a sequentially-summed
//! remainder, and the final `(s0 + s1) + (s2 + s3) + tail` reduction. The
//! multiplies and adds stay *separate* instructions — fused multiply-add
//! would skip the intermediate rounding of each product and change results
//! in the last ulp, which would break the differential guarantees the
//! scan backends are tested against (`tests/scan_backends.rs`). [`axpy`]
//! and the f32 variants are element-wise, so lane width cannot affect
//! per-element rounding at all.

use crate::vector;

/// `true` when the running CPU supports the AVX2 kernels. Detected once
/// per process and cached; always `false` off x86_64.
#[inline]
pub fn have_avx2() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static AVX2: OnceLock<bool> = OnceLock::new();
        *AVX2.get_or_init(|| std::is_x86_feature_detected!("avx2"))
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Dot product `a · b`, bit-identical to [`vector::dot`] on every input.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: dimension mismatch");
    #[cfg(target_arch = "x86_64")]
    if have_avx2() {
        // SAFETY: AVX2 support was just verified at runtime.
        return unsafe { x86::dot_avx2(a, b) };
    }
    vector::dot(a, b)
}

/// In-place `a += s * b` (axpy), bit-identical to [`vector::axpy`].
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(a: &mut [f64], s: f64, b: &[f64]) {
    assert_eq!(a.len(), b.len(), "axpy: dimension mismatch");
    #[cfg(target_arch = "x86_64")]
    if have_avx2() {
        // SAFETY: AVX2 support was just verified at runtime.
        unsafe { x86::axpy_avx2(a, s, b) };
        return;
    }
    for i in 0..a.len() {
        a[i] += s * b[i];
    }
}

/// In-place single-precision axpy `a += s * b` for the f32 scan path.
/// Element-wise, so the SIMD and scalar paths round identically.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy_f32(a: &mut [f32], s: f32, b: &[f32]) {
    assert_eq!(a.len(), b.len(), "axpy_f32: dimension mismatch");
    #[cfg(target_arch = "x86_64")]
    if have_avx2() {
        // SAFETY: AVX2 support was just verified at runtime.
        unsafe { x86::axpy_f32_avx2(a, s, b) };
        return;
    }
    for i in 0..a.len() {
        a[i] += s * b[i];
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    /// Same accumulator structure as `vector::dot`: one 256-bit register
    /// holds the four scalar lanes, products are rounded before adding
    /// (`vmulpd` + `vaddpd`, never `vfmadd`), the remainder is summed
    /// sequentially, and the horizontal reduction is `(s0+s1)+(s2+s3)+tail`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_avx2(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len();
        let chunks = n / 4;
        let pa = a.as_ptr();
        let pb = b.as_ptr();
        let mut acc = _mm256_setzero_pd();
        for c in 0..chunks {
            let x = _mm256_loadu_pd(pa.add(4 * c));
            let y = _mm256_loadu_pd(pb.add(4 * c));
            acc = _mm256_add_pd(acc, _mm256_mul_pd(x, y));
        }
        let mut lanes = [0.0f64; 4];
        _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
        let mut tail = 0.0f64;
        for i in 4 * chunks..n {
            tail += *pa.add(i) * *pb.add(i);
        }
        (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy_avx2(a: &mut [f64], s: f64, b: &[f64]) {
        let n = a.len();
        let pa = a.as_mut_ptr();
        let pb = b.as_ptr();
        let sv = _mm256_set1_pd(s);
        let mut i = 0;
        while i + 4 <= n {
            let x = _mm256_loadu_pd(pa.add(i));
            let y = _mm256_loadu_pd(pb.add(i));
            _mm256_storeu_pd(pa.add(i), _mm256_add_pd(x, _mm256_mul_pd(sv, y)));
            i += 4;
        }
        while i < n {
            *pa.add(i) += s * *pb.add(i);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy_f32_avx2(a: &mut [f32], s: f32, b: &[f32]) {
        let n = a.len();
        let pa = a.as_mut_ptr();
        let pb = b.as_ptr();
        let sv = _mm256_set1_ps(s);
        let mut i = 0;
        while i + 8 <= n {
            let x = _mm256_loadu_ps(pa.add(i));
            let y = _mm256_loadu_ps(pb.add(i));
            _mm256_storeu_ps(pa.add(i), _mm256_add_ps(x, _mm256_mul_ps(sv, y)));
            i += 8;
        }
        while i < n {
            *pa.add(i) += s * *pb.add(i);
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_bitwise_matches_portable_at_every_tail_length() {
        for n in 0..20usize {
            let a: Vec<f64> = (0..n).map(|i| 0.37 + 1.13 * i as f64).collect();
            let b: Vec<f64> = (0..n).map(|i| -2.9 + 0.71 * i as f64).collect();
            assert_eq!(
                dot(&a, &b).to_bits(),
                vector::dot(&a, &b).to_bits(),
                "n={n}"
            );
        }
    }

    #[test]
    fn dot_bitwise_matches_on_nonfinite_inputs() {
        let a = [1.0, f64::INFINITY, f64::NAN, -3.0, 1e308, 1e308, 0.5];
        let b = [2.0, 0.5, 1.0, f64::NEG_INFINITY, 1e308, 1e308, -0.25];
        for n in 0..=a.len() {
            let lhs = dot(&a[..n], &b[..n]);
            let rhs = vector::dot(&a[..n], &b[..n]);
            assert_eq!(lhs.to_bits(), rhs.to_bits(), "n={n}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn axpy_bitwise_matches_portable() {
        for n in 0..20usize {
            let base: Vec<f64> = (0..n).map(|i| 0.1 * i as f64 - 0.7).collect();
            let b: Vec<f64> = (0..n).map(|i| 1.9 - 0.23 * i as f64).collect();
            let mut x = base.clone();
            let mut y = base.clone();
            axpy(&mut x, 1.75, &b);
            vector::axpy(&mut y, 1.75, &b);
            for i in 0..n {
                assert_eq!(x[i].to_bits(), y[i].to_bits(), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn axpy_f32_matches_scalar_loop() {
        for n in 0..20usize {
            let base: Vec<f32> = (0..n).map(|i| 0.5 - 0.11 * i as f32).collect();
            let b: Vec<f32> = (0..n).map(|i| 0.03 * i as f32 + 0.2).collect();
            let mut x = base.clone();
            let mut y = base.clone();
            axpy_f32(&mut x, -0.6, &b);
            for i in 0..n {
                y[i] += -0.6 * b[i];
            }
            for i in 0..n {
                assert_eq!(x[i].to_bits(), y[i].to_bits(), "n={n} i={i}");
            }
        }
    }
}
