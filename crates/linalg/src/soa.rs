//! Structure-of-arrays point store and the scan kernels built on it.
//!
//! The row-major `top1_batch` kernel streams `dim`-length rows and pays a
//! horizontal reduction per point. [`SoaBuffer`] transposes the point
//! buffer into column-major form (`cols[j * n + i]` = attribute `j` of
//! point `i`) so a scan can stream one *dimension* contiguously across a
//! register tile of points: the inner loop keeps each lane's partial sums
//! for [`ROW_TILE`] rows in registers and loads every column element
//! exactly once — vertical SIMD across rows, no horizontal reduction and
//! no intermediate stores until the final lane combine. See DESIGN.md §15.
//!
//! # Bit-exactness
//!
//! [`top1_soa`] reproduces [`crate::vector::dot`]'s evaluation order
//! per row: four f64 accumulator chains take dimensions `4c + l` (lane
//! `l` of chunk `c`), a tail chain takes the remaining dimensions in
//! order, and the combine is `(s0 + s1) + (s2 + s3) + tail`. The SIMD
//! runs *across rows* (independent accumulation chains — vector width
//! only changes how many rows advance together), so per-row arithmetic
//! is identical to the scalar kernel bit for bit.
//!
//! [`top1_soa_f32`] trades that for speed: a single-precision pass scores
//! every point, collects all rows whose f32 score lands within a
//! certified error slack of the running best, then rescans just those
//! candidates in f64 over the row-major buffer — so the returned [`Top1`]
//! (index *and* value) is still exact.

use crate::scan::{self, Top1};
use crate::vector;
use std::sync::OnceLock;

/// Rows per scan block: the score buffer for one block is 8 KB, and the
/// block loop bounds how much column data is in flight per `best` update
/// sweep.
pub const SOA_BLOCK_ROWS: usize = 1024;

/// Rows advanced together by the column-scan inner loop: 8 f64 lanes is
/// two AVX2 vectors per accumulator chain, enough independent chains to
/// hide the FP-add latency that pins a single `dot`.
pub const ROW_TILE: usize = 8;

/// Column-major (structure-of-arrays) mirror of a row-major point buffer.
#[derive(Debug, Clone)]
pub struct SoaBuffer {
    n: usize,
    dim: usize,
    /// Column-major values: `cols[j * n + i]` is attribute `j` of point `i`.
    cols: Vec<f64>,
    /// Lazily-built f32 mirror of `cols` for [`top1_soa_f32`].
    cols_f32: OnceLock<Vec<f32>>,
    /// Per-column max absolute value, for the f32 error-slack bound.
    col_abs_max: Vec<f64>,
}

impl SoaBuffer {
    /// Transposes a row-major buffer (`n = points.len() / dim` rows).
    ///
    /// # Panics
    /// Panics when `dim == 0` or the buffer is not a multiple of `dim`.
    pub fn from_flat(points: &[f64], dim: usize) -> Self {
        assert!(dim > 0, "SoaBuffer needs a positive dimension");
        assert_eq!(points.len() % dim, 0, "point buffer length must be n * dim");
        let n = points.len() / dim;
        let mut cols = vec![0.0f64; points.len()];
        let mut col_abs_max = vec![0.0f64; dim];
        for (i, row) in points.chunks_exact(dim).enumerate() {
            for (j, &x) in row.iter().enumerate() {
                cols[j * n + i] = x;
                let a = x.abs();
                if a > col_abs_max[j] {
                    col_abs_max[j] = a;
                }
            }
        }
        Self {
            n,
            dim,
            cols,
            cols_f32: OnceLock::new(),
            col_abs_max,
        }
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` iff the buffer holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Column `j` as a contiguous slice (one value per point).
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        &self.cols[j * self.n..(j + 1) * self.n]
    }

    /// The full column-major f32 mirror, built on first use.
    #[inline]
    fn cols_f32(&self) -> &[f32] {
        self.cols_f32
            .get_or_init(|| self.cols.iter().map(|&x| x as f32).collect())
    }

    /// Gathers row `i` into `buf` (cleared first).
    fn gather_row(&self, i: usize, buf: &mut Vec<f64>) {
        buf.clear();
        buf.extend((0..self.dim).map(|j| self.cols[j * self.n + i]));
    }

    /// `true` when any point's score `u · p` is NaN, using the same
    /// summation order as the scan kernels ([`vector::dot`]) so the
    /// verdict matches the row-major backends exactly.
    fn any_nan_score(&self, u: &[f64]) -> bool {
        let mut row = Vec::with_capacity(self.dim);
        for i in 0..self.n {
            self.gather_row(i, &mut row);
            if vector::dot(&row, u).is_nan() {
                return true;
            }
        }
        false
    }
}

/// Scores `W` consecutive rows starting at absolute row `off` against
/// `u`, writing the finished values to `out[..W]`. Evaluation order per
/// row is exactly `vector::dot`'s: lane `l` accumulates dimensions
/// `4c + l`, the tail accumulates leftover dimensions in order, and the
/// combine is `(s0 + s1) + (s2 + s3) + tail`. All partial sums live in
/// registers, so each column element is loaded once and nothing is
/// stored until the combine.
#[inline(always)]
fn scores_tile<const W: usize>(u: &[f64], cols: &[f64], n: usize, off: usize, out: &mut [f64]) {
    let dim = u.len();
    let mut l0 = [0.0f64; W];
    let mut l1 = [0.0f64; W];
    let mut l2 = [0.0f64; W];
    let mut l3 = [0.0f64; W];
    let mut tl = [0.0f64; W];
    let mut j = 0;
    while j + 4 <= dim {
        let c0 = &cols[j * n + off..][..W];
        let c1 = &cols[(j + 1) * n + off..][..W];
        let c2 = &cols[(j + 2) * n + off..][..W];
        let c3 = &cols[(j + 3) * n + off..][..W];
        for k in 0..W {
            l0[k] += u[j] * c0[k];
            l1[k] += u[j + 1] * c1[k];
            l2[k] += u[j + 2] * c2[k];
            l3[k] += u[j + 3] * c3[k];
        }
        j += 4;
    }
    while j < dim {
        let c = &cols[j * n + off..][..W];
        for k in 0..W {
            tl[k] += u[j] * c[k];
        }
        j += 1;
    }
    for k in 0..W {
        out[k] = (l0[k] + l1[k]) + (l2[k] + l3[k]) + tl[k];
    }
}

/// Scores `rows` points starting at `base` into `out[..rows]`:
/// [`ROW_TILE`]-row tiles, then a one-row tile per leftover row (same
/// arithmetic, `W = 1`).
#[inline(always)]
fn block_scores_body(u: &[f64], cols: &[f64], n: usize, base: usize, rows: usize, out: &mut [f64]) {
    let mut r = 0;
    while r + ROW_TILE <= rows {
        scores_tile::<ROW_TILE>(u, cols, n, base + r, &mut out[r..r + ROW_TILE]);
        r += ROW_TILE;
    }
    while r < rows {
        scores_tile::<1>(u, cols, n, base + r, &mut out[r..r + 1]);
        r += 1;
    }
}

/// The tile body compiled with AVX2 enabled, so LLVM vectorizes the
/// per-lane `W`-row loops at 256-bit width. The arithmetic *sequence* per
/// row is the portable body's — vector width only batches independent
/// rows — and `target_feature` never licenses FMA contraction, so the
/// result is bit-identical to [`block_scores_body`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn block_scores_avx2(
    u: &[f64],
    cols: &[f64],
    n: usize,
    base: usize,
    rows: usize,
    out: &mut [f64],
) {
    block_scores_body(u, cols, n, base, rows, out)
}

fn block_scores(soa: &SoaBuffer, u: &[f64], base: usize, rows: usize, out: &mut [f64]) {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::have_avx2() {
        // SAFETY: AVX2 support was verified at runtime.
        unsafe { block_scores_avx2(u, &soa.cols, soa.n, base, rows, out) };
        return;
    }
    block_scores_body(u, &soa.cols, soa.n, base, rows, out)
}

/// f32 analogue of [`scores_tile`] for the first pass of
/// [`top1_soa_f32`]. The f32 scores are never compared across backends
/// (the f64 rescan makes the final answer exact), so this only has to be
/// deterministic, not bit-matched to anything; it keeps the same lane
/// shape for instruction-level parallelism. `W = 16` f32 lanes is two
/// AVX2 vectors per chain.
#[inline(always)]
fn scores_tile_f32<const W: usize>(u: &[f32], cols: &[f32], n: usize, off: usize, out: &mut [f32]) {
    let dim = u.len();
    let mut l0 = [0.0f32; W];
    let mut l1 = [0.0f32; W];
    let mut l2 = [0.0f32; W];
    let mut l3 = [0.0f32; W];
    let mut tl = [0.0f32; W];
    let mut j = 0;
    while j + 4 <= dim {
        let c0 = &cols[j * n + off..][..W];
        let c1 = &cols[(j + 1) * n + off..][..W];
        let c2 = &cols[(j + 2) * n + off..][..W];
        let c3 = &cols[(j + 3) * n + off..][..W];
        for k in 0..W {
            l0[k] += u[j] * c0[k];
            l1[k] += u[j + 1] * c1[k];
            l2[k] += u[j + 2] * c2[k];
            l3[k] += u[j + 3] * c3[k];
        }
        j += 4;
    }
    while j < dim {
        let c = &cols[j * n + off..][..W];
        for k in 0..W {
            tl[k] += u[j] * c[k];
        }
        j += 1;
    }
    for k in 0..W {
        out[k] = (l0[k] + l1[k]) + (l2[k] + l3[k]) + tl[k];
    }
}

const ROW_TILE_F32: usize = 16;

#[inline(always)]
fn block_scores_f32_body(
    u: &[f32],
    cols: &[f32],
    n: usize,
    base: usize,
    rows: usize,
    out: &mut [f32],
) {
    let mut r = 0;
    while r + ROW_TILE_F32 <= rows {
        scores_tile_f32::<ROW_TILE_F32>(u, cols, n, base + r, &mut out[r..r + ROW_TILE_F32]);
        r += ROW_TILE_F32;
    }
    while r < rows {
        scores_tile_f32::<1>(u, cols, n, base + r, &mut out[r..r + 1]);
        r += 1;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn block_scores_f32_avx2(
    u: &[f32],
    cols: &[f32],
    n: usize,
    base: usize,
    rows: usize,
    out: &mut [f32],
) {
    block_scores_f32_body(u, cols, n, base, rows, out)
}

fn block_scores_f32(u: &[f32], cols: &[f32], n: usize, base: usize, rows: usize, out: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::have_avx2() {
        // SAFETY: AVX2 support was verified at runtime.
        unsafe { block_scores_f32_avx2(u, cols, n, base, rows, out) };
        return;
    }
    block_scores_f32_body(u, cols, n, base, rows, out)
}

/// Top-1 point per utility vector over a column-major buffer. Bit-exact
/// with [`crate::scan::top1_batch`] (index *and* value), including the
/// `{index: 0, value: -inf}` NaN sentinel semantics documented there.
///
/// # Panics
/// Panics on an empty buffer or a utility-vector dimension mismatch.
/// `debug_assert`s that no utility vector contains NaN.
pub fn top1_soa<U: AsRef<[f64]>>(utilities: &[U], soa: &SoaBuffer) -> Vec<Top1> {
    assert!(!soa.is_empty(), "top1_soa over an empty point buffer");
    for u in utilities {
        let u = u.as_ref();
        assert_eq!(u.len(), soa.dim, "utility vector dimension mismatch");
        scan::debug_assert_utilities_finite(u);
    }
    isrl_obs::add("scan.top1_calls", 1);
    isrl_obs::add("scan.top1_utilities", utilities.len() as u64);
    isrl_obs::add("scan.top1_blocks", soa.n.div_ceil(SOA_BLOCK_ROWS) as u64);

    let mut best = vec![
        Top1 {
            index: 0,
            value: f64::NEG_INFINITY
        };
        utilities.len()
    ];
    let mut scores = vec![0.0f64; SOA_BLOCK_ROWS.min(soa.n)];
    let mut base = 0;
    while base < soa.n {
        let rows = SOA_BLOCK_ROWS.min(soa.n - base);
        for (u, b) in utilities.iter().zip(best.iter_mut()) {
            block_scores(soa, u.as_ref(), base, rows, &mut scores[..rows]);
            for (r, &v) in scores[..rows].iter().enumerate() {
                if v > b.value {
                    b.value = v;
                    b.index = base + r;
                }
            }
        }
        base += rows;
    }
    scan::apply_nan_sentinel(utilities, &best, |u| soa.any_nan_score(u));
    best
}

/// Top-1 per utility vector via a single-precision scan with exact f64
/// verification: one f32 pass over the column mirror collects every row
/// whose score lands within a certified slack of the running best, then
/// those candidates are rescanned with [`vector::dot`] over the row-major
/// buffer `points`. Results are bit-exact with [`crate::scan::top1_batch`].
///
/// The slack per utility is `2 · (d + 8) · ε₃₂ · Σⱼ |uⱼ| · maxᵢ|pᵢⱼ|`
/// (ε₃₂ = `f32::EPSILON`), a first-order bound on f64→f32 conversion,
/// product, and d-term accumulation error with ≥ 4× margin. Whenever the
/// bound cannot be trusted — f32 overflow to ±∞, NaN scores, infinite
/// slack — the kernel degrades to collecting every subsequent row, so
/// correctness never depends on the bound holding.
///
/// # Panics
/// Panics on an empty buffer, a `points`/`soa` shape mismatch, or a
/// utility-vector dimension mismatch. `debug_assert`s that no utility
/// vector contains NaN.
pub fn top1_soa_f32<U: AsRef<[f64]>>(
    utilities: &[U],
    soa: &SoaBuffer,
    points: &[f64],
) -> Vec<Top1> {
    assert!(!soa.is_empty(), "top1_soa_f32 over an empty point buffer");
    assert_eq!(
        points.len(),
        soa.n * soa.dim,
        "row-major buffer does not match the SoA mirror"
    );
    for u in utilities {
        let u = u.as_ref();
        assert_eq!(u.len(), soa.dim, "utility vector dimension mismatch");
        scan::debug_assert_utilities_finite(u);
    }
    isrl_obs::add("scan.top1_calls", 1);
    isrl_obs::add("scan.top1_utilities", utilities.len() as u64);
    isrl_obs::add("scan.top1_blocks", soa.n.div_ceil(SOA_BLOCK_ROWS) as u64);

    let dim = soa.dim;
    let k = utilities.len();
    let mut best = vec![
        Top1 {
            index: 0,
            value: f64::NEG_INFINITY
        };
        k
    ];
    if k == 0 {
        return best;
    }

    // Per-utility f32 copy and certified slack bound.
    let u32s: Vec<Vec<f32>> = utilities
        .iter()
        .map(|u| u.as_ref().iter().map(|&x| x as f32).collect())
        .collect();
    let slacks: Vec<f64> = utilities
        .iter()
        .map(|u| {
            let bound: f64 = u
                .as_ref()
                .iter()
                .zip(&soa.col_abs_max)
                .map(|(uj, m)| uj.abs() * m)
                .sum();
            2.0 * (dim as f64 + 8.0) * f64::from(f32::EPSILON) * bound
        })
        .collect();

    // Pass 1: f32 scan, collecting candidate rows per utility.
    let mut cands: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut best32 = vec![f64::NEG_INFINITY; k];
    // `thr[u] = best32[u] - 2 * slack`, forced to -inf (collect everything)
    // whenever best32 or the slack is non-finite.
    let mut thr = vec![f64::NEG_INFINITY; k];
    let cols32 = soa.cols_f32();
    let mut acc = vec![0.0f32; SOA_BLOCK_ROWS.min(soa.n)];
    let mut base = 0;
    while base < soa.n {
        let rows = SOA_BLOCK_ROWS.min(soa.n - base);
        for (ku, u32) in u32s.iter().enumerate() {
            block_scores_f32(u32, cols32, soa.n, base, rows, &mut acc[..rows]);
            let cand = &mut cands[ku];
            for (r, &s32) in acc[..rows].iter().enumerate() {
                let s = f64::from(s32);
                // NaN fails the `<`, so NaN scores are always collected
                // (the point of the negated form — not `s >= thr`).
                #[allow(clippy::neg_cmp_op_on_partial_ord)]
                if !(s < thr[ku]) {
                    cand.push(base + r);
                }
                if s > best32[ku] {
                    best32[ku] = s;
                    let t = best32[ku] - 2.0 * slacks[ku];
                    thr[ku] = if t.is_finite() { t } else { f64::NEG_INFINITY };
                }
            }
        }
        base += rows;
    }

    // Pass 2: exact f64 rescan of the candidates, in ascending index order
    // so strict `>` reproduces first-index-wins tie-breaking.
    for (ku, (cand, b)) in cands.iter().zip(best.iter_mut()).enumerate() {
        let u = utilities[ku].as_ref();
        for &i in cand {
            let v = vector::dot(&points[i * dim..(i + 1) * dim], u);
            if v > b.value {
                b.value = v;
                b.index = i;
            }
        }
    }
    scan::apply_nan_sentinel(utilities, &best, |u| {
        points.chunks_exact(dim).any(|p| vector::dot(p, u).is_nan())
    });
    best
}

/// All scores `points[i] · u` over the column mirror, appended to `out`
/// (cleared first; reservation respects existing capacity). Bit-exact
/// with [`crate::scan::row_dots`].
///
/// # Panics
/// Panics on a utility-vector dimension mismatch.
pub fn row_dots_soa(soa: &SoaBuffer, u: &[f64], out: &mut Vec<f64>) {
    assert_eq!(u.len(), soa.dim, "utility vector dimension mismatch");
    out.clear();
    if out.capacity() < soa.n {
        out.reserve_exact(soa.n - out.len());
    }
    out.resize(soa.n, 0.0);
    let mut base = 0;
    while base < soa.n {
        let rows = SOA_BLOCK_ROWS.min(soa.n - base);
        block_scores(soa, u, base, rows, &mut out[base..base + rows]);
        base += rows;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(n: usize, seed: u64) -> Vec<f64> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                ((z ^ (z >> 31)) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
            })
            .collect()
    }

    #[test]
    fn transpose_round_trips() {
        let dim = 3;
        let flat = pseudo(7 * dim, 9);
        let soa = SoaBuffer::from_flat(&flat, dim);
        assert_eq!(soa.len(), 7);
        let mut row = Vec::new();
        for i in 0..7 {
            soa.gather_row(i, &mut row);
            assert_eq!(&row[..], &flat[i * dim..(i + 1) * dim]);
        }
    }

    #[test]
    fn col_abs_max_bounds_every_entry() {
        let flat = vec![0.5, -2.0, 0.25, 1.5, -0.75, 0.1];
        let soa = SoaBuffer::from_flat(&flat, 3);
        assert_eq!(soa.col_abs_max, vec![1.5, 2.0, 0.25]);
    }

    #[test]
    fn soa_matches_rowmajor_bitwise() {
        for &(n, dim) in &[(1usize, 1usize), (5, 3), (40, 4), (129, 7), (300, 20)] {
            let flat = pseudo(n * dim, 100 + n as u64);
            let soa = SoaBuffer::from_flat(&flat, dim);
            let utilities: Vec<Vec<f64>> = (0..6).map(|i| pseudo(dim, 7 + i)).collect();
            let reference = scan::top1_batch(&utilities, &flat, dim);
            let got = top1_soa(&utilities, &soa);
            let got32 = top1_soa_f32(&utilities, &soa, &flat);
            assert_eq!(got, reference, "n={n} dim={dim}");
            assert_eq!(got32, reference, "f32 path n={n} dim={dim}");
        }
    }

    #[test]
    fn row_dots_soa_matches_rowmajor_bitwise() {
        let dim = 5;
        let flat = pseudo(77 * dim, 3);
        let soa = SoaBuffer::from_flat(&flat, dim);
        let u = pseudo(dim, 4);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        scan::row_dots(&flat, dim, &u, &mut a);
        row_dots_soa(&soa, &u, &mut b);
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a[i].to_bits(), b[i].to_bits(), "i={i}");
        }
    }
}
