//! Linear-system solving via Gaussian elimination with partial pivoting.
//!
//! Vertex enumeration in `isrl-geometry` solves one `d × d` system per
//! candidate constraint subset; `d` stays below ~25, so a dense `O(d³)`
//! elimination with partial pivoting is both the simplest and the fastest
//! practical choice.

use crate::Matrix;

/// Errors from [`solve_linear_system`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// The coefficient matrix is singular (or numerically so) — the chosen
    /// constraint subset does not determine a unique vertex.
    Singular,
    /// The matrix is not square or the right-hand side length disagrees.
    ShapeMismatch,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Singular => write!(f, "singular linear system"),
            SolveError::ShapeMismatch => write!(f, "shape mismatch in linear solve"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Solves `A x = b` for square `A` using Gaussian elimination with partial
/// pivoting. `A` and `b` are consumed by value because elimination works
/// in place on a copy anyway.
///
/// Returns [`SolveError::Singular`] when the pivot falls below `1e-12`,
/// which in the geometric callers means the constraint subset is degenerate
/// and simply gets skipped.
pub fn solve_linear_system(mut a: Matrix, mut b: Vec<f64>) -> Result<Vec<f64>, SolveError> {
    let n = a.rows();
    if a.cols() != n || b.len() != n {
        return Err(SolveError::ShapeMismatch);
    }
    const PIVOT_TOL: f64 = 1e-12;

    for col in 0..n {
        // Partial pivot: largest magnitude in this column at or below the diagonal.
        let mut pivot_row = col;
        let mut pivot_val = a[(col, col)].abs();
        for r in (col + 1)..n {
            let v = a[(r, col)].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = r;
            }
        }
        if pivot_val < PIVOT_TOL {
            return Err(SolveError::Singular);
        }
        if pivot_row != col {
            for j in 0..n {
                let tmp = a[(col, j)];
                a[(col, j)] = a[(pivot_row, j)];
                a[(pivot_row, j)] = tmp;
            }
            b.swap(col, pivot_row);
        }
        // Eliminate below.
        let diag = a[(col, col)];
        for r in (col + 1)..n {
            let factor = a[(r, col)] / diag;
            if factor == 0.0 {
                continue;
            }
            a[(r, col)] = 0.0;
            for j in (col + 1)..n {
                let v = a[(col, j)];
                a[(r, j)] -= factor * v;
            }
            b[r] -= factor * b[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for j in (row + 1)..n {
            acc -= a[(row, j)] * x[j];
        }
        x[row] = acc / a[(row, row)];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector;

    #[test]
    fn solves_known_2x2() {
        // x + y = 3, x - y = 1 => x = 2, y = 1
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, -1.0]]);
        let x = solve_linear_system(a, vec![3.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solves_system_needing_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 2.0], vec![3.0, 1.0]]);
        let x = solve_linear_system(a, vec![4.0, 5.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singular_matrix() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(
            solve_linear_system(a, vec![1.0, 2.0]),
            Err(SolveError::Singular)
        );
    }

    #[test]
    fn detects_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        assert_eq!(
            solve_linear_system(a, vec![1.0, 2.0]),
            Err(SolveError::ShapeMismatch)
        );
        let a = Matrix::identity(2);
        assert_eq!(
            solve_linear_system(a, vec![1.0]),
            Err(SolveError::ShapeMismatch)
        );
    }

    #[test]
    fn residual_is_small_for_random_systems() {
        // Deterministic pseudo-random fill; checks ‖Ax − b‖ stays tiny.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for n in [1usize, 3, 8, 16] {
            let rows: Vec<Vec<f64>> = (0..n).map(|_| (0..n).map(|_| next()).collect()).collect();
            let a = Matrix::from_rows(&rows);
            let b: Vec<f64> = (0..n).map(|_| next()).collect();
            match solve_linear_system(a.clone(), b.clone()) {
                Ok(x) => {
                    let r = vector::sub(&a.mul_vec(&x), &b);
                    assert!(vector::norm(&r) < 1e-8, "residual too large for n={n}");
                }
                Err(SolveError::Singular) => {} // acceptable for random fill
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
    }
}
