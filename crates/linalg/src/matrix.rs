//! Row-major dense matrix.
//!
//! Sized for the workloads in this workspace: linear systems of dimension
//! `d ≤ ~25` (vertex enumeration) and dense layers up to a few hundred units
//! (the DQN's 64-unit hidden layer). No blocking or SIMD intrinsics — plain
//! row-major loops are already memory-bound at these sizes.

use crate::vector;

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "Matrix::from_vec: shape mismatch");
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of equal-length rows.
    ///
    /// # Panics
    /// Panics if the rows disagree on length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "Matrix::from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// The identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of the `i`-th row.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of the `i`-th row.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The raw row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "mul_vec: dimension mismatch");
        (0..self.rows)
            .map(|i| vector::dot(self.row(i), x))
            .collect()
    }

    /// Transposed matrix–vector product `selfᵀ * x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.rows()`.
    pub fn mul_vec_transposed(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "mul_vec_transposed: dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            let row = self.row(i);
            for (o, &rj) in out.iter_mut().zip(row) {
                *o += rj * xi;
            }
        }
        out
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn mul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "mul: inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for j in 0..other.cols {
                    out_row[j] += a * orow[j];
                }
            }
        }
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// In-place `self += s * other` (matrix axpy), used by the optimizers.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, s: f64, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "axpy: shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
    }

    /// Fills the matrix with a constant.
    pub fn fill(&mut self, v: f64) {
        self.data.iter_mut().for_each(|x| *x = v);
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_multiplicative_neutral() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.mul(&i), a);
        assert_eq!(i.mul(&a), a);
    }

    #[test]
    fn mul_vec_matches_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn transposed_mul_vec_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 5.0], vec![3.0, 4.0, 6.0]]);
        let x = [2.0, -1.0];
        assert_eq!(a.mul_vec_transposed(&x), a.transpose().mul_vec(&x));
    }

    #[test]
    fn transpose_is_involutive() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn mul_shapes_compose() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 4);
        let c = a.mul(&b);
        assert_eq!((c.rows(), c.cols()), (2, 4));
    }

    #[test]
    fn axpy_adds_scaled_matrix() {
        let mut a = Matrix::identity(2);
        let b = Matrix::identity(2);
        a.axpy(2.0, &b);
        assert_eq!(a[(0, 0)], 3.0);
        assert_eq!(a[(0, 1)], 0.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn from_vec_checks_shape() {
        Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn row_mut_writes_through() {
        let mut a = Matrix::zeros(2, 2);
        a.row_mut(1)[0] = 9.0;
        assert_eq!(a[(1, 0)], 9.0);
    }
}
