//! Free functions for dense vector arithmetic over `&[f64]` slices.
//!
//! These are the innermost loops of the whole system: utility evaluation
//! (`dot`), hyperplane construction (`sub`), and state encoding all bottom
//! out here. They are written as plain indexed loops over equal-length
//! slices, which LLVM auto-vectorizes.

/// Dot product `a · b`.
///
/// Accumulates in four independent lanes over 4-element chunks so the
/// multiply-adds pipeline instead of serializing on one accumulator, then
/// sums the remainder sequentially. For slices shorter than 4 this reduces
/// to the plain left-to-right sum, so low-d results are unchanged.
///
/// # Panics
/// Panics if the slices have different lengths.
///
/// ```
/// assert_eq!(isrl_linalg::vector::dot(&[0.3, 0.7], &[0.5, 0.8]), 0.71);
/// ```
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: dimension mismatch");
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for (x, y) in (&mut ca).zip(&mut cb) {
        s0 += x[0] * y[0];
        s1 += x[1] * y[1];
        s2 += x[2] * y[2];
        s3 += x[3] * y[3];
    }
    let mut tail = 0.0f64;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    (s0 + s1) + (s2 + s3) + tail
}

/// Element-wise difference `a - b` as a new vector.
#[inline]
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Element-wise sum `a + b` as a new vector.
#[inline]
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add: dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// In-place `a += s * b` (axpy).
#[inline]
pub fn axpy(a: &mut [f64], s: f64, b: &[f64]) {
    assert_eq!(a.len(), b.len(), "axpy: dimension mismatch");
    for i in 0..a.len() {
        a[i] += s * b[i];
    }
}

/// Scalar multiple `s * a` as a new vector.
#[inline]
pub fn scale(a: &[f64], s: f64) -> Vec<f64> {
    a.iter().map(|x| x * s).collect()
}

/// In-place scalar multiply.
#[inline]
pub fn scale_mut(a: &mut [f64], s: f64) {
    for x in a {
        *x *= s;
    }
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Euclidean distance between two points.
#[inline]
pub fn dist(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dist: dimension mismatch");
    let mut acc = 0.0;
    for i in 0..a.len() {
        let d = a[i] - b[i];
        acc += d * d;
    }
    acc.sqrt()
}

/// Squared Euclidean distance (avoids the `sqrt` when only comparisons are needed).
#[inline]
pub fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dist_sq: dimension mismatch");
    let mut acc = 0.0;
    for i in 0..a.len() {
        let d = a[i] - b[i];
        acc += d * d;
    }
    acc
}

/// Sum of all components.
#[inline]
pub fn sum(a: &[f64]) -> f64 {
    a.iter().sum()
}

/// Midpoint `(a + b) / 2`.
#[inline]
pub fn midpoint(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "midpoint: dimension mismatch");
    a.iter().zip(b).map(|(x, y)| 0.5 * (x + y)).collect()
}

/// Normalizes `a` to unit L2 norm. Returns `None` for the zero vector.
pub fn unit(a: &[f64]) -> Option<Vec<f64>> {
    let n = norm(a);
    if n <= f64::EPSILON {
        None
    } else {
        Some(scale(a, 1.0 / n))
    }
}

/// Normalizes `a` so its components sum to one (projection onto the simplex
/// scale). Returns `None` if the component sum is not positive.
pub fn normalize_sum(a: &[f64]) -> Option<Vec<f64>> {
    let s = sum(a);
    if s <= f64::EPSILON {
        None
    } else {
        Some(scale(a, 1.0 / s))
    }
}

/// Index of the maximum component (first one on ties).
///
/// # Panics
/// Panics on an empty slice.
pub fn argmax(a: &[f64]) -> usize {
    assert!(!a.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for i in 1..a.len() {
        if a[i] > a[best] {
            best = i;
        }
    }
    best
}

/// Index of the minimum component (first one on ties).
///
/// # Panics
/// Panics on an empty slice.
pub fn argmin(a: &[f64]) -> usize {
    assert!(!a.is_empty(), "argmin of empty slice");
    let mut best = 0;
    for i in 1..a.len() {
        if a[i] < a[best] {
            best = i;
        }
    }
    best
}

/// Linear interpolation `(1 - t) * a + t * b`.
pub fn lerp(a: &[f64], b: &[f64], t: f64) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "lerp: dimension mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (1.0 - t) * x + t * y)
        .collect()
}

/// Component-wise minimum of two vectors.
pub fn elem_min(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "elem_min: dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x.min(*y)).collect()
}

/// Component-wise maximum of two vectors.
pub fn elem_max(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "elem_max: dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x.max(*y)).collect()
}

/// Mean of a non-empty set of equal-length vectors.
///
/// # Panics
/// Panics if `vs` is empty or the vectors disagree on length.
pub fn mean(vs: &[Vec<f64>]) -> Vec<f64> {
    assert!(!vs.is_empty(), "mean of empty set");
    let d = vs[0].len();
    let mut acc = vec![0.0; d];
    for v in vs {
        assert_eq!(v.len(), d, "mean: dimension mismatch");
        for i in 0..d {
            acc[i] += v[i];
        }
    }
    let inv = 1.0 / vs.len() as f64;
    for x in &mut acc {
        *x *= inv;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_hand_computation() {
        assert!((dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]) - 32.0).abs() < 1e-12);
    }

    #[test]
    fn dot_of_orthogonal_vectors_is_zero() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
    }

    #[test]
    fn dot_unrolled_matches_naive_at_every_tail_length() {
        // Lengths 0..=11 exercise zero chunks, full chunks, and every
        // remainder size of the 4-wide unrolling.
        for n in 0..12usize {
            let a: Vec<f64> = (0..n).map(|i| 0.3 + 0.17 * i as f64).collect();
            let b: Vec<f64> = (0..n).map(|i| 1.1 - 0.29 * i as f64).collect();
            let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!(
                (dot(&a, &b) - naive).abs() < 1e-12 * naive.abs().max(1.0),
                "n={n}: {} vs {naive}",
                dot(&a, &b)
            );
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dot_panics_on_mismatched_lengths() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn sub_and_add_are_inverses() {
        let a = [0.3, 0.7, 0.1];
        let b = [0.2, 0.5, 0.9];
        let back = add(&sub(&a, &b), &b);
        for (x, y) in back.iter().zip(a.iter()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = vec![1.0, 1.0];
        axpy(&mut a, 2.0, &[3.0, 4.0]);
        assert_eq!(a, vec![7.0, 9.0]);
    }

    #[test]
    fn norm_of_unit_axis_is_one() {
        assert_eq!(norm(&[0.0, 1.0, 0.0]), 1.0);
    }

    #[test]
    fn dist_is_symmetric_and_matches_norm_of_difference() {
        let a = [0.1, 0.9];
        let b = [0.7, 0.3];
        assert!((dist(&a, &b) - dist(&b, &a)).abs() < 1e-15);
        assert!((dist(&a, &b) - norm(&sub(&a, &b))).abs() < 1e-15);
    }

    #[test]
    fn dist_sq_is_square_of_dist() {
        let a = [0.2, 0.4, 0.4];
        let b = [0.5, 0.1, 0.4];
        assert!((dist_sq(&a, &b) - dist(&a, &b).powi(2)).abs() < 1e-12);
    }

    #[test]
    fn unit_rejects_zero_vector() {
        assert!(unit(&[0.0, 0.0]).is_none());
        let u = unit(&[3.0, 4.0]).unwrap();
        assert!((norm(&u) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_sum_lands_on_simplex() {
        let v = normalize_sum(&[1.0, 3.0]).unwrap();
        assert!((sum(&v) - 1.0).abs() < 1e-12);
        assert!((v[0] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn normalize_sum_rejects_nonpositive() {
        assert!(normalize_sum(&[0.0, 0.0]).is_none());
    }

    #[test]
    fn argmax_prefers_first_on_tie() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
        assert_eq!(argmin(&[2.0, 0.5, 0.5]), 1);
    }

    #[test]
    fn lerp_endpoints() {
        let a = [0.0, 1.0];
        let b = [1.0, 0.0];
        assert_eq!(lerp(&a, &b, 0.0), a.to_vec());
        assert_eq!(lerp(&a, &b, 1.0), b.to_vec());
        assert_eq!(lerp(&a, &b, 0.5), vec![0.5, 0.5]);
    }

    #[test]
    fn elem_min_max_bracket_inputs() {
        let a = [0.1, 0.9];
        let b = [0.5, 0.2];
        assert_eq!(elem_min(&a, &b), vec![0.1, 0.2]);
        assert_eq!(elem_max(&a, &b), vec![0.5, 0.9]);
    }

    #[test]
    fn mean_of_vertices_is_centroid() {
        let m = mean(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert_eq!(m, vec![0.5, 0.5]);
    }

    #[test]
    fn midpoint_is_lerp_half() {
        let a = [0.0, 0.4];
        let b = [1.0, 0.6];
        assert_eq!(midpoint(&a, &b), lerp(&a, &b, 0.5));
    }
}
