//! Batched utility scans over row-major point buffers.
//!
//! The per-round hot loop of every interactive algorithm in this workspace
//! is "for each utility vector, find the top-1 point": EA runs it over a
//! hundred-plus sampled vectors per round, the max-regret estimator over
//! thousands. Scanning the point buffer once per utility vector is
//! memory-bound at realistic sizes (`n = 100k, d = 20` is a 16 MB stream),
//! so [`top1_batch`] blocks the scan: a block of points is loaded once and
//! scored against *every* utility vector while it is hot in cache, cutting
//! point-buffer traffic from `k·n·d` to `n·d` reads.
//!
//! Every kernel is exact — same dot product, same scan order, same strict
//! `>` tie-breaking as [`top1_scalar`] — so callers can switch backends
//! without behavioral change. Faster layouts live in [`crate::soa`]; the
//! process-wide backend choice is a [`ScanBackend`] (env knob
//! `ISRL_SCAN_BACKEND`, programmatic [`set_scan_backend`]) that
//! `Dataset`-level callers dispatch on.
//!
//! # Non-finite semantics
//!
//! NaN scores never win: `v > best` is false for NaN, so a NaN-scored row
//! is skipped and the best finite (or `±inf`) row is returned. When *no*
//! score compares greater than `-inf` — every score is NaN or `-inf` —
//! the kernels return the sentinel `Top1 { index: 0, value: -inf }`, and
//! when at least one score is NaN they additionally bump the
//! [`TOP1_NAN_COUNTER`] warning counter (`scan.top1_nan`), which
//! `trace-validate` treats as a hard failure. NaN in a *utility vector*
//! is a caller bug and trips a `debug_assert`; NaN in the point buffer is
//! tolerated under the semantics above. All backends (scalar, batched,
//! SIMD, SoA, SoA-f32) agree bit-for-bit on these cases — pinned by
//! `tests/scan_backends.rs`.

use crate::{simd, vector};
use std::sync::atomic::{AtomicU8, Ordering};

/// Result of a top-1 scan for one utility vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Top1 {
    /// Index of the winning point (first index wins ties).
    pub index: usize,
    /// The winning utility value `u · p`.
    pub value: f64,
}

/// Warning counter bumped when a utility vector's scan produced only
/// NaN/`-inf` scores with at least one NaN (`trace-validate` fails on it).
pub const TOP1_NAN_COUNTER: &str = "scan.top1_nan";

/// Which kernel implementation `Dataset`-level scans dispatch to.
///
/// The process-wide default comes from the `ISRL_SCAN_BACKEND` environment
/// variable (`auto` | `scalar` | `simd` | `soa` | `soa-f32`), read once on
/// first use; [`set_scan_backend`] overrides it programmatically. All
/// backends return bit-identical results, so the knob is purely a
/// performance choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanBackend {
    /// Pick the fastest exact backend: [`ScanBackend::Soa`] (its inner
    /// axpy uses AVX2 when the CPU has it, portable unrolled loops
    /// otherwise).
    Auto,
    /// Row-major blocked scan with the portable [`vector::dot`].
    Scalar,
    /// Row-major blocked scan with the runtime-detected [`simd::dot`].
    Simd,
    /// Column-major (structure-of-arrays) f64 scan ([`crate::soa::top1_soa`]).
    Soa,
    /// Column-major f32 scan with exact f64 candidate rescan
    /// ([`crate::soa::top1_soa_f32`]). Opt-in: fastest on wide scans, but
    /// the candidate pass degrades toward a full rescan on adversarially
    /// close scores.
    SoaF32,
}

impl ScanBackend {
    /// Resolves [`ScanBackend::Auto`] to the concrete backend it selects.
    #[inline]
    pub fn resolve(self) -> ScanBackend {
        match self {
            ScanBackend::Auto => ScanBackend::Soa,
            other => other,
        }
    }

    fn encode(self) -> u8 {
        match self {
            ScanBackend::Auto => 0,
            ScanBackend::Scalar => 1,
            ScanBackend::Simd => 2,
            ScanBackend::Soa => 3,
            ScanBackend::SoaF32 => 4,
        }
    }

    fn decode(v: u8) -> ScanBackend {
        match v {
            1 => ScanBackend::Scalar,
            2 => ScanBackend::Simd,
            3 => ScanBackend::Soa,
            4 => ScanBackend::SoaF32,
            _ => ScanBackend::Auto,
        }
    }
}

/// 255 = "not yet initialized from the environment".
const BACKEND_UNSET: u8 = 255;
static BACKEND: AtomicU8 = AtomicU8::new(BACKEND_UNSET);

/// The process-wide scan backend (initializing from `ISRL_SCAN_BACKEND`
/// on first call; unknown values warn on stderr and fall back to `Auto`).
pub fn scan_backend() -> ScanBackend {
    let raw = BACKEND.load(Ordering::Relaxed);
    if raw != BACKEND_UNSET {
        return ScanBackend::decode(raw);
    }
    let initial = match std::env::var("ISRL_SCAN_BACKEND") {
        Ok(v) => match v.to_ascii_lowercase().as_str() {
            "auto" | "" => ScanBackend::Auto,
            "scalar" => ScanBackend::Scalar,
            "simd" => ScanBackend::Simd,
            "soa" => ScanBackend::Soa,
            "soa-f32" | "soa_f32" | "f32" => ScanBackend::SoaF32,
            other => {
                eprintln!("warning: unknown ISRL_SCAN_BACKEND '{other}', using auto");
                ScanBackend::Auto
            }
        },
        Err(_) => ScanBackend::Auto,
    };
    BACKEND.store(initial.encode(), Ordering::Relaxed);
    initial
}

/// Overrides the process-wide scan backend (e.g. from a CLI flag or a
/// before/after benchmark). Takes effect for all subsequent scans.
pub fn set_scan_backend(backend: ScanBackend) {
    BACKEND.store(backend.encode(), Ordering::Relaxed);
}

/// Debug-build check that a utility vector is NaN-free (NaN utilities are
/// caller bugs; NaN *points* take the documented sentinel path instead).
#[inline]
pub(crate) fn debug_assert_utilities_finite(u: &[f64]) {
    debug_assert!(
        u.iter().all(|x| !x.is_nan()),
        "top1 scan: NaN in utility vector"
    );
}

/// Bumps [`TOP1_NAN_COUNTER`] for every utility whose result is the
/// `{index: 0, value: -inf}` sentinel *and* whose scores contain a NaN
/// (`any_nan_score` is only consulted for sentinel results, keeping the
/// happy path free).
pub(crate) fn apply_nan_sentinel<U: AsRef<[f64]>>(
    utilities: &[U],
    best: &[Top1],
    any_nan_score: impl Fn(&[f64]) -> bool,
) {
    for (u, b) in utilities.iter().zip(best) {
        if b.value == f64::NEG_INFINITY && any_nan_score(u.as_ref()) {
            isrl_obs::add(TOP1_NAN_COUNTER, 1);
        }
    }
}

/// Picks the point-block height so a block stays L1-resident: `rows·dim`
/// f64s ≈ 24 KB, leaving room for the utility vectors and accumulators.
#[inline]
fn block_rows(dim: usize) -> usize {
    (3072 / dim.max(1)).max(8)
}

/// The reference scalar scan: one pass over the buffer for one utility
/// vector, first index wins ties. Every other backend is differential-
/// tested against this.
///
/// # Panics
/// Panics when the buffer is not a multiple of `dim` or is empty.
pub fn top1_scalar(u: &[f64], points: &[f64], dim: usize) -> Top1 {
    assert!(dim > 0, "top1_scalar needs a positive dimension");
    assert_eq!(points.len() % dim, 0, "point buffer length must be n * dim");
    assert!(!points.is_empty(), "top1_scalar over an empty point buffer");
    assert_eq!(u.len(), dim, "utility vector dimension mismatch");
    debug_assert_utilities_finite(u);
    let mut best = Top1 {
        index: 0,
        value: f64::NEG_INFINITY,
    };
    for (i, p) in points.chunks_exact(dim).enumerate() {
        let v = vector::dot(p, u);
        if v > best.value {
            best = Top1 { index: i, value: v };
        }
    }
    apply_nan_sentinel(&[u], std::slice::from_ref(&best), |u| {
        points.chunks_exact(dim).any(|p| vector::dot(p, u).is_nan())
    });
    best
}

/// Shared blocked row-major kernel, parameterized by the dot product so
/// the portable and SIMD entry points stay one implementation.
fn top1_batch_with<U: AsRef<[f64]>>(
    utilities: &[U],
    points: &[f64],
    dim: usize,
    dot: impl Fn(&[f64], &[f64]) -> f64,
) -> Vec<Top1> {
    assert!(dim > 0, "top1_batch needs a positive dimension");
    assert_eq!(points.len() % dim, 0, "point buffer length must be n * dim");
    assert!(!points.is_empty(), "top1_batch over an empty point buffer");
    for u in utilities {
        let u = u.as_ref();
        assert_eq!(u.len(), dim, "utility vector dimension mismatch");
        debug_assert_utilities_finite(u);
    }

    let mut best = vec![
        Top1 {
            index: 0,
            value: f64::NEG_INFINITY
        };
        utilities.len()
    ];
    let rows_per_block = block_rows(dim);
    isrl_obs::add("scan.top1_calls", 1);
    isrl_obs::add("scan.top1_utilities", utilities.len() as u64);
    isrl_obs::add(
        "scan.top1_blocks",
        points.len().div_ceil(rows_per_block * dim) as u64,
    );
    for (block_idx, block) in points.chunks(rows_per_block * dim).enumerate() {
        let base = block_idx * rows_per_block;
        for (u, b) in utilities.iter().zip(best.iter_mut()) {
            let u = u.as_ref();
            for (row, p) in block.chunks_exact(dim).enumerate() {
                let v = dot(p, u);
                if v > b.value {
                    b.value = v;
                    b.index = base + row;
                }
            }
        }
    }
    apply_nan_sentinel(utilities, &best, |u| {
        points.chunks_exact(dim).any(|p| vector::dot(p, u).is_nan())
    });
    best
}

/// Top-1 point per utility vector over a row-major point buffer.
///
/// `points` holds `n = points.len() / dim` rows; every utility slice must
/// have length `dim`. Returns one [`Top1`] per utility vector, in order.
/// Equivalent to running [`top1_scalar`] per utility vector (first index
/// wins ties), but with cache-blocked traversal. See the module docs for
/// the NaN sentinel semantics.
///
/// # Panics
/// Panics when the buffer is not a multiple of `dim`, when the buffer is
/// empty, or when a utility vector's length differs from `dim`.
pub fn top1_batch<U: AsRef<[f64]>>(utilities: &[U], points: &[f64], dim: usize) -> Vec<Top1> {
    top1_batch_with(utilities, points, dim, vector::dot)
}

/// [`top1_batch`] with the runtime-feature-detected [`simd::dot`]
/// (bit-identical results; faster per-row dot on AVX2 hardware).
///
/// # Panics
/// As [`top1_batch`].
pub fn top1_batch_simd<U: AsRef<[f64]>>(utilities: &[U], points: &[f64], dim: usize) -> Vec<Top1> {
    top1_batch_with(utilities, points, dim, simd::dot)
}

fn row_dots_with(
    points: &[f64],
    dim: usize,
    u: &[f64],
    out: &mut Vec<f64>,
    dot: impl Fn(&[f64], &[f64]) -> f64,
) {
    assert!(dim > 0, "row_dots needs a positive dimension");
    assert_eq!(points.len() % dim, 0, "point buffer length must be n * dim");
    assert_eq!(u.len(), dim, "utility vector dimension mismatch");
    out.clear();
    let n = points.len() / dim;
    // Only grow when the existing allocation is too small — repeat calls
    // with a retained buffer must not re-reserve (capacity stability).
    if out.capacity() < n {
        out.reserve_exact(n);
    }
    out.extend(points.chunks_exact(dim).map(|p| dot(p, u)));
}

/// All dot products `points[i] · u`, appended to `out` (cleared first;
/// reservation accounts for existing capacity, so a retained buffer is
/// never re-grown). The single-utility companion of [`top1_batch`] for
/// callers that need every score (top-k selection, sorting) rather than
/// just the winner.
///
/// # Panics
/// Panics when the buffer is not a multiple of `dim` or `u.len() != dim`.
pub fn row_dots(points: &[f64], dim: usize, u: &[f64], out: &mut Vec<f64>) {
    row_dots_with(points, dim, u, out, vector::dot);
}

/// [`row_dots`] with the runtime-feature-detected [`simd::dot`]
/// (bit-identical results).
///
/// # Panics
/// As [`row_dots`].
pub fn row_dots_simd(points: &[f64], dim: usize, u: &[f64], out: &mut Vec<f64>) {
    row_dots_with(points, dim, u, out, simd::dot);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_points(n: usize, dim: usize, seed: u64) -> Vec<f64> {
        // Deterministic pseudo-random fill (SplitMix64) — no RNG dep here.
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            ((z ^ (z >> 31)) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        };
        (0..n * dim).map(|_| next()).collect()
    }

    #[test]
    fn matches_scalar_scan_exactly() {
        for &(n, dim, k) in &[
            (1usize, 2usize, 1usize),
            (7, 3, 5),
            (100, 4, 9),
            (1000, 20, 17),
        ] {
            let points = pseudo_points(n, dim, 42 + n as u64);
            let utilities: Vec<Vec<f64>> = (0..k)
                .map(|i| pseudo_points(1, dim, 1000 + i as u64))
                .collect();
            let batched = top1_batch(&utilities, &points, dim);
            let simd = top1_batch_simd(&utilities, &points, dim);
            for ((u, b), s_) in utilities.iter().zip(&batched).zip(&simd) {
                let s = top1_scalar(u, &points, dim);
                assert_eq!(b.index, s.index, "n={n} dim={dim}");
                assert_eq!(b.value, s.value, "bit-exact value expected");
                assert_eq!(*s_, s, "simd path n={n} dim={dim}");
            }
        }
    }

    #[test]
    fn first_index_wins_ties() {
        let points = vec![0.5, 0.5, 0.5, 0.5, 0.9, 0.1];
        let out = top1_batch(&[vec![0.5, 0.5]], &points, 2);
        assert_eq!(out[0].index, 0, "tie between rows 0 and 1 goes to 0");
    }

    #[test]
    fn crosses_block_boundaries() {
        // More rows than one block so the winner can sit in a later block.
        let dim = 3;
        let n = block_rows(dim) * 2 + 5;
        let mut points = pseudo_points(n, dim, 7);
        let winner = n - 2;
        for x in &mut points[winner * dim..(winner + 1) * dim] {
            *x = 10.0;
        }
        let out = top1_batch(&[vec![1.0, 1.0, 1.0]], &points, dim);
        assert_eq!(out[0].index, winner);
    }

    #[test]
    fn empty_utility_list_is_fine() {
        let points = vec![0.1, 0.2];
        assert!(top1_batch::<Vec<f64>>(&[], &points, 2).is_empty());
    }

    #[test]
    fn row_dots_matches_per_row_dot() {
        let dim = 5;
        let points = pseudo_points(33, dim, 3);
        let u = pseudo_points(1, dim, 4);
        let mut out = Vec::new();
        row_dots(&points, dim, &u, &mut out);
        assert_eq!(out.len(), 33);
        for (i, p) in points.chunks_exact(dim).enumerate() {
            assert_eq!(out[i], vector::dot(p, &u));
        }
        let mut out2 = Vec::new();
        row_dots_simd(&points, dim, &u, &mut out2);
        assert_eq!(out, out2);
    }

    #[test]
    fn row_dots_capacity_is_stable_across_repeat_calls() {
        let dim = 4;
        let points = pseudo_points(100, dim, 5);
        let u = pseudo_points(1, dim, 6);
        let mut out = Vec::new();
        row_dots(&points, dim, &u, &mut out);
        let cap = out.capacity();
        assert!(cap >= 100);
        for _ in 0..5 {
            row_dots(&points, dim, &u, &mut out);
            assert_eq!(out.capacity(), cap, "retained buffer must not regrow");
        }
        // A pre-sized buffer is honored, not doubled past.
        let mut pre = Vec::with_capacity(128);
        row_dots(&points, dim, &u, &mut pre);
        assert_eq!(pre.capacity(), 128);
    }

    #[test]
    #[should_panic(expected = "n * dim")]
    fn ragged_buffer_rejected() {
        top1_batch(&[vec![1.0, 0.0]], &[0.1, 0.2, 0.3], 2);
    }

    #[test]
    fn nan_points_are_skipped_not_winners() {
        // Row 1 has the largest finite score; row 0's score is NaN.
        let points = vec![f64::NAN, 0.5, 0.9, 0.9, 0.1, 0.1];
        let out = top1_batch(&[vec![1.0, 1.0]], &points, 2);
        assert_eq!(out[0].index, 1);
        assert_eq!(out[0].value, 1.8);
    }

    #[test]
    fn all_nan_scores_return_sentinel() {
        let points = vec![f64::NAN, f64::NAN, f64::NAN, f64::NAN];
        let out = top1_batch(&[vec![1.0, 1.0]], &points, 2);
        assert_eq!(out[0].index, 0);
        assert_eq!(out[0].value, f64::NEG_INFINITY);
        let s = top1_scalar(&[1.0, 1.0], &points, 2);
        assert_eq!(s, out[0]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "NaN in utility vector")]
    fn nan_utility_vector_is_a_caller_bug() {
        top1_batch(&[vec![f64::NAN, 1.0]], &[0.1, 0.2], 2);
    }

    #[test]
    fn backend_knob_round_trips() {
        assert_eq!(ScanBackend::Auto.resolve(), ScanBackend::Soa);
        assert_eq!(ScanBackend::SoaF32.resolve(), ScanBackend::SoaF32);
        for b in [
            ScanBackend::Auto,
            ScanBackend::Scalar,
            ScanBackend::Simd,
            ScanBackend::Soa,
            ScanBackend::SoaF32,
        ] {
            assert_eq!(ScanBackend::decode(b.encode()), b);
        }
    }
}
