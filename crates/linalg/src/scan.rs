//! Batched utility scans over row-major point buffers.
//!
//! The per-round hot loop of every interactive algorithm in this workspace
//! is "for each utility vector, find the top-1 point": EA runs it over a
//! hundred-plus sampled vectors per round, the max-regret estimator over
//! thousands. Scanning the point buffer once per utility vector is
//! memory-bound at realistic sizes (`n = 100k, d = 20` is a 16 MB stream),
//! so [`top1_batch`] blocks the scan: a block of points is loaded once and
//! scored against *every* utility vector while it is hot in cache, cutting
//! point-buffer traffic from `k·n·d` to `n·d` reads.
//!
//! The kernel is exact — same dot product, same scan order, same strict
//! `>` tie-breaking as [`argmax` over a single utility] — so callers can
//! switch between the scalar and batched paths without behavioral change.

use crate::vector;

/// Result of a top-1 scan for one utility vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Top1 {
    /// Index of the winning point (first index wins ties).
    pub index: usize,
    /// The winning utility value `u · p`.
    pub value: f64,
}

/// Picks the point-block height so a block stays L1-resident: `rows·dim`
/// f64s ≈ 24 KB, leaving room for the utility vectors and accumulators.
#[inline]
fn block_rows(dim: usize) -> usize {
    (3072 / dim.max(1)).max(8)
}

/// Top-1 point per utility vector over a row-major point buffer.
///
/// `points` holds `n = points.len() / dim` rows; every utility slice must
/// have length `dim`. Returns one [`Top1`] per utility vector, in order.
/// Equivalent to running a scalar argmax scan per utility vector (first
/// index wins ties), but with cache-blocked traversal.
///
/// # Panics
/// Panics when the buffer is not a multiple of `dim`, when the buffer is
/// empty, or when a utility vector's length differs from `dim`.
pub fn top1_batch<U: AsRef<[f64]>>(utilities: &[U], points: &[f64], dim: usize) -> Vec<Top1> {
    assert!(dim > 0, "top1_batch needs a positive dimension");
    assert_eq!(points.len() % dim, 0, "point buffer length must be n * dim");
    assert!(!points.is_empty(), "top1_batch over an empty point buffer");
    for u in utilities {
        assert_eq!(u.as_ref().len(), dim, "utility vector dimension mismatch");
    }

    let mut best = vec![
        Top1 {
            index: 0,
            value: f64::NEG_INFINITY
        };
        utilities.len()
    ];
    let rows_per_block = block_rows(dim);
    isrl_obs::add("scan.top1_calls", 1);
    isrl_obs::add("scan.top1_utilities", utilities.len() as u64);
    isrl_obs::add(
        "scan.top1_blocks",
        points.len().div_ceil(rows_per_block * dim) as u64,
    );
    for (block_idx, block) in points.chunks(rows_per_block * dim).enumerate() {
        let base = block_idx * rows_per_block;
        for (u, b) in utilities.iter().zip(best.iter_mut()) {
            let u = u.as_ref();
            for (row, p) in block.chunks_exact(dim).enumerate() {
                let v = vector::dot(p, u);
                if v > b.value {
                    b.value = v;
                    b.index = base + row;
                }
            }
        }
    }
    best
}

/// All dot products `points[i] · u`, appended to `out` (cleared first).
/// The single-utility companion of [`top1_batch`] for callers that need
/// every score (top-k selection, sorting) rather than just the winner.
///
/// # Panics
/// Panics when the buffer is not a multiple of `dim` or `u.len() != dim`.
pub fn row_dots(points: &[f64], dim: usize, u: &[f64], out: &mut Vec<f64>) {
    assert!(dim > 0, "row_dots needs a positive dimension");
    assert_eq!(points.len() % dim, 0, "point buffer length must be n * dim");
    assert_eq!(u.len(), dim, "utility vector dimension mismatch");
    out.clear();
    out.reserve(points.len() / dim);
    out.extend(points.chunks_exact(dim).map(|p| vector::dot(p, u)));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reference scalar scan: one pass per utility vector.
    fn scalar_top1(u: &[f64], points: &[f64], dim: usize) -> Top1 {
        let mut best = Top1 {
            index: 0,
            value: f64::NEG_INFINITY,
        };
        for (i, p) in points.chunks_exact(dim).enumerate() {
            let v = vector::dot(p, u);
            if v > best.value {
                best = Top1 { index: i, value: v };
            }
        }
        best
    }

    fn pseudo_points(n: usize, dim: usize, seed: u64) -> Vec<f64> {
        // Deterministic pseudo-random fill (SplitMix64) — no RNG dep here.
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            ((z ^ (z >> 31)) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        };
        (0..n * dim).map(|_| next()).collect()
    }

    #[test]
    fn matches_scalar_scan_exactly() {
        for &(n, dim, k) in &[
            (1usize, 2usize, 1usize),
            (7, 3, 5),
            (100, 4, 9),
            (1000, 20, 17),
        ] {
            let points = pseudo_points(n, dim, 42 + n as u64);
            let utilities: Vec<Vec<f64>> = (0..k)
                .map(|i| pseudo_points(1, dim, 1000 + i as u64))
                .collect();
            let batched = top1_batch(&utilities, &points, dim);
            for (u, b) in utilities.iter().zip(&batched) {
                let s = scalar_top1(u, &points, dim);
                assert_eq!(b.index, s.index, "n={n} dim={dim}");
                assert_eq!(b.value, s.value, "bit-exact value expected");
            }
        }
    }

    #[test]
    fn first_index_wins_ties() {
        let points = vec![0.5, 0.5, 0.5, 0.5, 0.9, 0.1];
        let out = top1_batch(&[vec![0.5, 0.5]], &points, 2);
        assert_eq!(out[0].index, 0, "tie between rows 0 and 1 goes to 0");
    }

    #[test]
    fn crosses_block_boundaries() {
        // More rows than one block so the winner can sit in a later block.
        let dim = 3;
        let n = block_rows(dim) * 2 + 5;
        let mut points = pseudo_points(n, dim, 7);
        let winner = n - 2;
        for x in &mut points[winner * dim..(winner + 1) * dim] {
            *x = 10.0;
        }
        let out = top1_batch(&[vec![1.0, 1.0, 1.0]], &points, dim);
        assert_eq!(out[0].index, winner);
    }

    #[test]
    fn empty_utility_list_is_fine() {
        let points = vec![0.1, 0.2];
        assert!(top1_batch::<Vec<f64>>(&[], &points, 2).is_empty());
    }

    #[test]
    fn row_dots_matches_per_row_dot() {
        let dim = 5;
        let points = pseudo_points(33, dim, 3);
        let u = pseudo_points(1, dim, 4);
        let mut out = Vec::new();
        row_dots(&points, dim, &u, &mut out);
        assert_eq!(out.len(), 33);
        for (i, p) in points.chunks_exact(dim).enumerate() {
            assert_eq!(out[i], vector::dot(p, &u));
        }
    }

    #[test]
    #[should_panic(expected = "n * dim")]
    fn ragged_buffer_rejected() {
        top1_batch(&[vec![1.0, 0.0]], &[0.1, 0.2, 0.3], 2);
    }
}
