//! Statistical reductions used by the data generators and metric reporters.

/// Arithmetic mean. Returns `0.0` for an empty slice (the reporting code
/// treats an empty run set as "no data", not an error).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Maximum value; `None` when empty or any element is NaN.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter()
        .try_fold(f64::NEG_INFINITY, |acc, &x| {
            if x.is_nan() {
                None
            } else {
                Some(acc.max(x))
            }
        })
        .filter(|_| !xs.is_empty())
}

/// Minimum value; `None` when empty or any element is NaN.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter()
        .try_fold(f64::INFINITY, |acc, &x| {
            if x.is_nan() {
                None
            } else {
                Some(acc.min(x))
            }
        })
        .filter(|_| !xs.is_empty())
}

/// `p`-th percentile (0 ≤ p ≤ 100) by linear interpolation on the sorted data.
/// Returns `None` when empty or when any element is NaN (matching
/// [`min`]/[`max`] — a NaN sample means the statistic is undefined, not
/// a panic).
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|x| x.is_nan()) {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = (p / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] + frac * (sorted[hi] - sorted[lo]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_constant_sequence() {
        assert_eq!(mean(&[2.0, 2.0, 2.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn std_dev_of_constant_is_zero() {
        assert_eq!(std_dev(&[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn std_dev_matches_hand_computation() {
        // Population std of [1, 3] is 1.
        assert!((std_dev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_max_handle_empty_and_nan() {
        assert_eq!(max(&[]), None);
        assert_eq!(min(&[]), None);
        assert_eq!(max(&[1.0, f64::NAN]), None);
        assert_eq!(max(&[1.0, 4.0, 2.0]), Some(4.0));
        assert_eq!(min(&[1.0, 4.0, 2.0]), Some(1.0));
    }

    #[test]
    fn percentile_endpoints_and_median() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 100.0), Some(4.0));
        assert_eq!(percentile(&xs, 50.0), Some(2.5));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn percentile_returns_none_on_nan_instead_of_panicking() {
        assert_eq!(percentile(&[1.0, f64::NAN, 3.0], 50.0), None);
        assert_eq!(percentile(&[f64::NAN], 0.0), None);
        // Infinities are ordered fine and stay supported.
        assert_eq!(
            percentile(&[f64::NEG_INFINITY, 0.0, f64::INFINITY], 50.0),
            Some(0.0)
        );
    }
}
