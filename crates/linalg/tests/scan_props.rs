//! Property tests for the batched utility-scan kernel: [`top1_batch`] must
//! be *bit-exact* against the scalar one-utility-at-a-time scan — same dot
//! products, same first-index tie-breaking — for arbitrary buffer shapes.

use isrl_linalg::{row_dots, top1_batch, vector, Top1};
use proptest::prelude::*;

/// The reference implementation: one full scan per utility vector.
fn scalar_top1(u: &[f64], points: &[f64], dim: usize) -> Top1 {
    let mut best = Top1 {
        index: 0,
        value: f64::NEG_INFINITY,
    };
    for (i, p) in points.chunks_exact(dim).enumerate() {
        let v = vector::dot(p, u);
        if v > best.value {
            best = Top1 { index: i, value: v };
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn top1_batch_is_bit_exact_against_scalar_scan(
        dim in 1usize..=24,
        raw_points in prop::collection::vec(0.0f64..1.0, 24..4096),
        raw_utils in prop::collection::vec(
            prop::collection::vec(0.0f64..1.0, 24),
            0..12,
        )
    ) {
        // Truncate the raw buffer to a whole number of dim-rows and every
        // utility vector to dim coordinates.
        let n = (raw_points.len() / dim).max(1);
        let points = &raw_points[..n * dim];
        let utilities: Vec<Vec<f64>> =
            raw_utils.iter().map(|u| u[..dim].to_vec()).collect();

        let batched = top1_batch(&utilities, points, dim);
        prop_assert_eq!(batched.len(), utilities.len());
        for (u, b) in utilities.iter().zip(&batched) {
            let s = scalar_top1(u, points, dim);
            prop_assert_eq!(b.index, s.index, "n={} dim={}", n, dim);
            prop_assert_eq!(b.value, s.value, "value must be bit-exact");
        }
    }

    #[test]
    fn row_dots_matches_per_row_dot_products(
        dim in 1usize..=16,
        raw_points in prop::collection::vec(0.0f64..1.0, 16..512),
        raw_u in prop::collection::vec(0.0f64..1.0, 16)
    ) {
        let n = (raw_points.len() / dim).max(1);
        let points = &raw_points[..n * dim];
        let u = &raw_u[..dim];
        let mut out = Vec::new();
        row_dots(points, dim, u, &mut out);
        prop_assert_eq!(out.len(), n);
        for (i, p) in points.chunks_exact(dim).enumerate() {
            prop_assert_eq!(out[i], vector::dot(p, u));
        }
    }

    #[test]
    fn dot_unrolled_stays_close_to_sequential(
        dim in 1usize..=64,
        raw_a in prop::collection::vec(-1.0f64..1.0, 64),
        raw_b in prop::collection::vec(-1.0f64..1.0, 64),
    ) {
        // The 4-lane unrolled accumulator reassociates the sum; it must
        // stay within f64 rounding of the sequential reference, and be
        // bit-identical to it below one chunk (the low-d exact paths).
        let a = &raw_a[..dim];
        let b = &raw_b[..dim];
        let naive: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        let got = vector::dot(a, b);
        prop_assert!(
            (got - naive).abs() <= 1e-12 * naive.abs().max(1.0),
            "dim={}: {} vs {}", dim, got, naive
        );
        if dim < 4 {
            prop_assert_eq!(got, naive, "tail path must match sequential order");
        }
    }

    #[test]
    fn duplicated_rows_tie_break_to_the_first_index(
        dim in 1usize..=8,
        row in prop::collection::vec(0.1f64..1.0, 8),
        copies in 2usize..=5
    ) {
        // A buffer of identical rows: every utility vector ties everywhere,
        // and the batched kernel must pick index 0 like the scalar scan.
        let row = &row[..dim];
        let points: Vec<f64> =
            std::iter::repeat(row).take(copies).flatten().copied().collect();
        let u = vec![1.0 / dim as f64; dim];
        let out = top1_batch(&[u], &points, dim);
        prop_assert_eq!(out[0].index, 0);
    }
}
