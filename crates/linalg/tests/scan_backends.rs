//! Differential battery for the scan backends: the row-major blocked scan
//! (portable and SIMD dot), the structure-of-arrays f64 scan, and the
//! f32-with-f64-rescan scan must all be **bit-exact** against the
//! reference scalar scan — same winning index, same winning value down to
//! the bit pattern — on finite data, adversarially close scores, exact
//! ties, block-boundary crossings, and non-finite inputs.

use isrl_linalg::{
    row_dots, row_dots_simd, row_dots_soa, simd, soa::SOA_BLOCK_ROWS, top1_batch, top1_batch_simd,
    top1_scalar, top1_soa, top1_soa_f32, vector, SoaBuffer, Top1,
};
use proptest::prelude::*;

/// Runs every backend and asserts bit-identical `Top1` results.
fn assert_all_backends_bit_exact(utilities: &[Vec<f64>], points: &[f64], dim: usize) {
    let reference: Vec<Top1> = utilities
        .iter()
        .map(|u| top1_scalar(u, points, dim))
        .collect();
    let soa = SoaBuffer::from_flat(points, dim);
    let runs: [(&str, Vec<Top1>); 4] = [
        ("batched", top1_batch(utilities, points, dim)),
        ("batched-simd", top1_batch_simd(utilities, points, dim)),
        ("soa", top1_soa(utilities, &soa)),
        ("soa-f32", top1_soa_f32(utilities, &soa, points)),
    ];
    for (name, got) in &runs {
        assert_eq!(got.len(), reference.len(), "{name}: result count");
        for (k, (g, r)) in got.iter().zip(&reference).enumerate() {
            assert_eq!(g.index, r.index, "{name}: index diverged for utility {k}");
            assert_eq!(
                g.value.to_bits(),
                r.value.to_bits(),
                "{name}: value diverged for utility {k}: {} vs {}",
                g.value,
                r.value
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_backends_agree_on_finite_data(
        dim in 1usize..=24,
        raw_points in prop::collection::vec(-1.0f64..1.0, 24..4096),
        raw_utils in prop::collection::vec(
            prop::collection::vec(-1.0f64..1.0, 24),
            1..8,
        )
    ) {
        let n = (raw_points.len() / dim).max(1);
        let points = &raw_points[..n * dim];
        let utilities: Vec<Vec<f64>> =
            raw_utils.iter().map(|u| u[..dim].to_vec()).collect();
        assert_all_backends_bit_exact(&utilities, points, dim);
    }

    #[test]
    fn all_backends_agree_on_nonfinite_points(
        dim in 1usize..=12,
        raw_points in prop::collection::vec(-1.0f64..1.0, 12..512),
        raw_utils in prop::collection::vec(
            prop::collection::vec(-1.0f64..1.0, 12),
            1..5,
        ),
        // (position, kind) pairs spliced into the point buffer: NaN,
        // infinities, and magnitudes that overflow/underflow in f32.
        splices in prop::collection::vec((0usize..512, 0usize..6), 0..12)
    ) {
        let n = (raw_points.len() / dim).max(1);
        let mut points = raw_points[..n * dim].to_vec();
        for &(pos, kind) in &splices {
            let v = match kind {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => 1e300,   // overflows to inf in f32
                4 => -1e300,
                _ => 1e-300,  // underflows to 0 in f32
            };
            let len = points.len();
            points[pos % len] = v;
        }
        let utilities: Vec<Vec<f64>> =
            raw_utils.iter().map(|u| u[..dim].to_vec()).collect();
        assert_all_backends_bit_exact(&utilities, &points, dim);
    }

    #[test]
    fn f32_rescan_survives_ulp_close_scores(
        dim in 1usize..=8,
        base in prop::collection::vec(0.1f64..1.0, 8),
        // Tiny per-row perturbations, far below f32 resolution.
        bumps in prop::collection::vec(-1.0f64..1.0, 4..64),
        u in prop::collection::vec(0.1f64..1.0, 8)
    ) {
        // Every row is the same point nudged by ~1e-12: the f32 pass
        // cannot tell rows apart, so the candidate set must cover them
        // all and the f64 rescan must decide.
        let base = &base[..dim];
        let mut points = Vec::with_capacity(bumps.len() * dim);
        for (i, b) in bumps.iter().enumerate() {
            for (j, &x) in base.iter().enumerate() {
                points.push(x + b * 1e-12 * ((i + j) % 3) as f64);
            }
        }
        let utilities = vec![u[..dim].to_vec()];
        assert_all_backends_bit_exact(&utilities, &points, dim);
    }

    #[test]
    fn simd_dot_is_bitwise_identical_to_portable(
        a in prop::collection::vec(-1e3f64..1e3, 0..40),
        b in prop::collection::vec(-1e3f64..1e3, 0..40)
    ) {
        let n = a.len().min(b.len());
        prop_assert_eq!(
            simd::dot(&a[..n], &b[..n]).to_bits(),
            vector::dot(&a[..n], &b[..n]).to_bits()
        );
    }
}

#[test]
fn exact_ties_break_to_first_index_in_every_backend() {
    // Rows 3 and 7 are identical and maximal; everyone must return 3.
    let dim = 4;
    let mut points = vec![0.25f64; 12 * dim];
    for (i, row) in points.chunks_exact_mut(dim).enumerate() {
        let v = if i == 3 || i == 7 {
            0.9
        } else {
            0.1 * (i % 3) as f64
        };
        row.fill(v);
    }
    let utilities = vec![vec![0.3, 0.2, 0.4, 0.1]];
    assert_all_backends_bit_exact(&utilities, &points, dim);
    assert_eq!(top1_scalar(&utilities[0], &points, dim).index, 3);
}

#[test]
fn winner_in_final_partial_block_is_found_by_every_backend() {
    // n crosses both the row-major block height and SOA_BLOCK_ROWS, with
    // the winner in the final (partial) block.
    let dim = 5;
    let n = 2 * SOA_BLOCK_ROWS + 3;
    let mut points: Vec<f64> = (0..n * dim)
        .map(|i| 0.1 + 0.8 * ((i * 2654435761) % 1000) as f64 / 1000.0)
        .collect();
    let winner = n - 2;
    for x in &mut points[winner * dim..(winner + 1) * dim] {
        *x = 5.0;
    }
    let utilities = vec![vec![0.2; dim], vec![1.0, 0.0, 0.0, 0.0, 0.0]];
    assert_all_backends_bit_exact(&utilities, &points, dim);
    assert_eq!(top1_scalar(&utilities[0], &points, dim).index, winner);
}

#[test]
fn all_nan_scores_yield_the_sentinel_in_every_backend() {
    let dim = 3;
    let points = vec![f64::NAN; 7 * dim];
    let utilities = vec![vec![0.5, 0.25, 0.25]];
    assert_all_backends_bit_exact(&utilities, &points, dim);
    let s = top1_scalar(&utilities[0], &points, dim);
    assert_eq!(s.index, 0);
    assert_eq!(s.value, f64::NEG_INFINITY);
}

#[test]
fn mixed_nan_rows_lose_to_the_best_finite_row() {
    let dim = 2;
    let points = vec![f64::NAN, 1.0, 0.4, 0.4, 0.9, 0.9, f64::INFINITY, 0.0];
    let utilities = vec![vec![0.5, 0.5], vec![0.0, 1.0]];
    assert_all_backends_bit_exact(&utilities, &points, dim);
    // +inf·0.0 = NaN score for the last row under the second utility; the
    // finite row 1 must win there.
    assert_eq!(top1_scalar(&utilities[1], &points, dim).index, 2);
}

#[test]
fn row_dots_variants_are_bitwise_identical_and_capacity_stable() {
    let dim = 7;
    let n = SOA_BLOCK_ROWS + 11;
    let points: Vec<f64> = (0..n * dim)
        .map(|i| ((i * 1103515245) % 997) as f64 / 997.0 - 0.5)
        .collect();
    let u: Vec<f64> = (0..dim).map(|j| 0.1 + 0.1 * j as f64).collect();
    let soa = SoaBuffer::from_flat(&points, dim);

    let (mut a, mut b, mut c) = (Vec::new(), Vec::new(), Vec::new());
    row_dots(&points, dim, &u, &mut a);
    row_dots_simd(&points, dim, &u, &mut b);
    row_dots_soa(&soa, &u, &mut c);
    assert_eq!(a.len(), n);
    for i in 0..n {
        assert_eq!(a[i].to_bits(), b[i].to_bits(), "simd i={i}");
        assert_eq!(a[i].to_bits(), c[i].to_bits(), "soa i={i}");
    }

    // Capacity stability on repeat calls, for all variants.
    let cap = (a.capacity(), b.capacity(), c.capacity());
    for _ in 0..3 {
        row_dots(&points, dim, &u, &mut a);
        row_dots_simd(&points, dim, &u, &mut b);
        row_dots_soa(&soa, &u, &mut c);
        assert_eq!((a.capacity(), b.capacity(), c.capacity()), cap);
    }
}

#[test]
#[cfg(debug_assertions)]
#[should_panic(expected = "NaN in utility vector")]
fn soa_backend_rejects_nan_utilities_in_debug_builds() {
    let points = vec![0.1, 0.2, 0.3, 0.4];
    let soa = SoaBuffer::from_flat(&points, 2);
    top1_soa(&[vec![f64::NAN, 0.5]], &soa);
}
