//! NaN-sentinel warning-counter parity: every backend must bump
//! `scan.top1_nan` exactly once per degenerate utility (all scores NaN or
//! `-inf`, at least one NaN) and never otherwise.
//!
//! Lives in its own integration-test binary (= its own process) because
//! the obs counters are process-global: enabling the sink here must not
//! race with the differential suite's kernels.

use isrl_linalg::{
    scan::TOP1_NAN_COUNTER, top1_batch, top1_batch_simd, top1_scalar, top1_soa, top1_soa_f32,
    SoaBuffer, Top1,
};

const BACKEND_NAMES: [&str; 5] = ["scalar", "batched", "batched-simd", "soa", "soa-f32"];

/// Runs exactly one backend (so counter deltas attribute cleanly).
fn run_backend(name: &str, utilities: &[Vec<f64>], points: &[f64], dim: usize) -> Vec<Top1> {
    match name {
        "scalar" => utilities
            .iter()
            .map(|u| top1_scalar(u, points, dim))
            .collect(),
        "batched" => top1_batch(utilities, points, dim),
        "batched-simd" => top1_batch_simd(utilities, points, dim),
        "soa" => top1_soa(utilities, &SoaBuffer::from_flat(points, dim)),
        "soa-f32" => top1_soa_f32(utilities, &SoaBuffer::from_flat(points, dim), points),
        _ => unreachable!(),
    }
}

#[test]
fn every_backend_bumps_the_warning_counter_once_per_degenerate_utility() {
    isrl_obs::set_enabled(true);
    let dim = 2;
    // Under u0 = [2, 2] every score is NaN: row 0 directly, row 1 via
    // 2·1e308 + 2·(-1e308) = inf + (-inf) — degenerate, counts once.
    // Under u1 = [0, 1] row 0 is NaN (0·NaN = NaN) but row 1 scores a
    // finite -1e308, so u1 has a winner and must not count.
    let points = vec![f64::NAN, f64::NAN, 1e308, -1e308];
    let u_degenerate = vec![2.0, 2.0];
    let u_fine = vec![0.0, 1.0];
    let utilities = vec![u_degenerate, u_fine];

    for name in BACKEND_NAMES {
        let before = isrl_obs::counter_value(TOP1_NAN_COUNTER);
        let out = run_backend(name, &utilities, &points, dim);
        let after = isrl_obs::counter_value(TOP1_NAN_COUNTER);
        assert_eq!(
            after - before,
            1,
            "{name}: exactly one degenerate utility must bump {TOP1_NAN_COUNTER}"
        );
        assert_eq!(out[0].index, 0, "{name}: sentinel index");
        assert_eq!(out[0].value, f64::NEG_INFINITY, "{name}: sentinel value");
        assert_eq!(out[1].index, 1, "{name}: finite row must win for u1");
        assert_eq!(out[1].value, -1e308, "{name}: winning value for u1");
    }
    isrl_obs::set_enabled(false);
}

#[test]
fn all_minus_inf_without_nan_returns_sentinel_without_warning() {
    isrl_obs::set_enabled(true);
    let dim = 2;
    // Scores are all exactly -inf (finite utility, -inf coordinates) but
    // contain no NaN: sentinel result, no warning.
    let points = vec![f64::NEG_INFINITY, 0.0, f64::NEG_INFINITY, 0.0];
    let utilities = vec![vec![1.0, 1.0]];
    for name in BACKEND_NAMES {
        let before = isrl_obs::counter_value(TOP1_NAN_COUNTER);
        let out = run_backend(name, &utilities, &points, dim);
        let after = isrl_obs::counter_value(TOP1_NAN_COUNTER);
        assert_eq!(after, before, "{name}: no NaN, no warning");
        assert_eq!(
            out[0],
            Top1 {
                index: 0,
                value: f64::NEG_INFINITY
            },
            "{name}: sentinel expected"
        );
    }
    isrl_obs::set_enabled(false);
}
