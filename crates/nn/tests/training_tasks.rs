//! End-to-end learning tasks for the from-scratch MLP: non-linear function
//! fitting (XOR), deliberate overfitting, and optimizer comparisons.

use isrl_nn::{loss, Activation, Init, Mlp, Optimizer, Sgd};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The XOR task — unlearnable without the hidden layer, the classic check
/// that backprop trains through the non-linearity.
#[test]
fn xor_is_learned_through_the_hidden_layer() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut net = Mlp::new(&[2, 8, 1], Activation::Tanh, Init::XavierUniform, &mut rng);
    let mut opt = Sgd { lr: 0.1 };
    let data: [([f64; 2], f64); 4] = [
        ([0.0, 0.0], 0.0),
        ([0.0, 1.0], 1.0),
        ([1.0, 0.0], 1.0),
        ([1.0, 1.0], 0.0),
    ];
    for _ in 0..3_000 {
        for (x, t) in &data {
            let (y, cache) = net.forward_cached(x);
            let g = net.backward(&cache, &loss::mse_grad(&y, &[*t]));
            opt.step(&mut net, &g);
        }
    }
    for (x, t) in &data {
        let y = net.forward(x)[0];
        assert!((y - t).abs() < 0.2, "XOR({x:?}) = {y:.3}, want {t}");
    }
}

/// A single hidden layer of 64 SELU units (the paper's architecture) can
/// memorize a small random regression set — capacity sanity check.
#[test]
fn paper_architecture_memorizes_small_sets() {
    let mut rng = StdRng::seed_from_u64(2);
    let mut net = Mlp::new(&[10, 64, 1], Activation::Selu, Init::LecunNormal, &mut rng);
    let mut opt = Sgd { lr: 0.01 };
    // 20 random (x, y) pairs.
    let mut seed = 1234u64;
    let mut nextf = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let data: Vec<(Vec<f64>, f64)> = (0..20)
        .map(|_| ((0..10).map(|_| nextf()).collect(), nextf()))
        .collect();
    for _ in 0..2_000 {
        for (x, t) in &data {
            let (y, cache) = net.forward_cached(x);
            let g = net.backward(&cache, &loss::mse_grad(&y, &[*t]));
            opt.step(&mut net, &g);
        }
    }
    let mse: f64 = data
        .iter()
        .map(|(x, t)| (net.forward(x)[0] - t).powi(2))
        .sum::<f64>()
        / data.len() as f64;
    assert!(
        mse < 1e-3,
        "64-unit SELU layer should memorize 20 points, mse {mse}"
    );
}

/// SELU's self-normalizing property in practice: activations through a deep
/// stack keep roughly unit variance with LeCun init (no explicit norm layers).
#[test]
fn selu_keeps_activation_variance_stable() {
    let mut rng = StdRng::seed_from_u64(3);
    let net = Mlp::new(
        &[64, 64, 64, 64, 64],
        Activation::Selu,
        Init::LecunNormal,
        &mut rng,
    );
    // Standard-normal-ish input.
    let mut seed = 777u64;
    let mut nextf = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        ((seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 3.46 // var ≈ 1
    };
    let mut out_var = 0.0;
    let trials = 50;
    for _ in 0..trials {
        let x: Vec<f64> = (0..64).map(|_| nextf()).collect();
        let y = net.forward(&x);
        let mean: f64 = y.iter().sum::<f64>() / y.len() as f64;
        out_var += y.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / y.len() as f64;
    }
    out_var /= trials as f64;
    assert!(
        (0.1..10.0).contains(&out_var),
        "activations should neither explode nor vanish through 4 SELU layers: var {out_var}"
    );
}

/// Gradient descent on a convex problem (linear net, quadratic loss)
/// converges monotonically once the step size is small enough.
#[test]
fn convex_loss_decreases_monotonically() {
    let mut rng = StdRng::seed_from_u64(4);
    let mut net = Mlp::new(&[3, 1], Activation::Selu, Init::LecunNormal, &mut rng);
    // With sizes [3, 1] there is a single (output) layer — identity
    // activation — so the model is linear and the MSE is convex.
    assert_eq!(net.layers().len(), 1);
    let mut opt = Sgd { lr: 0.05 };
    let data: [([f64; 3], f64); 4] = [
        ([1.0, 0.0, 0.0], 2.0),
        ([0.0, 1.0, 0.0], -1.0),
        ([0.0, 0.0, 1.0], 0.5),
        ([1.0, 1.0, 1.0], 1.5),
    ];
    let eval = |net: &Mlp| -> f64 {
        data.iter()
            .map(|(x, t)| (net.forward(x)[0] - t).powi(2))
            .sum()
    };
    let mut prev = eval(&net);
    for _ in 0..200 {
        let mut grads = None;
        for (x, t) in &data {
            let (y, cache) = net.forward_cached(x);
            let g = net.backward(&cache, &loss::mse_grad(&y, &[*t]));
            match &mut grads {
                None => grads = Some(g),
                Some(acc) => acc.accumulate(&g),
            }
        }
        opt.step(&mut net, &grads.unwrap());
        let now = eval(&net);
        assert!(now <= prev + 1e-9, "convex loss increased: {prev} -> {now}");
        prev = now;
    }
    assert!(prev < 0.01, "final loss {prev}");
}
