//! The multi-layer perceptron with manual backpropagation.
//!
//! The DQN of the paper is tiny — input ⊕ action features → 64 SELU units →
//! scalar Q-value — so the implementation favors clarity: one dense layer
//! struct, explicit forward caches, and a [`Gradients`] value mirroring the
//! parameter shapes that the optimizers in [`crate::optim`] consume.

use crate::activation::Activation;
use crate::init::{init_weights, Init};
use isrl_linalg::{vector, Matrix};
use rand::Rng;

/// One dense layer `y = act(W x + b)`.
#[derive(Debug, Clone)]
pub struct Dense {
    /// Weight matrix, `out × in`.
    pub weights: Matrix,
    /// Bias vector, length `out`.
    pub bias: Vec<f64>,
    /// Activation applied elementwise to the pre-activation.
    pub activation: Activation,
}

impl Dense {
    /// Input width.
    pub fn fan_in(&self) -> usize {
        self.weights.cols()
    }

    /// Output width.
    pub fn fan_out(&self) -> usize {
        self.weights.rows()
    }

    /// Pre-activation `W x + b`.
    fn preactivation(&self, x: &[f64]) -> Vec<f64> {
        let mut z = self.weights.mul_vec(x);
        vector::axpy(&mut z, 1.0, &self.bias);
        z
    }
}

/// Parameter gradients for a whole [`Mlp`], in layer order.
#[derive(Debug, Clone)]
pub struct Gradients {
    /// Per layer: (dL/dW, dL/db).
    pub layers: Vec<(Matrix, Vec<f64>)>,
}

impl Gradients {
    /// Zero gradients shaped like the given network.
    pub fn zeros_like(net: &Mlp) -> Self {
        Self {
            layers: net
                .layers
                .iter()
                .map(|l| {
                    (
                        Matrix::zeros(l.fan_out(), l.fan_in()),
                        vec![0.0; l.fan_out()],
                    )
                })
                .collect(),
        }
    }

    /// Accumulates `other` into `self` (used to average over a batch).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn accumulate(&mut self, other: &Gradients) {
        assert_eq!(
            self.layers.len(),
            other.layers.len(),
            "gradient layer mismatch"
        );
        for ((w, b), (ow, ob)) in self.layers.iter_mut().zip(&other.layers) {
            w.axpy(1.0, ow);
            vector::axpy(b, 1.0, ob);
        }
    }

    /// Scales all gradients by `s` (e.g. `1/batch`).
    pub fn scale(&mut self, s: f64) {
        for (w, b) in &mut self.layers {
            for v in w.as_mut_slice() {
                *v *= s;
            }
            vector::scale_mut(b, s);
        }
    }

    /// Global L2 norm over all gradient entries (for clipping/diagnostics).
    pub fn norm(&self) -> f64 {
        let mut acc = 0.0;
        for (w, b) in &self.layers {
            acc += w.as_slice().iter().map(|v| v * v).sum::<f64>();
            acc += b.iter().map(|v| v * v).sum::<f64>();
        }
        acc.sqrt()
    }

    /// Clips the global norm to `max_norm` (no-op when already below).
    pub fn clip_norm(&mut self, max_norm: f64) {
        let n = self.norm();
        if n > max_norm && n > 0.0 {
            self.scale(max_norm / n);
        }
    }
}

/// Forward-pass cache needed by [`Mlp::backward`]: the input to each layer
/// and each layer's pre-activation.
#[derive(Debug, Clone)]
pub struct ForwardCache {
    inputs: Vec<Vec<f64>>,
    preacts: Vec<Vec<f64>>,
}

/// A fully-connected feed-forward network.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Builds a network with the given layer widths (`sizes[0]` = input
    /// width, `sizes.last()` = output width), `hidden` activation on every
    /// layer except the last, and identity output.
    ///
    /// # Panics
    /// Panics with fewer than two sizes.
    pub fn new<R: Rng + ?Sized>(
        sizes: &[usize],
        hidden: Activation,
        init: Init,
        rng: &mut R,
    ) -> Self {
        assert!(
            sizes.len() >= 2,
            "an MLP needs at least input and output sizes"
        );
        let layers = sizes
            .windows(2)
            .enumerate()
            .map(|(i, w)| Dense {
                weights: init_weights(w[1], w[0], init, rng),
                bias: vec![0.0; w[1]],
                activation: if i + 2 == sizes.len() {
                    Activation::Identity
                } else {
                    hidden
                },
            })
            .collect();
        Self { layers }
    }

    /// The layers (read-only).
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.layers[0].fan_in()
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("non-empty").fan_out()
    }

    /// Total number of scalar parameters.
    pub fn n_params(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.fan_out() * (l.fan_in() + 1))
            .sum()
    }

    /// Inference-only forward pass.
    ///
    /// # Panics
    /// Panics if `x.len() != self.input_dim()`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.input_dim(), "input width mismatch");
        let mut h = x.to_vec();
        for layer in &self.layers {
            let mut z = layer.preactivation(&h);
            layer.activation.apply_slice(&mut z);
            h = z;
        }
        h
    }

    /// Forward pass that also returns the cache for [`Mlp::backward`].
    pub fn forward_cached(&self, x: &[f64]) -> (Vec<f64>, ForwardCache) {
        assert_eq!(x.len(), self.input_dim(), "input width mismatch");
        let mut inputs = Vec::with_capacity(self.layers.len());
        let mut preacts = Vec::with_capacity(self.layers.len());
        let mut h = x.to_vec();
        for layer in &self.layers {
            inputs.push(h.clone());
            let z = layer.preactivation(&h);
            preacts.push(z.clone());
            let mut a = z;
            layer.activation.apply_slice(&mut a);
            h = a;
        }
        (h, ForwardCache { inputs, preacts })
    }

    /// Backpropagates `dL/d(output)` through the cached forward pass,
    /// returning parameter gradients (the input gradient is discarded —
    /// nothing upstream of the network is trainable here).
    pub fn backward(&self, cache: &ForwardCache, dloss_dout: &[f64]) -> Gradients {
        assert_eq!(
            dloss_dout.len(),
            self.output_dim(),
            "output grad width mismatch"
        );
        let mut grads = Gradients::zeros_like(self);
        let mut delta = dloss_dout.to_vec();
        for (li, layer) in self.layers.iter().enumerate().rev() {
            // δ_z = δ_a ⊙ act'(z)
            let z = &cache.preacts[li];
            for (d, &zi) in delta.iter_mut().zip(z) {
                *d *= layer.activation.derivative(zi);
            }
            // dW = δ_z xᵀ, db = δ_z
            let x = &cache.inputs[li];
            let (gw, gb) = &mut grads.layers[li];
            for (i, &di) in delta.iter().enumerate() {
                gb[i] = di;
                let row = gw.row_mut(i);
                for (j, &xj) in x.iter().enumerate() {
                    row[j] = di * xj;
                }
            }
            // δ for the previous layer: Wᵀ δ_z
            if li > 0 {
                delta = layer.weights.mul_vec_transposed(&delta);
            }
        }
        grads
    }

    /// Copies all parameters from `other` (target-network sync).
    ///
    /// # Panics
    /// Panics if the architectures differ.
    pub fn copy_params_from(&mut self, other: &Mlp) {
        assert_eq!(
            self.layers.len(),
            other.layers.len(),
            "architecture mismatch"
        );
        for (l, o) in self.layers.iter_mut().zip(&other.layers) {
            assert_eq!(
                (l.fan_in(), l.fan_out()),
                (o.fan_in(), o.fan_out()),
                "layer shape mismatch"
            );
            l.weights = o.weights.clone();
            l.bias = o.bias.clone();
        }
    }

    /// Flattens all parameters into one vector (serialization, tests).
    pub fn to_flat(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n_params());
        for l in &self.layers {
            out.extend_from_slice(l.weights.as_slice());
            out.extend_from_slice(&l.bias);
        }
        out
    }

    /// Restores parameters from [`Mlp::to_flat`] output.
    ///
    /// # Panics
    /// Panics if the length disagrees with the architecture.
    pub fn from_flat(&mut self, flat: &[f64]) {
        assert_eq!(
            flat.len(),
            self.n_params(),
            "flat parameter length mismatch"
        );
        let mut at = 0;
        for l in &mut self.layers {
            let nw = l.fan_out() * l.fan_in();
            l.weights.as_mut_slice().copy_from_slice(&flat[at..at + nw]);
            at += nw;
            let nb = l.fan_out();
            l.bias.copy_from_slice(&flat[at..at + nb]);
            at += nb;
        }
    }

    /// Visits every (parameter, gradient) pair — the optimizer entry point.
    pub(crate) fn visit_params_mut(
        &mut self,
        grads: &Gradients,
        mut f: impl FnMut(usize, &mut f64, f64),
    ) {
        let mut idx = 0;
        for (l, (gw, gb)) in self.layers.iter_mut().zip(&grads.layers) {
            for (p, &g) in l.weights.as_mut_slice().iter_mut().zip(gw.as_slice()) {
                f(idx, p, g);
                idx += 1;
            }
            for (p, &g) in l.bias.iter_mut().zip(gb) {
                f(idx, p, g);
                idx += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_net(seed: u64) -> Mlp {
        let mut rng = StdRng::seed_from_u64(seed);
        Mlp::new(&[3, 5, 1], Activation::Selu, Init::LecunNormal, &mut rng)
    }

    #[test]
    #[allow(clippy::identity_op)] // 1 * 5 documents the out x in shape
    fn shapes_are_consistent() {
        let net = tiny_net(1);
        assert_eq!(net.input_dim(), 3);
        assert_eq!(net.output_dim(), 1);
        assert_eq!(net.n_params(), 5 * 3 + 5 + 1 * 5 + 1);
        assert_eq!(net.forward(&[0.1, 0.2, 0.3]).len(), 1);
    }

    #[test]
    fn output_layer_is_identity() {
        let net = tiny_net(2);
        assert_eq!(
            net.layers().last().unwrap().activation,
            Activation::Identity
        );
        assert_eq!(net.layers()[0].activation, Activation::Selu);
    }

    #[test]
    fn forward_cached_matches_forward() {
        let net = tiny_net(3);
        let x = [0.4, -0.2, 0.9];
        let (y, _) = net.forward_cached(&x);
        assert_eq!(y, net.forward(&x));
    }

    #[test]
    fn gradients_match_finite_differences() {
        // The canonical backprop test: perturb each parameter and compare
        // the numeric directional derivative with the analytic gradient.
        let mut net = tiny_net(4);
        let x = [0.3, -0.7, 0.5];
        let target = 1.5;

        let loss = |net: &Mlp| {
            let y = net.forward(&x)[0];
            (y - target).powi(2)
        };

        let (y, cache) = net.forward_cached(&x);
        let dloss = vec![2.0 * (y[0] - target)];
        let grads = net.backward(&cache, &dloss);

        // Flatten analytic grads in the same order as to_flat.
        let mut flat_grads = Vec::new();
        for (gw, gb) in &grads.layers {
            flat_grads.extend_from_slice(gw.as_slice());
            flat_grads.extend_from_slice(gb);
        }

        let mut flat = net.to_flat();
        let h = 1e-6;
        for k in 0..flat.len() {
            let orig = flat[k];
            flat[k] = orig + h;
            net.from_flat(&flat);
            let up = loss(&net);
            flat[k] = orig - h;
            net.from_flat(&flat);
            let down = loss(&net);
            flat[k] = orig;
            net.from_flat(&flat);
            let numeric = (up - down) / (2.0 * h);
            assert!(
                (numeric - flat_grads[k]).abs() < 1e-4 * (1.0 + numeric.abs()),
                "param {k}: numeric {numeric} vs analytic {}",
                flat_grads[k]
            );
        }
    }

    #[test]
    fn copy_params_makes_networks_identical() {
        let a = tiny_net(5);
        let mut b = tiny_net(6);
        assert_ne!(a.to_flat(), b.to_flat());
        b.copy_params_from(&a);
        assert_eq!(a.to_flat(), b.to_flat());
        assert_eq!(a.forward(&[0.1, 0.1, 0.1]), b.forward(&[0.1, 0.1, 0.1]));
    }

    #[test]
    fn flat_round_trip() {
        let mut net = tiny_net(7);
        let flat = net.to_flat();
        net.from_flat(&flat);
        assert_eq!(net.to_flat(), flat);
    }

    #[test]
    fn gradients_accumulate_and_scale() {
        let net = tiny_net(8);
        let x = [0.2, 0.2, 0.2];
        let (y, cache) = net.forward_cached(&x);
        let g1 = net.backward(&cache, &[2.0 * y[0]]);
        let mut acc = Gradients::zeros_like(&net);
        acc.accumulate(&g1);
        acc.accumulate(&g1);
        acc.scale(0.5);
        assert!((acc.norm() - g1.norm()).abs() < 1e-9);
    }

    #[test]
    fn clip_norm_caps_large_gradients() {
        let net = tiny_net(9);
        let x = [0.9, -0.9, 0.9];
        let (_, cache) = net.forward_cached(&x);
        let mut g = net.backward(&cache, &[100.0]);
        g.clip_norm(1.0);
        assert!(g.norm() <= 1.0 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn forward_checks_width() {
        tiny_net(10).forward(&[1.0]);
    }
}
