//! Loss functions.
//!
//! The paper's DQN minimizes the mean-squared error between predicted
//! Q-values and bootstrapped targets (§IV-B2); Huber is provided as the
//! standard robust alternative for ablations.

/// Mean-squared error `mean((pred − target)²)` over paired slices.
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn mse(pred: &[f64], target: &[f64]) -> f64 {
    assert_eq!(pred.len(), target.len(), "mse: length mismatch");
    assert!(!pred.is_empty(), "mse of empty slices");
    pred.iter()
        .zip(target)
        .map(|(p, t)| (p - t).powi(2))
        .sum::<f64>()
        / pred.len() as f64
}

/// Gradient of [`mse`] w.r.t. `pred`: `2 (pred − target) / n`.
pub fn mse_grad(pred: &[f64], target: &[f64]) -> Vec<f64> {
    assert_eq!(pred.len(), target.len(), "mse_grad: length mismatch");
    let inv = 2.0 / pred.len() as f64;
    pred.iter()
        .zip(target)
        .map(|(p, t)| inv * (p - t))
        .collect()
}

/// Huber loss with threshold `delta` for one scalar pair.
pub fn huber(pred: f64, target: f64, delta: f64) -> f64 {
    let e = (pred - target).abs();
    if e <= delta {
        0.5 * e * e
    } else {
        delta * (e - 0.5 * delta)
    }
}

/// Derivative of [`huber`] w.r.t. `pred`.
pub fn huber_grad(pred: f64, target: f64, delta: f64) -> f64 {
    let e = pred - target;
    e.clamp(-delta, delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_of_perfect_prediction_is_zero() {
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn mse_matches_hand_computation() {
        // ((1)² + (3)²)/2 = 5
        assert_eq!(mse(&[2.0, 0.0], &[1.0, 3.0]), 5.0);
    }

    #[test]
    fn mse_grad_matches_finite_difference() {
        let pred = [0.5, -1.0, 2.0];
        let target = [0.0, 0.0, 1.0];
        let g = mse_grad(&pred, &target);
        let h = 1e-6;
        for k in 0..pred.len() {
            let mut up = pred;
            up[k] += h;
            let mut down = pred;
            down[k] -= h;
            let numeric = (mse(&up, &target) - mse(&down, &target)) / (2.0 * h);
            assert!((numeric - g[k]).abs() < 1e-6);
        }
    }

    #[test]
    fn huber_is_quadratic_inside_linear_outside() {
        assert_eq!(huber(0.5, 0.0, 1.0), 0.125);
        assert_eq!(huber(3.0, 0.0, 1.0), 2.5); // 1·(3 − 0.5)
    }

    #[test]
    fn huber_grad_is_clamped() {
        assert_eq!(huber_grad(0.5, 0.0, 1.0), 0.5);
        assert_eq!(huber_grad(5.0, 0.0, 1.0), 1.0);
        assert_eq!(huber_grad(-5.0, 0.0, 1.0), -1.0);
    }
}
