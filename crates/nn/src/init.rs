//! Weight initialization schemes.

use isrl_linalg::Matrix;
use rand::Rng;

/// Initialization scheme for a dense layer's weight matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Init {
    /// LeCun normal: `N(0, 1/fan_in)` — the scheme SELU's self-normalizing
    /// property is derived for, hence our default.
    LecunNormal,
    /// Xavier/Glorot uniform: `U(±√(6/(fan_in+fan_out)))`.
    XavierUniform,
}

fn std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draws an `out × in` weight matrix under the given scheme.
pub fn init_weights<R: Rng + ?Sized>(
    fan_out: usize,
    fan_in: usize,
    scheme: Init,
    rng: &mut R,
) -> Matrix {
    let mut w = Matrix::zeros(fan_out, fan_in);
    match scheme {
        Init::LecunNormal => {
            let sd = (1.0 / fan_in as f64).sqrt();
            for v in w.as_mut_slice() {
                *v = sd * std_normal(rng);
            }
        }
        Init::XavierUniform => {
            let bound = (6.0 / (fan_in + fan_out) as f64).sqrt();
            for v in w.as_mut_slice() {
                *v = rng.gen_range(-bound..bound);
            }
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lecun_variance_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = init_weights(64, 100, Init::LecunNormal, &mut rng);
        let vals = w.as_slice();
        let mean: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
        let var: f64 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 0.01).abs() < 0.003, "var {var} should be ≈ 1/100");
    }

    #[test]
    fn xavier_respects_bound() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = init_weights(30, 70, Init::XavierUniform, &mut rng);
        let bound = (6.0f64 / 100.0).sqrt();
        assert!(w.as_slice().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn init_is_seed_deterministic() {
        let a = init_weights(4, 4, Init::LecunNormal, &mut StdRng::seed_from_u64(5));
        let b = init_weights(4, 4, Init::LecunNormal, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }
}
