#![warn(missing_docs)]
//! From-scratch neural-network library for the ISRL workspace.
//!
//! Implements exactly what the paper's Deep-Q-Network needs (§IV-B2, §V):
//! a small fully-connected network — one hidden layer of 64 SELU units in
//! the paper's configuration — with manual backpropagation, MSE loss, and
//! plain gradient descent at learning rate 0.003 (Adam available for
//! ablations). No external ML dependency: mature RL/NN crates are not
//! assumed available (see DESIGN.md).
//!
//! ```
//! use isrl_nn::{loss, Activation, Init, Mlp, Optimizer, Sgd};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let mut net = Mlp::new(&[2, 64, 1], Activation::Selu, Init::LecunNormal, &mut rng);
//! let mut opt = Sgd::paper_default(); // the paper's lr = 0.003
//! // One gradient step toward target 1.0 must reduce the error.
//! let x = [0.3, 0.7];
//! let before = (net.forward(&x)[0] - 1.0).abs();
//! let (y, cache) = net.forward_cached(&x);
//! let grads = net.backward(&cache, &loss::mse_grad(&y, &[1.0]));
//! opt.step(&mut net, &grads);
//! assert!((net.forward(&x)[0] - 1.0).abs() < before);
//! ```

pub mod activation;
pub mod init;
pub mod loss;
pub mod mlp;
pub mod optim;

pub use activation::Activation;
pub use init::Init;
pub use mlp::{Dense, ForwardCache, Gradients, Mlp};
pub use optim::{Adam, Optimizer, Sgd};
