//! Gradient-descent optimizers.
//!
//! The paper trains with plain gradient descent at learning rate 0.003
//! (§V), which [`Sgd`] reproduces; [`Adam`] is included because the DQN
//! reward scale (c = 100) makes adaptive step sizes a useful ablation.

use crate::mlp::{Gradients, Mlp};

/// A first-order optimizer updating an [`Mlp`] in place from [`Gradients`].
pub trait Optimizer {
    /// Applies one update step.
    fn step(&mut self, net: &mut Mlp, grads: &Gradients);
}

/// Stochastic gradient descent: `θ ← θ − lr · g`.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
}

impl Sgd {
    /// SGD with the paper's learning rate of 0.003.
    pub fn paper_default() -> Self {
        Self { lr: 0.003 }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, net: &mut Mlp, grads: &Gradients) {
        let lr = self.lr;
        net.visit_params_mut(grads, |_, p, g| *p -= lr * g);
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical floor.
    pub eps: f64,
    t: u64,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Adam {
    /// Adam with the conventional hyper-parameters at the given learning rate.
    pub fn new(lr: f64) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, net: &mut Mlp, grads: &Gradients) {
        let n = net.n_params();
        if self.m.len() != n {
            self.m = vec![0.0; n];
            self.v = vec![0.0; n];
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let (m, v) = (&mut self.m, &mut self.v);
        net.visit_params_mut(grads, |i, p, g| {
            m[i] = b1 * m[i] + (1.0 - b1) * g;
            v[i] = b2 * v[i] + (1.0 - b2) * g * g;
            let mhat = m[i] / bc1;
            let vhat = v[i] / bc2;
            *p -= lr * mhat / (vhat.sqrt() + eps);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::init::Init;
    use crate::loss::{mse, mse_grad};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Trains y = 2x₀ − x₁ on a fixed sample set and checks the loss drops.
    fn train_linear_task(mut opt: impl Optimizer, epochs: usize) -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(99);
        let mut net = Mlp::new(&[2, 8, 1], Activation::Selu, Init::LecunNormal, &mut rng);
        let data: Vec<([f64; 2], f64)> = (0..32)
            .map(|i| {
                let x0 = (i as f64 / 31.0) - 0.5;
                let x1 = ((i * 7 % 32) as f64 / 31.0) - 0.5;
                ([x0, x1], 2.0 * x0 - x1)
            })
            .collect();
        let eval = |net: &Mlp| {
            let preds: Vec<f64> = data.iter().map(|(x, _)| net.forward(x)[0]).collect();
            let targets: Vec<f64> = data.iter().map(|(_, t)| *t).collect();
            mse(&preds, &targets)
        };
        let before = eval(&net);
        for _ in 0..epochs {
            for (x, t) in &data {
                let (y, cache) = net.forward_cached(x);
                let g = net.backward(&cache, &mse_grad(&y, &[*t]));
                opt.step(&mut net, &g);
            }
        }
        (before, eval(&net))
    }

    #[test]
    fn sgd_reduces_loss() {
        let (before, after) = train_linear_task(Sgd { lr: 0.01 }, 200);
        assert!(
            after < before * 0.05,
            "SGD failed to learn: {before} -> {after}"
        );
    }

    #[test]
    fn adam_reduces_loss_faster_than_sgd_at_same_lr() {
        let (_, sgd_after) = train_linear_task(Sgd { lr: 0.003 }, 30);
        let (_, adam_after) = train_linear_task(Adam::new(0.003), 30);
        assert!(
            adam_after < sgd_after,
            "Adam ({adam_after}) should beat SGD ({sgd_after}) early"
        );
    }

    #[test]
    fn paper_default_lr() {
        assert_eq!(Sgd::paper_default().lr, 0.003);
    }
}
