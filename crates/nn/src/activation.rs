//! Activation functions.
//!
//! The paper's DQN uses SELU (Klambauer et al., NeurIPS 2017) in its single
//! 64-unit hidden layer; ReLU and Tanh are provided for ablations and tests.

/// SELU's λ constant (from the self-normalizing-networks paper).
pub const SELU_LAMBDA: f64 = 1.050_700_987_355_480_5;
/// SELU's α constant.
pub const SELU_ALPHA: f64 = 1.673_263_242_354_377_3;

/// An elementwise activation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Scaled exponential linear unit — the paper's choice.
    Selu,
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// The identity (used for output layers).
    Identity,
}

impl Activation {
    /// Applies the activation to a pre-activation value.
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Selu => {
                if x > 0.0 {
                    SELU_LAMBDA * x
                } else {
                    SELU_LAMBDA * SELU_ALPHA * (x.exp() - 1.0)
                }
            }
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Identity => x,
        }
    }

    /// Derivative w.r.t. the pre-activation value.
    #[inline]
    pub fn derivative(self, x: f64) -> f64 {
        match self {
            Activation::Selu => {
                if x > 0.0 {
                    SELU_LAMBDA
                } else {
                    SELU_LAMBDA * SELU_ALPHA * x.exp()
                }
            }
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - x.tanh().powi(2),
            Activation::Identity => 1.0,
        }
    }

    /// Applies the activation to a whole slice, in place.
    pub fn apply_slice(self, xs: &mut [f64]) {
        for x in xs {
            *x = self.apply(*x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selu_is_continuous_at_zero() {
        let below = Activation::Selu.apply(-1e-12);
        let above = Activation::Selu.apply(1e-12);
        assert!((below - above).abs() < 1e-9);
        assert!(Activation::Selu.apply(0.0).abs() < 1e-12);
    }

    #[test]
    fn selu_positive_branch_is_linear() {
        assert!((Activation::Selu.apply(2.0) - 2.0 * SELU_LAMBDA).abs() < 1e-12);
    }

    #[test]
    fn selu_saturates_below() {
        // As x → −∞, SELU → −λα.
        let v = Activation::Selu.apply(-50.0);
        assert!((v + SELU_LAMBDA * SELU_ALPHA).abs() < 1e-9);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let h = 1e-6;
        for act in [
            Activation::Selu,
            Activation::Relu,
            Activation::Tanh,
            Activation::Identity,
        ] {
            for x in [-2.0f64, -0.5, 0.3, 1.7] {
                if act == Activation::Relu && x.abs() < h {
                    continue; // kink
                }
                let num = (act.apply(x + h) - act.apply(x - h)) / (2.0 * h);
                let ana = act.derivative(x);
                assert!(
                    (num - ana).abs() < 1e-5,
                    "{act:?} at {x}: numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn apply_slice_matches_scalar() {
        let mut xs = vec![-1.0, 0.0, 2.0];
        Activation::Selu.apply_slice(&mut xs);
        assert_eq!(xs[2], Activation::Selu.apply(2.0));
    }
}
