//! Attribute normalization to `(0, 1]` with larger-is-better semantics.
//!
//! Raw attributes come in arbitrary units and orientations (a car's *price*
//! is smaller-is-better, its *horsepower* larger-is-better). Following §III
//! of the paper, each attribute is mapped to `(0, 1]` so that 1 is the best
//! observed value. Smaller-is-better attributes are inverted before scaling.

/// Orientation of a raw attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Larger raw values are better (horsepower, mpg).
    LargerBetter,
    /// Smaller raw values are better (price, mileage).
    SmallerBetter,
}

/// Floor applied after scaling so every value is strictly positive, as the
/// `(0, 1]` contract requires (a zero coordinate would let a tuple's utility
/// vanish under some axis-aligned utility vectors, breaking regret ratios).
pub const FLOOR: f64 = 1e-6;

/// Normalizes one attribute column in place.
///
/// * `LargerBetter`: `x ↦ x / max` after shifting so the minimum maps to
///   [`FLOOR`] when non-positive values are present.
/// * `SmallerBetter`: `x ↦ (max − x + δ) / (max − min + δ)` which maps the
///   best (smallest) raw value to 1.
///
/// Constant columns map to all-ones (no information, but valid).
///
/// # Panics
/// Panics on an empty column or non-finite values.
pub fn normalize_column(values: &mut [f64], direction: Direction) {
    assert!(!values.is_empty(), "cannot normalize an empty column");
    assert!(
        values.iter().all(|v| v.is_finite()),
        "non-finite value in attribute column"
    );
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if (max - min).abs() < f64::EPSILON {
        values.iter_mut().for_each(|v| *v = 1.0);
        return;
    }
    match direction {
        Direction::LargerBetter => {
            for v in values.iter_mut() {
                *v = ((*v - min) / (max - min)).max(FLOOR);
            }
        }
        Direction::SmallerBetter => {
            for v in values.iter_mut() {
                *v = ((max - *v) / (max - min)).max(FLOOR);
            }
        }
    }
}

/// Normalizes a full table (rows of raw tuples) given per-column directions,
/// returning normalized rows. Column `j` uses `directions[j]`.
///
/// # Panics
/// Panics if rows are ragged or `directions` has the wrong length.
pub fn normalize_table(rows: &[Vec<f64>], directions: &[Direction]) -> Vec<Vec<f64>> {
    if rows.is_empty() {
        return Vec::new();
    }
    let d = directions.len();
    assert!(
        rows.iter().all(|r| r.len() == d),
        "ragged rows or direction mismatch"
    );
    let mut out = rows.to_vec();
    let mut column = vec![0.0; rows.len()];
    for j in 0..d {
        for (i, r) in rows.iter().enumerate() {
            column[i] = r[j];
        }
        normalize_column(&mut column, directions[j]);
        for (i, r) in out.iter_mut().enumerate() {
            r[j] = column[i];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_better_maps_max_to_one() {
        let mut col = vec![10.0, 20.0, 40.0];
        normalize_column(&mut col, Direction::LargerBetter);
        assert_eq!(col[2], 1.0);
        assert!(col[0] >= FLOOR && col[0] < col[1]);
    }

    #[test]
    fn smaller_better_maps_min_to_one() {
        let mut col = vec![5000.0, 4000.0, 6000.0];
        normalize_column(&mut col, Direction::SmallerBetter);
        assert_eq!(col[1], 1.0, "cheapest car is best");
        assert!(col[2] >= FLOOR && col[2] < col[0]);
    }

    #[test]
    fn all_values_land_in_unit_interval() {
        let mut col = vec![-3.0, 0.0, 7.0, 2.5];
        normalize_column(&mut col, Direction::LargerBetter);
        assert!(col.iter().all(|&v| v > 0.0 && v <= 1.0));
        let mut col2 = vec![-3.0, 0.0, 7.0, 2.5];
        normalize_column(&mut col2, Direction::SmallerBetter);
        assert!(col2.iter().all(|&v| v > 0.0 && v <= 1.0));
    }

    #[test]
    fn constant_column_becomes_ones() {
        let mut col = vec![5.0, 5.0, 5.0];
        normalize_column(&mut col, Direction::LargerBetter);
        assert_eq!(col, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn normalization_preserves_order() {
        let raw = vec![3.0, 1.0, 4.0, 1.5, 9.0];
        let mut col = raw.clone();
        normalize_column(&mut col, Direction::LargerBetter);
        for i in 0..raw.len() {
            for j in 0..raw.len() {
                assert_eq!(
                    raw[i] < raw[j],
                    col[i] < col[j],
                    "order broken at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn smaller_better_reverses_order() {
        let raw = vec![3.0, 1.0, 4.0];
        let mut col = raw.clone();
        normalize_column(&mut col, Direction::SmallerBetter);
        assert!(col[1] > col[0] && col[0] > col[2]);
    }

    #[test]
    fn table_normalization_is_per_column() {
        let rows = vec![
            vec![5000.0, 450.0],
            vec![4000.0, 400.0],
            vec![3500.0, 350.0],
        ];
        let out = normalize_table(&rows, &[Direction::SmallerBetter, Direction::LargerBetter]);
        assert_eq!(out[2][0], 1.0, "cheapest price wins");
        assert_eq!(out[0][1], 1.0, "highest horsepower wins");
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan() {
        normalize_column(&mut [1.0, f64::NAN], Direction::LargerBetter);
    }
}
