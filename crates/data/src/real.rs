//! Distribution-matched stand-ins for the paper's real datasets.
//!
//! The paper evaluates on two Kaggle datasets that cannot be redistributed:
//!
//! * **Car** — 10,668 used cars × {price, mileage, mpg};
//! * **Player** — 17,386 NBA player-seasons × 20 box-score attributes.
//!
//! The interactive algorithms only ever observe normalized points in
//! `(0, 1]^d` and their utility/dominance structure, so we substitute
//! generators that match each dataset's size, dimensionality, and the
//! qualitative correlation structure that drives the experiments (see
//! DESIGN.md §2). Users with the actual CSVs can load them through
//! [`crate::csv`] + [`crate::normalize`] instead and get the same API.

use crate::dataset::Dataset;
use crate::normalize::{normalize_table, Direction};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of tuples in the paper's *Car* dataset.
pub const CAR_N: usize = 10_668;
/// Dimensionality of the *Car* dataset.
pub const CAR_D: usize = 3;
/// Number of tuples in the paper's *Player* dataset.
pub const PLAYER_N: usize = 17_386;
/// Dimensionality of the *Player* dataset.
pub const PLAYER_D: usize = 20;

fn std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A *Car*-shaped dataset at the paper's full size: log-normal prices,
/// mileage anti-correlated with price (cheap cars have run longer), and mpg
/// anti-correlated with the implied engine size. Normalized so price and
/// mileage are smaller-is-better and mpg larger-is-better.
pub fn car_like(seed: u64) -> Dataset {
    car_like_sized(CAR_N, seed)
}

/// [`car_like`] at a custom size (for quick tests and scaled benchmarks).
pub fn car_like_sized(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        // Two latent trade-off axes: `class` (economy … performance) and
        // `condition` (worn … like-new). Price rises with both, so the
        // price score fights the mileage score (good condition costs) and
        // the mpg score (big engines cost) — the trade-off structure that
        // gives used-car data its sizeable skylines.
        let class: f64 = rng.gen_range(0.0..1.0);
        let condition: f64 = rng.gen_range(0.0..1.0);
        let price = (8.6 + 1.1 * class + 1.0 * condition + 0.04 * std_normal(&mut rng)).exp();
        let mileage =
            (120_000.0 * (1.05 - condition) * (1.0 + 0.06 * std_normal(&mut rng)).abs()).max(100.0);
        let mpg = (52.0 - 26.0 * class + 0.8 * std_normal(&mut rng)).clamp(8.0, 70.0);
        rows.push(vec![price, mileage, mpg]);
    }
    let normalized = normalize_table(
        &rows,
        &[
            Direction::SmallerBetter,
            Direction::SmallerBetter,
            Direction::LargerBetter,
        ],
    );
    Dataset::from_points(normalized, CAR_D).with_attributes(vec![
        "price".into(),
        "mileage".into(),
        "mpg".into(),
    ])
}

/// Attribute names of the *Player*-shaped dataset, in column order.
pub const PLAYER_ATTRIBUTES: [&str; PLAYER_D] = [
    "games",
    "minutes",
    "points",
    "field_goals",
    "fg_attempts",
    "three_pointers",
    "three_pt_attempts",
    "free_throws",
    "ft_attempts",
    "off_rebounds",
    "def_rebounds",
    "total_rebounds",
    "assists",
    "steals",
    "blocks",
    "turnovers_inv",
    "fouls_inv",
    "fg_pct",
    "three_pct",
    "ft_pct",
];

/// A *Player*-shaped dataset at the paper's full size: 20 box-score
/// attributes driven by two latent factors (overall skill, playing time)
/// plus per-attribute noise, mirroring the block-correlation of real NBA
/// stats (volume stats move together; percentages are weakly coupled).
/// Turnovers and fouls enter smaller-is-better.
pub fn player_like(seed: u64) -> Dataset {
    player_like_sized(PLAYER_N, seed)
}

/// [`player_like`] at a custom size (for quick tests and scaled benchmarks).
pub fn player_like_sized(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    // Loadings of the 20 attributes on (skill, minutes); noise scale last.
    // Volume stats load on both factors, percentages mostly on skill.
    const LOADINGS: [(f64, f64, f64); PLAYER_D] = [
        (0.2, 0.9, 0.25),  // games
        (0.3, 1.0, 0.20),  // minutes
        (0.8, 0.7, 0.25),  // points
        (0.8, 0.7, 0.25),  // field goals
        (0.6, 0.8, 0.25),  // fg attempts
        (0.7, 0.4, 0.40),  // three pointers
        (0.5, 0.5, 0.40),  // three attempts
        (0.7, 0.6, 0.30),  // free throws
        (0.6, 0.7, 0.30),  // ft attempts
        (0.4, 0.7, 0.35),  // off rebounds
        (0.5, 0.7, 0.30),  // def rebounds
        (0.5, 0.7, 0.30),  // total rebounds
        (0.7, 0.5, 0.35),  // assists
        (0.6, 0.5, 0.40),  // steals
        (0.4, 0.5, 0.45),  // blocks
        (-0.3, 0.8, 0.35), // turnovers (raw: more minutes, more turnovers)
        (-0.2, 0.7, 0.40), // fouls
        (0.9, 0.1, 0.30),  // fg%
        (0.8, 0.1, 0.40),  // 3p%
        (0.8, 0.1, 0.35),  // ft%
    ];
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let skill = std_normal(&mut rng);
        let minutes = std_normal(&mut rng);
        let row: Vec<f64> = LOADINGS
            .iter()
            .map(|&(ls, lm, noise)| ls * skill + lm * minutes + noise * std_normal(&mut rng))
            .collect();
        rows.push(row);
    }
    let mut directions = [Direction::LargerBetter; PLAYER_D];
    directions[15] = Direction::SmallerBetter; // turnovers
    directions[16] = Direction::SmallerBetter; // fouls
    let normalized = normalize_table(&rows, &directions);
    Dataset::from_points(normalized, PLAYER_D)
        .with_attributes(PLAYER_ATTRIBUTES.iter().map(|s| s.to_string()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn car_matches_paper_shape() {
        let d = car_like_sized(500, 3);
        assert_eq!(d.dim(), CAR_D);
        assert_eq!(d.len(), 500);
        assert!(d.check_normalized().is_none());
        assert_eq!(d.attributes().len(), 3);
    }

    #[test]
    fn full_sizes_match_paper() {
        // Shape-only check at full size (cheap: generation is O(n·d)).
        let car = car_like(1);
        assert_eq!((car.len(), car.dim()), (CAR_N, CAR_D));
        let player = player_like(1);
        assert_eq!((player.len(), player.dim()), (PLAYER_N, PLAYER_D));
    }

    #[test]
    fn car_price_mpg_tradeoff_survives_normalization() {
        // After normalization both columns are larger-is-better; the latent
        // class makes cheap (good price score) correlate with good mpg score
        // — and both anti-correlate with... nothing degenerate: just check
        // that the data is not constant and spans the unit interval.
        let d = car_like_sized(2_000, 9);
        let prices: Vec<f64> = d.iter().map(|p| p[0]).collect();
        let spread = prices.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - prices.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 0.5, "price scores should span most of (0,1]");
    }

    #[test]
    fn player_volume_stats_are_block_correlated() {
        let d = player_like_sized(3_000, 4);
        let pts: Vec<f64> = d.iter().map(|p| p[2]).collect(); // points
        let reb: Vec<f64> = d.iter().map(|p| p[11]).collect(); // total rebounds
        let n = pts.len() as f64;
        let mp = pts.iter().sum::<f64>() / n;
        let mr = reb.iter().sum::<f64>() / n;
        let cov: f64 = pts.iter().zip(&reb).map(|(x, y)| (x - mp) * (y - mr)).sum();
        let vp: f64 = pts.iter().map(|x| (x - mp).powi(2)).sum();
        let vr: f64 = reb.iter().map(|y| (y - mr).powi(2)).sum();
        let r = cov / (vp.sqrt() * vr.sqrt());
        assert!(r > 0.4, "points and rebounds should co-move, r = {r}");
    }

    #[test]
    fn player_is_normalized_and_named() {
        let d = player_like_sized(300, 2);
        assert!(d.check_normalized().is_none());
        assert_eq!(d.attributes()[15], "turnovers_inv");
    }

    #[test]
    fn generators_are_seed_deterministic() {
        let a = car_like_sized(50, 11);
        let b = car_like_sized(50, 11);
        assert_eq!(a.point(33), b.point(33));
    }
}
