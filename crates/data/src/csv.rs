//! Minimal CSV reading/writing for dataset import and result export.
//!
//! Users holding the actual Kaggle *Car*/*Player* CSVs can load them here,
//! pick numeric columns, normalize, and run the exact experiments; the
//! benchmark harness also dumps its result tables as CSV. The dialect is
//! deliberately small: comma separator, optional double-quote quoting with
//! `""` escapes, one header row.

use crate::dataset::Dataset;
use crate::normalize::{normalize_table, Direction};

/// A parsed CSV table: header plus string cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvTable {
    /// Column names from the header row.
    pub header: Vec<String>,
    /// Data rows; each row has `header.len()` cells.
    pub rows: Vec<Vec<String>>,
}

/// Errors from CSV parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// The input had no header row.
    Empty,
    /// A row's cell count differed from the header's (row index, got, want).
    RaggedRow(usize, usize, usize),
    /// A quoted field was never closed (line index).
    UnterminatedQuote(usize),
    /// A requested column is missing from the header.
    MissingColumn(String),
    /// A cell could not be parsed as a number (row, column).
    BadNumber(usize, String),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Empty => write!(f, "empty CSV input"),
            CsvError::RaggedRow(i, got, want) => {
                write!(f, "row {i} has {got} cells, expected {want}")
            }
            CsvError::UnterminatedQuote(i) => write!(f, "unterminated quote in line {i}"),
            CsvError::MissingColumn(c) => write!(f, "column {c:?} not in header"),
            CsvError::BadNumber(i, c) => write!(f, "row {i}, column {c:?}: not a number"),
        }
    }
}

impl std::error::Error for CsvError {}

fn parse_line(line: &str, line_no: usize) -> Result<Vec<String>, CsvError> {
    let mut cells = Vec::new();
    let mut cell = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    chars.next();
                    cell.push('"');
                }
                '"' => in_quotes = false,
                other => cell.push(other),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => cells.push(std::mem::take(&mut cell)),
                other => cell.push(other),
            }
        }
    }
    if in_quotes {
        return Err(CsvError::UnterminatedQuote(line_no));
    }
    cells.push(cell);
    Ok(cells)
}

/// Parses CSV text into a [`CsvTable`]. Blank lines are skipped; `\r` line
/// endings are tolerated.
pub fn parse(text: &str) -> Result<CsvTable, CsvError> {
    let mut lines = text
        .lines()
        .map(|l| l.strip_suffix('\r').unwrap_or(l))
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (hline_no, hline) = lines.next().ok_or(CsvError::Empty)?;
    let header = parse_line(hline, hline_no)?;
    let width = header.len();
    let mut rows = Vec::new();
    for (i, line) in lines {
        let cells = parse_line(line, i)?;
        if cells.len() != width {
            return Err(CsvError::RaggedRow(i, cells.len(), width));
        }
        rows.push(cells);
    }
    Ok(CsvTable { header, rows })
}

/// Loads selected numeric columns from a CSV text into a normalized
/// [`Dataset`], pairing each column with its [`Direction`].
pub fn load_dataset(text: &str, columns: &[(&str, Direction)]) -> Result<Dataset, CsvError> {
    let table = parse(text)?;
    let idx: Vec<usize> = columns
        .iter()
        .map(|(name, _)| {
            table
                .header
                .iter()
                .position(|h| h == name)
                .ok_or_else(|| CsvError::MissingColumn(name.to_string()))
        })
        .collect::<Result<_, _>>()?;
    let mut rows = Vec::with_capacity(table.rows.len());
    for (r, cells) in table.rows.iter().enumerate() {
        let mut row = Vec::with_capacity(idx.len());
        for (&j, (name, _)) in idx.iter().zip(columns) {
            let v: f64 = cells[j]
                .trim()
                .parse()
                .map_err(|_| CsvError::BadNumber(r, name.to_string()))?;
            row.push(v);
        }
        rows.push(row);
    }
    let directions: Vec<Direction> = columns.iter().map(|&(_, d)| d).collect();
    let normalized = normalize_table(&rows, &directions);
    Ok(Dataset::from_points(normalized, columns.len())
        .with_attributes(columns.iter().map(|(n, _)| n.to_string()).collect()))
}

/// Serializes a header and numeric rows as CSV text.
pub fn write_csv(header: &[&str], rows: &[Vec<f64>]) -> String {
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str =
        "price,horsepower,name\n5000,450,\"Falcon, Mk \"\"II\"\"\"\n4000,400,Swift\n";

    #[test]
    fn parses_quotes_and_escapes() {
        let t = parse(SAMPLE).unwrap();
        assert_eq!(t.header, vec!["price", "horsepower", "name"]);
        assert_eq!(t.rows[0][2], "Falcon, Mk \"II\"");
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    fn rejects_ragged_rows() {
        let err = parse("a,b\n1,2,3\n").unwrap_err();
        assert!(matches!(err, CsvError::RaggedRow(1, 3, 2)));
    }

    #[test]
    fn rejects_unterminated_quote() {
        let err = parse("a\n\"oops\n").unwrap_err();
        assert!(matches!(err, CsvError::UnterminatedQuote(_)));
    }

    #[test]
    fn empty_input_is_an_error() {
        assert_eq!(parse("").unwrap_err(), CsvError::Empty);
        assert_eq!(parse("\n\n").unwrap_err(), CsvError::Empty);
    }

    #[test]
    fn blank_lines_and_crlf_are_tolerated() {
        let t = parse("a,b\r\n1,2\r\n\r\n3,4\r\n").unwrap();
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    fn load_dataset_selects_and_normalizes() {
        let d = load_dataset(
            SAMPLE,
            &[
                ("price", Direction::SmallerBetter),
                ("horsepower", Direction::LargerBetter),
            ],
        )
        .unwrap();
        assert_eq!(d.dim(), 2);
        assert_eq!(d.len(), 2);
        // Cheaper car gets price score 1; stronger car gets horsepower 1.
        assert_eq!(d.point(1)[0], 1.0);
        assert_eq!(d.point(0)[1], 1.0);
    }

    #[test]
    fn load_dataset_reports_missing_column() {
        let err = load_dataset(SAMPLE, &[("mpg", Direction::LargerBetter)]).unwrap_err();
        assert_eq!(err, CsvError::MissingColumn("mpg".into()));
    }

    #[test]
    fn load_dataset_reports_bad_number() {
        let err = load_dataset(SAMPLE, &[("name", Direction::LargerBetter)]).unwrap_err();
        assert!(matches!(err, CsvError::BadNumber(0, _)));
    }

    #[test]
    fn write_then_parse_round_trips() {
        let text = write_csv(&["x", "y"], &[vec![1.5, 2.0], vec![0.25, 4.0]]);
        let t = parse(&text).unwrap();
        assert_eq!(t.rows[0][0], "1.5");
        assert_eq!(t.rows[1][1], "4");
    }
}
