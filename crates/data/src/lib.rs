#![warn(missing_docs)]
//! Dataset substrate for Interactive Search with Reinforcement Learning.
//!
//! Provides everything the paper's evaluation (§V) needs on the data side:
//!
//! * [`dataset`] — the flat tuple store with utility scans;
//! * [`normalize`] — `(0, 1]` larger-is-better normalization;
//! * [`skyline`](mod@skyline) — Sort-Filter-Skyline preprocessing (only skyline points
//!   can be a user's favorite under a linear utility function);
//! * [`synthetic`] — the Börzsönyi anti-correlated/correlated/independent
//!   generators used for all synthetic sweeps;
//! * [`real`] — distribution-matched stand-ins for the Kaggle *Car* and
//!   *Player* datasets (see DESIGN.md §2 for the substitution argument);
//! * [`csv`] — minimal CSV import/export so the genuine datasets can be
//!   dropped in when available.
//!
//! ```
//! use isrl_data::{generate, skyline, Distribution};
//!
//! let raw = generate(1_000, 3, Distribution::AntiCorrelated, 7);
//! assert!(raw.check_normalized().is_none(), "every value in (0, 1]");
//! let sky = skyline(&raw);
//! assert!(sky.len() < raw.len(), "dominated tuples removed");
//! // Linear maximization over the skyline loses nothing:
//! let u = [0.5, 0.3, 0.2];
//! assert_eq!(raw.max_utility(&u), sky.max_utility(&u));
//! ```

pub mod csv;
pub mod dataset;
pub mod normalize;
pub mod real;
pub mod skyline;
pub mod synthetic;

pub use dataset::Dataset;
pub use normalize::Direction;
pub use skyline::{skyline, skyline_indices};
pub use synthetic::{generate, Distribution};
