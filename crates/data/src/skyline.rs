//! Skyline (Pareto-optimal set) preprocessing.
//!
//! Following the experimental protocol of the paper (§V) and of Xie et
//! al. \[5\], datasets are reduced to their skyline before interaction: only
//! skyline points can be top-1 for some linear utility vector, so dominated
//! points never need to be shown or returned. We implement Sort-Filter
//! Skyline (SFS): sort by descending coordinate sum — which guarantees no
//! point is dominated by a later one — then scan, keeping points not
//! dominated by any already-kept point.

use crate::dataset::Dataset;
use isrl_geometry::hull::dominates;

/// Indices (into the original dataset) of the skyline points, in the order
/// SFS discovers them (descending coordinate sum).
pub fn skyline_indices(data: &Dataset) -> Vec<usize> {
    let n = data.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let sa: f64 = data.point(a).iter().sum();
        let sb: f64 = data.point(b).iter().sum();
        sb.partial_cmp(&sa).expect("NaN in dataset")
    });

    let mut kept: Vec<usize> = Vec::new();
    for &i in &order {
        let p = data.point(i);
        if !kept.iter().any(|&k| dominates(data.point(k), p)) {
            kept.push(i);
        }
    }
    kept
}

/// The skyline as a new [`Dataset`].
pub fn skyline(data: &Dataset) -> Dataset {
    data.subset(&skyline_indices(data))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominated_points_are_removed() {
        let d = Dataset::from_points(
            vec![
                vec![0.9, 0.9], // dominates the next two
                vec![0.5, 0.5],
                vec![0.9, 0.5],
                vec![0.1, 1.0], // incomparable with (0.9, 0.9)
            ],
            2,
        );
        let idx = skyline_indices(&d);
        assert!(idx.contains(&0));
        assert!(idx.contains(&3));
        assert!(!idx.contains(&1));
        assert!(!idx.contains(&2));
    }

    #[test]
    fn skyline_of_anti_chain_is_everything() {
        // Points on a descending diagonal are pairwise incomparable.
        let d = Dataset::from_points(
            (1..=5)
                .map(|i| vec![i as f64 / 5.0, (6 - i) as f64 / 5.0])
                .collect(),
            2,
        );
        assert_eq!(skyline_indices(&d).len(), 5);
    }

    #[test]
    fn skyline_points_are_mutually_non_dominating() {
        let d = Dataset::from_points(
            vec![
                vec![0.3, 0.8, 0.2],
                vec![0.8, 0.3, 0.2],
                vec![0.5, 0.5, 0.5],
                vec![0.4, 0.4, 0.4], // dominated by previous
                vec![0.2, 0.2, 0.9],
            ],
            3,
        );
        let s = skyline(&d);
        for i in 0..s.len() {
            for j in 0..s.len() {
                if i != j {
                    assert!(!dominates(s.point(i), s.point(j)));
                }
            }
        }
    }

    #[test]
    fn top1_point_survives_skyline_for_any_utility() {
        // The defining property the preprocessing relies on: for every u the
        // best point of D is also in the skyline.
        let d = Dataset::from_points(
            vec![
                vec![0.9, 0.1],
                vec![0.1, 0.9],
                vec![0.6, 0.6],
                vec![0.5, 0.4],
                vec![0.3, 0.3],
            ],
            2,
        );
        let sky = skyline(&d);
        for u in [[1.0, 0.0], [0.0, 1.0], [0.5, 0.5], [0.7, 0.3], [0.2, 0.8]] {
            let best = d.point(d.argmax_utility(&u));
            assert!(
                sky.iter().any(|p| p == best),
                "best point {best:?} for u={u:?} missing from skyline"
            );
        }
    }

    #[test]
    fn skyline_is_idempotent() {
        let d = Dataset::from_points(
            vec![
                vec![0.9, 0.2],
                vec![0.2, 0.9],
                vec![0.5, 0.5],
                vec![0.4, 0.4],
            ],
            2,
        );
        let once = skyline(&d);
        let twice = skyline(&once);
        assert_eq!(once.len(), twice.len());
    }

    #[test]
    fn single_point_is_its_own_skyline() {
        let d = Dataset::from_points(vec![vec![0.5, 0.5]], 2);
        assert_eq!(skyline_indices(&d), vec![0]);
    }
}
