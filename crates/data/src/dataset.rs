//! The tuple store.
//!
//! A [`Dataset`] is the paper's `D`: `n` tuples over `d` attributes, each
//! normalized to `(0, 1]` with larger-is-better semantics (§III). Points are
//! stored row-major in one flat buffer so utility scans (`argmax_utility`)
//! stream linearly through memory — those scans dominate per-round cost for
//! the EA terminal machinery and every baseline. A column-major
//! (structure-of-arrays) mirror is built lazily on first use so the batched
//! scan backends can stream each dimension contiguously (see
//! [`Dataset::top1_batch`] and DESIGN.md §15).

use isrl_linalg::{vector, ScanBackend, SoaBuffer};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// A dataset of `d`-dimensional points in `(0, 1]^d`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    dim: usize,
    /// Row-major point buffer, `len == n * dim`.
    data: Vec<f64>,
    /// Optional human-readable attribute names (len == dim when present).
    attributes: Vec<String>,
    /// Lazily-built column-major mirror backing the SoA scan backends.
    soa: OnceLock<SoaBuffer>,
}

impl Dataset {
    /// Builds a dataset from explicit points.
    ///
    /// # Panics
    /// Panics if points disagree on dimension or `dim == 0`.
    pub fn from_points(points: Vec<Vec<f64>>, dim: usize) -> Self {
        assert!(dim > 0, "dataset dimension must be positive");
        let mut data = Vec::with_capacity(points.len() * dim);
        for p in &points {
            assert_eq!(p.len(), dim, "point dimension mismatch");
            data.extend_from_slice(p);
        }
        Self {
            dim,
            data,
            attributes: Vec::new(),
            soa: OnceLock::new(),
        }
    }

    /// Builds a dataset directly from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if the buffer length is not a multiple of `dim`.
    pub fn from_flat(data: Vec<f64>, dim: usize) -> Self {
        assert!(dim > 0, "dataset dimension must be positive");
        assert_eq!(data.len() % dim, 0, "flat buffer length must be n * dim");
        Self {
            dim,
            data,
            attributes: Vec::new(),
            soa: OnceLock::new(),
        }
    }

    /// Attaches attribute names (for reporting; ignored by the algorithms).
    ///
    /// # Panics
    /// Panics if the name count differs from the dimension.
    pub fn with_attributes(mut self, names: Vec<String>) -> Self {
        assert_eq!(names.len(), self.dim, "attribute name count mismatch");
        self.attributes = names;
        self
    }

    /// Number of tuples `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// `true` iff the dataset holds no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dimensionality `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Attribute names, empty if never set.
    #[inline]
    pub fn attributes(&self) -> &[String] {
        &self.attributes
    }

    /// Borrow of point `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[inline]
    pub fn point(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Iterator over all points.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[f64]> + '_ {
        self.data.chunks_exact(self.dim)
    }

    /// Utility `f_u(p_i) = u · p_i`.
    #[inline]
    pub fn utility(&self, i: usize, u: &[f64]) -> f64 {
        vector::dot(self.point(i), u)
    }

    /// Index of the tuple with the highest utility w.r.t. `u`
    /// (the user's favorite point under `u`). First index wins ties.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn argmax_utility(&self, u: &[f64]) -> usize {
        assert!(!self.is_empty(), "argmax over empty dataset");
        let mut best = 0usize;
        let mut best_val = f64::NEG_INFINITY;
        for (i, p) in self.iter().enumerate() {
            let v = vector::dot(p, u);
            if v > best_val {
                best_val = v;
                best = i;
            }
        }
        best
    }

    /// The highest utility value over the dataset w.r.t. `u`.
    pub fn max_utility(&self, u: &[f64]) -> f64 {
        self.utility(self.argmax_utility(u), u)
    }

    /// The flat row-major point buffer (for batched kernels).
    #[inline]
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// The column-major (structure-of-arrays) mirror of the point buffer,
    /// built on first use and retained for the dataset's lifetime. Backs
    /// the SoA scan backends; see [`isrl_linalg::soa`].
    pub fn soa(&self) -> &SoaBuffer {
        self.soa
            .get_or_init(|| SoaBuffer::from_flat(&self.data, self.dim))
    }

    /// Top-1 point per utility vector in one cache-blocked pass over the
    /// point buffer. Identical results to calling
    /// [`Dataset::argmax_utility`] / [`Dataset::max_utility`] per vector,
    /// but the buffer is streamed once instead of once per vector.
    ///
    /// Dispatches on the process-wide [`ScanBackend`]
    /// (`ISRL_SCAN_BACKEND` / [`isrl_linalg::set_scan_backend`]); every
    /// backend returns bit-identical results, so the knob only changes
    /// speed. This is the scan entry point for the max-regret estimator,
    /// EA terminal/candidate scans, and `SessionRegistry`'s coalesced
    /// serve batches.
    ///
    /// # Panics
    /// Panics on an empty dataset or a utility-vector dimension mismatch.
    pub fn top1_batch<U: AsRef<[f64]>>(&self, utilities: &[U]) -> Vec<isrl_linalg::Top1> {
        match isrl_linalg::scan_backend().resolve() {
            ScanBackend::Scalar => isrl_linalg::top1_batch(utilities, &self.data, self.dim),
            ScanBackend::Simd => isrl_linalg::top1_batch_simd(utilities, &self.data, self.dim),
            ScanBackend::Soa => isrl_linalg::top1_soa(utilities, self.soa()),
            ScanBackend::SoaF32 => isrl_linalg::top1_soa_f32(utilities, self.soa(), &self.data),
            ScanBackend::Auto => unreachable!("resolve() never returns Auto"),
        }
    }

    /// Every point's utility w.r.t. `u`, written into `out` (cleared
    /// first) — the single pass backing top-k selection (AA's candidate
    /// actions). Dispatches on the process-wide [`ScanBackend`] like
    /// [`Dataset::top1_batch`]; the f32 backend uses the exact f64 SoA
    /// path since full score lists cannot be candidate-filtered.
    ///
    /// # Panics
    /// Panics on a utility-vector dimension mismatch.
    pub fn utilities_into(&self, u: &[f64], out: &mut Vec<f64>) {
        match isrl_linalg::scan_backend().resolve() {
            ScanBackend::Scalar => isrl_linalg::row_dots(&self.data, self.dim, u, out),
            ScanBackend::Simd => isrl_linalg::row_dots_simd(&self.data, self.dim, u, out),
            ScanBackend::Soa | ScanBackend::SoaF32 => isrl_linalg::row_dots_soa(self.soa(), u, out),
            ScanBackend::Auto => unreachable!("resolve() never returns Auto"),
        }
    }

    /// A new dataset keeping only the given indices (preserving order).
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut data = Vec::with_capacity(indices.len() * self.dim);
        for &i in indices {
            data.extend_from_slice(self.point(i));
        }
        Dataset {
            dim: self.dim,
            data,
            attributes: self.attributes.clone(),
            soa: OnceLock::new(),
        }
    }

    /// Verifies every coordinate lies in `(0, 1]` (the paper's normalization
    /// contract). Returns the first violating `(index, axis)` if any.
    pub fn check_normalized(&self) -> Option<(usize, usize)> {
        for (i, p) in self.iter().enumerate() {
            for (j, &x) in p.iter().enumerate() {
                if !(x > 0.0 && x <= 1.0) {
                    return Some((i, j));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_table3() -> Dataset {
        // Table III of the paper (u = (0.3, 0.7)).
        Dataset::from_points(
            vec![
                vec![0.001, 1.0], // the paper uses 0; we keep (0,1] with a tiny floor
                vec![0.3, 0.7],
                vec![0.5, 0.8],
                vec![0.7, 0.4],
                vec![1.0, 0.001],
            ],
            2,
        )
    }

    #[test]
    fn utilities_match_table_iii() {
        let d = paper_table3();
        let u = [0.3, 0.7];
        assert!((d.utility(1, &u) - 0.58).abs() < 1e-9);
        assert!((d.utility(2, &u) - 0.71).abs() < 1e-9);
        assert_eq!(d.argmax_utility(&u), 2, "p3 is the favorite");
    }

    #[test]
    fn from_flat_round_trips() {
        let d = Dataset::from_flat(vec![0.1, 0.2, 0.3, 0.4], 2);
        assert_eq!(d.len(), 2);
        assert_eq!(d.point(1), &[0.3, 0.4][..]);
    }

    #[test]
    #[should_panic(expected = "n * dim")]
    fn from_flat_rejects_ragged() {
        Dataset::from_flat(vec![0.1, 0.2, 0.3], 2);
    }

    #[test]
    fn subset_preserves_points() {
        let d = paper_table3();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.point(0), d.point(2));
        assert_eq!(s.point(1), d.point(0));
    }

    #[test]
    fn check_normalized_accepts_unit_interval() {
        assert!(paper_table3().check_normalized().is_none());
        let bad = Dataset::from_points(vec![vec![0.0, 0.5]], 2);
        assert_eq!(bad.check_normalized(), Some((0, 0)));
        let big = Dataset::from_points(vec![vec![0.5, 1.5]], 2);
        assert_eq!(big.check_normalized(), Some((0, 1)));
    }

    #[test]
    fn argmax_breaks_ties_by_first_index() {
        let d = Dataset::from_points(vec![vec![0.5, 0.5], vec![0.5, 0.5]], 2);
        assert_eq!(d.argmax_utility(&[0.5, 0.5]), 0);
    }

    #[test]
    fn iter_yields_all_points() {
        let d = paper_table3();
        assert_eq!(d.iter().count(), 5);
        assert_eq!(d.iter().next().unwrap(), d.point(0));
    }

    #[test]
    fn top1_batch_agrees_with_scalar_argmax() {
        let d = paper_table3();
        let utilities = vec![
            vec![0.3, 0.7],
            vec![0.9, 0.1],
            vec![0.5, 0.5],
            vec![0.05, 0.95],
        ];
        let batched = d.top1_batch(&utilities);
        for (u, t) in utilities.iter().zip(&batched) {
            assert_eq!(t.index, d.argmax_utility(u));
            assert_eq!(t.value, d.max_utility(u));
        }
    }

    #[test]
    fn utilities_into_matches_per_index_utility() {
        let d = paper_table3();
        let u = [0.3, 0.7];
        let mut out = Vec::new();
        d.utilities_into(&u, &mut out);
        assert_eq!(out.len(), d.len());
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, d.utility(i, &u));
        }
    }

    #[test]
    fn attributes_attach() {
        let d = paper_table3().with_attributes(vec!["price".into(), "hp".into()]);
        assert_eq!(d.attributes(), &["price".to_string(), "hp".to_string()][..]);
    }
}
