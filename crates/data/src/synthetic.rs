//! Synthetic dataset generators in the style of the skyline-operator
//! benchmark suite (Börzsönyi et al., ICDE 2001), which the paper's
//! experiments use: *anti-correlated* (the default and hardest case),
//! plus *independent* and *correlated* for completeness and ablations.
//!
//! All generators are deterministic in the seed, emit points in `(0, 1]^d`,
//! and are sized by (`n`, `d`) exactly as the paper's sweeps require
//! (n ∈ [10k, 1M], d ∈ [2, 25]).

use crate::dataset::Dataset;
use crate::normalize::FLOOR;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Correlation structure of a synthetic dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// Attributes drawn independently and uniformly — moderate skylines.
    Independent,
    /// Attributes positively correlated — tiny skylines, easy queries.
    Correlated,
    /// Attributes anti-correlated (good on one axis implies bad on others) —
    /// large skylines; the paper's default workload.
    AntiCorrelated,
}

/// Standard normal via Box–Muller (avoids depending on `rand_distr`).
fn std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal clamped into `[0, 1]` by resampling (the Börzsönyi generator's
/// "random peak" helper).
fn clamped_normal<R: Rng + ?Sized>(mean: f64, sd: f64, rng: &mut R) -> f64 {
    loop {
        let v = mean + sd * std_normal(rng);
        if (0.0..=1.0).contains(&v) {
            return v;
        }
    }
}

/// Generates `n` points of dimension `d` with the given correlation
/// structure, deterministically in `seed`.
///
/// # Panics
/// Panics if `d == 0`.
pub fn generate(n: usize, d: usize, dist: Distribution, seed: u64) -> Dataset {
    assert!(d > 0, "dimension must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n * d);
    let mut point = vec![0.0f64; d];
    for _ in 0..n {
        match dist {
            Distribution::Independent => {
                for x in &mut point {
                    *x = rng.gen_range(FLOOR..=1.0);
                }
            }
            Distribution::Correlated => {
                let peak = clamped_normal(0.5, 0.25, &mut rng);
                for x in &mut point {
                    *x = (peak + 0.05 * std_normal(&mut rng)).clamp(FLOOR, 1.0);
                }
            }
            Distribution::AntiCorrelated => {
                // Börzsönyi scheme: put every attribute at a common peak on
                // a tight band around the plane Σx = d/2, then shuffle mass
                // between attribute pairs so the total stays constant —
                // good on one axis trades off against another. The band is
                // deliberately narrow (σ = 0.05) so the within-plane spread
                // dominates and the attributes come out anti-correlated.
                let peak = clamped_normal(0.5, 0.05, &mut rng);
                point.iter_mut().for_each(|x| *x = peak);
                for _ in 0..3 * d {
                    let i = rng.gen_range(0..d);
                    let j = rng.gen_range(0..d);
                    if i == j {
                        continue;
                    }
                    // Largest transfer keeping both coordinates in [0, 1].
                    let room = (1.0 - point[i]).min(point[j]);
                    let delta = rng.gen_range(0.0..=room.max(f64::MIN_POSITIVE));
                    point[i] += delta;
                    point[j] -= delta;
                }
                for x in &mut point {
                    *x = x.clamp(FLOOR, 1.0);
                }
            }
        }
        data.extend_from_slice(&point);
    }
    Dataset::from_flat(data, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skyline::skyline_indices;

    #[test]
    fn generators_respect_shape_and_range() {
        for dist in [
            Distribution::Independent,
            Distribution::Correlated,
            Distribution::AntiCorrelated,
        ] {
            let d = generate(500, 4, dist, 7);
            assert_eq!(d.len(), 500);
            assert_eq!(d.dim(), 4);
            assert!(d.check_normalized().is_none(), "{dist:?} left (0,1]");
        }
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let a = generate(100, 3, Distribution::AntiCorrelated, 42);
        let b = generate(100, 3, Distribution::AntiCorrelated, 42);
        assert_eq!(a.point(57), b.point(57));
        let c = generate(100, 3, Distribution::AntiCorrelated, 43);
        assert_ne!(a.point(57), c.point(57));
    }

    #[test]
    fn anticorrelated_attributes_are_negatively_correlated() {
        let d = generate(5_000, 2, Distribution::AntiCorrelated, 1);
        let xs: Vec<f64> = d.iter().map(|p| p[0]).collect();
        let ys: Vec<f64> = d.iter().map(|p| p[1]).collect();
        assert!(pearson(&xs, &ys) < -0.3, "expected strong anti-correlation");
    }

    #[test]
    fn correlated_attributes_are_positively_correlated() {
        let d = generate(5_000, 2, Distribution::Correlated, 1);
        let xs: Vec<f64> = d.iter().map(|p| p[0]).collect();
        let ys: Vec<f64> = d.iter().map(|p| p[1]).collect();
        assert!(pearson(&xs, &ys) > 0.5, "expected strong correlation");
    }

    #[test]
    fn skyline_ordering_across_distributions() {
        // The canonical skyline-benchmark fact the paper's workload relies
        // on: anti-correlated data has (much) larger skylines than
        // correlated data of the same shape.
        let n = 2_000;
        let anti = skyline_indices(&generate(n, 3, Distribution::AntiCorrelated, 5)).len();
        let indep = skyline_indices(&generate(n, 3, Distribution::Independent, 5)).len();
        let corr = skyline_indices(&generate(n, 3, Distribution::Correlated, 5)).len();
        assert!(
            anti > indep,
            "anti ({anti}) should exceed independent ({indep})"
        );
        assert!(
            indep > corr,
            "independent ({indep}) should exceed correlated ({corr})"
        );
    }

    fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
        let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
        cov / (vx.sqrt() * vy.sqrt())
    }
}
