//! Dataset-level backend dispatch: `Dataset::top1_batch` and
//! `Dataset::utilities_into` must return bit-identical results under every
//! [`ScanBackend`], and must honor whatever backend the ambient
//! `ISRL_SCAN_BACKEND` selects (the CI `kernel-differential` job runs this
//! binary with each forced value).

use isrl_data::{generate, Distribution};
use isrl_linalg::{scan_backend, set_scan_backend, ScanBackend, Top1};

const ALL: [ScanBackend; 5] = [
    ScanBackend::Auto,
    ScanBackend::Scalar,
    ScanBackend::Simd,
    ScanBackend::Soa,
    ScanBackend::SoaF32,
];

/// One test fn sweeps every backend so the process-global knob is never
/// mutated concurrently; the ambient (env-chosen) backend is restored
/// afterwards for any sibling test.
#[test]
fn dataset_scans_are_bit_identical_under_every_backend() {
    let ambient = scan_backend();
    let data = generate(3000, 7, Distribution::AntiCorrelated, 42);
    let utilities: Vec<Vec<f64>> = (0..9)
        .map(|i| {
            let mut u = vec![0.0; 7];
            for (j, x) in u.iter_mut().enumerate() {
                *x = 0.05 + ((i * 7 + j) % 13) as f64 / 13.0;
            }
            u
        })
        .collect();

    // Scalar reference, computed without the dispatcher.
    let reference: Vec<Top1> = utilities
        .iter()
        .map(|u| isrl_linalg::top1_scalar(u, data.as_flat(), data.dim()))
        .collect();
    let mut ref_dots = Vec::new();
    isrl_linalg::row_dots(data.as_flat(), data.dim(), &utilities[0], &mut ref_dots);

    for backend in ALL {
        set_scan_backend(backend);
        let got = data.top1_batch(&utilities);
        for (k, (g, r)) in got.iter().zip(&reference).enumerate() {
            assert_eq!(g.index, r.index, "{backend:?}: index, utility {k}");
            assert_eq!(
                g.value.to_bits(),
                r.value.to_bits(),
                "{backend:?}: value, utility {k}"
            );
        }
        let mut dots = Vec::new();
        data.utilities_into(&utilities[0], &mut dots);
        assert_eq!(dots.len(), ref_dots.len(), "{backend:?}: score count");
        for (i, (a, b)) in dots.iter().zip(&ref_dots).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{backend:?}: score {i}");
        }
        // Dispatch agrees with the per-vector scalar entry points too.
        assert_eq!(got[0].index, data.argmax_utility(&utilities[0]));
        assert_eq!(got[0].value, data.max_utility(&utilities[0]));
    }
    set_scan_backend(ambient);
}

#[test]
fn soa_mirror_is_lazy_and_consistent_with_rows() {
    let data = generate(500, 5, Distribution::Independent, 7);
    let soa = data.soa();
    assert_eq!(soa.len(), data.len());
    assert_eq!(soa.dim(), data.dim());
    for j in 0..data.dim() {
        let col = soa.col(j);
        for (i, &cell) in col.iter().enumerate() {
            assert_eq!(cell.to_bits(), data.point(i)[j].to_bits(), "({i},{j})");
        }
    }
}
