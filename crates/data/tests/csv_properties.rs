//! Property-based tests for the CSV dialect and the normalization pipeline.

use isrl_data::csv::{load_dataset, parse, write_csv};
use isrl_data::normalize::{normalize_table, Direction, FLOOR};
use proptest::prelude::*;

/// Cell strategy: text with the characters that stress the dialect.
fn cell() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z0-9 ,\"']{0,12}").expect("valid regex")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn numeric_write_parse_round_trips(
        rows in prop::collection::vec(
            prop::collection::vec(-1e6f64..1e6, 3),
            1..20,
        ),
    ) {
        let text = write_csv(&["a", "b", "c"], &rows);
        let table = parse(&text).unwrap();
        prop_assert_eq!(table.rows.len(), rows.len());
        for (parsed, original) in table.rows.iter().zip(&rows) {
            for (cell, &val) in parsed.iter().zip(original) {
                let back: f64 = cell.parse().unwrap();
                prop_assert!((back - val).abs() <= 1e-9 * (1.0 + val.abs()));
            }
        }
    }

    #[test]
    fn arbitrary_cells_survive_quoting(cells in prop::collection::vec(cell(), 1..6)) {
        // Quote every cell defensively and ensure the parser recovers the
        // original content.
        let quoted: Vec<String> = cells
            .iter()
            .map(|c| format!("\"{}\"", c.replace('"', "\"\"")))
            .collect();
        let header: Vec<String> = (0..cells.len()).map(|i| format!("c{i}")).collect();
        let text = format!("{}\n{}\n", header.join(","), quoted.join(","));
        let table = parse(&text).unwrap();
        prop_assert_eq!(&table.rows[0], &cells);
    }

    #[test]
    fn normalization_lands_in_unit_interval_and_keeps_order(
        col in prop::collection::vec(-1e4f64..1e4, 2..40),
    ) {
        for dir in [Direction::LargerBetter, Direction::SmallerBetter] {
            let rows: Vec<Vec<f64>> = col.iter().map(|&v| vec![v]).collect();
            let out = normalize_table(&rows, &[dir]);
            for r in &out {
                prop_assert!(r[0] >= FLOOR - 1e-15 && r[0] <= 1.0);
            }
            // Order preserved (LargerBetter) or reversed (SmallerBetter).
            for i in 0..col.len() {
                for j in 0..col.len() {
                    if (col[i] - col[j]).abs() < 1e-9 {
                        continue;
                    }
                    // The FLOOR clamp may merge the worst values; only test
                    // pairs whose outputs stay above the clamp.
                    if out[i][0] <= FLOOR || out[j][0] <= FLOOR {
                        continue;
                    }
                    let raw_less = col[i] < col[j];
                    let norm_less = out[i][0] < out[j][0];
                    match dir {
                        Direction::LargerBetter => prop_assert_eq!(raw_less, norm_less),
                        Direction::SmallerBetter => prop_assert_eq!(raw_less, !norm_less),
                    }
                }
            }
        }
    }

    #[test]
    fn load_dataset_is_write_csv_inverse_modulo_normalization(
        rows in prop::collection::vec(prop::collection::vec(0.1f64..100.0, 2), 2..15),
    ) {
        let text = write_csv(&["x", "y"], &rows);
        let data = load_dataset(
            &text,
            &[("x", Direction::LargerBetter), ("y", Direction::LargerBetter)],
        )
        .unwrap();
        prop_assert_eq!(data.len(), rows.len());
        prop_assert_eq!(data.dim(), 2);
        prop_assert!(data.check_normalized().is_none());
        // The best raw value per column maps to 1 (or the column was constant).
        for col in 0..2 {
            let max = data.iter().map(|p| p[col]).fold(f64::NEG_INFINITY, f64::max);
            prop_assert!((max - 1.0).abs() < 1e-12);
        }
    }
}
