//! Spheres, including the paper's iterative outer (enclosing) sphere.
//!
//! Algorithm EA summarizes the utility range with the smallest sphere
//! enclosing its extreme utility vectors (§IV-B, part 2 of the state). The
//! paper finds it with a simple iterative scheme — walk the center toward
//! the farthest point by half the gap between the two largest distances —
//! and proves (Lemma 3) the radius is non-increasing across iterations.
//! We implement exactly that scheme.

use isrl_linalg::vector;

/// A Euclidean ball given by center and radius.
#[derive(Debug, Clone, PartialEq)]
pub struct Sphere {
    center: Vec<f64>,
    radius: f64,
}

impl Sphere {
    /// Creates a sphere.
    ///
    /// # Panics
    /// Panics if the radius is negative or NaN.
    pub fn new(center: Vec<f64>, radius: f64) -> Self {
        assert!(
            radius >= 0.0,
            "sphere radius must be non-negative, got {radius}"
        );
        Self { center, radius }
    }

    /// The center point.
    #[inline]
    pub fn center(&self) -> &[f64] {
        &self.center
    }

    /// The radius.
    #[inline]
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// `true` iff `p` lies inside or on the sphere (with tolerance).
    pub fn contains(&self, p: &[f64], tol: f64) -> bool {
        vector::dist(&self.center, p) <= self.radius + tol
    }

    /// State encoding: `center ⊕ [radius]`, `d + 1` numbers.
    pub fn encode(&self) -> Vec<f64> {
        let mut v = self.center.clone();
        v.push(self.radius);
        v
    }
}

/// Configuration for [`min_enclosing_sphere`].
#[derive(Debug, Clone, Copy)]
pub struct EnclosingSphereParams {
    /// Stop when the center offset of an iteration falls below this.
    pub offset_tol: f64,
    /// Hard iteration cap.
    pub max_iters: usize,
}

impl Default for EnclosingSphereParams {
    fn default() -> Self {
        Self {
            offset_tol: 1e-7,
            max_iters: 1_000,
        }
    }
}

/// The paper's iterative minimum-enclosing-sphere approximation (§IV-B):
/// starting from an initial center (we use the centroid rather than a random
/// point — same convergence argument, deterministic), repeatedly move the
/// center toward the farthest point `e₁` by `(‖c−e₁‖ − ‖c−e₂‖)/2`, where
/// `e₂` is the second-farthest. Stops when the offset drops below
/// `offset_tol` or after `max_iters` iterations (Lemma 3 guarantees the
/// radius is non-increasing, so stopping early is always safe).
///
/// # Panics
/// Panics if `points` is empty.
pub fn min_enclosing_sphere(points: &[Vec<f64>], params: EnclosingSphereParams) -> Sphere {
    assert!(!points.is_empty(), "enclosing sphere of no points");
    let d = points[0].len();
    if points.len() == 1 {
        return Sphere::new(points[0].clone(), 0.0);
    }

    let mut center = vector::mean(points);
    debug_assert_eq!(center.len(), d);

    for _ in 0..params.max_iters {
        // Farthest and second-farthest points from the current center.
        let (mut i1, mut d1) = (0usize, f64::NEG_INFINITY);
        let (mut _i2, mut d2) = (0usize, f64::NEG_INFINITY);
        for (i, p) in points.iter().enumerate() {
            let dist = vector::dist(&center, p);
            if dist > d1 {
                _i2 = i1;
                d2 = d1;
                i1 = i;
                d1 = dist;
            } else if dist > d2 {
                _i2 = i;
                d2 = dist;
            }
        }
        let offset = 0.5 * (d1 - d2);
        if offset <= params.offset_tol {
            return Sphere::new(center, d1);
        }
        // Move the center toward the farthest point by `offset`.
        let dir = vector::sub(&points[i1], &center);
        let len = vector::norm(&dir);
        debug_assert!(len > 0.0);
        vector::axpy(&mut center, offset / len, &dir);
    }

    let radius = points
        .iter()
        .map(|p| vector::dist(&center, p))
        .fold(0.0f64, f64::max);
    Sphere::new(center, radius)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encloses_all(s: &Sphere, pts: &[Vec<f64>]) -> bool {
        pts.iter().all(|p| s.contains(p, 1e-6))
    }

    #[test]
    fn single_point_gives_zero_sphere() {
        let s = min_enclosing_sphere(&[vec![0.3, 0.7]], EnclosingSphereParams::default());
        assert_eq!(s.radius(), 0.0);
        assert_eq!(s.center(), &[0.3, 0.7][..]);
    }

    #[test]
    fn two_points_give_midpoint_sphere() {
        let pts = vec![vec![0.0, 0.0], vec![2.0, 0.0]];
        let s = min_enclosing_sphere(&pts, EnclosingSphereParams::default());
        assert!((s.radius() - 1.0).abs() < 1e-4, "radius {}", s.radius());
        assert!((s.center()[0] - 1.0).abs() < 1e-4);
        assert!(encloses_all(&s, &pts));
    }

    #[test]
    fn triangle_sphere_encloses_and_is_near_optimal() {
        // Equilateral-ish triangle on the 2-simplex; optimal radius is the
        // circumradius ≈ dist(centroid, vertex).
        let pts = vec![
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ];
        let s = min_enclosing_sphere(&pts, EnclosingSphereParams::default());
        assert!(encloses_all(&s, &pts));
        let opt = (2.0f64 / 3.0).sqrt(); // circumradius of that triangle
        assert!(
            s.radius() <= opt + 1e-3,
            "radius {} vs optimal {opt}",
            s.radius()
        );
    }

    #[test]
    fn radius_non_increasing_lemma3() {
        // Re-run the iteration manually and check Lemma 3's monotonicity.
        let pts: Vec<Vec<f64>> = vec![
            vec![0.9, 0.05, 0.05],
            vec![0.1, 0.8, 0.1],
            vec![0.2, 0.2, 0.6],
            vec![0.4, 0.4, 0.2],
            vec![0.25, 0.5, 0.25],
        ];
        let mut center = isrl_linalg::vector::mean(&pts);
        let radius_at = |c: &[f64]| {
            pts.iter()
                .map(|p| vector::dist(c, p))
                .fold(0.0f64, f64::max)
        };
        let mut prev = radius_at(&center);
        for _ in 0..50 {
            let mut dists: Vec<(usize, f64)> = pts
                .iter()
                .enumerate()
                .map(|(i, p)| (i, vector::dist(&center, p)))
                .collect();
            dists.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            let offset = 0.5 * (dists[0].1 - dists[1].1);
            if offset < 1e-12 {
                break;
            }
            let dir = vector::sub(&pts[dists[0].0], &center);
            let len = vector::norm(&dir);
            vector::axpy(&mut center, offset / len, &dir);
            let r = radius_at(&center);
            assert!(r <= prev + 1e-9, "Lemma 3 violated: {prev} -> {r}");
            prev = r;
        }
    }

    #[test]
    fn encloses_random_cloud() {
        let mut seed = 42u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Vec<f64>> = (0..40).map(|_| (0..5).map(|_| next()).collect()).collect();
        let s = min_enclosing_sphere(&pts, EnclosingSphereParams::default());
        assert!(encloses_all(&s, &pts));
    }

    #[test]
    fn encode_appends_radius() {
        let s = Sphere::new(vec![0.2, 0.8], 0.5);
        assert_eq!(s.encode(), vec![0.2, 0.8, 0.5]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_radius_panics() {
        Sphere::new(vec![0.0], -1.0);
    }
}
