//! The utility range `R` as a half-space intersection over the simplex.
//!
//! This is the state substrate of algorithm AA (§IV-C of the paper): instead
//! of materializing the polyhedron, we keep the set `H` of learned
//! half-spaces and answer every geometric question about
//! `R = ⋂_{h⁺ ∈ H} h⁺ ∩ U` with a small LP. The exact algorithm EA layers
//! vertex enumeration on top of this representation (see [`crate::polytope`]).

use crate::hyperplane::Halfspace;
use crate::lp::{Basis, LpBuilder, LpError, LpOutcome, Rel};
use crate::rectangle::Rectangle;
use crate::sphere::Sphere;
use isrl_linalg::vector;

/// Margin below which a strict-feasibility LP answer counts as "empty".
const STRICT_TOL: f64 = 1e-9;

/// Carried warm-start bases for a region's recurring LPs.
///
/// AA re-solves the same family of LPs round after round — the inner
/// sphere, the 2d rectangle extents, and the strict-feasibility margin —
/// over a region that only ever *gains* one half-space per round. Each LP
/// keeps its own slot here, so its final simplex [`Basis`] seeds the next
/// solve of the *same* LP via [`crate::lp::solve_warm`]. The cache is a
/// pure accelerator: a stale or mismatched basis is repaired or discarded
/// by the warm solver, never trusted, so results are identical with or
/// without it (the differential test suites assert exactly this).
#[derive(Debug, Clone, Default)]
pub struct RegionLpCache {
    sphere: Option<Basis>,
    strict: Option<Basis>,
    rect_lo: Vec<Option<Basis>>,
    rect_hi: Vec<Option<Basis>>,
}

impl RegionLpCache {
    /// An empty cache; the first solve of each LP runs cold and primes it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops every carried basis (the next solves run cold again).
    pub fn clear(&mut self) {
        *self = Self::default();
    }

    /// `true` once at least one LP has deposited a reusable basis.
    pub fn is_primed(&self) -> bool {
        self.sphere.is_some()
            || self.strict.is_some()
            || self.rect_lo.iter().any(Option::is_some)
            || self.rect_hi.iter().any(Option::is_some)
    }
}

/// Solves through a warm slot when one is supplied, cold otherwise.
fn solve_slot(b: LpBuilder, slot: Option<&mut Option<Basis>>) -> Result<LpOutcome, LpError> {
    match slot {
        Some(s) => b.solve_with(s),
        None => b.solve(),
    }
}

/// A utility range: the intersection of the standard simplex
/// `U = { u : u ≥ 0, Σu = 1 }` with a growing set of half-spaces through the
/// origin, one per answered question.
#[derive(Debug, Clone)]
pub struct Region {
    dim: usize,
    halfspaces: Vec<Halfspace>,
}

impl Region {
    /// The whole utility space `U` in dimension `d` (no questions answered yet).
    ///
    /// # Panics
    /// Panics if `d < 2` — with one attribute there is only one utility
    /// vector and no query to run.
    pub fn full(d: usize) -> Self {
        assert!(d >= 2, "utility space needs at least 2 dimensions");
        Self {
            dim: d,
            halfspaces: Vec::new(),
        }
    }

    /// Dimensionality of the ambient space.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The learned half-spaces `H`.
    #[inline]
    pub fn halfspaces(&self) -> &[Halfspace] {
        &self.halfspaces
    }

    /// Number of learned half-spaces (= answered questions).
    #[inline]
    pub fn len(&self) -> usize {
        self.halfspaces.len()
    }

    /// `true` before any question has been answered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.halfspaces.is_empty()
    }

    /// Records a new half-space (one user answer).
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn add(&mut self, h: Halfspace) {
        assert_eq!(h.dim(), self.dim, "halfspace dimension mismatch");
        self.halfspaces.push(h);
    }

    /// `true` iff `u` lies in the region (closed half-spaces, tolerance `tol`).
    pub fn contains(&self, u: &[f64], tol: f64) -> bool {
        u.len() == self.dim
            && u.iter().all(|&x| x >= -tol)
            && (vector::sum(u) - 1.0).abs() <= self.dim as f64 * tol + tol
            && self.halfspaces.iter().all(|h| h.contains(u, tol))
    }

    /// Builds the common LP stub: variables `u[0..d]` (+ optionally extras),
    /// with `Σu = 1`, `u ≥ 0` implicit, and `normal · u ≥ 0` per half-space.
    fn base_lp(&self, objective: &[f64], maximize: bool) -> LpBuilder {
        let n = objective.len();
        debug_assert!(n >= self.dim);
        let mut b = if maximize {
            LpBuilder::maximize(objective)
        } else {
            LpBuilder::minimize(objective)
        };
        let mut sum_row = vec![0.0; n];
        for v in sum_row.iter_mut().take(self.dim) {
            *v = 1.0;
        }
        b = b.constraint(&sum_row, Rel::Eq, 1.0);
        for h in &self.halfspaces {
            let mut row = vec![0.0; n];
            row[..self.dim].copy_from_slice(h.normal());
            b = b.constraint(&row, Rel::Ge, 0.0);
        }
        b
    }

    /// Maximum strict margin: the largest `x` such that some `u ∈ U`
    /// satisfies `normal · u ≥ x` for every learned half-space **and** every
    /// half-space in `extra`. A positive margin certifies a strictly
    /// feasible interior point (the paper's `maximize x` LP in §IV-C).
    ///
    /// Returns `None` when even the closed region is empty.
    pub fn strict_margin(&self, extra: &[&Halfspace]) -> Option<f64> {
        self.strict_margin_impl(extra, None)
    }

    /// [`Region::strict_margin`] through a warm-start cache: the margin
    /// LP's final basis is carried in `cache` and reused on the next call,
    /// which is typically one appended half-space away.
    pub fn strict_margin_with(
        &self,
        extra: &[&Halfspace],
        cache: &mut RegionLpCache,
    ) -> Option<f64> {
        self.strict_margin_impl(extra, Some(&mut cache.strict))
    }

    fn strict_margin_impl(
        &self,
        extra: &[&Halfspace],
        slot: Option<&mut Option<Basis>>,
    ) -> Option<f64> {
        let _lp = isrl_obs::span("lp");
        let d = self.dim;
        // Variables: u[0..d] ≥ 0, x free (last). Only the margin rows
        // `normal·u − x ≥ 0` are added — with x free they subsume the plain
        // `normal·u ≥ 0` rows (an empty region simply yields a negative
        // optimum), and halving the row count matters: this LP runs once or
        // twice per candidate question.
        //
        // Row order is [sum, cap, learned half-spaces…, extras]: the fixed
        // rows lead and learned half-spaces only ever append, so a carried
        // basis keeps its row identities from one round to the next.
        let mut obj = vec![0.0; d + 1];
        obj[d] = 1.0;
        let mut b = LpBuilder::maximize(&obj).free_var(d);
        let mut sum_row = vec![0.0; d + 1];
        for v in sum_row.iter_mut().take(d) {
            *v = 1.0;
        }
        b = b.constraint(&sum_row, Rel::Eq, 1.0);
        // Cap x so the LP is bounded even with no half-spaces at all.
        let mut cap = vec![0.0; d + 1];
        cap[d] = 1.0;
        b = b.constraint(&cap, Rel::Le, 1.0);
        for h in self.halfspaces.iter().chain(extra.iter().copied()) {
            let mut row = vec![0.0; d + 1];
            // Normalize so the margin is comparable across half-spaces.
            let norm = vector::norm(h.normal());
            for (r, c) in row.iter_mut().zip(h.normal()) {
                *r = c / norm;
            }
            row[d] = -1.0;
            b = b.constraint(&row, Rel::Ge, 0.0);
        }
        match solve_slot(b, slot) {
            // A phase-2 cap still certifies feasibility of the incumbent
            // margin (a lower bound on the optimum) — usable, and counted
            // by the solver under `lp.cap_hits`.
            Ok(LpOutcome::Optimal(s)) | Ok(LpOutcome::IterationCapped(s)) => Some(s.objective),
            Ok(_) => None,
            // Phase-1 cap: feasibility undetermined. Reported as "no
            // certified margin" instead of the panic this used to be;
            // counted under `lp.phase1_cap_hits`.
            Err(LpError::IterationLimit) => None,
            Err(LpError::ShapeMismatch) => unreachable!("strict margin LP is well-formed"),
        }
    }

    /// `true` iff the region has a strictly feasible interior point.
    pub fn has_interior(&self) -> bool {
        self.strict_margin(&[]).is_some_and(|m| m > STRICT_TOL)
    }

    /// [`Region::has_interior`] through a warm-start cache.
    pub fn has_interior_with(&self, cache: &mut RegionLpCache) -> bool {
        self.strict_margin_with(&[], cache)
            .is_some_and(|m| m > STRICT_TOL)
    }

    /// `true` iff the hyperplane bounding `h` genuinely cuts the region:
    /// both `R ∩ h⁺` and `R ∩ h⁻` retain interior points (the first action
    /// condition of algorithm AA, Lemma 8).
    pub fn is_cut_by(&self, h: &Halfspace) -> bool {
        let flipped = h.flipped();
        self.strict_margin(&[h]).is_some_and(|m| m > STRICT_TOL)
            && self
                .strict_margin(&[&flipped])
                .is_some_and(|m| m > STRICT_TOL)
    }

    /// [`Region::is_cut_by`] through a warm-start cache: both orientation
    /// LPs share the margin slot — they differ from each other (and from
    /// the previous candidate's LPs) by one flipped tail row, which is
    /// exactly the edit the basis-repair path absorbs in a pivot or two.
    pub fn is_cut_by_with(&self, h: &Halfspace, cache: &mut RegionLpCache) -> bool {
        let flipped = h.flipped();
        self.strict_margin_with(&[h], cache)
            .is_some_and(|m| m > STRICT_TOL)
            && self
                .strict_margin_with(&[&flipped], cache)
                .is_some_and(|m| m > STRICT_TOL)
    }

    /// The inner sphere of the region (§IV-C state, part 1): the ball of
    /// largest radius centered in `R` that stays inside every learned
    /// half-space *and* inside the simplex facets `u_i ≥ 0`.
    ///
    /// The paper's LP constrains only the learned half-spaces; we also add
    /// the simplex facets so the sphere is well-defined before the first
    /// question is answered (documented substitution in DESIGN.md §2).
    ///
    /// Returns `None` when the region is empty.
    pub fn inner_sphere(&self) -> Option<Sphere> {
        self.inner_sphere_impl(None)
    }

    /// [`Region::inner_sphere`] through a warm-start cache: the sphere LP
    /// keeps its own basis slot across rounds.
    pub fn inner_sphere_with(&self, cache: &mut RegionLpCache) -> Option<Sphere> {
        self.inner_sphere_impl(Some(&mut cache.sphere))
    }

    fn inner_sphere_impl(&self, slot: Option<&mut Option<Basis>>) -> Option<Sphere> {
        let _lp = isrl_obs::span("lp");
        let d = self.dim;
        // Variables: center c[0..d] ≥ 0, radius r (free; optimum is ≥ 0 iff
        // feasible). As in `strict_margin`, the distance rows with a free
        // radius subsume the plain half-space rows, so only the simplex
        // equality plus one row per half-space/facet is needed.
        //
        // Row order is [sum, simplex facets…, learned half-spaces…]: the
        // fixed rows lead so each round's cut is a pure append and a
        // carried basis keeps its row identities.
        let mut obj = vec![0.0; d + 1];
        obj[d] = 1.0;
        let mut b = LpBuilder::maximize(&obj).free_var(d);
        let mut sum_row = vec![0.0; d + 1];
        for v in sum_row.iter_mut().take(d) {
            *v = 1.0;
        }
        b = b.constraint(&sum_row, Rel::Eq, 1.0);
        // Distance to each simplex facet u_i = 0 is simply c_i.
        for i in 0..d {
            let mut row = vec![0.0; d + 1];
            row[i] = 1.0;
            row[d] = -1.0;
            b = b.constraint(&row, Rel::Ge, 0.0);
        }
        // Distance to each learned hyperplane: normal·c / ‖normal‖ ≥ r.
        for h in &self.halfspaces {
            let norm = vector::norm(h.normal());
            let mut row = vec![0.0; d + 1];
            for (r, c) in row.iter_mut().zip(h.normal()) {
                *r = c / norm;
            }
            row[d] = -1.0;
            b = b.constraint(&row, Rel::Ge, 0.0);
        }
        // A capped solve carries a feasible center with an achieved (if
        // possibly sub-optimal) radius — still a valid inner sphere. A
        // phase-1 cap leaves feasibility unknown: report "empty" rather
        // than panic; both cases are counted by the solver.
        let sol = match solve_slot(b, slot) {
            Ok(out) => out.solution()?,
            Err(LpError::IterationLimit) => return None,
            Err(LpError::ShapeMismatch) => unreachable!("inner sphere LP is well-formed"),
        };
        if sol.objective < -STRICT_TOL {
            return None;
        }
        Some(Sphere::new(sol.x[..d].to_vec(), sol.objective.max(0.0)))
    }

    /// The outer rectangle of the region (§IV-C state, part 2): the smallest
    /// axis-aligned box `[e_min, e_max]` containing `R`, found by `2d` LPs
    /// (minimize and maximize `u[i]` over `R` for each `i`).
    ///
    /// Returns `None` when the region is empty.
    pub fn outer_rectangle(&self) -> Option<Rectangle> {
        self.outer_rectangle_impl(None)
    }

    /// [`Region::outer_rectangle`] through a warm-start cache: each of the
    /// 2d extent LPs keeps its own basis slot across rounds.
    pub fn outer_rectangle_with(&self, cache: &mut RegionLpCache) -> Option<Rectangle> {
        self.outer_rectangle_impl(Some(cache))
    }

    fn outer_rectangle_impl(&self, mut cache: Option<&mut RegionLpCache>) -> Option<Rectangle> {
        let _lp = isrl_obs::span("lp");
        let d = self.dim;
        if let Some(c) = cache.as_deref_mut() {
            if c.rect_lo.len() < d {
                c.rect_lo.resize(d, None);
                c.rect_hi.resize(d, None);
            }
        }
        let mut lo = vec![0.0; d];
        let mut hi = vec![0.0; d];
        // A truncated extent LP (phase-2 cap or phase-1 cap) used to flow
        // through `.ok()?.optimal()?` and read as "empty region" — silently
        // terminating the interaction. Instead fall back to the trivial
        // simplex facet bound for that coordinate: the rectangle stays a
        // true enclosure of `R`, just looser, and the solver counts the cap.
        for i in 0..d {
            let mut obj = vec![0.0; d];
            obj[i] = 1.0;
            let slot = cache.as_deref_mut().map(|c| &mut c.rect_lo[i]);
            lo[i] = match solve_slot(self.base_lp(&obj, false), slot) {
                Ok(LpOutcome::Optimal(s)) => s.objective.max(0.0),
                // Capped minimization: the incumbent only bounds the true
                // minimum from above, so it cannot shrink the box.
                Ok(LpOutcome::IterationCapped(_)) | Err(LpError::IterationLimit) => 0.0,
                Ok(_) => return None,
                Err(LpError::ShapeMismatch) => unreachable!("extent LP is well-formed"),
            };
            let slot = cache.as_deref_mut().map(|c| &mut c.rect_hi[i]);
            hi[i] = match solve_slot(self.base_lp(&obj, true), slot) {
                Ok(LpOutcome::Optimal(s)) => s.objective.min(1.0),
                Ok(LpOutcome::IterationCapped(_)) | Err(LpError::IterationLimit) => 1.0,
                Ok(_) => return None,
                Err(LpError::ShapeMismatch) => unreachable!("extent LP is well-formed"),
            };
        }
        Some(Rectangle::new(lo, hi))
    }

    /// True extreme points of the region, one per coordinate: the argmax
    /// vertex of each `max x_i` extent LP. A linear optimum over a polytope
    /// is attained at a vertex, so these are genuine members of the vertex
    /// set the sampled backend never enumerates — on the full simplex they
    /// are exactly the corners `e_i`. The sample cloud carries them as
    /// anchors so cloud-based terminal checks see the extremes a uniform
    /// interior sample misses. `None` when the region is empty; an
    /// iteration-capped coordinate is skipped (its incumbent is feasible
    /// but not extreme), so the result may have fewer than `d` points.
    pub fn axis_extreme_points(&self) -> Option<Vec<Vec<f64>>> {
        self.axis_extreme_points_impl(None)
    }

    /// [`Region::axis_extreme_points`] through a warm-start cache, sharing
    /// the `rect_hi` basis slots with the outer-rectangle extent LPs (they
    /// are the same programs).
    pub fn axis_extreme_points_with(&self, cache: &mut RegionLpCache) -> Option<Vec<Vec<f64>>> {
        self.axis_extreme_points_impl(Some(cache))
    }

    fn axis_extreme_points_impl(
        &self,
        mut cache: Option<&mut RegionLpCache>,
    ) -> Option<Vec<Vec<f64>>> {
        let _lp = isrl_obs::span("lp");
        let d = self.dim;
        if let Some(c) = cache.as_deref_mut() {
            if c.rect_hi.len() < d {
                c.rect_lo.resize(d, None);
                c.rect_hi.resize(d, None);
            }
        }
        let mut out = Vec::with_capacity(d);
        for i in 0..d {
            let mut obj = vec![0.0; d];
            obj[i] = 1.0;
            let slot = cache.as_deref_mut().map(|c| &mut c.rect_hi[i]);
            match solve_slot(self.base_lp(&obj, true), slot) {
                Ok(LpOutcome::Optimal(s)) => out.push(s.x),
                Ok(LpOutcome::IterationCapped(_)) | Err(LpError::IterationLimit) => continue,
                Ok(_) => return None,
                Err(LpError::ShapeMismatch) => unreachable!("extent LP is well-formed"),
            }
        }
        Some(out)
    }

    /// A feasible point of the region (the inner-sphere center), if any.
    pub fn feasible_point(&self) -> Option<Vec<f64>> {
        self.inner_sphere().map(|s| s.center().to_vec())
    }

    /// [`Region::feasible_point`] through a warm-start cache.
    pub fn feasible_point_with(&self, cache: &mut RegionLpCache) -> Option<Vec<f64>> {
        self.inner_sphere_with(cache).map(|s| s.center().to_vec())
    }

    /// Monte-Carlo estimate of the region's volume as a fraction of the
    /// whole utility simplex: the acceptance rate of `n_samples` uniform
    /// simplex samples against the half-space set.
    ///
    /// This is the quantity Lemma 5 reasons about (bigger fraction ⇒ more
    /// sampled utility vectors land inside); it is also a useful progress
    /// diagnostic — each informative answer should roughly halve it. The
    /// estimate degrades for very small regions (the standard error of a
    /// fraction `p` is `√(p(1−p)/n)`), which is exactly when the LP-based
    /// summaries take over.
    pub fn approx_volume_fraction<R: rand::Rng + ?Sized>(
        &self,
        n_samples: usize,
        rng: &mut R,
    ) -> f64 {
        assert!(n_samples > 0, "volume estimate needs at least one sample");
        let mut inside = 0usize;
        for _ in 0..n_samples {
            let u = crate::sampling::sample_simplex(self.dim, rng);
            if self.halfspaces.iter().all(|h| h.contains(&u, 0.0)) {
                inside += 1;
            }
        }
        inside as f64 / n_samples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_simplex_inner_sphere_is_barycentric() {
        let r = Region::full(3);
        let s = r.inner_sphere().unwrap();
        for c in s.center() {
            assert!((c - 1.0 / 3.0).abs() < 1e-6, "center {:?}", s.center());
        }
        assert!((s.radius() - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn full_simplex_outer_rectangle_is_unit_box() {
        let r = Region::full(4);
        let rect = r.outer_rectangle().unwrap();
        for i in 0..4 {
            assert!(rect.min()[i].abs() < 1e-7);
            assert!((rect.max()[i] - 1.0).abs() < 1e-7);
        }
    }

    #[test]
    fn halfspace_narrows_rectangle() {
        let mut r = Region::full(2);
        // u0 ≥ u1 ⇒ u0 ∈ [0.5, 1].
        r.add(Halfspace::new(vec![1.0, -1.0]));
        let rect = r.outer_rectangle().unwrap();
        assert!((rect.min()[0] - 0.5).abs() < 1e-6, "min {:?}", rect.min());
        assert!((rect.max()[0] - 1.0).abs() < 1e-6);
        assert!((rect.max()[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn contains_respects_halfspaces() {
        let mut r = Region::full(3);
        r.add(Halfspace::new(vec![1.0, -1.0, 0.0]));
        assert!(r.contains(&[0.5, 0.3, 0.2], 1e-9));
        assert!(!r.contains(&[0.2, 0.5, 0.3], 1e-9));
        assert!(!r.contains(&[0.5, 0.5, 0.5], 1e-9)); // off the simplex
    }

    #[test]
    fn empty_region_detected() {
        let mut r = Region::full(2);
        r.add(Halfspace::new(vec![0.5, -1.5])); // u0 considerably above u1
        r.add(Halfspace::new(vec![-1.5, 0.5])); // and vice versa — impossible
        assert!(!r.has_interior());
        assert!(r.inner_sphere().is_none() || r.inner_sphere().unwrap().radius() < 1e-6);
    }

    #[test]
    fn cut_detection() {
        let r = Region::full(3);
        // The plane u0 = u1 cuts the full simplex.
        assert!(r.is_cut_by(&Halfspace::new(vec![1.0, -1.0, 0.0])));
        let mut narrowed = Region::full(3);
        narrowed.add(Halfspace::new(vec![1.0, -1.0, 0.0]));
        // The same plane no longer cuts the narrowed region (it bounds it).
        assert!(!narrowed.is_cut_by(&Halfspace::new(vec![1.0, -1.0, 0.0])));
    }

    #[test]
    fn inner_sphere_center_is_feasible_and_shrinks() {
        let mut r = Region::full(3);
        let before = r.inner_sphere().unwrap().radius();
        r.add(Halfspace::new(vec![1.0, -1.0, 0.0]));
        let s = r.inner_sphere().unwrap();
        assert!(r.contains(s.center(), 1e-7));
        assert!(s.radius() <= before + 1e-9, "radius must not grow");
        assert!(s.radius() > 0.0);
    }

    #[test]
    fn strict_margin_positive_for_full_simplex() {
        let r = Region::full(4);
        assert!(r.strict_margin(&[]).unwrap() > 0.0);
        assert!(r.has_interior());
    }

    #[test]
    fn volume_fraction_of_full_simplex_is_one() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert_eq!(Region::full(3).approx_volume_fraction(500, &mut rng), 1.0);
    }

    #[test]
    fn volume_fraction_halves_under_a_median_cut() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut r = Region::full(2);
        r.add(Halfspace::new(vec![1.0, -1.0])); // u0 ≥ u1: half the segment
        let f = r.approx_volume_fraction(4_000, &mut rng);
        assert!((f - 0.5).abs() < 0.03, "fraction {f}");
    }

    #[test]
    fn volume_fraction_shrinks_with_each_cut() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut r = Region::full(3);
        let mut prev = 1.0;
        for h in [
            Halfspace::new(vec![1.0, -1.0, 0.0]),
            Halfspace::new(vec![0.0, 1.0, -1.0]),
            Halfspace::new(vec![1.0, 0.2, -1.4]),
        ] {
            r.add(h);
            let f = r.approx_volume_fraction(3_000, &mut rng);
            assert!(f <= prev + 0.02, "volume grew: {prev} -> {f}");
            prev = f;
        }
    }

    #[test]
    fn warm_cached_summaries_match_cold_across_cuts() {
        // The AA round-loop shape: summaries recomputed after each appended
        // cut, with the warm cache carrying every LP's basis forward. The
        // objectives (radius, extents, margins) must agree with the cold
        // path to LP tolerance at every step.
        let mut r = Region::full(3);
        let mut cache = RegionLpCache::new();
        let probe = Halfspace::new(vec![0.3, -1.0, 0.7]);
        for h in [
            Halfspace::new(vec![1.0, -1.0, 0.0]),
            Halfspace::new(vec![0.0, 1.0, -1.0]),
            Halfspace::new(vec![1.0, 0.2, -1.4]),
        ] {
            r.add(h);
            let cold_s = r.inner_sphere().unwrap();
            let warm_s = r.inner_sphere_with(&mut cache).unwrap();
            assert!(
                (cold_s.radius() - warm_s.radius()).abs() < 1e-9,
                "radius diverged: {} vs {}",
                cold_s.radius(),
                warm_s.radius()
            );
            assert!(r.contains(warm_s.center(), 1e-7));

            let cold_rect = r.outer_rectangle().unwrap();
            let warm_rect = r.outer_rectangle_with(&mut cache).unwrap();
            for i in 0..3 {
                assert!((cold_rect.min()[i] - warm_rect.min()[i]).abs() < 1e-9);
                assert!((cold_rect.max()[i] - warm_rect.max()[i]).abs() < 1e-9);
            }

            assert_eq!(r.is_cut_by(&probe), r.is_cut_by_with(&probe, &mut cache));
            assert_eq!(r.has_interior(), r.has_interior_with(&mut cache));
        }
        assert!(cache.is_primed());
    }

    #[test]
    fn warm_cache_detects_emptiness_like_cold() {
        let mut r = Region::full(2);
        let mut cache = RegionLpCache::new();
        assert!(r.has_interior_with(&mut cache));
        r.add(Halfspace::new(vec![0.5, -1.5]));
        assert!(r.has_interior_with(&mut cache));
        r.add(Halfspace::new(vec![-1.5, 0.5]));
        assert!(!r.has_interior_with(&mut cache));
        assert!(!r.has_interior());
    }

    #[test]
    fn rectangle_diagonal_shrinks_monotonically() {
        // The AA stopping quantity ‖e_min − e_max‖ never grows as answers arrive.
        let mut r = Region::full(3);
        let mut prev = r.outer_rectangle().unwrap().diagonal();
        for h in [
            Halfspace::new(vec![1.0, -1.0, 0.0]),
            Halfspace::new(vec![0.0, 1.0, -1.0]),
            Halfspace::new(vec![1.0, 0.0, -1.2]),
        ] {
            r.add(h);
            let diag = r.outer_rectangle().unwrap().diagonal();
            assert!(diag <= prev + 1e-9, "diagonal grew: {prev} -> {diag}");
            prev = diag;
        }
    }
}
