//! Axis-aligned rectangles (boxes).
//!
//! Algorithm AA's state carries the outer rectangle `[e_min, e_max]` of the
//! utility range, and its stopping condition (Lemma 9) is a bound on the
//! rectangle's diagonal: `‖e_min − e_max‖ ≤ 2√d·ε` guarantees the returned
//! point's regret ratio is at most `d²ε`.

use isrl_linalg::vector;

/// An axis-aligned box `[min, max]` in `ℝᵈ`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rectangle {
    min: Vec<f64>,
    max: Vec<f64>,
}

impl Rectangle {
    /// Creates a rectangle from its corner vectors.
    ///
    /// # Panics
    /// Panics on length mismatch or if any `min[i] > max[i] + 1e-9`
    /// (LP round-off up to that tolerance is absorbed by swapping).
    pub fn new(min: Vec<f64>, max: Vec<f64>) -> Self {
        assert_eq!(min.len(), max.len(), "rectangle corner length mismatch");
        let mut min = min;
        let mut max = max;
        for i in 0..min.len() {
            if min[i] > max[i] {
                assert!(
                    min[i] - max[i] <= 1e-9,
                    "inverted rectangle on axis {i}: [{}, {}]",
                    min[i],
                    max[i]
                );
                std::mem::swap(&mut min[i], &mut max[i]);
            }
        }
        Self { min, max }
    }

    /// The lower corner `e_min`.
    #[inline]
    pub fn min(&self) -> &[f64] {
        &self.min
    }

    /// The upper corner `e_max`.
    #[inline]
    pub fn max(&self) -> &[f64] {
        &self.max
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.min.len()
    }

    /// The diagonal length `‖e_min − e_max‖` — AA's stopping quantity.
    pub fn diagonal(&self) -> f64 {
        vector::dist(&self.min, &self.max)
    }

    /// The midpoint `(e_min + e_max) / 2` — the utility vector AA returns
    /// the best tuple for (Algorithm 4, line 11).
    pub fn midpoint(&self) -> Vec<f64> {
        vector::midpoint(&self.min, &self.max)
    }

    /// `true` iff `p` lies inside the box (with tolerance).
    pub fn contains(&self, p: &[f64], tol: f64) -> bool {
        p.len() == self.dim()
            && p.iter()
                .zip(self.min.iter().zip(&self.max))
                .all(|(&x, (&lo, &hi))| x >= lo - tol && x <= hi + tol)
    }

    /// AA's stopping condition (Lemma 9): diagonal ≤ `2√d·ε`.
    pub fn meets_stop_condition(&self, eps: f64) -> bool {
        self.diagonal() <= 2.0 * (self.dim() as f64).sqrt() * eps
    }

    /// State encoding: `e_min ⊕ e_max`, `2d` numbers.
    pub fn encode(&self) -> Vec<f64> {
        let mut v = self.min.clone();
        v.extend_from_slice(&self.max);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_of_unit_box() {
        let r = Rectangle::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        assert!((r.diagonal() - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn midpoint_is_center() {
        let r = Rectangle::new(vec![0.2, 0.4], vec![0.4, 0.8]);
        let m = r.midpoint();
        assert!((m[0] - 0.3).abs() < 1e-12 && (m[1] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn contains_checks_all_axes() {
        let r = Rectangle::new(vec![0.0, 0.0], vec![0.5, 0.5]);
        assert!(r.contains(&[0.25, 0.5], 1e-12));
        assert!(!r.contains(&[0.25, 0.6], 1e-12));
        assert!(!r.contains(&[0.25], 1e-12));
    }

    #[test]
    fn stop_condition_threshold() {
        // d = 4, ε = 0.1 → threshold 2·2·0.1 = 0.4.
        let tight = Rectangle::new(vec![0.0; 4], vec![0.19, 0.0, 0.0, 0.0]);
        assert!(tight.meets_stop_condition(0.1));
        let wide = Rectangle::new(vec![0.0; 4], vec![0.5, 0.0, 0.0, 0.0]);
        assert!(!wide.meets_stop_condition(0.1));
    }

    #[test]
    fn tiny_inversion_from_lp_roundoff_is_absorbed() {
        let r = Rectangle::new(vec![0.5 + 1e-12], vec![0.5]);
        assert!(r.min()[0] <= r.max()[0]);
    }

    #[test]
    #[should_panic(expected = "inverted rectangle")]
    fn genuine_inversion_panics() {
        Rectangle::new(vec![1.0], vec![0.0]);
    }

    #[test]
    fn encode_concatenates_corners() {
        let r = Rectangle::new(vec![0.1, 0.2], vec![0.3, 0.4]);
        assert_eq!(r.encode(), vec![0.1, 0.2, 0.3, 0.4]);
    }
}
