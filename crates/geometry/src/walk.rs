//! Sampled utility-region representation: an incrementally-maintained
//! hit-and-run point cloud.
//!
//! Exact vertex enumeration costs `C(d + |H|, d − 1)` linear solves, which
//! is what confines algorithm EA to low dimensionality. A [`SampleCloud`]
//! replaces the vertex set with a fixed-size set of (approximately) uniform
//! samples of the region, produced by the [`crate::sampling::hit_and_run`]
//! chain warm-started from the region's inner-sphere (Chebyshev-style)
//! center. Every region query EA needs — terminal checks, state encoding,
//! centroid, bounding box — is a function of a point set, so the cloud is a
//! drop-in substitute whose per-cut cost is `O(n_points · d · |H|)` instead
//! of exponential in `d`.
//!
//! The cloud is maintained *incrementally* as cuts arrive: points that
//! satisfy a new half-space are kept as-is (a uniform sample of the old
//! region, conditioned on lying in the new sub-region, is a uniform sample
//! of the new region), and only the violated points are resampled by
//! fresh chain segments from the new interior point. At low dimension the
//! initial fill goes through exact rejection sampling first (uniform by
//! construction) and tops up with the chain only on shortfall.

use crate::hyperplane::Halfspace;
use crate::rectangle::Rectangle;
use crate::region::Region;
use crate::sampling;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameters of the sampled backend's chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkConfig {
    /// Number of points maintained in the cloud (the stand-in for the
    /// extreme-vector set; also the sample pool EA's action construction
    /// consumes directly).
    pub n_points: usize,
    /// Chain steps between emitted points; doubles as the burn-in length
    /// of each fresh chain segment.
    pub thin: usize,
    /// Dimension at or below which the *initial* fill tries exact
    /// rejection sampling before falling back to the chain (rejection is
    /// uniform by construction but its acceptance rate collapses with
    /// dimension).
    pub rejection_dim_max: usize,
}

impl Default for WalkConfig {
    fn default() -> Self {
        Self {
            n_points: 128,
            thin: 8,
            rejection_dim_max: 8,
        }
    }
}

/// A fixed-size set of (approximately) uniform samples of the region,
/// kept current across cuts by resampling only the violated points.
#[derive(Debug, Clone)]
pub struct SampleCloud {
    dim: usize,
    cfg: WalkConfig,
    rng: StdRng,
    /// The chain's current warm start: the region's inner-sphere center,
    /// refreshed by the caller on every cut.
    interior: Vec<f64>,
    points: Vec<Vec<f64>>,
    /// Known true vertices of the region (the axis-extent LP optimizers),
    /// refreshed by the caller alongside the interior point. Uniform
    /// interior samples systematically under-reach the region's extreme
    /// points, so consumers that relax a vertex-set check (EA's terminal
    /// certificate, the state encoding) read these through
    /// [`Self::all_points`] to see the extremes the chain misses.
    anchors: Vec<Vec<f64>>,
}

impl SampleCloud {
    /// Builds a cloud for `region` from a strictly interior point (the
    /// warm-LP inner-sphere center). Deterministic given `seed`.
    ///
    /// # Panics
    /// Panics if `region.dim() < 2`, the config is degenerate
    /// (`n_points == 0` or `thin == 0`), or `interior` has the wrong length.
    pub fn new(region: &Region, interior: Vec<f64>, cfg: WalkConfig, seed: u64) -> Self {
        let dim = region.dim();
        assert!(dim >= 2, "sample cloud needs d >= 2");
        assert!(cfg.n_points > 0, "cloud size must be positive");
        assert!(cfg.thin > 0, "thinning interval must be positive");
        assert_eq!(interior.len(), dim, "interior point dimension mismatch");
        let mut cloud = Self {
            dim,
            cfg,
            rng: StdRng::seed_from_u64(seed),
            interior,
            points: Vec::with_capacity(cfg.n_points),
            anchors: Vec::new(),
        };
        let mut points = if dim <= cfg.rejection_dim_max {
            sampling::sample_region_rejection(
                dim,
                region.halfspaces(),
                cfg.n_points,
                cfg.n_points * 8,
                &mut cloud.rng,
            )
        } else {
            Vec::new()
        };
        let shortfall = cfg.n_points - points.len();
        if shortfall > 0 {
            points.extend(cloud.walk(region.halfspaces(), shortfall));
        }
        cloud.points = points;
        cloud
    }

    /// Narrows the cloud by one half-space. `region` must already include
    /// `cut`, and `interior` must be a strictly interior point of it (the
    /// refreshed inner-sphere center). Points satisfying the cut survive
    /// untouched — conditioning a uniform sample on the surviving
    /// sub-region keeps it uniform there — and only the violated ones are
    /// replaced by fresh chain segments. Returns how many were resampled.
    ///
    /// # Panics
    /// Panics if `interior` has the wrong length.
    pub fn apply_cut(&mut self, region: &Region, cut: &Halfspace, interior: Vec<f64>) -> usize {
        assert_eq!(
            interior.len(),
            self.dim,
            "interior point dimension mismatch"
        );
        self.interior = interior;
        self.points.retain(|p| cut.contains(p, 0.0));
        let need = self.cfg.n_points - self.points.len();
        if need > 0 {
            let _span = isrl_obs::span("cloud_resample");
            let started = std::time::Instant::now();
            let fresh = self.walk(region.halfspaces(), need);
            self.points.extend(fresh);
            isrl_obs::add("geom.sampled.resampled", need as u64);
            isrl_obs::sketch_record("geom.resample_ms", started.elapsed().as_secs_f64() * 1e3);
        }
        need
    }

    /// Runs the chain from the current interior point and reports the
    /// sampled-backend telemetry (`geom.sampled.steps` / `.stuck`; their
    /// ratio is the chain's rejection rate).
    fn walk(&mut self, halfspaces: &[Halfspace], count: usize) -> Vec<Vec<f64>> {
        let (samples, stats) = sampling::hit_and_run_with_stats(
            self.dim,
            halfspaces,
            &self.interior,
            count,
            self.cfg.thin,
            &mut self.rng,
        );
        isrl_obs::add("geom.sampled.steps", stats.steps);
        isrl_obs::add("geom.sampled.stuck", stats.stuck);
        samples
    }

    /// The current sample set. Always exactly `n_points` long. Excludes
    /// anchors; see [`Self::all_points`].
    #[inline]
    pub fn points(&self) -> &[Vec<f64>] {
        &self.points
    }

    /// Replaces the anchor vertex set (the caller's axis-extent LP
    /// optimizers for the *current* region). Anchors are true region
    /// vertices, not chain output, and must be refreshed on every cut.
    ///
    /// # Panics
    /// Panics if any anchor has the wrong dimension.
    pub fn set_anchors(&mut self, anchors: Vec<Vec<f64>>) {
        for a in &anchors {
            assert_eq!(a.len(), self.dim, "anchor dimension mismatch");
        }
        self.anchors = anchors;
    }

    /// The current anchor vertices (possibly empty).
    #[inline]
    pub fn anchors(&self) -> &[Vec<f64>] {
        &self.anchors
    }

    /// Anchors followed by the chain samples: the point set vertex-check
    /// consumers should iterate, so the extremes the chain misses are
    /// always represented.
    pub fn all_points(&self) -> Vec<Vec<f64>> {
        let mut out = Vec::with_capacity(self.anchors.len() + self.points.len());
        out.extend(self.anchors.iter().cloned());
        out.extend(self.points.iter().cloned());
        out
    }

    /// The chain's current warm-start (the last interior point supplied).
    #[inline]
    pub fn interior(&self) -> &[f64] {
        &self.interior
    }

    /// Number of maintained points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the cloud holds no points (never, by construction, but
    /// clippy insists `len` comes with `is_empty`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Ambient dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The chain configuration.
    #[inline]
    pub fn config(&self) -> WalkConfig {
        self.cfg
    }

    /// Axis-aligned bounding box of the cloud — the sampled stand-in for
    /// the outer rectangle. The sweep includes the anchor vertices, so
    /// when anchors are the axis-extent LP optimizers the hi side is
    /// *exact* and only the lo side can under-reach the true LP extents.
    pub fn bounding_rectangle(&self) -> Option<Rectangle> {
        let mut sweep = self.anchors.iter().chain(self.points.iter());
        let first = sweep.next()?;
        let mut lo = first.clone();
        let mut hi = first.clone();
        for p in sweep {
            for (i, &x) in p.iter().enumerate() {
                lo[i] = lo[i].min(x);
                hi[i] = hi[i].max(x);
            }
        }
        Some(Rectangle::new(lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interior_of(region: &Region) -> Vec<f64> {
        region
            .inner_sphere()
            .expect("test region has an interior")
            .center()
            .to_vec()
    }

    #[test]
    fn cloud_fills_to_size_and_stays_in_region() {
        for d in [2usize, 4, 12] {
            let region = Region::full(d);
            let cloud = SampleCloud::new(&region, interior_of(&region), WalkConfig::default(), 7);
            assert_eq!(cloud.len(), 128, "d = {d}");
            for p in cloud.points() {
                assert!(region.contains(p, 1e-9), "point {p:?} escaped at d = {d}");
                assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn apply_cut_keeps_satisfying_points_bitwise() {
        let mut region = Region::full(3);
        let cfg = WalkConfig::default();
        let mut cloud = SampleCloud::new(&region, interior_of(&region), cfg, 11);
        let cut = Halfspace::new(vec![1.0, -1.0, 0.0]);
        let survivors: Vec<Vec<f64>> = cloud
            .points()
            .iter()
            .filter(|p| cut.contains(p, 0.0))
            .cloned()
            .collect();
        region.add(cut.clone());
        let resampled = cloud.apply_cut(&region, &cut, interior_of(&region));
        assert_eq!(resampled, cfg.n_points - survivors.len());
        assert_eq!(cloud.len(), cfg.n_points);
        // Survivors are kept verbatim, in order, at the front.
        assert_eq!(&cloud.points()[..survivors.len()], &survivors[..]);
        for p in cloud.points() {
            assert!(region.contains(p, 1e-9));
        }
    }

    #[test]
    fn same_seed_means_identical_clouds() {
        let region = Region::full(5);
        let a = SampleCloud::new(&region, interior_of(&region), WalkConfig::default(), 42);
        let b = SampleCloud::new(&region, interior_of(&region), WalkConfig::default(), 42);
        assert_eq!(a.points(), b.points());
        let c = SampleCloud::new(&region, interior_of(&region), WalkConfig::default(), 43);
        assert_ne!(a.points(), c.points(), "different seeds should diverge");
    }

    #[test]
    fn bounding_rectangle_encloses_cloud() {
        let region = Region::full(6);
        let cloud = SampleCloud::new(&region, interior_of(&region), WalkConfig::default(), 3);
        let rect = cloud.bounding_rectangle().unwrap();
        for p in cloud.points() {
            assert!(rect.contains(p, 0.0));
        }
    }

    #[test]
    #[should_panic(expected = "cloud size must be positive")]
    fn zero_size_rejected() {
        let region = Region::full(3);
        let cfg = WalkConfig {
            n_points: 0,
            ..WalkConfig::default()
        };
        SampleCloud::new(&region, interior_of(&region), cfg, 0);
    }
}
