//! Two-phase dense primal simplex.
//!
//! The tableau is dense (`Vec<Vec<f64>>`) because the LPs in this workspace
//! have at most a few dozen rows and `d + 2` columns before slack variables;
//! sparse machinery would cost more than it saves. Pivoting uses Dantzig's
//! rule with an automatic switch to Bland's rule after `3 (m + n)` iterations
//! to guarantee termination on degenerate problems (which do occur: the
//! utility simplex makes many constraints tight at its corners).
//!
//! The standard-form translation (free-variable splitting, rhs sign
//! normalization, slack placement) lives in [`Standard`] and is shared with
//! the warm-start path in [`super::warm`], which skips phase 1 entirely by
//! re-factorizing a carried [`Basis`] and repairing primal feasibility with
//! dual-style pivots.

use super::{Basis, BasisCol, LpError, LpOutcome, LpSolution, Problem, Rel};

pub(super) const FEAS_TOL: f64 = 1e-8;
pub(super) const PIVOT_TOL: f64 = 1e-10;

/// A [`Problem`] lowered to standard form: split non-negative variables,
/// normalized rhs signs, and a fixed slack-column layout. Artificial
/// columns are *not* included — the cold path appends them, the warm path
/// never needs them.
pub(super) struct Standard {
    /// Original variable count.
    pub n: usize,
    /// Negative-part column for each free original variable.
    pub neg_col: Vec<Option<usize>>,
    /// Split variable count (originals plus negative parts).
    pub n_split: usize,
    /// Slack/surplus column count (one per non-Eq row).
    pub n_slack: usize,
    /// Constraint rows, width `n_split + n_slack`, slack coefficients set.
    pub rows: Vec<Vec<f64>>,
    /// Right-hand sides after sign normalization (all ≥ 0).
    pub rhs: Vec<f64>,
    /// Row relations after sign normalization.
    pub rels: Vec<Rel>,
    /// Slack column of each row (None for Eq rows).
    pub slack_of_row: Vec<Option<usize>>,
    /// Owning row of each slack column (indexed by `col − n_split`).
    pub row_of_slack: Vec<usize>,
    /// Minimization-oriented cost over the split columns.
    pub cost_split: Vec<f64>,
}

impl Standard {
    /// Tableau width without artificials (split vars + slacks).
    pub fn width(&self) -> usize {
        self.n_split + self.n_slack
    }

    /// Number of constraint rows.
    pub fn m(&self) -> usize {
        self.rows.len()
    }
}

/// Lowers `p` to standard form, validating shapes.
pub(super) fn standardize(p: &Problem) -> Result<Standard, LpError> {
    if p.objective.len() != p.n_vars
        || p.free.len() != p.n_vars
        || p.constraints.iter().any(|c| c.coeffs.len() != p.n_vars)
    {
        return Err(LpError::ShapeMismatch);
    }

    // Split free variables: x_j = x_j⁺ − x_j⁻. Column layout: for each
    // original var j, one column (non-negative part); free vars get an
    // extra negative-part column appended after all originals.
    let n = p.n_vars;
    let neg_col: Vec<Option<usize>> = {
        let mut next = n;
        p.free
            .iter()
            .map(|&f| {
                if f {
                    let c = next;
                    next += 1;
                    Some(c)
                } else {
                    None
                }
            })
            .collect()
    };
    let n_split = n + neg_col.iter().flatten().count();

    let expand = |coeffs: &[f64]| -> Vec<f64> {
        let mut row = vec![0.0; n_split];
        for j in 0..n {
            row[j] = coeffs[j];
            if let Some(c) = neg_col[j] {
                row[c] = -coeffs[j];
            }
        }
        row
    };

    // Orient as minimization.
    let sign = if p.maximize { -1.0 } else { 1.0 };
    let cost_split: Vec<f64> = {
        let mut c = expand(&p.objective);
        for v in &mut c {
            *v *= sign;
        }
        c
    };

    // Standard form: rows `a·x (+ slack) = b`, b ≥ 0.
    let m = p.constraints.len();
    let mut bare: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut rhs: Vec<f64> = Vec::with_capacity(m);
    let mut rels: Vec<Rel> = Vec::with_capacity(m);
    for c in &p.constraints {
        let mut row = expand(&c.coeffs);
        let mut b = c.rhs;
        let mut rel = c.rel;
        if b < 0.0 {
            for v in &mut row {
                *v = -*v;
            }
            b = -b;
            rel = match rel {
                Rel::Le => Rel::Ge,
                Rel::Ge => Rel::Le,
                Rel::Eq => Rel::Eq,
            };
        }
        bare.push(row);
        rhs.push(b);
        rels.push(rel);
    }

    // Slack columns: Le rows get +1 slack, Ge rows get −1 surplus.
    let n_slack = rels.iter().filter(|r| !matches!(r, Rel::Eq)).count();
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut slack_of_row: Vec<Option<usize>> = Vec::with_capacity(m);
    let mut row_of_slack: Vec<usize> = Vec::with_capacity(n_slack);
    let mut slack_at = n_split;
    for i in 0..m {
        let mut row = vec![0.0; n_split + n_slack];
        row[..n_split].copy_from_slice(&bare[i]);
        match rels[i] {
            Rel::Le => {
                row[slack_at] = 1.0;
                slack_of_row.push(Some(slack_at));
                row_of_slack.push(i);
                slack_at += 1;
            }
            Rel::Ge => {
                row[slack_at] = -1.0;
                slack_of_row.push(Some(slack_at));
                row_of_slack.push(i);
                slack_at += 1;
            }
            Rel::Eq => slack_of_row.push(None),
        }
        rows.push(row);
    }

    Ok(Standard {
        n,
        neg_col,
        n_split,
        n_slack,
        rows,
        rhs,
        rels,
        slack_of_row,
        row_of_slack,
        cost_split,
    })
}

/// Solves a linear [`Problem`] from scratch (two-phase). Returns the
/// outcome plus, whenever the final tableau represents a feasible basis
/// (optimal or iteration-capped), the [`Basis`] for future warm starts.
pub fn solve(p: &Problem) -> Result<(LpOutcome, Option<Basis>), LpError> {
    let sf = standardize(p)?;
    let m = sf.m();
    let n_split = sf.n_split;
    let real = sf.width();

    // Artificial columns: Ge and Eq rows need one each.
    let n_art = sf.rels.iter().filter(|r| !matches!(r, Rel::Le)).count();
    let total = real + n_art;

    let mut tab: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut basis: Vec<usize> = Vec::with_capacity(m);
    {
        let mut art_at = real;
        for i in 0..m {
            let mut row = vec![0.0; total + 1];
            row[..real].copy_from_slice(&sf.rows[i]);
            row[total] = sf.rhs[i];
            match sf.rels[i] {
                Rel::Le => basis.push(sf.slack_of_row[i].expect("Le row has a slack")),
                Rel::Ge | Rel::Eq => {
                    row[art_at] = 1.0;
                    basis.push(art_at);
                    art_at += 1;
                }
            }
            tab.push(row);
        }
    }

    // Phase 1: minimize the sum of artificials.
    isrl_obs::add("lp.solves", 1);
    if n_art > 0 {
        let mut phase1_cost = vec![0.0; total];
        for c in &mut phase1_cost[real..] {
            *c = 1.0;
        }
        let (end, iters) = run_simplex(&mut tab, &mut basis, &phase1_cost, total);
        isrl_obs::add("lp.phase1_iters", iters);
        isrl_obs::add("lp.pivots", iters);
        isrl_obs::sketch_record("lp.pivots", iters as f64);
        match end {
            SimplexEnd::Optimal => {}
            SimplexEnd::Unbounded => {
                // Phase-1 objective is bounded below by 0; unbounded here
                // would indicate a numerical breakdown — treat as infeasible.
                return Ok((LpOutcome::Infeasible, None));
            }
            SimplexEnd::Capped => {
                // Feasibility itself is undetermined — surface the cap as
                // an error the caller must handle, and count it.
                isrl_obs::add("lp.phase1_cap_hits", 1);
                return Err(LpError::IterationLimit);
            }
        }
        let art_sum: f64 = basis
            .iter()
            .enumerate()
            .filter(|(_, &b)| b >= real)
            .map(|(i, _)| tab[i][total])
            .sum();
        if art_sum > FEAS_TOL {
            return Ok((LpOutcome::Infeasible, None));
        }
        // Pivot any residual (degenerate, value-0) artificials out of the basis.
        for i in 0..m {
            if basis[i] >= real {
                if let Some(j) = (0..real).find(|&j| tab[i][j].abs() > PIVOT_TOL) {
                    pivot(&mut tab, &mut basis, i, j);
                } // else: the row is all-zero over real columns — redundant, leave it.
            }
        }
    }

    // Phase 2 on the real columns.
    let mut phase2_cost = vec![0.0; total];
    phase2_cost[..n_split].copy_from_slice(&sf.cost_split);
    // Forbid artificials from re-entering by giving them a prohibitive cost.
    for c in &mut phase2_cost[real..] {
        *c = 1e30;
    }
    let (end, iters) = run_simplex(&mut tab, &mut basis, &phase2_cost, real);
    isrl_obs::add("lp.phase2_iters", iters);
    isrl_obs::add("lp.pivots", iters);
    isrl_obs::sketch_record("lp.pivots", iters as f64);
    let capped = match end {
        SimplexEnd::Optimal => false,
        SimplexEnd::Unbounded => return Ok((LpOutcome::Unbounded, None)),
        SimplexEnd::Capped => {
            // Phase 2 preserves feasibility, so the incumbent basic point
            // is a genuine member of the region — return it, flagged, so
            // callers stop mistaking a truncated solve for convergence.
            isrl_obs::add("lp.cap_hits", 1);
            true
        }
    };

    let sol = read_solution(p, &sf, &tab, &basis);
    let warm = extract_basis(p, &sf, &basis);
    Ok(if capped {
        (LpOutcome::IterationCapped(sol), Some(warm))
    } else {
        (LpOutcome::Optimal(sol), Some(warm))
    })
}

/// Reads the original-space solution out of a final tableau.
pub(super) fn read_solution(
    p: &Problem,
    sf: &Standard,
    tab: &[Vec<f64>],
    basis: &[usize],
) -> LpSolution {
    let total = if tab.is_empty() { 0 } else { tab[0].len() - 1 };
    let mut x_split = vec![0.0; sf.n_split];
    for (i, &b) in basis.iter().enumerate() {
        if b < sf.n_split {
            x_split[b] = tab[i][total];
        }
    }
    let mut x = vec![0.0; sf.n];
    for j in 0..sf.n {
        x[j] = x_split[j] - sf.neg_col[j].map_or(0.0, |c| x_split[c]);
    }
    let objective: f64 = p.objective.iter().zip(&x).map(|(c, v)| c * v).sum();
    LpSolution { x, objective }
}

/// Converts a final tableau basis into logical [`Basis`] columns. Columns
/// at or past `width()` (artificials in the cold path) are omitted — their
/// rows simply get re-crashed on the next warm start.
pub(super) fn extract_basis(p: &Problem, sf: &Standard, basis: &[usize]) -> Basis {
    let cols = basis
        .iter()
        .filter_map(|&b| {
            if b < sf.n_split {
                Some(BasisCol::Var(b))
            } else if b < sf.width() {
                Some(BasisCol::Slack(sf.row_of_slack[b - sf.n_split]))
            } else {
                None
            }
        })
        .collect();
    Basis {
        n_vars: p.n_vars,
        free: p.free.clone(),
        cols,
    }
}

pub(super) enum SimplexEnd {
    Optimal,
    Unbounded,
    /// The iteration budget ran out; the tableau holds the incumbent basis.
    Capped,
}

/// Runs the simplex method on the tableau, minimizing `cost` over columns
/// `0..enter_limit` (columns at or past the limit never enter the basis —
/// used to keep artificials out in phase 2). Returns the end state plus
/// the number of pivots performed.
pub(super) fn run_simplex(
    tab: &mut [Vec<f64>],
    basis: &mut [usize],
    cost: &[f64],
    enter_limit: usize,
) -> (SimplexEnd, u64) {
    let m = tab.len();
    if m == 0 {
        return (SimplexEnd::Optimal, 0);
    }
    let total = tab[0].len() - 1;
    let max_iters = 200 * (m + total) + 1000;
    let bland_after = 3 * (m + total) + 50;

    for iter in 0..max_iters {
        // Reduced costs: r_j = c_j − c_B · B⁻¹ A_j, computed directly from
        // the (already reduced) tableau: r_j = c_j − Σ_i c_{basis[i]} tab[i][j].
        let use_bland = iter > bland_after;
        let mut entering: Option<usize> = None;
        let mut best_red = -1e-7; // entering threshold
        for j in 0..enter_limit {
            if basis.contains(&j) {
                continue;
            }
            let mut red = cost[j];
            for i in 0..m {
                let cb = cost[basis[i]];
                if cb != 0.0 {
                    red -= cb * tab[i][j];
                }
            }
            if red < best_red {
                entering = Some(j);
                if use_bland {
                    break; // Bland: first improving index
                }
                best_red = red;
            }
        }
        let Some(e) = entering else {
            return (SimplexEnd::Optimal, iter as u64);
        };

        // Ratio test (Bland tie-break on basis index for anti-cycling).
        let mut leave: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            let a = tab[i][e];
            if a > PIVOT_TOL {
                let ratio = tab[i][total] / a;
                if ratio < best_ratio - 1e-12
                    || (ratio < best_ratio + 1e-12 && leave.is_some_and(|l| basis[i] < basis[l]))
                {
                    best_ratio = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(l) = leave else {
            return (SimplexEnd::Unbounded, iter as u64);
        };
        pivot(tab, basis, l, e);
    }
    (SimplexEnd::Capped, max_iters as u64)
}

/// Gauss–Jordan pivot on `tab[row][col]`.
pub(super) fn pivot(tab: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize) {
    let piv = tab[row][col];
    let inv = 1.0 / piv;
    for v in &mut tab[row] {
        *v *= inv;
    }
    tab[row][col] = 1.0; // exact
    let pivot_row = tab[row].clone();
    for (i, r) in tab.iter_mut().enumerate() {
        if i == row {
            continue;
        }
        let factor = r[col];
        if factor == 0.0 {
            continue;
        }
        for (v, pv) in r.iter_mut().zip(&pivot_row) {
            *v -= factor * pv;
        }
        r[col] = 0.0; // exact
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::super::{LpBuilder, LpOutcome, Rel};

    #[test]
    fn maximizes_simple_2d() {
        // max x + y s.t. x + 2y ≤ 4, 3x + y ≤ 6 → optimum at (1.6, 1.2), obj 2.8
        let out = LpBuilder::maximize(&[1.0, 1.0])
            .constraint(&[1.0, 2.0], Rel::Le, 4.0)
            .constraint(&[3.0, 1.0], Rel::Le, 6.0)
            .solve()
            .unwrap();
        let s = out.optimal().expect("should be optimal");
        assert!(
            (s.objective - 2.8).abs() < 1e-7,
            "objective {}",
            s.objective
        );
        assert!((s.x[0] - 1.6).abs() < 1e-7);
        assert!((s.x[1] - 1.2).abs() < 1e-7);
    }

    #[test]
    fn handles_ge_and_eq_rows() {
        // min x + y s.t. x + y = 1, x ≥ 0.3 → optimum (0.3, 0.7) isn't unique in x,
        // but the objective must be exactly 1.
        let out = LpBuilder::minimize(&[1.0, 1.0])
            .constraint(&[1.0, 1.0], Rel::Eq, 1.0)
            .constraint(&[1.0, 0.0], Rel::Ge, 0.3)
            .solve()
            .unwrap();
        let s = out.optimal().unwrap();
        assert!((s.objective - 1.0).abs() < 1e-8);
        assert!(s.x[0] >= 0.3 - 1e-8);
    }

    #[test]
    fn detects_infeasible() {
        let out = LpBuilder::maximize(&[1.0])
            .constraint(&[1.0], Rel::Ge, 2.0)
            .constraint(&[1.0], Rel::Le, 1.0)
            .solve()
            .unwrap();
        assert!(matches!(out, LpOutcome::Infeasible));
    }

    #[test]
    fn detects_unbounded() {
        let out = LpBuilder::maximize(&[1.0, 0.0])
            .constraint(&[0.0, 1.0], Rel::Le, 1.0)
            .solve()
            .unwrap();
        assert!(matches!(out, LpOutcome::Unbounded));
    }

    #[test]
    fn free_variable_can_go_negative() {
        // min x s.t. x ≥ −5 with x free → optimum −5.
        let out = LpBuilder::minimize(&[1.0])
            .free_var(0)
            .constraint(&[1.0], Rel::Ge, -5.0)
            .solve()
            .unwrap();
        let s = out.optimal().unwrap();
        assert!((s.x[0] + 5.0).abs() < 1e-7);
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // max −x s.t. −x ≥ −3 (i.e. x ≤ 3), x ≥ 1 → optimum x = 1.
        let out = LpBuilder::maximize(&[-1.0])
            .constraint(&[-1.0], Rel::Ge, -3.0)
            .constraint(&[1.0], Rel::Ge, 1.0)
            .solve()
            .unwrap();
        let s = out.optimal().unwrap();
        assert!((s.x[0] - 1.0).abs() < 1e-7);
    }

    #[test]
    fn simplex_centroid_problem() {
        // The inner-sphere LP shape used by algorithm AA at round 0 with the
        // simplex facets as the only constraints (d = 3): maximize r s.t.
        // Σu = 1, u_i ≥ r. Optimum r = 1/3 at the barycenter.
        let d = 3;
        let mut b = LpBuilder::maximize(&[0.0, 0.0, 0.0, 1.0]);
        b = b.constraint(&[1.0, 1.0, 1.0, 0.0], Rel::Eq, 1.0);
        for i in 0..d {
            let mut row = vec![0.0; d + 1];
            row[i] = 1.0;
            row[d] = -1.0;
            b = b.constraint(&row, Rel::Ge, 0.0);
        }
        let s = b.solve().unwrap().optimal().unwrap();
        assert!((s.objective - 1.0 / 3.0).abs() < 1e-7);
        for i in 0..d {
            assert!((s.x[i] - 1.0 / 3.0).abs() < 1e-7);
        }
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Heavily degenerate: many redundant constraints through one vertex.
        let mut b = LpBuilder::maximize(&[1.0, 1.0]);
        for k in 1..20 {
            let k = k as f64;
            b = b.constraint(&[1.0, k], Rel::Le, 1.0 + k);
        }
        // The binding constraint is x + y ≤ 2 (k = 1); optimum value 2,
        // attained at (2, 0) where the other 18 rows are slack.
        let s = b.solve().unwrap().optimal().unwrap();
        assert!(
            (s.objective - 2.0).abs() < 1e-6,
            "objective {}",
            s.objective
        );
    }

    #[test]
    fn equality_only_system() {
        // min 0 s.t. x + y = 1, x − y = 0 → x = y = 0.5 (pure feasibility).
        let s = LpBuilder::minimize(&[0.0, 0.0])
            .constraint(&[1.0, 1.0], Rel::Eq, 1.0)
            .constraint(&[1.0, -1.0], Rel::Eq, 0.0)
            .solve()
            .unwrap()
            .optimal()
            .unwrap();
        assert!((s.x[0] - 0.5).abs() < 1e-8);
        assert!((s.x[1] - 0.5).abs() < 1e-8);
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let r = LpBuilder::maximize(&[1.0, 2.0])
            .constraint(&[1.0], Rel::Le, 1.0)
            .solve();
        assert!(r.is_err());
    }

    #[test]
    fn cold_solve_returns_a_reusable_basis() {
        use super::super::{solve, solve_warm, Problem};
        let p = Problem {
            n_vars: 2,
            maximize: true,
            objective: vec![1.0, 1.0],
            constraints: vec![
                super::super::Constraint {
                    coeffs: vec![1.0, 2.0],
                    rel: Rel::Le,
                    rhs: 4.0,
                },
                super::super::Constraint {
                    coeffs: vec![3.0, 1.0],
                    rel: Rel::Le,
                    rhs: 6.0,
                },
            ],
            free: vec![false, false],
        };
        let (out, basis) = solve(&p).unwrap();
        assert!(out.is_optimal());
        let basis = basis.expect("optimal cold solve must yield a basis");
        assert!(!basis.is_empty());
        // Re-solving the identical problem warm reproduces the optimum.
        let (out2, _) = solve_warm(&p, &basis).unwrap();
        let s = out2.optimal().unwrap();
        assert!((s.objective - 2.8).abs() < 1e-9);
    }
}
