//! Linear programming.
//!
//! Every state computation in the approximate algorithm AA — the inner
//! sphere, the outer rectangle, the strict-feasibility checks that validate
//! candidate actions (Lemma 8) — and the candidate pruning in the UH
//! baselines reduce to small dense LPs over the utility simplex: at most
//! `d + 1` variables and a few dozen rows. This module provides a two-phase
//! dense primal simplex solver sized exactly for that regime, plus a
//! builder ([`LpBuilder`]) for assembling problems row by row.

mod builder;
mod simplex;
mod warm;

pub use builder::LpBuilder;
pub use simplex::solve;
pub use warm::solve_warm;

/// An opaque simplex basis, returned by [`solve`]/[`solve_warm`] and fed
/// back into [`solve_warm`] to hot-start a related problem.
///
/// The basis stores *logical* column identities — decision variables (in
/// the internal free-split space) and per-row slack columns — rather than
/// raw tableau indices, so it survives the row edits the interactive
/// algorithms actually perform: appending one half-space cut per round,
/// deleting a constraint, or duplicating a redundant one. Feeding a basis
/// from an unrelated problem is *safe* (the warm solver re-factorizes,
/// repairs feasibility, and falls back to the cold two-phase path on any
/// singularity), just not fast.
#[derive(Debug, Clone)]
pub struct Basis {
    /// Variable count of the problem this basis was extracted from.
    pub(crate) n_vars: usize,
    /// Free-variable pattern (the split layout must match to reuse columns).
    pub(crate) free: Vec<bool>,
    /// Preferred basic columns; at most one per constraint row.
    pub(crate) cols: Vec<BasisCol>,
}

impl Basis {
    /// Number of stored basic columns (diagnostic; tests use this).
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// `true` when the basis carries no columns at all.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }
}

/// A logical basic column: a split-space decision variable or the slack /
/// surplus column of a constraint row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BasisCol {
    /// Split-space variable column `j` (original vars first, then the
    /// appended negative parts of free variables).
    Var(usize),
    /// Slack (Le) or surplus (Ge) column of constraint row `i`.
    Slack(usize),
}

/// Relation of a linear constraint row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rel {
    /// `coeffs · x ≤ rhs`
    Le,
    /// `coeffs · x ≥ rhs`
    Ge,
    /// `coeffs · x = rhs`
    Eq,
}

/// One constraint row `coeffs · x (≤|≥|=) rhs`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Coefficients, one per decision variable.
    pub coeffs: Vec<f64>,
    /// Row relation.
    pub rel: Rel,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program in natural form. Variables are non-negative unless
/// flagged free; free variables are internally split into differences of
/// two non-negative variables.
#[derive(Debug, Clone)]
pub struct Problem {
    /// Number of decision variables.
    pub n_vars: usize,
    /// `true` to maximize the objective, `false` to minimize.
    pub maximize: bool,
    /// Objective coefficients, one per decision variable.
    pub objective: Vec<f64>,
    /// Constraint rows.
    pub constraints: Vec<Constraint>,
    /// `free[j]` marks variable `j` as unrestricted in sign.
    pub free: Vec<bool>,
}

/// An optimal LP solution.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Optimal decision variables in the original (pre-split) space.
    pub x: Vec<f64>,
    /// Optimal objective value in the caller's orientation (max or min).
    pub objective: f64,
}

/// Outcome of solving a [`Problem`].
#[derive(Debug, Clone)]
pub enum LpOutcome {
    /// A finite optimum was found.
    Optimal(LpSolution),
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// Phase 2 hit its iteration cap before proving optimality. The carried
    /// solution is the incumbent basic **feasible** point — a valid member
    /// of the region whose objective bounds the optimum from the wrong
    /// side. Callers must not treat it as the optimum; the solver counts
    /// every such event under the `lp.cap_hits` telemetry counter.
    IterationCapped(LpSolution),
}

impl LpOutcome {
    /// Returns the solution if the outcome is [`LpOutcome::Optimal`].
    pub fn optimal(self) -> Option<LpSolution> {
        match self {
            LpOutcome::Optimal(s) => Some(s),
            _ => None,
        }
    }

    /// Returns a feasible solution whether or not it was proven optimal:
    /// `Some` for [`LpOutcome::Optimal`] and [`LpOutcome::IterationCapped`].
    pub fn solution(self) -> Option<LpSolution> {
        match self {
            LpOutcome::Optimal(s) | LpOutcome::IterationCapped(s) => Some(s),
            _ => None,
        }
    }

    /// `true` iff a finite optimum was found.
    pub fn is_optimal(&self) -> bool {
        matches!(self, LpOutcome::Optimal(_))
    }

    /// `true` iff the solver gave up at the iteration cap with a feasible
    /// but unproven incumbent.
    pub fn is_capped(&self) -> bool {
        matches!(self, LpOutcome::IterationCapped(_))
    }
}

/// Error for a malformed problem (shape mismatches) or iteration blow-up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// Objective/constraint widths disagree with `n_vars`.
    ShapeMismatch,
    /// The simplex method exceeded its iteration budget **in phase 1**, so
    /// even feasibility is undetermined (a phase-2 cap instead yields
    /// [`LpOutcome::IterationCapped`] with the feasible incumbent). Counted
    /// under the `lp.phase1_cap_hits` telemetry counter.
    IterationLimit,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::ShapeMismatch => write!(f, "LP shape mismatch"),
            LpError::IterationLimit => write!(f, "LP iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}
