//! Fluent builder for small LPs.

use super::{simplex, warm, Basis, Constraint, LpError, LpOutcome, Problem, Rel};

/// Builds a [`Problem`] row by row and solves it.
///
/// ```
/// use isrl_geometry::lp::{LpBuilder, Rel};
/// let sol = LpBuilder::maximize(&[3.0, 2.0])
///     .constraint(&[1.0, 1.0], Rel::Le, 4.0)
///     .constraint(&[1.0, 0.0], Rel::Le, 2.0)
///     .solve()
///     .unwrap()
///     .optimal()
///     .unwrap();
/// assert!((sol.objective - 10.0).abs() < 1e-7);
/// ```
#[derive(Debug, Clone)]
pub struct LpBuilder {
    problem: Problem,
}

impl LpBuilder {
    /// Starts a maximization problem with the given objective coefficients.
    /// The variable count is fixed by the objective length.
    pub fn maximize(objective: &[f64]) -> Self {
        Self::new(objective, true)
    }

    /// Starts a minimization problem with the given objective coefficients.
    pub fn minimize(objective: &[f64]) -> Self {
        Self::new(objective, false)
    }

    fn new(objective: &[f64], maximize: bool) -> Self {
        Self {
            problem: Problem {
                n_vars: objective.len(),
                maximize,
                objective: objective.to_vec(),
                constraints: Vec::new(),
                free: vec![false; objective.len()],
            },
        }
    }

    /// Adds a constraint row `coeffs · x (≤|≥|=) rhs`.
    pub fn constraint(mut self, coeffs: &[f64], rel: Rel, rhs: f64) -> Self {
        self.problem.constraints.push(Constraint {
            coeffs: coeffs.to_vec(),
            rel,
            rhs,
        });
        self
    }

    /// Marks variable `j` as free (unrestricted in sign). Variables are
    /// non-negative by default.
    ///
    /// # Panics
    /// Panics if `j` is out of range.
    pub fn free_var(mut self, j: usize) -> Self {
        self.problem.free[j] = true;
        self
    }

    /// Number of constraint rows added so far.
    pub fn n_constraints(&self) -> usize {
        self.problem.constraints.len()
    }

    /// Finalizes and solves the problem.
    pub fn solve(self) -> Result<LpOutcome, LpError> {
        simplex::solve(&self.problem).map(|(out, _)| out)
    }

    /// Finalizes and solves the problem through a warm-start slot: if
    /// `slot` carries a [`Basis`] from an earlier related solve, the warm
    /// path is used; either way the slot is refilled with this solve's
    /// final basis (or cleared when none exists, e.g. infeasible).
    pub fn solve_with(self, slot: &mut Option<Basis>) -> Result<LpOutcome, LpError> {
        let result = match slot.take() {
            Some(basis) => warm::solve_warm(&self.problem, &basis),
            None => simplex::solve(&self.problem),
        };
        result.map(|(out, basis)| {
            *slot = basis;
            out
        })
    }

    /// Returns the assembled problem without solving (for inspection/tests).
    pub fn build(self) -> Problem {
        self.problem
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_rows_and_vars() {
        let b = LpBuilder::minimize(&[1.0, 2.0, 3.0])
            .constraint(&[1.0, 0.0, 0.0], Rel::Ge, 0.5)
            .free_var(2);
        assert_eq!(b.n_constraints(), 1);
        let p = b.build();
        assert_eq!(p.n_vars, 3);
        assert!(!p.maximize);
        assert!(p.free[2] && !p.free[0]);
    }
}
