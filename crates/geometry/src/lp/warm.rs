//! Warm-started simplex: skip phase 1 by repairing a carried basis.
//!
//! AA re-solves `2d + 1` LPs every round — inner sphere plus per-axis
//! rectangle bounds — and successive rounds differ by exactly one appended
//! half-space, so the previous optimal basis is almost always primal
//! feasible or a handful of dual pivots away. [`solve_warm`] exploits
//! that:
//!
//! 1. **Re-factorize** — map the carried [`Basis`]'s logical columns onto
//!    the new problem's standard form and crash them into a tableau basis
//!    with Gauss–Jordan pivots (largest-|coefficient| row per column).
//!    Rows the carried basis cannot cover fall back to their own slack
//!    column, then to any usable column; an uncoverable row aborts to the
//!    cold path.
//! 2. **Repair** — restore primal feasibility with dual-simplex-style
//!    pivots: pick the most negative rhs row, enter the column minimizing
//!    `reduced_cost / |a|` over negative row entries. A row with negative
//!    rhs and no negative entry proves infeasibility outright, but the
//!    warm path *still* defers to a cold re-solve for that verdict so the
//!    statuses the two paths report can never drift apart on the outcome
//!    that matters most to the region-emptiness checks.
//! 3. **Phase 2** — ordinary primal simplex from the repaired basis. The
//!    warm tableau carries no artificial columns at all, so every pivot
//!    is cheaper than its cold counterpart on top of skipping phase 1.
//!
//! Any singularity, shape mismatch, or repair-iteration cap falls back to
//! the cold two-phase [`super::solve`] — the carried basis is a pure
//! accelerator and never affects correctness. Telemetry: `lp.warm.attempts`,
//! `lp.warm.hits`, `lp.warm.fallbacks`, `lp.warm.refactor_pivots`,
//! `lp.warm.repair_pivots` (see DESIGN.md §10).

use super::simplex::{
    extract_basis, pivot, read_solution, run_simplex, standardize, SimplexEnd, Standard, FEAS_TOL,
    PIVOT_TOL,
};
use super::{Basis, BasisCol, LpError, LpOutcome, Problem};

/// Coefficients smaller than this are too ill-conditioned to crash on.
const CRASH_TOL: f64 = 1e-9;

/// Solves `p` starting from a basis carried over from a related problem.
///
/// Semantics are identical to [`super::solve`] — same outcomes, objective
/// values within numerical tolerance — the basis only changes *how fast*
/// the answer is found. Returns the outcome plus the final basis for the
/// next solve in the chain.
pub fn solve_warm(p: &Problem, warm: &Basis) -> Result<(LpOutcome, Option<Basis>), LpError> {
    isrl_obs::add("lp.warm.attempts", 1);
    // The split-column layout must match for the stored columns to mean
    // anything; a different free pattern means a structurally different
    // problem, so go cold.
    if warm.n_vars != p.n_vars || warm.free != p.free {
        isrl_obs::add("lp.warm.fallbacks", 1);
        return super::solve(p);
    }
    let sf = standardize(p)?;
    match try_warm(p, &sf, warm) {
        Some(result) => {
            isrl_obs::add("lp.warm.hits", 1);
            Ok(result)
        }
        None => {
            isrl_obs::add("lp.warm.fallbacks", 1);
            super::solve(p)
        }
    }
}

/// The warm pipeline proper; `None` means "fall back to the cold path".
fn try_warm(p: &Problem, sf: &Standard, warm: &Basis) -> Option<(LpOutcome, Option<Basis>)> {
    let m = sf.m();
    let width = sf.width();
    let n_split = sf.n_split;

    let mut tab: Vec<Vec<f64>> = (0..m)
        .map(|i| {
            let mut row = Vec::with_capacity(width + 1);
            row.extend_from_slice(&sf.rows[i]);
            row.push(sf.rhs[i]);
            row
        })
        .collect();

    // Map the stored logical columns onto this problem's layout, dropping
    // any that no longer exist (deleted rows, Eq rows without slacks).
    let mut preferred: Vec<usize> = Vec::new();
    let mut wanted = vec![false; width];
    for c in &warm.cols {
        let col = match *c {
            BasisCol::Var(j) if j < n_split => j,
            BasisCol::Slack(row) if row < m => match sf.slack_of_row[row] {
                Some(sc) => sc,
                None => continue,
            },
            _ => continue,
        };
        if !wanted[col] {
            wanted[col] = true;
            preferred.push(col);
        }
    }

    // Crash re-factorization: drive each preferred column into the basis
    // on its largest-|coefficient| uncovered row (partial pivoting).
    let mut basis: Vec<usize> = vec![usize::MAX; m];
    let mut covered = vec![false; m];
    let mut in_basis = vec![false; width];
    let mut refactor = 0u64;
    for &c in &preferred {
        let mut best: Option<(usize, f64)> = None;
        for (i, row) in tab.iter().enumerate() {
            if covered[i] {
                continue;
            }
            let a = row[c].abs();
            if a > CRASH_TOL && best.map_or(true, |(_, b)| a > b) {
                best = Some((i, a));
            }
        }
        if let Some((r, _)) = best {
            pivot(&mut tab, &mut basis, r, c);
            covered[r] = true;
            in_basis[c] = true;
            refactor += 1;
        }
    }
    // Complete the basis for rows the carried columns didn't cover: prefer
    // the row's own slack, else any usable non-basic column.
    for i in 0..m {
        if covered[i] {
            continue;
        }
        let own = sf.slack_of_row[i].filter(|&c| !in_basis[c] && tab[i][c].abs() > CRASH_TOL);
        let pick = own.or_else(|| {
            let mut best: Option<(usize, f64)> = None;
            for (c, &used) in in_basis.iter().enumerate() {
                if used {
                    continue;
                }
                let a = tab[i][c].abs();
                if a > CRASH_TOL && best.map_or(true, |(_, b)| a > b) {
                    best = Some((c, a));
                }
            }
            best.map(|(c, _)| c)
        });
        let Some(c) = pick else {
            // Singular / redundant row we cannot cover without artificials.
            isrl_obs::add("lp.warm.refactor_pivots", refactor);
            return None;
        };
        pivot(&mut tab, &mut basis, i, c);
        covered[i] = true;
        in_basis[c] = true;
        refactor += 1;
    }
    isrl_obs::add("lp.warm.refactor_pivots", refactor);

    // Dual-style primal feasibility repair.
    let mut cost = vec![0.0; width];
    cost[..n_split].copy_from_slice(&sf.cost_split);
    let repair_cap = 10 * (m + width) + 50;
    let mut repair = 0u64;
    loop {
        let mut row_pick: Option<(usize, f64)> = None;
        for (i, row) in tab.iter().enumerate() {
            let b = row[width];
            if b < -FEAS_TOL && row_pick.map_or(true, |(_, bb)| b < bb) {
                row_pick = Some((i, b));
            }
        }
        let Some((r, _)) = row_pick else {
            break; // primal feasible
        };
        if repair as usize >= repair_cap {
            isrl_obs::add("lp.warm.repair_pivots", repair);
            return None;
        }
        // Entering column: minimize reduced_cost / (−a) over a < 0 (the
        // dual ratio test, keeping phase-2 reduced costs as close to
        // optimal as the repair allows). Smaller index breaks ties.
        let mut enter: Option<(usize, f64)> = None;
        for j in 0..width {
            if in_basis[j] {
                continue;
            }
            let a = tab[r][j];
            if a < -PIVOT_TOL {
                let mut red = cost[j];
                for i in 0..m {
                    let cb = cost[basis[i]];
                    if cb != 0.0 {
                        red -= cb * tab[i][j];
                    }
                }
                let ratio = red / (-a);
                if enter.map_or(true, |(_, pr)| ratio < pr - 1e-12) {
                    enter = Some((j, ratio));
                }
            }
        }
        let Some((e, _)) = enter else {
            // Row r reads x_B(r) + Σ_j a_rj x_j = b_r < 0 with every a_rj
            // ≥ 0 — a standalone infeasibility certificate. Defer the
            // verdict to the cold path anyway (see module docs).
            isrl_obs::add("lp.warm.repair_pivots", repair);
            return None;
        };
        in_basis[basis[r]] = false;
        pivot(&mut tab, &mut basis, r, e);
        in_basis[e] = true;
        repair += 1;
    }
    isrl_obs::add("lp.warm.repair_pivots", repair);

    // Phase 2 from the repaired feasible basis. No artificials exist, so
    // every column may enter.
    let (end, iters) = run_simplex(&mut tab, &mut basis, &cost, width);
    isrl_obs::add("lp.phase2_iters", iters);
    isrl_obs::add("lp.pivots", iters);
    isrl_obs::sketch_record("lp.pivots", iters as f64);
    let capped = match end {
        SimplexEnd::Optimal => false,
        SimplexEnd::Unbounded => return Some((LpOutcome::Unbounded, None)),
        SimplexEnd::Capped => {
            isrl_obs::add("lp.cap_hits", 1);
            true
        }
    };

    let sol = read_solution(p, sf, &tab, &basis);
    let next = extract_basis(p, sf, &basis);
    Some(if capped {
        (LpOutcome::IterationCapped(sol), Some(next))
    } else {
        (LpOutcome::Optimal(sol), Some(next))
    })
}

#[cfg(test)]
mod tests {
    use super::super::{solve, solve_warm, Constraint, LpOutcome, Problem, Rel};

    fn base_problem() -> Problem {
        // max x + y over the unit square.
        Problem {
            n_vars: 2,
            maximize: true,
            objective: vec![1.0, 1.0],
            constraints: vec![
                Constraint {
                    coeffs: vec![1.0, 0.0],
                    rel: Rel::Le,
                    rhs: 1.0,
                },
                Constraint {
                    coeffs: vec![0.0, 1.0],
                    rel: Rel::Le,
                    rhs: 1.0,
                },
            ],
            free: vec![false, false],
        }
    }

    #[test]
    fn warm_resolve_matches_cold_after_a_cut() {
        let mut p = base_problem();
        let (cold0, basis) = solve(&p).unwrap();
        assert!((cold0.optimal().unwrap().objective - 2.0).abs() < 1e-9);
        let basis = basis.unwrap();

        // Append one cut x + y ≤ 1 — the AA round-loop shape.
        p.constraints.push(Constraint {
            coeffs: vec![1.0, 1.0],
            rel: Rel::Le,
            rhs: 1.0,
        });
        let (cold, _) = solve(&p).unwrap();
        let (warm, next) = solve_warm(&p, &basis).unwrap();
        let c = cold.optimal().unwrap();
        let w = warm.optimal().unwrap();
        assert!((c.objective - w.objective).abs() < 1e-9);
        assert!(next.is_some());
    }

    #[test]
    fn warm_from_mismatched_shape_falls_back_cold() {
        let p = base_problem();
        let (_, basis) = solve(&p).unwrap();
        let basis = basis.unwrap();

        // A 3-var problem cannot reuse a 2-var basis — must still solve.
        let q = Problem {
            n_vars: 3,
            maximize: true,
            objective: vec![1.0, 1.0, 1.0],
            constraints: vec![Constraint {
                coeffs: vec![1.0, 1.0, 1.0],
                rel: Rel::Le,
                rhs: 1.0,
            }],
            free: vec![false, false, false],
        };
        let (out, _) = solve_warm(&q, &basis).unwrap();
        assert!((out.optimal().unwrap().objective - 1.0).abs() < 1e-9);
    }

    #[test]
    fn warm_detects_infeasible_via_cold_fallback() {
        let mut p = base_problem();
        let (_, basis) = solve(&p).unwrap();
        let basis = basis.unwrap();
        p.constraints.push(Constraint {
            coeffs: vec![1.0, 1.0],
            rel: Rel::Ge,
            rhs: 5.0,
        });
        let (out, _) = solve_warm(&p, &basis).unwrap();
        assert!(matches!(out, LpOutcome::Infeasible));
    }

    #[test]
    fn warm_detects_unbounded() {
        let mut p = base_problem();
        let (_, basis) = solve(&p).unwrap();
        let basis = basis.unwrap();
        // Drop the x ≤ 1 row: max x + y with only y ≤ 1 is unbounded in x.
        p.constraints.remove(0);
        let (out, _) = solve_warm(&p, &basis).unwrap();
        assert!(matches!(out, LpOutcome::Unbounded));
    }

    #[test]
    fn empty_constraint_system_is_handled() {
        // min x with no rows → optimum 0 at the origin; basis is empty.
        let p = Problem {
            n_vars: 1,
            maximize: false,
            objective: vec![1.0],
            constraints: vec![],
            free: vec![false],
        };
        let (out, basis) = solve(&p).unwrap();
        assert!((out.optimal().unwrap().objective).abs() < 1e-12);
        let basis = basis.unwrap();
        assert!(basis.is_empty());
        let (out, _) = solve_warm(&p, &basis).unwrap();
        assert!((out.optimal().unwrap().objective).abs() < 1e-12);
    }
}
