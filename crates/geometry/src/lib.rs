#![warn(missing_docs)]
//! Computational-geometry substrate for Interactive Search with
//! Reinforcement Learning (ICDE 2025).
//!
//! The interactive regret query reasons about the user's unknown utility
//! vector geometrically: every answered question carves a half-space out of
//! the utility simplex. This crate provides the full toolkit that picture
//! requires:
//!
//! * [`hyperplane`] — half-spaces through the origin (Lemma 1 of the paper)
//!   and their ε-relaxed variants (Lemma 4);
//! * [`region`] — the utility range `R` as an implicit half-space
//!   intersection with LP-backed queries (algorithm AA's substrate);
//! * [`polytope`] — explicit vertex enumeration, representative selection,
//!   and the outer sphere (algorithm EA's substrate);
//! * [`region_geometry`] — the region bundled with its incrementally
//!   updated vertex set, the per-episode state both agents carry;
//! * [`lp`] — a dense two-phase simplex solver sized for `d + 1` variables;
//! * [`sphere`] / [`rectangle`] — the state-encoding shapes;
//! * [`sampling`] — simplex and region sampling (Lemma 5);
//! * [`walk`] — the incrementally-maintained hit-and-run sample cloud
//!   behind the sampled geometry backend (EA at `d ≥ 20`);
//! * [`hull`] — dominance and a planar convex hull for the baselines.
//!
//! ```
//! use isrl_geometry::{Halfspace, Polytope, Region};
//!
//! // The user prefers (0.9, 0.2) over (0.3, 0.8): learn the half-space.
//! let mut region = Region::full(2);
//! region.add(Halfspace::preferring(&[0.9, 0.2], &[0.3, 0.8]).unwrap());
//!
//! // AA's view: LP summaries without materializing the polyhedron.
//! let sphere = region.inner_sphere().unwrap();
//! let rect = region.outer_rectangle().unwrap();
//! assert!(sphere.radius() > 0.0);
//! assert!(rect.diagonal() < Region::full(2).outer_rectangle().unwrap().diagonal());
//!
//! // EA's view: explicit extreme utility vectors.
//! let polytope = Polytope::from_region(&region).unwrap();
//! assert_eq!(polytope.n_vertices(), 2); // a segment of the 1-simplex
//! ```

pub mod hull;
pub mod hyperplane;
pub mod lp;
pub mod polytope;
pub mod rectangle;
pub mod region;
pub mod region_geometry;
pub mod sampling;
pub mod sphere;
pub mod walk;

pub use hyperplane::{Halfspace, Side};
pub use lp::Basis;
pub use polytope::Polytope;
pub use rectangle::Rectangle;
pub use region::{Region, RegionLpCache};
pub use region_geometry::{GeometryBackend, RegionGeometry};
pub use sphere::{min_enclosing_sphere, EnclosingSphereParams, Sphere};
pub use walk::{SampleCloud, WalkConfig};
