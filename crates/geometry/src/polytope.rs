//! Explicit polytopes on the utility simplex: vertex enumeration and the
//! extreme-utility-vector machinery of algorithm EA (§IV-B).
//!
//! The utility range `R = U ∩ ⋂ h⁺` is a polyhedron inside the affine
//! hyperplane `Σu = 1`. Its vertices ("extreme utility vectors" in the
//! paper) are the points where `d − 1` of the inequality constraints —
//! simplex facets `u_i ≥ 0` and learned half-spaces `normal · u ≥ 0` —
//! are tight simultaneously. We enumerate them by brute force over
//! constraint subsets: with `d ≤ 5` (the regime in which EA runs — see
//! the paper's §V, which caps polytope-maintaining algorithms at low
//! dimensionality) and a handful of answered questions, the subset count
//! `C(d + |H|, d − 1)` stays in the low thousands and each candidate is a
//! single `d × d` linear solve.

use crate::hyperplane::Halfspace;
use crate::region::Region;
use crate::sphere::{min_enclosing_sphere, EnclosingSphereParams, Sphere};
use isrl_linalg::{solve_linear_system, vector, Matrix};

/// Feasibility slack for vertex acceptance. Looser than the LP tolerance
/// because the solve accumulates error over `d` eliminations.
const VERTEX_TOL: f64 = 1e-7;

/// Distance below which two candidate vertices are considered the same point.
const DEDUP_TOL: f64 = 1e-6;

/// Slack below which a constraint counts as *active* (tight) at a vertex.
/// Vertices come out of exact `d × d` solves or segment interpolation, so
/// their defining constraints are tight to ~1e-13; 1e-8 leaves three
/// orders of headroom without conflating distinct constraints.
const ACTIVE_TOL: f64 = 1e-8;

/// Pivot threshold for the tight-constraint rank check in [`Polytope::update`].
const RANK_TOL: f64 = 1e-9;

/// The unified constraint-normal list of a region: the `d` simplex facets
/// (rows of the identity), then each learned half-space normal normalized
/// to unit length so feasibility/activity tolerances are distances.
fn constraint_normals(region: &Region) -> Vec<Vec<f64>> {
    let d = region.dim();
    let mut normals: Vec<Vec<f64>> = Vec::with_capacity(d + region.len());
    for i in 0..d {
        let mut row = vec![0.0; d];
        row[i] = 1.0;
        normals.push(row);
    }
    for h in region.halfspaces() {
        let n = vector::norm(h.normal());
        normals.push(h.normal().iter().map(|x| x / n).collect());
    }
    normals
}

/// Tolerance-deduplicates candidate vertices in `O(V log V + V·w)` instead
/// of the quadratic all-pairs scan: sort lexicographically, then compare
/// each candidate only against retained vertices whose leading coordinate
/// is within [`DEDUP_TOL`] (two points closer than `DEDUP_TOL` in Euclidean
/// distance are at least that close per coordinate, so the sorted window
/// cannot miss a duplicate).
fn dedup_vertices(mut candidates: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
    candidates.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mut out: Vec<Vec<f64>> = Vec::with_capacity(candidates.len());
    let mut window = 0usize;
    'next: for c in candidates {
        while window < out.len() && c[0] - out[window][0] > DEDUP_TOL {
            window += 1;
        }
        for v in &out[window..] {
            if vector::dist_sq(v, &c) < DEDUP_TOL * DEDUP_TOL {
                continue 'next;
            }
        }
        out.push(c);
    }
    out
}

/// Rank of the row set under Gaussian elimination with partial pivoting
/// (rows are unit-scale: constraint normals and the all-ones simplex row).
fn row_rank(mut rows: Vec<Vec<f64>>, d: usize) -> usize {
    let mut rank = 0usize;
    for col in 0..d {
        let pivot = (rank..rows.len())
            .max_by(|&a, &b| {
                rows[a][col]
                    .abs()
                    .partial_cmp(&rows[b][col].abs())
                    .expect("finite rows")
            })
            .filter(|&r| rows[r][col].abs() > RANK_TOL);
        let Some(pivot) = pivot else { continue };
        rows.swap(rank, pivot);
        for r in rank + 1..rows.len() {
            let factor = rows[r][col] / rows[rank][col];
            if factor != 0.0 {
                let (head, tail) = rows.split_at_mut(r);
                let pivot_row = &head[rank];
                for (dst, &src) in tail[0][col..d].iter_mut().zip(&pivot_row[col..d]) {
                    *dst -= factor * src;
                }
            }
        }
        rank += 1;
        if rank == rows.len() {
            break;
        }
    }
    rank
}

/// Number of indices shared by two ascending index lists (merge scan).
fn shared_count(a: &[usize], b: &[usize]) -> usize {
    let (mut i, mut j, mut shared) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                shared += 1;
                i += 1;
                j += 1;
            }
        }
    }
    shared
}

/// A polytope on the utility simplex, materialized as its vertex set.
#[derive(Debug, Clone)]
pub struct Polytope {
    dim: usize,
    vertices: Vec<Vec<f64>>,
}

impl Polytope {
    /// Enumerates the vertices of the given region. Returns `None` when the
    /// region has no vertices (numerically empty).
    pub fn from_region(region: &Region) -> Option<Self> {
        let d = region.dim();
        if d == 1 {
            return None; // no meaningful utility space below d = 2
        }
        let normals = constraint_normals(region);

        let mut candidates: Vec<Vec<f64>> = Vec::new();
        let mut combo: Vec<usize> = (0..d - 1).collect();

        // Iterate all (d−1)-subsets of the constraint indices.
        let m = normals.len();
        if combo.len() > m {
            return None;
        }
        loop {
            // System: Σu = 1 plus the chosen tight constraints = 0.
            let mut rows: Vec<Vec<f64>> = Vec::with_capacity(d);
            rows.push(vec![1.0; d]);
            for &ci in &combo {
                rows.push(normals[ci].clone());
            }
            let mut rhs = vec![0.0; d];
            rhs[0] = 1.0;
            if let Ok(u) = solve_linear_system(Matrix::from_rows(&rows), rhs) {
                // Feasible w.r.t. every constraint?
                let feasible = normals
                    .iter()
                    .all(|nrm| vector::dot(nrm, &u) >= -VERTEX_TOL);
                if feasible {
                    candidates.push(u);
                }
            }

            // Advance the combination (lexicographic).
            let k = combo.len();
            let mut i = k;
            loop {
                if i == 0 {
                    let vertices = dedup_vertices(candidates);
                    return if vertices.is_empty() {
                        None
                    } else {
                        Some(Self { dim: d, vertices })
                    };
                }
                i -= 1;
                if combo[i] < m - (k - i) {
                    combo[i] += 1;
                    for j in i + 1..k {
                        combo[j] = combo[j - 1] + 1;
                    }
                    break;
                }
            }
        }
    }

    /// Incrementally cuts this polytope — the vertex set of `region` — with
    /// one additional half-space, returning the vertex set of
    /// `region ∪ {new_halfspace}` without re-enumerating from scratch.
    ///
    /// Kept vertices are those satisfying the cut. New vertices can only
    /// appear on the cut hyperplane, at its crossings with *edges* of the
    /// old polytope: for every (kept, dropped) vertex pair sharing at least
    /// `d − 2` active constraints (the adjacency certificate — an edge is a
    /// 1-face pinned by `d − 2` tight constraints plus `Σu = 1`), the
    /// segment crossing is computed by interpolation and accepted iff its
    /// tight-constraint set has full rank `d` (which rejects the spurious
    /// mid-face points degenerate vertices can induce). Cost is
    /// `O(V·m·d + K·D·d)` for `V` vertices, `m` constraints, `K` kept and
    /// `D` dropped vertices — versus `C(m + 1, d − 1)` linear solves for a
    /// from-scratch enumeration.
    ///
    /// Returns `None` when the cut leaves no vertices (empty region).
    ///
    /// # Panics
    /// Panics on dimension mismatches. The caller must pass the same
    /// `region` this polytope was enumerated from (*without*
    /// `new_halfspace`); this is not checked.
    pub fn update(&self, region: &Region, new_halfspace: &Halfspace) -> Option<Self> {
        let d = self.dim;
        assert_eq!(region.dim(), d, "region dimension mismatch");
        assert_eq!(new_halfspace.dim(), d, "halfspace dimension mismatch");
        let norm = vector::norm(new_halfspace.normal());
        let g: Vec<f64> = new_halfspace.normal().iter().map(|x| x / norm).collect();

        let scores: Vec<f64> = self.vertices.iter().map(|v| vector::dot(&g, v)).collect();
        if scores.iter().all(|&s| s >= -VERTEX_TOL) {
            return Some(self.clone()); // cut is redundant: hull unchanged
        }
        if scores.iter().all(|&s| s < -VERTEX_TOL) {
            return None; // every vertex beyond the cut: intersection empty
        }

        let normals = constraint_normals(region);
        // Active (tight) constraint set per vertex, ascending by index.
        let active: Vec<Vec<usize>> = self
            .vertices
            .iter()
            .map(|v| {
                normals
                    .iter()
                    .enumerate()
                    .filter(|(_, n)| vector::dot(n, v).abs() <= ACTIVE_TOL)
                    .map(|(j, _)| j)
                    .collect()
            })
            .collect();
        let (kept, dropped): (Vec<usize>, Vec<usize>) =
            (0..self.vertices.len()).partition(|&i| scores[i] >= -VERTEX_TOL);

        let mut candidates: Vec<Vec<f64>> =
            kept.iter().map(|&i| self.vertices[i].clone()).collect();
        for &i in &kept {
            for &j in &dropped {
                if shared_count(&active[i], &active[j]) + 2 < d {
                    continue; // not adjacent: the segment is not an edge
                }
                let (si, sj) = (scores[i].max(0.0), scores[j]);
                let t = si / (si - sj); // sj < −tol ⇒ t ∈ [0, 1)
                let p: Vec<f64> = self.vertices[i]
                    .iter()
                    .zip(&self.vertices[j])
                    .map(|(a, b)| a + t * (b - a))
                    .collect();
                // Full-rank tight set ⇒ the crossing is a genuine 0-face.
                let mut tight: Vec<Vec<f64>> = vec![vec![1.0; d]];
                tight.extend(
                    normals
                        .iter()
                        .chain(std::iter::once(&g))
                        .filter(|n| vector::dot(n, &p).abs() <= ACTIVE_TOL)
                        .cloned(),
                );
                if row_rank(tight, d) == d {
                    candidates.push(p);
                }
            }
        }
        let vertices = dedup_vertices(candidates);
        if vertices.is_empty() {
            None
        } else {
            Some(Self { dim: d, vertices })
        }
    }

    /// Dimensionality of the ambient space.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The extreme utility vectors `ℰ`.
    #[inline]
    pub fn vertices(&self) -> &[Vec<f64>] {
        &self.vertices
    }

    /// Number of vertices.
    #[inline]
    pub fn n_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// The vertex centroid (a guaranteed interior-ish point of the polytope).
    pub fn centroid(&self) -> Vec<f64> {
        vector::mean(&self.vertices)
    }

    /// The outer sphere of the polytope (§IV-B state, part 2): the paper's
    /// iterative minimum-enclosing-sphere over the extreme utility vectors.
    pub fn outer_sphere(&self) -> Sphere {
        min_enclosing_sphere(&self.vertices, EnclosingSphereParams::default())
    }

    /// Greedy max-coverage selection of `m_e` representative extreme utility
    /// vectors (the paper's DBSCAN-inspired scheme, Lemma 2); see
    /// [`select_representative_points`], which this delegates to with the
    /// vertex set.
    pub fn select_representatives(&self, m_e: usize, d_eps: f64) -> Vec<Vec<f64>> {
        select_representative_points(&self.vertices, m_e, d_eps)
    }

    /// Fixed-length EA state block for the selected representatives; see
    /// [`encode_representative_points`], which this delegates to with the
    /// vertex set.
    pub fn encode_representatives(&self, m_e: usize, d_eps: f64) -> Vec<f64> {
        encode_representative_points(&self.vertices, m_e, d_eps)
    }
}

/// Greedy max-coverage selection of `m_e` representatives from an arbitrary
/// point set (the paper's DBSCAN-inspired scheme, Lemma 2): each point `e`
/// covers the points within distance `d_eps` of it; repeatedly pick the
/// point covering the most still-uncovered points. Operates on any point
/// set so both the exact backend (vertices) and the sampled backend (cloud
/// points) share one implementation.
///
/// Returns at most `m_e` points; fewer when every point is covered earlier.
/// The greedy choice gives the classic `(1 − 1/e)` approximation to the
/// NP-hard optimum.
pub fn select_representative_points(points: &[Vec<f64>], m_e: usize, d_eps: f64) -> Vec<Vec<f64>> {
    let n = points.len();
    if n == 0 || m_e == 0 {
        return Vec::new();
    }
    // Neighborhood sets S_e.
    let d_eps_sq = d_eps * d_eps;
    let neighborhoods: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            (0..n)
                .filter(|&j| vector::dist_sq(&points[i], &points[j]) <= d_eps_sq)
                .collect()
        })
        .collect();

    let mut covered = vec![false; n];
    let mut chosen: Vec<usize> = Vec::with_capacity(m_e.min(n));
    while chosen.len() < m_e && covered.iter().any(|c| !c) {
        let (best, gain) = (0..n)
            .filter(|i| !chosen.contains(i))
            .map(|i| {
                let gain = neighborhoods[i].iter().filter(|&&j| !covered[j]).count();
                (i, gain)
            })
            .max_by_key(|&(_, gain)| gain)
            .expect("uncovered points remain, so a candidate exists");
        if gain == 0 {
            break;
        }
        for &j in &neighborhoods[best] {
            covered[j] = true;
        }
        chosen.push(best);
    }
    chosen.into_iter().map(|i| points[i].clone()).collect()
}

/// Fixed-length EA state block for the selected representatives: exactly
/// `m_e` slots of `d` numbers, padded by repeating the point-set mean when
/// fewer than `m_e` representatives exist (a constant-shape encoding is
/// required by the Q-network).
///
/// # Panics
/// Panics if `points` is empty (there is no mean to pad with).
pub fn encode_representative_points(points: &[Vec<f64>], m_e: usize, d_eps: f64) -> Vec<f64> {
    assert!(!points.is_empty(), "cannot encode an empty point set");
    let dim = points[0].len();
    let mut reps = select_representative_points(points, m_e, d_eps);
    let pad = vector::mean(points);
    while reps.len() < m_e {
        reps.push(pad.clone());
    }
    let mut out = Vec::with_capacity(m_e * dim);
    for r in reps {
        out.extend_from_slice(&r);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hyperplane::Halfspace;

    fn full(d: usize) -> Polytope {
        Polytope::from_region(&Region::full(d)).unwrap()
    }

    #[test]
    fn full_simplex_vertices_are_unit_axes() {
        for d in [2usize, 3, 4, 5] {
            let p = full(d);
            assert_eq!(p.n_vertices(), d, "d = {d}");
            for v in p.vertices() {
                assert!((vector::sum(v) - 1.0).abs() < 1e-9);
                assert_eq!(v.iter().filter(|&&x| x > 0.5).count(), 1);
            }
        }
    }

    #[test]
    fn halving_the_triangle() {
        // Cut the 3-simplex with u0 ≥ u1: vertices become e0, e2, and the
        // midpoint (0.5, 0.5, 0).
        let mut r = Region::full(3);
        r.add(Halfspace::new(vec![1.0, -1.0, 0.0]));
        let p = Polytope::from_region(&r).unwrap();
        assert_eq!(p.n_vertices(), 3);
        let has = |target: &[f64]| p.vertices().iter().any(|v| vector::dist(v, target) < 1e-6);
        assert!(has(&[1.0, 0.0, 0.0]));
        assert!(has(&[0.0, 0.0, 1.0]));
        assert!(has(&[0.5, 0.5, 0.0]));
    }

    #[test]
    fn empty_region_yields_none() {
        let mut r = Region::full(2);
        r.add(Halfspace::new(vec![0.5, -1.5]));
        r.add(Halfspace::new(vec![-1.5, 0.5]));
        assert!(Polytope::from_region(&r).is_none());
    }

    #[test]
    fn vertices_satisfy_all_constraints() {
        let mut r = Region::full(4);
        r.add(Halfspace::new(vec![1.0, -0.5, 0.2, -0.7]));
        r.add(Halfspace::new(vec![-0.3, 1.0, -0.8, 0.1]));
        let p = Polytope::from_region(&r).unwrap();
        assert!(
            p.n_vertices() >= 4 - 1,
            "cut simplex keeps several vertices"
        );
        for v in p.vertices() {
            assert!(r.contains(v, 1e-6), "vertex {v:?} outside region");
        }
    }

    #[test]
    fn centroid_is_interior() {
        let mut r = Region::full(3);
        r.add(Halfspace::new(vec![1.0, -1.0, 0.0]));
        let p = Polytope::from_region(&r).unwrap();
        assert!(r.contains(&p.centroid(), 1e-9));
    }

    #[test]
    fn outer_sphere_encloses_vertices() {
        let p = full(4);
        let s = p.outer_sphere();
        for v in p.vertices() {
            assert!(s.contains(v, 1e-5));
        }
    }

    #[test]
    fn representative_selection_covers_clusters() {
        // Cluster the triangle's vertices artificially: with a huge d_eps a
        // single representative covers everything.
        let p = full(3);
        let reps = p.select_representatives(3, 10.0);
        assert_eq!(reps.len(), 1, "one representative should cover all");
        // With zero-ish d_eps every vertex is its own cluster.
        let reps = p.select_representatives(3, 1e-9);
        assert_eq!(reps.len(), 3);
    }

    #[test]
    fn representatives_capped_at_m_e() {
        let p = full(5);
        assert!(p.select_representatives(2, 1e-9).len() <= 2);
    }

    #[test]
    fn encoding_has_fixed_length_and_pads_with_centroid() {
        let p = full(3);
        let enc = p.encode_representatives(5, 10.0);
        assert_eq!(enc.len(), 5 * 3);
        // Slots 2..5 are the centroid (slot 1 covers everything at d_eps = 10).
        let c = p.centroid();
        assert!((enc[3] - c[0]).abs() < 1e-12);
    }

    /// Same vertex set up to tolerance, order-independent.
    fn same_vertex_set(a: &Polytope, b: &Polytope) -> bool {
        a.n_vertices() == b.n_vertices()
            && a.vertices()
                .iter()
                .all(|v| b.vertices().iter().any(|w| vector::dist(v, w) < 1e-6))
    }

    #[test]
    fn update_matches_from_scratch_on_cut_sequence() {
        for d in [2usize, 3, 4, 5] {
            let mut region = Region::full(d);
            let mut incremental = Polytope::from_region(&region).unwrap();
            // A deterministic sequence of cuts that keeps the region nonempty
            // (each prefers coordinate i over i+1, slightly tilted).
            for (step, i) in (0..d - 1).chain(0..d - 1).enumerate() {
                let mut normal = vec![0.01 * (step as f64 + 1.0); d];
                normal[i] = 1.0;
                normal[i + 1] = -0.9;
                let h = Halfspace::new(normal);
                incremental = incremental
                    .update(&region, &h)
                    .expect("cut keeps the region nonempty");
                region.add(h);
                let scratch = Polytope::from_region(&region).unwrap();
                assert!(
                    same_vertex_set(&incremental, &scratch),
                    "d={d} step={step}: incremental {:?} vs scratch {:?}",
                    incremental.vertices(),
                    scratch.vertices()
                );
            }
        }
    }

    #[test]
    fn update_with_redundant_cut_is_identity() {
        let region = Region::full(3);
        let p = Polytope::from_region(&region).unwrap();
        // The whole simplex satisfies u0 + u1 + u2 ≥ 0.
        let q = p
            .update(&region, &Halfspace::new(vec![1.0, 1.0, 1.0]))
            .unwrap();
        assert!(same_vertex_set(&p, &q));
    }

    #[test]
    fn update_with_infeasible_cut_is_none() {
        let region = Region::full(3);
        let p = Polytope::from_region(&region).unwrap();
        // No point of the simplex satisfies −(u0 + u1 + u2) ≥ 0 strictly.
        assert!(p
            .update(&region, &Halfspace::new(vec![-1.0, -1.0, -1.0]))
            .is_none());
    }

    #[test]
    fn update_halving_the_triangle_matches_known_vertices() {
        let region = Region::full(3);
        let p = Polytope::from_region(&region).unwrap();
        let q = p
            .update(&region, &Halfspace::new(vec![1.0, -1.0, 0.0]))
            .unwrap();
        assert_eq!(q.n_vertices(), 3);
        let has = |target: &[f64]| q.vertices().iter().any(|v| vector::dist(v, target) < 1e-6);
        assert!(has(&[1.0, 0.0, 0.0]));
        assert!(has(&[0.0, 0.0, 1.0]));
        assert!(has(&[0.5, 0.5, 0.0]));
    }

    #[test]
    fn repeated_cuts_shrink_vertex_spread() {
        let mut r = Region::full(3);
        let spread = |p: &Polytope| p.outer_sphere().radius();
        let before = spread(&full(3));
        r.add(Halfspace::new(vec![1.0, -1.0, 0.0]));
        r.add(Halfspace::new(vec![0.0, 1.0, -1.0]));
        let after = spread(&Polytope::from_region(&r).unwrap());
        assert!(
            after < before,
            "cuts must shrink the outer sphere: {before} -> {after}"
        );
    }
}
