//! Hyperplanes through the origin and the half-spaces they bound.
//!
//! Every user answer in the interactive regret query is encoded as a
//! half-space of the utility space (Lemma 1 of the paper): the user
//! preferring `p_i` over `p_j` means the utility vector lies in
//! `h_{i,j}⁺ = { u : u · (p_i − p_j) > 0 }`. The ε-relaxed variant
//! `εh_{i,j}⁺ = { u : u · (p_i − (1 − ε) p_j) > 0 }` bounds the terminal
//! polyhedrons of Lemma 4.

use isrl_linalg::vector;

/// Which side of a hyperplane a point lies on, up to tolerance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Strictly positive side (`normal · u > tol`).
    Positive,
    /// Strictly negative side (`normal · u < −tol`).
    Negative,
    /// Within tolerance of the hyperplane itself.
    On,
}

/// A half-space `{ u ∈ ℝᵈ : normal · u ≥ 0 }` whose boundary hyperplane
/// passes through the origin.
///
/// The paper's half-spaces are open (`> 0`); we close them here and let the
/// callers that need strictness (action validation, Lemma 8) ask for a
/// positive margin via LP instead. This keeps polytope vertex enumeration
/// well-defined.
#[derive(Debug, Clone, PartialEq)]
pub struct Halfspace {
    normal: Vec<f64>,
}

impl Halfspace {
    /// A half-space with the given (not necessarily unit) normal.
    ///
    /// # Panics
    /// Panics if the normal is the zero vector — a zero normal encodes the
    /// degenerate question "compare a point with itself", which no caller
    /// should produce.
    pub fn new(normal: Vec<f64>) -> Self {
        assert!(
            vector::norm(&normal) > f64::EPSILON,
            "Halfspace normal must be non-zero"
        );
        Self { normal }
    }

    /// The half-space of utility vectors preferring `p_i` over `p_j`
    /// (Lemma 1): normal `p_i − p_j`.
    ///
    /// Returns `None` if the two points coincide (no information).
    pub fn preferring(p_i: &[f64], p_j: &[f64]) -> Option<Self> {
        let normal = vector::sub(p_i, p_j);
        if vector::norm(&normal) <= 1e-12 {
            None
        } else {
            Some(Self { normal })
        }
    }

    /// The ε-relaxed half-space `εh_{i,j}⁺` of Lemma 4: normal
    /// `p_i − (1 − ε) p_j`. Any utility vector in the intersection of these
    /// half-spaces over all `p_j` sees `p_i` with regret ratio below ε.
    pub fn eps_preferring(p_i: &[f64], p_j: &[f64], eps: f64) -> Option<Self> {
        let scaled: Vec<f64> = p_j.iter().map(|x| x * (1.0 - eps)).collect();
        let normal = vector::sub(p_i, &scaled);
        if vector::norm(&normal) <= 1e-12 {
            None
        } else {
            Some(Self { normal })
        }
    }

    /// The (non-unit) normal vector.
    #[inline]
    pub fn normal(&self) -> &[f64] {
        &self.normal
    }

    /// Dimensionality of the ambient space.
    #[inline]
    pub fn dim(&self) -> usize {
        self.normal.len()
    }

    /// Signed evaluation `normal · u`. Positive means inside the half-space.
    #[inline]
    pub fn eval(&self, u: &[f64]) -> f64 {
        vector::dot(&self.normal, u)
    }

    /// `true` iff `u` satisfies the (closed) half-space within `tol`.
    #[inline]
    pub fn contains(&self, u: &[f64], tol: f64) -> bool {
        self.eval(u) >= -tol
    }

    /// Classifies `u` against the boundary hyperplane.
    pub fn side(&self, u: &[f64], tol: f64) -> Side {
        let v = self.eval(u);
        if v > tol {
            Side::Positive
        } else if v < -tol {
            Side::Negative
        } else {
            Side::On
        }
    }

    /// The complementary half-space (same boundary, flipped normal).
    pub fn flipped(&self) -> Self {
        Self {
            normal: vector::scale(&self.normal, -1.0),
        }
    }

    /// Euclidean distance from point `u` to the boundary hyperplane.
    pub fn distance(&self, u: &[f64]) -> f64 {
        self.eval(u).abs() / vector::norm(&self.normal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preferring_normal_is_difference() {
        let h = Halfspace::preferring(&[0.5, 0.8], &[0.3, 0.7]).unwrap();
        assert!((h.normal()[0] - 0.2).abs() < 1e-12);
        assert!((h.normal()[1] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn identical_points_give_no_halfspace() {
        assert!(Halfspace::preferring(&[0.5, 0.5], &[0.5, 0.5]).is_none());
    }

    #[test]
    fn lemma1_paper_example() {
        // Example 3 of the paper: p1 = (0, 0.6, 0), p2 = (0.4, 0, 0).
        let h = Halfspace::preferring(&[0.0, 0.6, 0.0], &[0.4, 0.0, 0.0]).unwrap();
        assert_eq!(h.normal(), &[-0.4, 0.6, 0.0][..]);
        // A user weighting attribute 2 heavily prefers p1.
        assert_eq!(h.side(&[0.1, 0.8, 0.1], 1e-12), Side::Positive);
        // A user weighting attribute 1 heavily prefers p2.
        assert_eq!(h.side(&[0.8, 0.1, 0.1], 1e-12), Side::Negative);
    }

    #[test]
    fn contains_iff_higher_utility() {
        // The half-space contains exactly the u with f_u(p_i) ≥ f_u(p_j).
        let p_i = [0.9, 0.1];
        let p_j = [0.2, 0.6];
        let h = Halfspace::preferring(&p_i, &p_j).unwrap();
        for u in [[0.5, 0.5], [0.9, 0.1], [0.1, 0.9], [0.3, 0.7]] {
            let ui = isrl_linalg::vector::dot(&u, &p_i);
            let uj = isrl_linalg::vector::dot(&u, &p_j);
            assert_eq!(h.contains(&u, 1e-12), ui >= uj - 1e-12);
        }
    }

    #[test]
    fn eps_halfspace_is_looser_than_exact() {
        // εh⁺ ⊇ h⁺ on the positive orthant: p_i only needs to be within
        // (1 − ε) of p_j, so more utility vectors qualify.
        let p_i = [0.4, 0.6];
        let p_j = [0.5, 0.5];
        let h = Halfspace::preferring(&p_i, &p_j).unwrap();
        let he = Halfspace::eps_preferring(&p_i, &p_j, 0.2).unwrap();
        for u in [[0.5, 0.5], [0.2, 0.8], [0.8, 0.2], [0.45, 0.55]] {
            if h.contains(&u, 0.0) {
                assert!(he.contains(&u, 0.0), "εh⁺ must contain h⁺ at {u:?}");
            }
        }
    }

    #[test]
    fn flipped_negates_eval() {
        let h = Halfspace::new(vec![1.0, -2.0]);
        let u = [0.3, 0.7];
        assert!((h.eval(&u) + h.flipped().eval(&u)).abs() < 1e-15);
    }

    #[test]
    fn distance_is_scale_invariant() {
        let h1 = Halfspace::new(vec![1.0, -1.0]);
        let h2 = Halfspace::new(vec![10.0, -10.0]);
        let u = [0.9, 0.1];
        assert!((h1.distance(&u) - h2.distance(&u)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_normal_panics() {
        Halfspace::new(vec![0.0, 0.0]);
    }
}
