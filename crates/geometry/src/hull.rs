//! Dominance tests and a planar convex hull.
//!
//! The skyline preprocessing in `isrl-data` and the UH-Simplex baseline both
//! lean on Pareto dominance; the 2-d convex hull (Andrew's monotone chain)
//! gives UH-Simplex an exact extreme-point set in the `d = 2` fast path and
//! serves as a test oracle for the vertex-enumeration code.

/// `true` iff `a` Pareto-dominates `b`: at least as large on every attribute
/// and strictly larger on at least one (larger-is-better convention).
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strictly = false;
    for (x, y) in a.iter().zip(b) {
        if x < y {
            return false;
        }
        if x > y {
            strictly = true;
        }
    }
    strictly
}

/// `true` iff some point of `set` dominates `p`.
pub fn is_dominated(p: &[f64], set: &[Vec<f64>]) -> bool {
    set.iter().any(|q| dominates(q, p))
}

/// Convex hull of a 2-d point set via Andrew's monotone chain, returned in
/// counter-clockwise order starting from the lexicographically smallest
/// point. Collinear points on hull edges are dropped.
///
/// Returns the input unchanged (deduplicated) for fewer than 3 distinct points.
pub fn convex_hull_2d(points: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let mut pts: Vec<(f64, f64)> = points
        .iter()
        .map(|p| {
            assert_eq!(p.len(), 2, "convex_hull_2d requires 2-d points");
            (p[0], p[1])
        })
        .collect();
    pts.sort_by(|a, b| a.partial_cmp(b).expect("NaN coordinate in hull input"));
    pts.dedup_by(|a, b| (a.0 - b.0).abs() < 1e-12 && (a.1 - b.1).abs() < 1e-12);
    let n = pts.len();
    if n < 3 {
        return pts.into_iter().map(|(x, y)| vec![x, y]).collect();
    }

    let cross = |o: (f64, f64), a: (f64, f64), b: (f64, f64)| {
        (a.0 - o.0) * (b.1 - o.1) - (a.1 - o.1) * (b.0 - o.0)
    };

    let mut hull: Vec<(f64, f64)> = Vec::with_capacity(2 * n);
    // Lower hull.
    for &p in &pts {
        while hull.len() >= 2 && cross(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0.0 {
            hull.pop();
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len && cross(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0.0
        {
            hull.pop();
        }
        hull.push(p);
    }
    hull.pop(); // last point repeats the first
    hull.into_iter().map(|(x, y)| vec![x, y]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_requires_strict_improvement() {
        assert!(dominates(&[0.5, 0.8], &[0.5, 0.7]));
        assert!(!dominates(&[0.5, 0.7], &[0.5, 0.7])); // equal: not dominating
        assert!(!dominates(&[0.9, 0.1], &[0.1, 0.9])); // incomparable
    }

    #[test]
    fn is_dominated_scans_whole_set() {
        let set = vec![vec![0.9, 0.1], vec![0.2, 0.8]];
        assert!(is_dominated(&[0.1, 0.7], &set));
        assert!(!is_dominated(&[0.95, 0.05], &set));
    }

    #[test]
    fn hull_of_square_plus_interior() {
        let pts = vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![0.0, 1.0],
            vec![0.5, 0.5], // interior — must be dropped
        ];
        let hull = convex_hull_2d(&pts);
        assert_eq!(hull.len(), 4);
        assert!(!hull.iter().any(|p| p == &vec![0.5, 0.5]));
    }

    #[test]
    fn hull_drops_collinear_points() {
        let pts = vec![
            vec![0.0, 0.0],
            vec![0.5, 0.5],
            vec![1.0, 1.0],
            vec![0.0, 1.0],
        ];
        let hull = convex_hull_2d(&pts);
        assert_eq!(hull.len(), 3);
    }

    #[test]
    fn hull_of_tiny_sets_is_identity() {
        assert_eq!(convex_hull_2d(&[]).len(), 0);
        assert_eq!(convex_hull_2d(&[vec![0.3, 0.4]]).len(), 1);
        let two = convex_hull_2d(&[vec![0.0, 0.0], vec![1.0, 1.0], vec![0.0, 0.0]]);
        assert_eq!(two.len(), 2, "duplicates removed");
    }

    #[test]
    fn hull_contains_extreme_utility_maximizers() {
        // For any utility vector, the top-1 point of a 2-d set lies on the hull.
        let pts = vec![
            vec![0.1, 0.9],
            vec![0.4, 0.7],
            vec![0.6, 0.55],
            vec![0.9, 0.2],
            vec![0.3, 0.3],
        ];
        let hull = convex_hull_2d(&pts);
        for u in [[1.0, 0.0], [0.0, 1.0], [0.5, 0.5], [0.3, 0.7]] {
            let best = pts
                .iter()
                .max_by(|a, b| {
                    let fa = a[0] * u[0] + a[1] * u[1];
                    let fb = b[0] * u[0] + b[1] * u[1];
                    fa.partial_cmp(&fb).unwrap()
                })
                .unwrap();
            assert!(
                hull.iter().any(|h| h == best),
                "maximizer {best:?} for {u:?} missing from hull"
            );
        }
    }
}
