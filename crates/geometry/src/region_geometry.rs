//! Incrementally-maintained region geometry: the per-episode state carried
//! by the interactive agents.
//!
//! Both EA and AA narrow the utility range `R` one half-space per round.
//! EA additionally needs `R`'s vertex set every round — and re-enumerating
//! it from scratch costs `C(d + |H|, d − 1)` linear solves, a figure that
//! grows combinatorially with the number of answered questions. A
//! [`RegionGeometry`] bundles the region with its [`Polytope`] and keeps
//! the vertex set current through [`Polytope::update`]'s edge-crossing
//! rule, so each question costs work proportional to the *current* vertex
//! count instead of the full subset enumeration.
//!
//! AA never materializes vertices (that is the point of its LP-summary
//! state, which scales to `d = 25`); it uses [`RegionGeometry::summary_only`]
//! so the polytope is simply never computed.

use crate::hyperplane::Halfspace;
use crate::polytope::Polytope;
use crate::region::Region;

/// A region plus (optionally) its incrementally-maintained vertex set.
#[derive(Debug, Clone)]
pub struct RegionGeometry {
    region: Region,
    /// `Some` while the region has vertices and tracking is on; once the
    /// region collapses to (numerically) empty this stays `None`.
    polytope: Option<Polytope>,
    track_vertices: bool,
}

impl RegionGeometry {
    /// The full utility simplex with vertex tracking on (EA's view).
    pub fn exact(dim: usize) -> Self {
        let region = Region::full(dim);
        let polytope = Polytope::from_region(&region);
        Self {
            region,
            polytope,
            track_vertices: true,
        }
    }

    /// The full utility simplex with vertex tracking off (AA's view):
    /// [`RegionGeometry::polytope`] is always `None` and cuts cost only the
    /// region push.
    pub fn summary_only(dim: usize) -> Self {
        Self {
            region: Region::full(dim),
            polytope: None,
            track_vertices: false,
        }
    }

    /// Wraps an existing region, enumerating its vertices from scratch once
    /// if tracking is requested. Used to resume an episode mid-way.
    pub fn from_region(region: Region, track_vertices: bool) -> Self {
        let polytope = if track_vertices {
            Polytope::from_region(&region)
        } else {
            None
        };
        Self {
            region,
            polytope,
            track_vertices,
        }
    }

    /// Narrows the region by one half-space, updating the vertex set
    /// incrementally when tracking is on.
    pub fn add(&mut self, h: Halfspace) {
        if self.track_vertices {
            self.polytope = self
                .polytope
                .as_ref()
                .and_then(|p| p.update(&self.region, &h));
        }
        self.region.add(h);
    }

    /// The underlying region.
    #[inline]
    pub fn region(&self) -> &Region {
        &self.region
    }

    /// The current vertex set: `Some` iff tracking is on and the region
    /// still has vertices.
    #[inline]
    pub fn polytope(&self) -> Option<&Polytope> {
        self.polytope.as_ref()
    }

    /// Dimensionality of the utility space.
    #[inline]
    pub fn dim(&self) -> usize {
        self.region.dim()
    }

    /// Whether this geometry maintains the vertex set.
    #[inline]
    pub fn tracks_vertices(&self) -> bool {
        self.track_vertices
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isrl_linalg::vector;

    #[test]
    fn exact_starts_with_simplex_vertices() {
        let g = RegionGeometry::exact(4);
        assert_eq!(g.polytope().unwrap().n_vertices(), 4);
        assert!(g.tracks_vertices());
    }

    #[test]
    fn summary_only_never_materializes() {
        let mut g = RegionGeometry::summary_only(25);
        g.add(Halfspace::new({
            let mut n = vec![0.0; 25];
            n[0] = 1.0;
            n[1] = -1.0;
            n
        }));
        assert!(g.polytope().is_none());
        assert_eq!(g.region().len(), 1);
    }

    #[test]
    fn add_tracks_the_from_scratch_enumeration() {
        let mut g = RegionGeometry::exact(3);
        let cuts = [
            Halfspace::new(vec![1.0, -1.0, 0.0]),
            Halfspace::new(vec![0.0, 1.0, -0.8]),
        ];
        for h in cuts {
            g.add(h);
            let scratch = Polytope::from_region(g.region()).unwrap();
            let inc = g.polytope().unwrap();
            assert_eq!(inc.n_vertices(), scratch.n_vertices());
            for v in inc.vertices() {
                assert!(
                    scratch.vertices().iter().any(|w| vector::dist(v, w) < 1e-6),
                    "incremental vertex {v:?} missing from scratch set"
                );
            }
        }
    }

    #[test]
    fn collapsed_region_stays_collapsed() {
        let mut g = RegionGeometry::exact(2);
        g.add(Halfspace::new(vec![1.0, -3.0]));
        g.add(Halfspace::new(vec![-3.0, 1.0])); // contradicts the first cut
        assert!(g.polytope().is_none());
        g.add(Halfspace::new(vec![1.0, 1.0]));
        assert!(g.polytope().is_none(), "no resurrection after collapse");
    }

    #[test]
    fn from_region_enumerates_once() {
        let mut r = Region::full(3);
        r.add(Halfspace::new(vec![1.0, -1.0, 0.0]));
        let g = RegionGeometry::from_region(r.clone(), true);
        let scratch = Polytope::from_region(&r).unwrap();
        assert_eq!(g.polytope().unwrap().n_vertices(), scratch.n_vertices());
        assert!(RegionGeometry::from_region(r, false).polytope().is_none());
    }
}
