//! Incrementally-maintained region geometry: the per-episode state carried
//! by the interactive agents.
//!
//! Both EA and AA narrow the utility range `R` one half-space per round.
//! EA additionally needs `R`'s vertex set every round — and re-enumerating
//! it from scratch costs `C(d + |H|, d − 1)` linear solves, a figure that
//! grows combinatorially with the number of answered questions. A
//! [`RegionGeometry`] bundles the region with its [`Polytope`] and keeps
//! the vertex set current through [`Polytope::update`]'s edge-crossing
//! rule, so each question costs work proportional to the *current* vertex
//! count instead of the full subset enumeration.
//!
//! AA never materializes vertices (that is the point of its LP-summary
//! state, which scales to `d = 25`); it uses [`RegionGeometry::summary_only`]
//! so the polytope is simply never computed.

use crate::hyperplane::Halfspace;
use crate::polytope::Polytope;
use crate::rectangle::Rectangle;
use crate::region::{Region, RegionLpCache};
use crate::sphere::Sphere;
use crate::walk::{SampleCloud, WalkConfig};

/// Which region representation a [`RegionGeometry`] maintains for EA.
///
/// `Exact` is the paper's vertex enumeration — exact but exponential in
/// `d`. `Sampled` replaces the vertex set with a [`SampleCloud`] whose
/// per-cut cost is polynomial, making EA usable at `d ≥ 20`. `Auto`
/// resolves by dimension at construction time: exact up to
/// [`GeometryBackend::AUTO_EXACT_MAX_DIM`], sampled above it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GeometryBackend {
    /// Incrementally-maintained explicit vertex set ([`Polytope`]).
    Exact,
    /// Hit-and-run sample cloud ([`SampleCloud`]).
    Sampled,
    /// Exact at low dimension, sampled above the threshold.
    #[default]
    Auto,
}

impl GeometryBackend {
    /// Largest dimension at which `Auto` still picks the exact backend.
    /// At `d = 7` the full episode's subset enumeration is still cheap
    /// (tens of ms); one dimension later it no longer is.
    pub const AUTO_EXACT_MAX_DIM: usize = 7;

    /// Whether this backend, applied at dimensionality `dim`, maintains a
    /// sample cloud instead of a vertex set.
    #[inline]
    pub fn resolves_to_sampled(self, dim: usize) -> bool {
        match self {
            Self::Exact => false,
            Self::Sampled => true,
            Self::Auto => dim > Self::AUTO_EXACT_MAX_DIM,
        }
    }

    /// Parses a CLI-style backend name (`exact` | `sampled` | `auto`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "exact" => Some(Self::Exact),
            "sampled" => Some(Self::Sampled),
            "auto" => Some(Self::Auto),
            _ => None,
        }
    }
}

/// Lazily-computed per-round summaries, invalidated by every cut. The
/// outer `Option` is "computed yet?"; the inner one is the answer (`None`
/// = region empty). Caching these is what lets AA's state encoding and
/// the diagnostics layer share one inner-sphere/rectangle solve per round
/// instead of re-running the LPs at each consumer.
#[derive(Debug, Clone, Default)]
struct SummaryCache {
    sphere: Option<Option<Sphere>>,
    rect: Option<Option<Rectangle>>,
}

/// A region plus (optionally) its incrementally-maintained vertex set.
#[derive(Debug, Clone)]
pub struct RegionGeometry {
    region: Region,
    /// `Some` while the region has vertices and tracking is on; once the
    /// region collapses to (numerically) empty this stays `None`.
    polytope: Option<Polytope>,
    track_vertices: bool,
    cache: SummaryCache,
    /// Warm-start bases for the recurring LPs. Deliberately *not* reset by
    /// [`RegionGeometry::add`]: surviving the cut is the entire point — the
    /// next round's LPs differ by one appended row, which the warm solver
    /// absorbs with a basis repair instead of a cold phase 1.
    lp: RegionLpCache,
    warm_lp: bool,
    /// `Some` while the sampled backend is active and the region retains
    /// an interior; a collapsed region drops the cloud for good (mirroring
    /// the polytope's no-resurrection rule).
    cloud: Option<SampleCloud>,
    /// `true` iff this geometry was built with the sampled backend — kept
    /// separate from `cloud` so collapse is distinguishable from "exact".
    sampled: bool,
}

impl RegionGeometry {
    /// The full utility simplex with vertex tracking on (EA's view).
    pub fn exact(dim: usize) -> Self {
        let region = Region::full(dim);
        let polytope = Polytope::from_region(&region);
        Self {
            region,
            polytope,
            track_vertices: true,
            cache: SummaryCache::default(),
            lp: RegionLpCache::new(),
            warm_lp: true,
            cloud: None,
            sampled: false,
        }
    }

    /// The full utility simplex with the sampled backend: no vertex set is
    /// ever enumerated; a [`SampleCloud`] seeded with `seed` stands in for
    /// it. The chain's warm start is the warm-LP inner-sphere center, and
    /// every cut refreshes it through the same LP cache.
    pub fn sampled(dim: usize, walk: WalkConfig, seed: u64) -> Self {
        let region = Region::full(dim);
        let mut lp = RegionLpCache::new();
        let sphere = region
            .inner_sphere_with(&mut lp)
            .expect("the full simplex has an interior");
        let mut cloud = SampleCloud::new(&region, sphere.center().to_vec(), walk, seed);
        cloud.set_anchors(region.axis_extreme_points_with(&mut lp).unwrap_or_default());
        Self {
            region,
            polytope: None,
            track_vertices: false,
            cache: SummaryCache {
                sphere: Some(Some(sphere)),
                rect: None,
            },
            lp,
            warm_lp: true,
            cloud: Some(cloud),
            sampled: true,
        }
    }

    /// Constructs with an explicit [`GeometryBackend`], resolving `Auto`
    /// by dimension. `walk` and `seed` only matter when the resolution is
    /// sampled.
    pub fn with_backend(dim: usize, backend: GeometryBackend, walk: WalkConfig, seed: u64) -> Self {
        if backend.resolves_to_sampled(dim) {
            Self::sampled(dim, walk, seed)
        } else {
            Self::exact(dim)
        }
    }

    /// The full utility simplex with vertex tracking off (AA's view):
    /// [`RegionGeometry::polytope`] is always `None` and cuts cost only the
    /// region push.
    pub fn summary_only(dim: usize) -> Self {
        Self {
            region: Region::full(dim),
            polytope: None,
            track_vertices: false,
            cache: SummaryCache::default(),
            lp: RegionLpCache::new(),
            warm_lp: true,
            cloud: None,
            sampled: false,
        }
    }

    /// Wraps an existing region, enumerating its vertices from scratch once
    /// if tracking is requested. Used to resume an episode mid-way.
    pub fn from_region(region: Region, track_vertices: bool) -> Self {
        let polytope = if track_vertices {
            Polytope::from_region(&region)
        } else {
            None
        };
        Self {
            region,
            polytope,
            track_vertices,
            cache: SummaryCache::default(),
            lp: RegionLpCache::new(),
            warm_lp: true,
            cloud: None,
            sampled: false,
        }
    }

    /// Turns LP warm-starting on or off (on by default). Turning it off
    /// also drops any carried bases, so subsequent solves run the cold
    /// two-phase path — the differential test harness uses this to shadow
    /// warm episodes with cold ones.
    pub fn set_warm_lp(&mut self, on: bool) {
        self.warm_lp = on;
        if !on {
            self.lp.clear();
        }
    }

    /// `true` while LP warm-starting is enabled.
    #[inline]
    pub fn warm_lp(&self) -> bool {
        self.warm_lp
    }

    /// Split borrow for callers that need the region plus the warm-start
    /// cache at once (AA's candidate validation): `None` when warm
    /// starting is disabled.
    pub fn region_and_lp_cache(&mut self) -> (&Region, Option<&mut RegionLpCache>) {
        if self.warm_lp {
            (&self.region, Some(&mut self.lp))
        } else {
            (&self.region, None)
        }
    }

    /// Narrows the region by one half-space, updating the vertex set
    /// (exact backend) or the sample cloud (sampled backend) incrementally.
    /// Invalidates the summary cache (but keeps the LP bases — they are
    /// repaired, not recomputed). On the sampled path the refreshed
    /// inner-sphere center is computed here — one warm LP per cut — and
    /// doubles as the cached sphere for downstream consumers.
    pub fn add(&mut self, h: Halfspace) {
        let _span = isrl_obs::span("geom_update");
        if self.track_vertices {
            self.polytope = self
                .polytope
                .as_ref()
                .and_then(|p| p.update(&self.region, &h));
        }
        let cut_for_cloud = if self.cloud.is_some() {
            Some(h.clone())
        } else {
            None
        };
        self.region.add(h);
        self.cache = SummaryCache::default();
        if let Some(cut) = cut_for_cloud {
            match self.inner_sphere() {
                Some(sphere) => {
                    let interior = sphere.center().to_vec();
                    // Anchors must track the shrinking region: re-solve the
                    // axis-extent LPs (warm, sharing the rectangle's hi-side
                    // basis slots) so the cloud always carries d true
                    // vertices of the *current* region.
                    let anchors = self
                        .region
                        .axis_extreme_points_with(&mut self.lp)
                        .unwrap_or_default();
                    let cloud = self.cloud.as_mut().expect("cloud checked above");
                    cloud.apply_cut(&self.region, &cut, interior);
                    cloud.set_anchors(anchors);
                }
                // Region numerically empty: drop the cloud for good, the
                // same terminal state as a collapsed polytope.
                None => self.cloud = None,
            }
        }
        isrl_obs::add("geom.cuts", 1);
    }

    /// The underlying region.
    #[inline]
    pub fn region(&self) -> &Region {
        &self.region
    }

    /// The current vertex set: `Some` iff tracking is on and the region
    /// still has vertices.
    #[inline]
    pub fn polytope(&self) -> Option<&Polytope> {
        self.polytope.as_ref()
    }

    /// Dimensionality of the utility space.
    #[inline]
    pub fn dim(&self) -> usize {
        self.region.dim()
    }

    /// Whether this geometry maintains the vertex set.
    #[inline]
    pub fn tracks_vertices(&self) -> bool {
        self.track_vertices
    }

    /// Current vertex count, when tracking is on and the region is nonempty.
    #[inline]
    pub fn vertex_count(&self) -> Option<usize> {
        self.polytope.as_ref().map(Polytope::n_vertices)
    }

    /// `true` iff this geometry was built with the sampled backend (even
    /// after its cloud collapsed with the region).
    #[inline]
    pub fn is_sampled(&self) -> bool {
        self.sampled
    }

    /// The sample cloud: `Some` iff the sampled backend is active and the
    /// region still has an interior.
    #[inline]
    pub fn sample_cloud(&self) -> Option<&SampleCloud> {
        self.cloud.as_ref()
    }

    /// Size of whichever point set currently represents the region —
    /// vertices (exact) or cloud points (sampled); `None` once collapsed
    /// or when neither is maintained (summary-only).
    #[inline]
    pub fn support_size(&self) -> Option<usize> {
        self.vertex_count()
            .or_else(|| self.cloud.as_ref().map(SampleCloud::len))
    }

    /// The region's inner sphere, computed at most once per cut (cached
    /// until the next [`RegionGeometry::add`]). `None` when empty.
    pub fn inner_sphere(&mut self) -> Option<Sphere> {
        if self.cache.sphere.is_none() {
            let sphere = if self.warm_lp {
                self.region.inner_sphere_with(&mut self.lp)
            } else {
                self.region.inner_sphere()
            };
            self.cache.sphere = Some(sphere);
        } else {
            isrl_obs::add("geom.sphere_cache_hits", 1);
        }
        self.cache.sphere.clone().unwrap()
    }

    /// The region's outer rectangle, cached like the inner sphere. When the
    /// vertex set is tracked the box comes for free from the vertices (a
    /// linear extreme over a polytope is attained at a vertex, so the
    /// bounding box *is* the outer rectangle); on the sampled backend it is
    /// the cloud's bounding box (an inner approximation — good enough for
    /// the volume proxy, and free); otherwise the `2d` extent LPs run once
    /// per cut.
    pub fn outer_rectangle(&mut self) -> Option<Rectangle> {
        if self.cache.rect.is_none() {
            let rect = match (&self.polytope, &self.cloud) {
                (Some(p), _) => vertex_bounding_rectangle(p),
                (None, Some(c)) => c.bounding_rectangle(),
                (None, None) if self.warm_lp => self.region.outer_rectangle_with(&mut self.lp),
                (None, None) => self.region.outer_rectangle(),
            };
            self.cache.rect = Some(rect);
        } else {
            isrl_obs::add("geom.rect_cache_hits", 1);
        }
        self.cache.rect.clone().unwrap()
    }

    /// A cheap volume proxy: the outer rectangle's volume. On the exact
    /// and summary backends it starts at 1.0 on the full simplex (the unit
    /// box) and shrinks monotonically with each informative cut; on the
    /// sampled backend it is the cloud's bounding-box volume, which tracks
    /// the same decay up to sampling noise (resampling can wiggle the box
    /// either way between rounds). Not the true simplex-relative volume the
    /// Monte-Carlo estimator computes, but an always-available, exactly
    /// reproducible progress measure for traces and diagnostics.
    pub fn volume_proxy(&mut self) -> Option<f64> {
        self.outer_rectangle().map(|r| {
            r.min()
                .iter()
                .zip(r.max())
                .map(|(lo, hi)| (hi - lo).max(0.0))
                .product()
        })
    }
}

/// Axis-aligned bounding box of the polytope's vertices. `None` when the
/// vertex set is empty (collapsed region).
fn vertex_bounding_rectangle(p: &Polytope) -> Option<Rectangle> {
    let vertices = p.vertices();
    let first = vertices.first()?;
    let mut lo = first.clone();
    let mut hi = first.clone();
    for v in &vertices[1..] {
        for (i, &x) in v.iter().enumerate() {
            lo[i] = lo[i].min(x);
            hi[i] = hi[i].max(x);
        }
    }
    Some(Rectangle::new(lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use isrl_linalg::vector;

    #[test]
    fn exact_starts_with_simplex_vertices() {
        let g = RegionGeometry::exact(4);
        assert_eq!(g.polytope().unwrap().n_vertices(), 4);
        assert!(g.tracks_vertices());
    }

    #[test]
    fn summary_only_never_materializes() {
        let mut g = RegionGeometry::summary_only(25);
        g.add(Halfspace::new({
            let mut n = vec![0.0; 25];
            n[0] = 1.0;
            n[1] = -1.0;
            n
        }));
        assert!(g.polytope().is_none());
        assert_eq!(g.region().len(), 1);
    }

    #[test]
    fn add_tracks_the_from_scratch_enumeration() {
        let mut g = RegionGeometry::exact(3);
        let cuts = [
            Halfspace::new(vec![1.0, -1.0, 0.0]),
            Halfspace::new(vec![0.0, 1.0, -0.8]),
        ];
        for h in cuts {
            g.add(h);
            let scratch = Polytope::from_region(g.region()).unwrap();
            let inc = g.polytope().unwrap();
            assert_eq!(inc.n_vertices(), scratch.n_vertices());
            for v in inc.vertices() {
                assert!(
                    scratch.vertices().iter().any(|w| vector::dist(v, w) < 1e-6),
                    "incremental vertex {v:?} missing from scratch set"
                );
            }
        }
    }

    #[test]
    fn collapsed_region_stays_collapsed() {
        let mut g = RegionGeometry::exact(2);
        g.add(Halfspace::new(vec![1.0, -3.0]));
        g.add(Halfspace::new(vec![-3.0, 1.0])); // contradicts the first cut
        assert!(g.polytope().is_none());
        g.add(Halfspace::new(vec![1.0, 1.0]));
        assert!(g.polytope().is_none(), "no resurrection after collapse");
    }

    #[test]
    fn cached_summaries_match_the_region_and_invalidate_on_add() {
        let mut g = RegionGeometry::exact(3);
        let mut plain = Region::full(3);
        for h in [
            Halfspace::new(vec![1.0, -1.0, 0.0]),
            Halfspace::new(vec![0.0, 1.0, -0.7]),
        ] {
            g.add(h.clone());
            plain.add(h);
            // Vertex-derived rectangle equals the LP rectangle.
            let cached = g.outer_rectangle().unwrap();
            let lp = plain.outer_rectangle().unwrap();
            for i in 0..3 {
                assert!((cached.min()[i] - lp.min()[i]).abs() < 1e-7);
                assert!((cached.max()[i] - lp.max()[i]).abs() < 1e-7);
            }
            // Second call returns the cached value unchanged.
            assert_eq!(g.outer_rectangle().unwrap(), cached);
            let sphere = g.inner_sphere().unwrap();
            let direct = plain.inner_sphere().unwrap();
            assert!((sphere.radius() - direct.radius()).abs() < 1e-9);
        }
        let proxy = g.volume_proxy().unwrap();
        assert!(proxy > 0.0 && proxy < 1.0, "proxy {proxy}");
    }

    #[test]
    fn summary_only_volume_proxy_starts_at_unit_box() {
        let mut g = RegionGeometry::summary_only(4);
        let v = g.volume_proxy().unwrap();
        assert!((v - 1.0).abs() < 1e-7, "full simplex proxy {v}");
    }

    #[test]
    fn warm_and_cold_summary_geometries_agree() {
        // AA's summary-only view, once with warm LP starting (default) and
        // once forced cold: the per-round sphere radii and rectangle
        // extents must match to LP tolerance.
        let mut warm = RegionGeometry::summary_only(3);
        let mut cold = RegionGeometry::summary_only(3);
        cold.set_warm_lp(false);
        assert!(warm.warm_lp() && !cold.warm_lp());
        for h in [
            Halfspace::new(vec![1.0, -1.0, 0.0]),
            Halfspace::new(vec![0.0, 1.0, -0.7]),
            Halfspace::new(vec![0.9, 0.3, -1.3]),
        ] {
            warm.add(h.clone());
            cold.add(h);
            let (ws, cs) = (warm.inner_sphere().unwrap(), cold.inner_sphere().unwrap());
            assert!((ws.radius() - cs.radius()).abs() < 1e-9);
            let (wr, cr) = (
                warm.outer_rectangle().unwrap(),
                cold.outer_rectangle().unwrap(),
            );
            for i in 0..3 {
                assert!((wr.min()[i] - cr.min()[i]).abs() < 1e-9);
                assert!((wr.max()[i] - cr.max()[i]).abs() < 1e-9);
            }
        }
        let (region, cache) = warm.region_and_lp_cache();
        assert_eq!(region.len(), 3);
        assert!(cache.expect("warm mode exposes the cache").is_primed());
    }

    #[test]
    fn auto_backend_resolves_by_dimension() {
        assert!(!GeometryBackend::Auto.resolves_to_sampled(4));
        assert!(!GeometryBackend::Auto.resolves_to_sampled(GeometryBackend::AUTO_EXACT_MAX_DIM));
        assert!(GeometryBackend::Auto.resolves_to_sampled(GeometryBackend::AUTO_EXACT_MAX_DIM + 1));
        assert!(GeometryBackend::Sampled.resolves_to_sampled(2));
        assert!(!GeometryBackend::Exact.resolves_to_sampled(25));
        assert_eq!(
            GeometryBackend::parse("sampled"),
            Some(GeometryBackend::Sampled)
        );
        assert_eq!(GeometryBackend::parse("bogus"), None);
        let g = RegionGeometry::with_backend(3, GeometryBackend::Auto, WalkConfig::default(), 1);
        assert!(!g.is_sampled() && g.polytope().is_some());
        let g = RegionGeometry::with_backend(9, GeometryBackend::Auto, WalkConfig::default(), 1);
        assert!(g.is_sampled() && g.polytope().is_none());
    }

    #[test]
    fn sampled_backend_never_enumerates_and_tracks_cuts() {
        let mut g = RegionGeometry::sampled(10, WalkConfig::default(), 5);
        assert!(g.is_sampled());
        assert!(g.polytope().is_none());
        assert_eq!(g.support_size(), Some(WalkConfig::default().n_points));
        let mut n = vec![0.05; 10];
        n[0] = 1.0;
        n[1] = -1.0;
        g.add(Halfspace::new(n));
        assert!(g.polytope().is_none(), "no vertex set may appear");
        let cloud = g.sample_cloud().expect("region still has interior");
        assert_eq!(cloud.len(), WalkConfig::default().n_points);
        for p in cloud.points() {
            assert!(g.region().contains(p, 1e-9), "cloud point left the region");
        }
        // The cached sphere from the cut is reused by the first consumer call.
        let sphere = g.inner_sphere().expect("interior survives one cut");
        assert_eq!(sphere.center(), g.sample_cloud().unwrap().interior());
    }

    #[test]
    fn sampled_volume_proxy_shrinks_with_cuts() {
        let mut g = RegionGeometry::sampled(8, WalkConfig::default(), 9);
        let before = g.volume_proxy().expect("cloud bounding box exists");
        assert!(before > 0.0);
        for i in 0..4 {
            let mut n = vec![0.02; 8];
            n[i] = 1.0;
            n[i + 1] = -0.9;
            g.add(Halfspace::new(n));
        }
        let after = g.volume_proxy().expect("region still nonempty");
        assert!(
            after < before,
            "cuts should shrink the sampled proxy: {before} -> {after}"
        );
    }

    #[test]
    fn sampled_collapse_drops_the_cloud() {
        let mut g = RegionGeometry::sampled(2, WalkConfig::default(), 2);
        g.add(Halfspace::new(vec![1.0, -3.0]));
        g.add(Halfspace::new(vec![-3.0, 1.0])); // contradicts the first cut
        assert!(g.sample_cloud().is_none(), "empty region keeps no cloud");
        assert!(g.is_sampled(), "backend identity survives collapse");
        assert_eq!(g.support_size(), None);
        g.add(Halfspace::new(vec![1.0, 1.0]));
        assert!(g.sample_cloud().is_none(), "no resurrection after collapse");
    }

    #[test]
    fn sampled_geometry_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut g = RegionGeometry::sampled(6, WalkConfig::default(), seed);
            g.add(Halfspace::new(vec![1.0, -1.0, 0.0, 0.1, 0.0, 0.0]));
            g.add(Halfspace::new(vec![0.0, 1.0, -0.8, 0.0, 0.1, 0.0]));
            g.sample_cloud().unwrap().points().to_vec()
        };
        assert_eq!(run(77), run(77));
        assert_ne!(run(77), run(78));
    }

    #[test]
    fn from_region_enumerates_once() {
        let mut r = Region::full(3);
        r.add(Halfspace::new(vec![1.0, -1.0, 0.0]));
        let g = RegionGeometry::from_region(r.clone(), true);
        let scratch = Polytope::from_region(&r).unwrap();
        assert_eq!(g.polytope().unwrap().n_vertices(), scratch.n_vertices());
        assert!(RegionGeometry::from_region(r, false).polytope().is_none());
    }
}
