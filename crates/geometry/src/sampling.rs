//! Random sampling from the utility simplex and from convex regions.
//!
//! Lemma 5 of the paper grounds EA's action construction in volume-weighted
//! sampling: larger terminal polyhedrons should attract more sampled utility
//! vectors. We provide
//!
//! * [`sample_simplex`] — exact uniform sampling of the standard simplex via
//!   normalized exponentials (the Dirichlet(1,…,1) construction);
//! * [`sample_region_rejection`] — uniform sampling of a sub-region of the
//!   simplex by rejection, which is exact but degrades as the region shrinks;
//! * [`sample_vertex_mixture`] — Dirichlet-weighted convex combinations of a
//!   polytope's vertices, the documented fallback when rejection collapses.
//!   It is not volume-uniform, but it preserves the only property Lemma 5
//!   needs: regions occupying more of the polytope receive more samples.

use crate::hyperplane::Halfspace;
use rand::Rng;

/// Draws one utility vector uniformly from the standard `(d−1)`-simplex
/// `{ u : u ≥ 0, Σu = 1 }` using the exponential-spacing construction.
///
/// # Panics
/// Panics if `d == 0`.
pub fn sample_simplex<R: Rng + ?Sized>(d: usize, rng: &mut R) -> Vec<f64> {
    assert!(d > 0, "cannot sample a 0-dimensional simplex");
    loop {
        let mut u: Vec<f64> = (0..d)
            .map(|_| {
                // Exponential(1) via inverse CDF; clamp away from 0 to avoid -ln(0).
                let x: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                -x.ln()
            })
            .collect();
        let s: f64 = u.iter().sum();
        if s > 0.0 && s.is_finite() {
            for v in &mut u {
                *v /= s;
            }
            return u;
        }
    }
}

/// Draws up to `count` utility vectors uniformly from the intersection of the
/// simplex with the given half-spaces, by rejection from [`sample_simplex`].
///
/// Gives up after `budget` total proposals, so the returned vector may be
/// shorter than `count` (possibly empty) when the region is small — callers
/// fall back to [`sample_vertex_mixture`] in that case.
pub fn sample_region_rejection<R: Rng + ?Sized>(
    d: usize,
    halfspaces: &[Halfspace],
    count: usize,
    budget: usize,
    rng: &mut R,
) -> Vec<Vec<f64>> {
    let mut out = Vec::with_capacity(count);
    let mut proposals = 0u64;
    for _ in 0..budget {
        if out.len() >= count {
            break;
        }
        proposals += 1;
        let u = sample_simplex(d, rng);
        if halfspaces.iter().all(|h| h.contains(&u, 0.0)) {
            out.push(u);
        }
    }
    isrl_obs::add("sampling.rejection_proposals", proposals);
    isrl_obs::add("sampling.rejection_accepted", out.len() as u64);
    if out.len() < count {
        isrl_obs::add("sampling.rejection_exhausted", 1);
    }
    out
}

/// Draws `count` points from the convex hull of `vertices` as Dirichlet(1)
/// convex combinations. All returned points lie inside the polytope spanned
/// by the vertices (hence inside any convex region containing them).
///
/// # Panics
/// Panics if `vertices` is empty.
pub fn sample_vertex_mixture<R: Rng + ?Sized>(
    vertices: &[Vec<f64>],
    count: usize,
    rng: &mut R,
) -> Vec<Vec<f64>> {
    assert!(
        !vertices.is_empty(),
        "vertex mixture needs at least one vertex"
    );
    let d = vertices[0].len();
    let k = vertices.len();
    (0..count)
        .map(|_| {
            let w = sample_simplex(k, rng);
            let mut p = vec![0.0; d];
            for (wi, v) in w.iter().zip(vertices) {
                for j in 0..d {
                    p[j] += wi * v[j];
                }
            }
            p
        })
        .collect()
}

/// Chain statistics of one [`hit_and_run_with_stats`] invocation, used by
/// the sampled geometry backend to report acceptance counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalkStats {
    /// Total chain steps taken (`count · thin`).
    pub steps: u64,
    /// Steps that failed to move (degenerate direction or a numerically
    /// empty chord). Acceptance is `(steps − stuck) / steps`.
    pub stuck: u64,
}

/// Hit-and-run sampling inside `U ∩ ⋂ h⁺` starting from a strictly interior
/// point (e.g. the region's inner-sphere center).
///
/// Each step draws a random direction in the simplex hyperplane (a Gaussian
/// vector with its mean removed, so `Σ dir = 0` keeps the walk on
/// `Σ u = 1`), computes the feasible chord through the current point, and
/// jumps to a uniform point on it. One sample is emitted every `thin`
/// steps after `thin` burn-in steps. Hit-and-run mixes toward the uniform
/// distribution on the region, and unlike rejection it works in high
/// dimension — this is what the per-round *maximum regret ratio* metric of
/// the paper's Figures 7–8 uses.
///
/// # Panics
/// Panics if `d < 2`, `thin == 0`, or `start` has the wrong length.
pub fn hit_and_run<R: Rng + ?Sized>(
    d: usize,
    halfspaces: &[Halfspace],
    start: &[f64],
    count: usize,
    thin: usize,
    rng: &mut R,
) -> Vec<Vec<f64>> {
    hit_and_run_with_stats(d, halfspaces, start, count, thin, rng).0
}

/// [`hit_and_run`] plus the chain's [`WalkStats`] — same draws, same
/// samples, same counters; the stats are for callers (the sampled
/// [`crate::walk::SampleCloud`]) that aggregate their own acceptance
/// telemetry on top of the `sampling.hitrun_*` counters emitted here.
///
/// # Panics
/// Panics if `d < 2`, `thin == 0`, or `start` has the wrong length.
pub fn hit_and_run_with_stats<R: Rng + ?Sized>(
    d: usize,
    halfspaces: &[Halfspace],
    start: &[f64],
    count: usize,
    thin: usize,
    rng: &mut R,
) -> (Vec<Vec<f64>>, WalkStats) {
    assert!(d >= 2, "hit-and-run needs d >= 2");
    assert!(thin > 0, "thinning interval must be positive");
    assert_eq!(start.len(), d, "start point dimension mismatch");
    let mut x = start.to_vec();
    let mut out = Vec::with_capacity(count);
    let mut steps_until_emit = thin; // burn-in
    let mut stuck = 0u64;

    let mut step = |x: &mut Vec<f64>, rng: &mut R| {
        // Random direction in the Σ = 0 hyperplane.
        let mut dir: Vec<f64> = (0..d)
            .map(|_| {
                let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
            })
            .collect();
        let mean = dir.iter().sum::<f64>() / d as f64;
        dir.iter_mut().for_each(|v| *v -= mean);
        let norm = dir.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm < 1e-12 {
            stuck += 1;
            return; // degenerate draw; try again next step
        }
        dir.iter_mut().for_each(|v| *v /= norm);

        // Feasible chord [t_lo, t_hi]: x + t·dir must stay in the region.
        let mut t_lo = f64::NEG_INFINITY;
        let mut t_hi = f64::INFINITY;
        let mut clip = |num: f64, den: f64| {
            // Constraint num + t·den ≥ 0.
            if den.abs() < 1e-15 {
                return; // parallel: either always satisfied or hopeless;
                        // the interior start guarantees "satisfied".
            }
            let bound = -num / den;
            if den > 0.0 {
                t_lo = t_lo.max(bound);
            } else {
                t_hi = t_hi.min(bound);
            }
        };
        for i in 0..d {
            clip(x[i], dir[i]);
        }
        for h in halfspaces {
            clip(
                h.normal().iter().zip(&*x).map(|(n, xi)| n * xi).sum(),
                h.normal().iter().zip(&dir).map(|(n, di)| n * di).sum(),
            );
        }
        if !(t_lo.is_finite() && t_hi.is_finite()) || t_hi <= t_lo {
            stuck += 1;
            return; // numerically stuck on the boundary; keep the point
        }
        let t = rng.gen_range(t_lo..=t_hi);
        for i in 0..d {
            x[i] = (x[i] + t * dir[i]).max(0.0);
        }
        // Renormalize against drift off the simplex.
        let s: f64 = x.iter().sum();
        if s > 0.0 {
            x.iter_mut().for_each(|v| *v /= s);
        }
    };

    let mut steps = 0u64;
    while out.len() < count {
        step(&mut x, rng);
        steps += 1;
        steps_until_emit -= 1;
        if steps_until_emit == 0 {
            out.push(x.clone());
            steps_until_emit = thin;
        }
    }
    isrl_obs::add("sampling.hitrun_samples", out.len() as u64);
    isrl_obs::add("sampling.hitrun_stuck", stuck);
    (out, WalkStats { steps, stuck })
}

/// How many sampled vectors Lemma 5 prescribes for volume resolution `tau`
/// and confidence `1 − delta`: `N = O((d + ln(1/δ)) / τ²)`.
pub fn lemma5_sample_count(d: usize, tau: f64, delta: f64) -> usize {
    assert!(tau > 0.0 && delta > 0.0 && delta < 1.0);
    ((d as f64 + (1.0 / delta).ln()) / (tau * tau)).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn simplex_samples_lie_on_simplex() {
        let mut rng = StdRng::seed_from_u64(7);
        for d in [1usize, 2, 4, 20] {
            for _ in 0..50 {
                let u = sample_simplex(d, &mut rng);
                assert_eq!(u.len(), d);
                assert!((u.iter().sum::<f64>() - 1.0).abs() < 1e-12);
                assert!(u.iter().all(|&x| x >= 0.0));
            }
        }
    }

    #[test]
    fn simplex_sampling_is_roughly_uniform() {
        // In 2-d the first coordinate of a uniform simplex sample is U(0,1):
        // mean 0.5, and P(u0 < 0.25) = 0.25.
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_simplex(2, &mut rng)[0]).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        let frac = samples.iter().filter(|&&x| x < 0.25).count() as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn rejection_respects_halfspaces() {
        let mut rng = StdRng::seed_from_u64(3);
        // Keep only u with u0 ≥ u1.
        let h = Halfspace::new(vec![1.0, -1.0, 0.0]);
        let samples = sample_region_rejection(3, std::slice::from_ref(&h), 100, 10_000, &mut rng);
        assert!(!samples.is_empty());
        for u in &samples {
            assert!(u[0] >= u[1] - 1e-12);
        }
    }

    #[test]
    fn rejection_returns_empty_for_empty_region() {
        let mut rng = StdRng::seed_from_u64(5);
        // Contradictory half-spaces: u0 − u1 ≥ 0.5·Σu is impossible together
        // with u1 − u0 ≥ 0.5·Σu.
        let hs = vec![
            Halfspace::new(vec![0.5, -1.5]),
            Halfspace::new(vec![-1.5, 0.5]),
        ];
        let samples = sample_region_rejection(2, &hs, 10, 2_000, &mut rng);
        assert!(samples.is_empty());
    }

    #[test]
    fn vertex_mixture_stays_in_hull() {
        let mut rng = StdRng::seed_from_u64(13);
        let vertices = vec![
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ];
        for p in sample_vertex_mixture(&vertices, 200, &mut rng) {
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&x| x >= -1e-12));
        }
    }

    #[test]
    fn vertex_mixture_volume_monotonicity() {
        // The property Lemma 5 needs: a half of the triangle receives about
        // half of the mixture samples (Dirichlet(1) over 3 vertices is
        // uniform on the triangle, so this is exact here).
        let mut rng = StdRng::seed_from_u64(17);
        let vertices = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.5, 0.5]];
        let samples = sample_vertex_mixture(&vertices, 4_000, &mut rng);
        let left = samples.iter().filter(|p| p[0] >= 0.5).count() as f64;
        let frac = left / samples.len() as f64;
        assert!((frac - 0.5).abs() < 0.05, "frac {frac}");
    }

    #[test]
    fn hit_and_run_stays_in_region() {
        let mut rng = StdRng::seed_from_u64(23);
        let hs = vec![Halfspace::new(vec![1.0, -1.0, 0.0, 0.0])]; // u0 ≥ u1
        let start = vec![0.4, 0.2, 0.2, 0.2];
        let samples = hit_and_run(4, &hs, &start, 300, 3, &mut rng);
        assert_eq!(samples.len(), 300);
        for u in &samples {
            assert!((u.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(u.iter().all(|&x| x >= -1e-12));
            assert!(u[0] >= u[1] - 1e-9, "halfspace violated: {u:?}");
        }
    }

    #[test]
    fn hit_and_run_explores_the_region() {
        // The chain must move away from its start: compare the spread of
        // the first coordinate with zero.
        let mut rng = StdRng::seed_from_u64(29);
        let start = vec![1.0 / 3.0; 3];
        let samples = hit_and_run(3, &[], &start, 500, 2, &mut rng);
        let xs: Vec<f64> = samples.iter().map(|u| u[0]).collect();
        let spread = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - xs.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 0.5, "chain barely moved: spread {spread}");
    }

    #[test]
    fn hit_and_run_matches_rejection_distribution_roughly() {
        // Mean of u0 over the half-simplex {u0 ≥ u1} in 2-d is 0.75.
        let mut rng = StdRng::seed_from_u64(31);
        let hs = vec![Halfspace::new(vec![1.0, -1.0])];
        let samples = hit_and_run(2, &hs, &[0.7, 0.3], 4_000, 2, &mut rng);
        let mean: f64 = samples.iter().map(|u| u[0]).sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.75).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn lemma5_count_grows_with_dimension_and_shrinks_with_tau() {
        let base = lemma5_sample_count(4, 0.1, 0.05);
        assert!(lemma5_sample_count(20, 0.1, 0.05) > base);
        assert!(lemma5_sample_count(4, 0.2, 0.05) < base);
    }
}
