//! Randomized stress tests for vertex enumeration: many seeds, dimensions,
//! and cut counts, cross-checked against the LP view of the same region.

use isrl_geometry::{Halfspace, Polytope, Region};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_cut(d: usize, rng: &mut StdRng) -> Halfspace {
    loop {
        let a: Vec<f64> = (0..d).map(|_| rng.gen_range(0.01..1.0)).collect();
        let b: Vec<f64> = (0..d).map(|_| rng.gen_range(0.01..1.0)).collect();
        if let Some(h) = Halfspace::preferring(&a, &b) {
            return h;
        }
    }
}

#[test]
fn vertices_and_lp_agree_across_many_random_regions() {
    let mut tested = 0;
    for seed in 0..30u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = rng.gen_range(2..=5);
        let cuts = rng.gen_range(1..=7);
        let bary = vec![1.0 / d as f64; d];
        let mut region = Region::full(d);
        // Half the regions are kept non-empty (oriented toward the
        // barycenter); the rest are left to chance.
        let keep_alive = seed % 2 == 0;
        for _ in 0..cuts {
            let h = random_cut(d, &mut rng);
            let h = if keep_alive && !h.contains(&bary, 0.0) {
                h.flipped()
            } else {
                h
            };
            region.add(h);
        }
        let polytope = Polytope::from_region(&region);
        let lp_interior = region.has_interior();
        match (&polytope, lp_interior) {
            (Some(p), _) => {
                tested += 1;
                // Every vertex satisfies the region.
                for v in p.vertices() {
                    assert!(region.contains(v, 1e-6), "seed {seed}: vertex escapes");
                }
                // The centroid is feasible and inside the outer rectangle.
                let c = p.centroid();
                assert!(region.contains(&c, 1e-7), "seed {seed}: centroid escapes");
                if let Some(rect) = region.outer_rectangle() {
                    assert!(rect.contains(&c, 1e-6), "seed {seed}: centroid outside box");
                }
            }
            (None, true) => {
                panic!("seed {seed}: LP sees interior but no vertices were found");
            }
            (None, false) => {} // consistently empty
        }
    }
    assert!(
        tested >= 15,
        "stress test barely exercised anything: {tested}"
    );
}

#[test]
fn incremental_cuts_only_remove_satisfying_vertices() {
    // After adding a half-space, every new vertex set member satisfies it,
    // and every old vertex that satisfied all constraints strictly remains
    // representable (it is still in the region).
    for seed in 100..110u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = 4;
        let bary = vec![0.25; 4];
        let mut region = Region::full(d);
        for step in 0..5 {
            let h = {
                let h = random_cut(d, &mut rng);
                if h.contains(&bary, 0.0) {
                    h
                } else {
                    h.flipped()
                }
            };
            let before = Polytope::from_region(&region).expect("non-empty before cut");
            region.add(h.clone());
            let Some(after) = Polytope::from_region(&region) else {
                panic!("seed {seed} step {step}: barycenter-kept region emptied");
            };
            for v in after.vertices() {
                assert!(h.contains(v, 1e-6), "new vertex violates the new cut");
            }
            // Strictly-interior old vertices survive as region members.
            for v in before.vertices() {
                if h.eval(v) > 1e-6 {
                    assert!(
                        region.contains(v, 1e-6),
                        "seed {seed} step {step}: surviving vertex evicted"
                    );
                }
            }
        }
    }
}

#[test]
fn outer_sphere_radius_stays_in_the_diameter_envelope() {
    // The paper's iterative enclosing-sphere scheme (Lemma 3) converges to
    // a *local* optimum, so the radius need not shrink monotonically under
    // cuts — but it must always sit in the tight envelope
    // `diameter/2 ≤ radius ≤ diameter` of the vertex set, and the sphere
    // must enclose every vertex.
    for seed in 200..212u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = 3;
        let bary = vec![1.0 / 3.0; 3];
        let mut region = Region::full(d);
        for _ in 0..4 {
            let h = {
                let h = random_cut(d, &mut rng);
                if h.contains(&bary, 0.0) {
                    h
                } else {
                    h.flipped()
                }
            };
            region.add(h);
            let p = Polytope::from_region(&region).unwrap();
            let sphere = p.outer_sphere();
            let vs = p.vertices();
            let mut diameter = 0.0f64;
            for a in vs {
                for b in vs {
                    diameter = diameter.max(isrl_linalg::vector::dist(a, b));
                }
            }
            for v in vs {
                assert!(
                    sphere.contains(v, 1e-5),
                    "seed {seed}: vertex escapes sphere"
                );
            }
            assert!(
                sphere.radius() >= diameter / 2.0 - 1e-6,
                "seed {seed}: radius {} below diameter/2 {}",
                sphere.radius(),
                diameter / 2.0
            );
            assert!(
                sphere.radius() <= diameter + 1e-6,
                "seed {seed}: radius {} above diameter {diameter}",
                sphere.radius()
            );
        }
    }
}

#[test]
fn degenerate_duplicate_cuts_are_harmless() {
    let mut region = Region::full(3);
    let h = Halfspace::new(vec![1.0, -1.0, 0.0]);
    for _ in 0..10 {
        region.add(h.clone());
    }
    let p = Polytope::from_region(&region).expect("duplicates must not break enumeration");
    assert!(p.n_vertices() >= 3);
    for v in p.vertices() {
        assert!(region.contains(v, 1e-6));
    }
}

#[test]
fn near_parallel_cuts_stay_numerically_stable() {
    // Families of almost-identical hyperplanes are the classic vertex
    // enumeration stress; the dedup tolerance must absorb them.
    let mut region = Region::full(3);
    for k in 0..8 {
        let wiggle = 1e-7 * k as f64;
        region.add(Halfspace::new(vec![1.0 + wiggle, -1.0, wiggle]));
    }
    let p = Polytope::from_region(&region).expect("region is half the simplex");
    for v in p.vertices() {
        assert!(region.contains(v, 1e-5));
    }
    // The sliver between the wiggled planes must not blow up vertex counts.
    assert!(p.n_vertices() <= 12, "vertex explosion: {}", p.n_vertices());
}
