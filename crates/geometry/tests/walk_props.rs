//! Property tests for the hit-and-run sample cloud backing the sampled
//! utility-region geometry: every emitted sample must lie in the region it
//! was drawn from (all half-spaces, on the simplex), the chain's interior
//! start point must stay strictly feasible as cuts arrive, and a fixed seed
//! must reproduce the cloud bit-for-bit. These are the invariants the EA
//! sampled backend leans on — a single out-of-region sample would poison
//! the state encoding and the terminal check alike.

use isrl_geometry::sampling::hit_and_run_with_stats;
use isrl_geometry::{GeometryBackend, Halfspace, Region, RegionGeometry, SampleCloud, WalkConfig};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Half-space tolerance for membership checks: the walk clamps and
/// renormalizes onto the simplex, so allow strict-LP-sized slack.
const TOL: f64 = 1e-9;

/// A seeded cut sequence through random preference pairs, each oriented to
/// keep the barycenter feasible so the region never collapses.
fn feasible_cuts(d: usize, count: usize, seed: u64) -> Vec<Halfspace> {
    let mut rng = StdRng::seed_from_u64(seed);
    let bary = vec![1.0 / d as f64; d];
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let a: Vec<f64> = (0..d).map(|_| rng.gen_range(0.01..1.0)).collect();
        let b: Vec<f64> = (0..d).map(|_| rng.gen_range(0.01..1.0)).collect();
        if let Some(h) = Halfspace::preferring(&a, &b) {
            out.push(if h.contains(&bary, 0.0) {
                h
            } else {
                h.flipped()
            });
        }
    }
    out
}

/// Asserts `p` is a simplex point inside every half-space of `region`.
fn assert_in_region(p: &[f64], region: &Region) -> Result<(), TestCaseError> {
    let sum: f64 = p.iter().sum();
    prop_assert!((sum - 1.0).abs() < 1e-6, "off the simplex: sum {}", sum);
    for x in p {
        prop_assert!(*x >= -TOL, "negative coordinate {}", x);
    }
    for h in region.halfspaces() {
        prop_assert!(h.contains(p, TOL), "sample violates a half-space");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Raw chain: every emitted sample satisfies all half-spaces and stays
    // on the simplex, whatever the cut sequence and chain parameters.
    #[test]
    fn chain_samples_satisfy_every_halfspace(
        seed in 0u64..1 << 20,
        d in 2usize..=10,
        cuts in 0usize..=8,
        count in 1usize..=40,
        thin in 1usize..=6,
    ) {
        let mut region = Region::full(d);
        for h in feasible_cuts(d, cuts, seed) {
            region.add(h);
        }
        let start = vec![1.0 / d as f64; d];
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37);
        let (samples, stats) =
            hit_and_run_with_stats(d, region.halfspaces(), &start, count, thin, &mut rng);
        prop_assert_eq!(samples.len(), count);
        prop_assert!(stats.steps >= (count * thin) as u64, "undercounted steps");
        prop_assert!(stats.stuck <= stats.steps);
        for p in &samples {
            assert_in_region(p, &region)?;
        }
    }

    // Incrementally maintained cloud: after every cut, all surviving and
    // resampled points are inside the *current* region, and the chain's
    // interior start point is strictly feasible.
    #[test]
    fn cloud_stays_in_region_across_random_cut_sequences(
        seed in 0u64..1 << 20,
        d in 2usize..=10,
        cuts in 1usize..=8,
    ) {
        let cfg = WalkConfig { n_points: 32, thin: 4, rejection_dim_max: 8 };
        let mut geom = RegionGeometry::sampled(d, cfg, seed);
        prop_assert!(geom.is_sampled());
        for h in feasible_cuts(d, cuts, seed ^ 0x51ce) {
            geom.add(h);
            let cloud = geom.sample_cloud().expect("barycenter kept feasible");
            prop_assert_eq!(cloud.len(), cfg.n_points, "cloud must stay full-size");
            for p in cloud.points() {
                assert_in_region(p, geom.region())?;
            }
            // The warm-LP interior point the chain restarts from must be
            // strictly inside (positive slack on every half-space).
            for h in geom.region().halfspaces() {
                prop_assert!(
                    h.eval(cloud.interior()) > 0.0,
                    "interior point lost strict feasibility"
                );
            }
        }
    }

    // Determinism: the same seed and cut sequence reproduce the cloud
    // bit-for-bit; a different seed produces a different cloud.
    #[test]
    fn fixed_seed_means_identical_clouds(
        seed in 0u64..1 << 20,
        d in 2usize..=10,
        cuts in 0usize..=6,
    ) {
        let cfg = WalkConfig { n_points: 24, thin: 4, rejection_dim_max: 8 };
        let build = |s: u64| {
            let mut geom = RegionGeometry::sampled(d, cfg, s);
            for h in feasible_cuts(d, cuts, seed ^ 0xf1d0) {
                geom.add(h);
            }
            geom.sample_cloud().expect("barycenter kept feasible").points().to_vec()
        };
        let a = build(seed);
        let b = build(seed);
        prop_assert_eq!(&a, &b, "same seed must replay identically");
        let c = build(seed ^ 1);
        prop_assert!(a != c, "different seeds must decorrelate the chains");
    }
}

#[test]
fn raw_cloud_apply_cut_preserves_membership() {
    // Direct SampleCloud driving (no RegionGeometry): apply_cut must keep
    // every point in the shrunken region and report the resample count.
    let d = 6;
    let mut region = Region::full(d);
    let cfg = WalkConfig::default();
    let bary = vec![1.0 / d as f64; d];
    let mut cloud = SampleCloud::new(&region, bary.clone(), cfg, 99);
    for h in feasible_cuts(d, 5, 4242) {
        region.add(h.clone());
        let resampled = cloud.apply_cut(&region, &h, bary.clone());
        assert!(resampled <= cfg.n_points);
        assert_eq!(cloud.len(), cfg.n_points);
        for p in cloud.points() {
            assert!(region.halfspaces().iter().all(|hs| hs.contains(p, TOL)));
        }
    }
}

#[test]
fn auto_backend_matches_dimension_rule() {
    // The Auto resolution rule the EA config relies on: exact through
    // d = 7, sampled above.
    assert!(!GeometryBackend::Auto.resolves_to_sampled(7));
    assert!(GeometryBackend::Auto.resolves_to_sampled(8));
    assert!(GeometryBackend::Sampled.resolves_to_sampled(2));
    assert!(!GeometryBackend::Exact.resolves_to_sampled(50));
}
