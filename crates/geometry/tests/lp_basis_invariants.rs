//! Invariants of the carried [`Basis`] under the structural edits the
//! interactive algorithms actually perform on their LPs: deleting the row
//! the optimum leans on, appending a redundant row, and degenerate ties
//! from duplicated rows (the shape produced when the sorted-window vertex
//! dedup keeps two numerically identical vertices and both emit the same
//! half-space).

use isrl_geometry::lp::{solve, solve_warm, LpBuilder, LpOutcome, Rel};
use isrl_geometry::{Halfspace, Region, RegionLpCache};

fn objective(o: &LpOutcome) -> f64 {
    match o {
        LpOutcome::Optimal(s) => s.objective,
        other => panic!("expected an optimum, got {other:?}"),
    }
}

/// maximize x0 over the 2-simplex with a cap `x0 ≤ 0.3`.
fn capped_problem() -> isrl_geometry::lp::Problem {
    LpBuilder::maximize(&[1.0, 0.0])
        .constraint(&[1.0, 1.0], Rel::Eq, 1.0)
        .constraint(&[1.0, 0.0], Rel::Le, 0.3)
        .build()
}

#[test]
fn repair_after_deleting_the_binding_constraint() {
    // Cold-solve with the cap binding (optimum 0.3), then delete the cap.
    // The carried basis names a slack of a row that no longer exists; the
    // warm solver must repair (or rebuild) and land on the new optimum 1.0.
    let p = capped_problem();
    let (out, basis) = solve(&p).unwrap();
    assert!((objective(&out) - 0.3).abs() < 1e-9);
    let basis = basis.expect("optimal solve yields a basis");

    let mut shrunk = p.clone();
    shrunk.constraints.remove(1);
    let (cold, _) = solve(&shrunk).unwrap();
    let (warm, warm_basis) = solve_warm(&shrunk, &basis).unwrap();
    assert!((objective(&cold) - 1.0).abs() < 1e-9);
    assert!((objective(&warm) - objective(&cold)).abs() < 1e-9);
    assert!(warm_basis.is_some(), "warm optimum must yield a basis too");
}

#[test]
fn repair_after_adding_a_redundant_constraint() {
    // Appending a row the optimum already satisfies strictly must keep the
    // carried basis usable — the repaired solve lands on the same vertex.
    let p = capped_problem();
    let (out, basis) = solve(&p).unwrap();
    let basis = basis.unwrap();

    let mut grown = p.clone();
    grown.constraints.push(isrl_geometry::lp::Constraint {
        coeffs: vec![1.0, 1.0],
        rel: Rel::Le,
        rhs: 5.0, // slack everywhere on the simplex
    });
    let (warm, warm_basis) = solve_warm(&grown, &basis).unwrap();
    assert!((objective(&warm) - objective(&out)).abs() < 1e-9);
    let warm_basis = warm_basis.unwrap();
    assert_eq!(
        warm_basis.len(),
        grown.constraints.len(),
        "one basic column per row after repair"
    );
    assert!(!warm_basis.is_empty());
}

#[test]
fn repair_after_degenerate_duplicate_rows() {
    // Duplicating the binding row creates a degenerate tie: two rows share
    // one slack identity in the carried basis, so the crash step must
    // complete the second row with a different column. Status and value
    // must match the cold solve exactly.
    let p = capped_problem();
    let (_, basis) = solve(&p).unwrap();
    let basis = basis.unwrap();

    let mut doubled = p.clone();
    let dup = doubled.constraints[1].clone();
    doubled.constraints.push(dup);
    let (cold, _) = solve(&doubled).unwrap();
    let (warm, _) = solve_warm(&doubled, &basis).unwrap();
    assert!((objective(&warm) - objective(&cold)).abs() < 1e-9);
    assert!((objective(&warm) - 0.3).abs() < 1e-9);
}

type Edit = Box<dyn Fn(&mut isrl_geometry::lp::Problem)>;

#[test]
fn chained_edits_keep_the_basis_usable() {
    // Delete, re-add, duplicate, then tighten — carrying whatever basis
    // the previous solve produced. Every link must match its cold twin.
    let mut p = capped_problem();
    let (_, basis) = solve(&p).unwrap();
    let mut carried = basis.unwrap();
    let edits: Vec<Edit> = vec![
        Box::new(|q| {
            q.constraints.remove(1);
        }),
        Box::new(|q| {
            q.constraints.push(isrl_geometry::lp::Constraint {
                coeffs: vec![1.0, 0.0],
                rel: Rel::Le,
                rhs: 0.6,
            })
        }),
        Box::new(|q| {
            let dup = q.constraints[1].clone();
            q.constraints.push(dup);
        }),
        Box::new(|q| q.constraints[1].rhs = 0.2),
    ];
    for edit in edits {
        edit(&mut p);
        let (cold, _) = solve(&p).unwrap();
        let (warm, warm_basis) = solve_warm(&p, &carried).unwrap();
        assert!((objective(&warm) - objective(&cold)).abs() < 1e-9);
        carried = warm_basis.expect("optimal warm solve yields a basis");
    }
}

#[test]
fn duplicate_halfspaces_in_a_region_stay_consistent() {
    // The region-level shape of the degenerate-tie case: the same cut
    // added twice (as the sorted-window vertex dedup can produce). Warm
    // summaries through the cache must match cold ones on the doubled
    // region.
    let mut region = Region::full(3);
    let mut cache = RegionLpCache::new();
    let h = Halfspace::new(vec![1.0, -1.0, 0.2]);
    region.add(h.clone());
    let warm1 = region.inner_sphere_with(&mut cache).unwrap();
    region.add(h); // exact duplicate
    let warm2 = region.inner_sphere_with(&mut cache).unwrap();
    let cold2 = region.inner_sphere().unwrap();
    assert!((warm2.radius() - cold2.radius()).abs() < 1e-9);
    assert!((warm2.radius() - warm1.radius()).abs() < 1e-9);
    let warm_rect = region.outer_rectangle_with(&mut cache).unwrap();
    let cold_rect = region.outer_rectangle().unwrap();
    for (a, b) in warm_rect.min().iter().zip(cold_rect.min()) {
        assert!((a - b).abs() < 1e-9);
    }
    for (a, b) in warm_rect.max().iter().zip(cold_rect.max()) {
        assert!((a - b).abs() < 1e-9);
    }
    assert!(cache.is_primed());
}
