//! Differential harness for warm-started LP solving.
//!
//! Every property here pits [`solve_warm`] against the cold two-phase
//! [`solve`] on the same problem and demands agreement: statuses match
//! exactly, optimal objectives agree within `1e-9` (relative), and an
//! [`LpOutcome::IterationCapped`] incumbent — exempt from objective
//! equality by its contract — must still be feasible. Problems are drawn
//! from families covering all solver verdicts (feasible/bounded,
//! force-infeasible, likely-unbounded, mixed), and perturbation chains
//! replay the interactive algorithms' actual access pattern: one
//! constraint appended, deleted, re-weighted, or duplicated per step with
//! the basis carried across the edit.

use isrl_geometry::lp::{solve, solve_warm, Basis, Constraint, LpBuilder, LpOutcome, Problem, Rel};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn status(o: &LpOutcome) -> &'static str {
    match o {
        LpOutcome::Optimal(_) => "optimal",
        LpOutcome::Infeasible => "infeasible",
        LpOutcome::Unbounded => "unbounded",
        LpOutcome::IterationCapped(_) => "capped",
    }
}

/// `x` satisfies every constraint of `p` (and sign restrictions) to a
/// scale-aware tolerance.
fn is_feasible(p: &Problem, x: &[f64]) -> bool {
    for (j, &v) in x.iter().enumerate() {
        if !p.free[j] && v < -1e-6 {
            return false;
        }
    }
    p.constraints.iter().all(|c| {
        let val: f64 = c.coeffs.iter().zip(x).map(|(a, b)| a * b).sum();
        let scale = c
            .coeffs
            .iter()
            .fold(c.rhs.abs().max(1.0), |m, a| m.max(a.abs()));
        match c.rel {
            Rel::Le => val <= c.rhs + 1e-6 * scale,
            Rel::Ge => val >= c.rhs - 1e-6 * scale,
            Rel::Eq => (val - c.rhs).abs() <= 1e-6 * scale,
        }
    })
}

/// Solves `p` cold and warm (from `basis`) and checks the differential
/// contract. Returns the cold basis so chains can refresh their carry.
fn check_agreement(p: &Problem, basis: &Basis) -> Result<Option<Basis>, TestCaseError> {
    let (cold, cold_basis) = solve(p).map_err(|e| TestCaseError::fail(format!("cold: {e}")))?;
    let (warm, _) = solve_warm(p, basis).map_err(|e| TestCaseError::fail(format!("warm: {e}")))?;
    prop_assert_eq!(status(&cold), status(&warm), "status divergence on {:?}", p);
    match (&cold, &warm) {
        (LpOutcome::Optimal(c), LpOutcome::Optimal(w)) => {
            let tol = 1e-9 * c.objective.abs().max(1.0);
            prop_assert!(
                (c.objective - w.objective).abs() <= tol,
                "objective divergence: cold {} vs warm {} on {:?}",
                c.objective,
                w.objective,
                p
            );
            prop_assert!(is_feasible(p, &w.x), "warm optimum infeasible: {:?}", w.x);
        }
        (LpOutcome::IterationCapped(c), LpOutcome::IterationCapped(w)) => {
            // Capped incumbents are unproven; only feasibility is promised.
            prop_assert!(is_feasible(p, &c.x), "cold incumbent infeasible");
            prop_assert!(is_feasible(p, &w.x), "warm incumbent infeasible");
        }
        _ => {}
    }
    Ok(cold_basis)
}

/// Feasible and bounded: maximize over the simplex cut by half-spaces
/// oriented to keep a known witness inside.
fn feasible_simplex(rng: &mut StdRng, d: usize) -> Problem {
    let mut witness: Vec<f64> = (0..d).map(|_| rng.gen_range(0.05..1.0)).collect();
    let s: f64 = witness.iter().sum();
    witness.iter_mut().for_each(|w| *w /= s);
    let c: Vec<f64> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut b = LpBuilder::maximize(&c).constraint(&vec![1.0; d], Rel::Eq, 1.0);
    for _ in 0..rng.gen_range(0..8) {
        let mut row: Vec<f64> = (0..d).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let val: f64 = row.iter().zip(&witness).map(|(r, w)| r * w).sum();
        if val < 0.0 {
            row.iter_mut().for_each(|r| *r = -*r);
        }
        b = b.constraint(&row, Rel::Ge, 0.0);
    }
    b.build()
}

/// Simplex plus unoriented half-spaces with shifted right-hand sides —
/// feasible or infeasible depending on the draw.
fn mixed_halfspaces(rng: &mut StdRng, d: usize) -> Problem {
    let c: Vec<f64> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut b = LpBuilder::maximize(&c).constraint(&vec![1.0; d], Rel::Eq, 1.0);
    for _ in 0..rng.gen_range(1..7) {
        let row: Vec<f64> = (0..d).map(|_| rng.gen_range(-1.5..1.5)).collect();
        b = b.constraint(&row, Rel::Ge, rng.gen_range(-0.3..0.3));
    }
    b.build()
}

/// Certifiably infeasible: the simplex equality contradicts a `sum ≥ 2`
/// row, buried among random noise rows.
fn forced_infeasible(rng: &mut StdRng, d: usize) -> Problem {
    let c: Vec<f64> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut b = LpBuilder::maximize(&c).constraint(&vec![1.0; d], Rel::Eq, 1.0);
    for _ in 0..rng.gen_range(0..4) {
        let row: Vec<f64> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
        b = b.constraint(&row, Rel::Ge, rng.gen_range(-0.5..0.0));
    }
    b.constraint(&vec![1.0; d], Rel::Ge, 2.0).build()
}

/// No simplex cap and a positive objective direction — frequently
/// unbounded, occasionally bounded or infeasible by the extra rows.
fn loose_cone(rng: &mut StdRng, d: usize) -> Problem {
    let mut c: Vec<f64> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
    c[0] = c[0].abs().max(0.1); // at least one improving ray candidate
    let mut b = LpBuilder::maximize(&c);
    for _ in 0..rng.gen_range(0..4) {
        let row: Vec<f64> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let rel = if rng.gen_bool(0.5) { Rel::Ge } else { Rel::Le };
        b = b.constraint(&row, rel, rng.gen_range(-1.0..1.0));
    }
    if rng.gen_bool(0.3) {
        b = b.free_var(rng.gen_range(0..d));
    }
    b.build()
}

fn random_problem(rng: &mut StdRng) -> Problem {
    let d = rng.gen_range(2..=5);
    match rng.gen_range(0..4) {
        0 => feasible_simplex(rng, d),
        1 => mixed_halfspaces(rng, d),
        2 => forced_infeasible(rng, d),
        _ => loose_cone(rng, d),
    }
}

/// One in-place edit of the kind the interactive loop performs.
fn perturb(rng: &mut StdRng, p: &mut Problem) {
    let m = p.constraints.len();
    match rng.gen_range(0..4) {
        0 if m > 1 => {
            let i = rng.gen_range(0..m);
            p.constraints.remove(i);
        }
        1 if m > 0 => {
            let i = rng.gen_range(0..m);
            p.constraints[i].rhs += rng.gen_range(-0.1..0.1);
        }
        2 if m > 0 => {
            let i = rng.gen_range(0..m);
            let dup = p.constraints[i].clone();
            p.constraints.push(dup);
        }
        _ => p.constraints.push(Constraint {
            coeffs: (0..p.n_vars).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            rel: Rel::Ge,
            rhs: rng.gen_range(-0.2..0.2),
        }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Re-solving the very problem a basis came from must reproduce the
    // cold verdict bit-for-status and objective-for-objective.
    #[test]
    fn warm_resolve_of_same_problem_matches_cold(seed in 0u64..1 << 32) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = random_problem(&mut rng);
        let (_, basis) = solve(&p).expect("well-shaped");
        if let Some(b) = basis {
            check_agreement(&p, &b)?;
        }
    }

    // A basis from an unrelated problem (possibly different dimension)
    // must never change the verdict — at worst it costs a cold fallback.
    #[test]
    fn warm_from_foreign_basis_is_safe(seed in 0u64..1 << 32) {
        let mut rng = StdRng::seed_from_u64(seed);
        let donor = random_problem(&mut rng);
        let target = random_problem(&mut rng);
        let (_, basis) = solve(&donor).expect("well-shaped");
        if let Some(b) = basis {
            check_agreement(&target, &b)?;
        }
    }

    // One-constraint perturbation chains: the basis is carried across
    // appends, deletions, rhs shifts, and duplications, and the warm
    // verdict must track the cold one at every link.
    #[test]
    fn perturbation_chains_stay_in_agreement(
        seed in 0u64..1 << 32,
        steps in 1usize..8,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
        let d = rng.gen_range(2..=5);
        let mut p = feasible_simplex(&mut rng, d);
        let (_, basis) = solve(&p).expect("well-shaped");
        let mut carried = basis.expect("feasible family always yields a basis");
        for _ in 0..steps {
            perturb(&mut rng, &mut p);
            if let Some(fresh) = check_agreement(&p, &carried)? {
                carried = fresh; // infeasible/unbounded links keep the stale one
            }
        }
    }

    // Chains that only append rows (the AA round loop's exact pattern):
    // the carried basis is the *warm* result's, not the cold refresh, so
    // this also exercises basis extraction on the warm path.
    #[test]
    fn append_only_chains_reuse_warm_bases(seed in 0u64..1 << 32) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x51ed_270b);
        let d = rng.gen_range(2..=6);
        let mut p = feasible_simplex(&mut rng, d);
        let (_, basis) = solve(&p).expect("well-shaped");
        let mut carried = basis.expect("feasible family always yields a basis");
        for _ in 0..rng.gen_range(1..10) {
            perturb_append(&mut rng, &mut p);
            let (cold, _) = solve(&p).expect("well-shaped");
            let (warm, warm_basis) = solve_warm(&p, &carried).expect("well-shaped");
            prop_assert_eq!(status(&cold), status(&warm));
            if let (LpOutcome::Optimal(c), LpOutcome::Optimal(w)) = (&cold, &warm) {
                let tol = 1e-9 * c.objective.abs().max(1.0);
                prop_assert!(
                    (c.objective - w.objective).abs() <= tol,
                    "cold {} vs warm {}", c.objective, w.objective
                );
            }
            if let Some(b) = warm_basis {
                carried = b;
            }
        }
    }
}

/// Appends one random half-space row (append-only chain variant).
fn perturb_append(rng: &mut StdRng, p: &mut Problem) {
    p.constraints.push(Constraint {
        coeffs: (0..p.n_vars).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        rel: Rel::Ge,
        rhs: rng.gen_range(-0.1..0.1),
    });
}
