//! Deterministic fuzz for the LP solver on the exact problem family the
//! interactive algorithms generate: simplex-constrained LPs with
//! preference half-spaces of wildly varying scale. The solver must never
//! return an infeasible "optimal" point, never claim infeasibility when a
//! known witness exists, and never exceed its iteration guard.

use isrl_geometry::lp::{LpBuilder, LpOutcome, Rel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds the AA-style LP: maximize `c·u` over the simplex intersected with
/// `k` preference half-spaces oriented to keep `witness` feasible.
fn solve_case(
    seed: u64,
    d: usize,
    k: usize,
    scale: f64,
) -> (Vec<Vec<f64>>, Vec<f64>, Vec<f64>, LpOutcome) {
    let mut rng = StdRng::seed_from_u64(seed);
    // A known-feasible witness on the simplex.
    let mut witness: Vec<f64> = (0..d).map(|_| rng.gen_range(0.05..1.0)).collect();
    let s: f64 = witness.iter().sum();
    witness.iter_mut().for_each(|w| *w /= s);

    let c: Vec<f64> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut b = LpBuilder::maximize(&c).constraint(&vec![1.0; d], Rel::Eq, 1.0);
    let mut rows = Vec::new();
    for _ in 0..k {
        let mut row: Vec<f64> = (0..d).map(|_| rng.gen_range(-scale..scale)).collect();
        // Orient so the witness satisfies it.
        let val: f64 = row.iter().zip(&witness).map(|(r, w)| r * w).sum();
        if val < 0.0 {
            row.iter_mut().for_each(|r| *r = -*r);
        }
        b = b.constraint(&row, Rel::Ge, 0.0);
        rows.push(row);
    }
    let outcome = b.solve().expect("no iteration blow-up");
    (rows, witness, c, outcome)
}

#[test]
fn feasible_cases_are_solved_feasibly() {
    for seed in 0..200u64 {
        let d = 2 + (seed % 7) as usize; // 2..=8
        let k = (seed % 12) as usize;
        let scale = [0.1, 1.0, 100.0][(seed % 3) as usize];
        let (rows, witness, _, outcome) = solve_case(seed, d, k, scale);
        match outcome {
            LpOutcome::Optimal(sol) => {
                // On the simplex…
                let sum: f64 = sol.x.iter().sum();
                assert!((sum - 1.0).abs() < 1e-6, "seed {seed}: sum {sum}");
                assert!(
                    sol.x.iter().all(|&v| v >= -1e-7),
                    "seed {seed}: negative coordinate {:?}",
                    sol.x
                );
                // …and inside every half-space.
                for (i, row) in rows.iter().enumerate() {
                    let val: f64 = row.iter().zip(&sol.x).map(|(r, x)| r * x).sum();
                    let norm: f64 = row.iter().map(|r| r * r).sum::<f64>().sqrt();
                    assert!(
                        val >= -1e-6 * norm.max(1.0),
                        "seed {seed}: constraint {i} violated by {val}"
                    );
                }
            }
            other => panic!("seed {seed}: witness {witness:?} exists but solver said {other:?}"),
        }
    }
}

#[test]
fn optimum_beats_the_witness() {
    // The reported optimum must be at least as good as any feasible point
    // we can exhibit — here, the construction's witness.
    for seed in 300..380u64 {
        let d = 3 + (seed % 4) as usize;
        let k = (seed % 8) as usize;
        let (_, witness, c, outcome) = solve_case(seed, d, k, 5.0);
        let witness_val: f64 = c.iter().zip(&witness).map(|(ci, wi)| ci * wi).sum();
        match outcome {
            LpOutcome::Optimal(sol) => {
                assert!(
                    sol.objective >= witness_val - 1e-7,
                    "seed {seed}: optimum {} below witness {witness_val}",
                    sol.objective
                );
            }
            other => panic!("seed {seed}: feasible case reported {other:?}"),
        }
    }
}
