//! Cross-validation of the simplex LP solver against brute-force vertex
//! enumeration: for a bounded feasible LP, the optimum lies at a vertex of
//! the feasible polyhedron, so enumerating all constraint-intersection
//! vertices and taking the best must match the solver's objective.

use isrl_geometry::lp::{LpBuilder, LpOutcome, Rel};
use proptest::prelude::*;

/// Brute-force optimum of `max c·x` over `{x ≥ 0, A x ≤ b}` in 2-d:
/// enumerate all pairwise constraint intersections (including the axes),
/// keep feasible ones, take the best objective. Returns `None` when no
/// feasible vertex exists.
fn brute_force_2d(c: &[f64; 2], rows: &[([f64; 2], f64)]) -> Option<f64> {
    // Constraint set: a·x ≤ b rows plus x ≥ 0 (as −x ≤ 0).
    let mut all: Vec<([f64; 2], f64)> = rows.to_vec();
    all.push(([-1.0, 0.0], 0.0));
    all.push(([0.0, -1.0], 0.0));

    let feasible = |x: &[f64; 2]| {
        all.iter()
            .all(|(a, b)| a[0] * x[0] + a[1] * x[1] <= b + 1e-7)
    };

    let mut best: Option<f64> = None;
    for i in 0..all.len() {
        for j in (i + 1)..all.len() {
            let (a1, b1) = all[i];
            let (a2, b2) = all[j];
            let det = a1[0] * a2[1] - a1[1] * a2[0];
            if det.abs() < 1e-10 {
                continue;
            }
            let x = [
                (b1 * a2[1] - b2 * a1[1]) / det,
                (a1[0] * b2 - a2[0] * b1) / det,
            ];
            if feasible(&x) {
                let val = c[0] * x[0] + c[1] * x[1];
                best = Some(best.map_or(val, |b: f64| b.max(val)));
            }
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn solver_matches_bruteforce_on_random_bounded_2d_lps(
        c0 in -2.0f64..2.0,
        c1 in -2.0f64..2.0,
        rows in prop::collection::vec(
            ((0.1f64..2.0, 0.1f64..2.0), 0.5f64..4.0),
            1..6,
        ),
    ) {
        // Positive row coefficients + x ≥ 0 keep the region bounded in the
        // positive-objective directions... except when both objective
        // coefficients are negative (optimum at origin) — also covered.
        let rows: Vec<([f64; 2], f64)> =
            rows.into_iter().map(|((a, b), r)| ([a, b], r)).collect();
        let mut builder = LpBuilder::maximize(&[c0, c1]);
        for (a, b) in &rows {
            builder = builder.constraint(a, Rel::Le, *b);
        }
        let outcome = builder.solve().unwrap();
        let brute = brute_force_2d(&[c0, c1], &rows).expect("origin is always feasible");
        match outcome {
            LpOutcome::Optimal(s) => {
                prop_assert!(
                    (s.objective - brute).abs() < 1e-6,
                    "solver {} vs brute force {brute}",
                    s.objective
                );
            }
            other => prop_assert!(false, "expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn adding_constraints_never_improves_the_optimum(
        c0 in 0.1f64..2.0,
        c1 in 0.1f64..2.0,
        a in 0.2f64..1.5,
        b in 0.2f64..1.5,
        extra in 0.2f64..1.5,
    ) {
        let base = LpBuilder::maximize(&[c0, c1])
            .constraint(&[a, b], Rel::Le, 2.0)
            .solve()
            .unwrap()
            .optimal()
            .unwrap()
            .objective;
        let tightened = LpBuilder::maximize(&[c0, c1])
            .constraint(&[a, b], Rel::Le, 2.0)
            .constraint(&[extra, extra], Rel::Le, 1.5)
            .solve()
            .unwrap()
            .optimal()
            .unwrap()
            .objective;
        prop_assert!(tightened <= base + 1e-7, "tightening improved: {base} -> {tightened}");
    }

    #[test]
    fn feasible_solutions_satisfy_all_constraints(
        c0 in -2.0f64..2.0,
        c1 in -2.0f64..2.0,
        c2 in -2.0f64..2.0,
        cut in 0.1f64..0.9,
    ) {
        // The utility-simplex LP family used throughout the workspace.
        let out = LpBuilder::maximize(&[c0, c1, c2])
            .constraint(&[1.0, 1.0, 1.0], Rel::Eq, 1.0)
            .constraint(&[1.0, 0.0, 0.0], Rel::Le, cut)
            .solve()
            .unwrap();
        let s = out.optimal().expect("simplex slice is feasible and bounded");
        prop_assert!((s.x.iter().sum::<f64>() - 1.0).abs() < 1e-7);
        prop_assert!(s.x[0] <= cut + 1e-7);
        prop_assert!(s.x.iter().all(|&v| v >= -1e-9));
    }
}
