//! Property tests for incremental vertex enumeration: on random cut
//! sequences, [`Polytope::update`] must land on the same vertex set as a
//! from-scratch [`Polytope::from_region`] after every single cut.

use isrl_geometry::{Halfspace, Polytope, Region};
use isrl_linalg::vector;
use proptest::prelude::*;

/// Order-independent vertex-set equality within the dedup tolerance.
fn same_vertex_set(a: &Polytope, b: &Polytope) -> bool {
    a.n_vertices() == b.n_vertices()
        && a.vertices()
            .iter()
            .all(|v| b.vertices().iter().any(|w| vector::dist(v, w) < 1e-6))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn update_agrees_with_from_scratch_on_random_cut_sequences(
        d in 2usize..=5,
        raw in prop::collection::vec(
            (
                prop::collection::vec(0.01f64..1.0, 5),
                prop::collection::vec(0.01f64..1.0, 5),
            ),
            1..10,
        )
    ) {
        // Cuts are preference hyperplanes between random points, oriented
        // toward the barycenter so the region never empties out and both
        // enumeration paths stay comparable at every step.
        let bary = vec![1.0 / d as f64; d];
        let mut region = Region::full(d);
        let mut incremental = Polytope::from_region(&region).expect("full simplex");
        for (step, (a, b)) in raw.iter().enumerate() {
            let Some(h) = Halfspace::preferring(&a[..d], &b[..d]) else { continue };
            let h = if h.contains(&bary, 0.0) { h } else { h.flipped() };
            let updated = incremental.update(&region, &h);
            region.add(h);
            let scratch = Polytope::from_region(&region);
            match (updated, scratch) {
                (Some(u), Some(s)) => {
                    prop_assert!(
                        same_vertex_set(&u, &s),
                        "d={} step={}: incremental {:?} != scratch {:?}",
                        d, step, u.vertices(), s.vertices()
                    );
                    incremental = u;
                }
                (u, s) => {
                    prop_assert!(
                        false,
                        "d={} step={}: one path collapsed (incremental {:?}, scratch {:?}) \
                         though the barycenter stays feasible",
                        d, step, u.map(|p| p.n_vertices()), s.map(|p| p.n_vertices())
                    );
                }
            }
        }
    }

    #[test]
    fn update_never_produces_infeasible_vertices(
        d in 2usize..=5,
        raw in prop::collection::vec(
            (
                prop::collection::vec(0.01f64..1.0, 5),
                prop::collection::vec(0.01f64..1.0, 5),
            ),
            1..10,
        )
    ) {
        // Without orientation the region may genuinely empty out; whatever
        // the incremental path returns must stay inside the region.
        let mut region = Region::full(d);
        let mut polytope = Polytope::from_region(&region).expect("full simplex");
        for (a, b) in &raw {
            let Some(h) = Halfspace::preferring(&a[..d], &b[..d]) else { continue };
            let updated = polytope.update(&region, &h);
            region.add(h);
            match updated {
                None => break, // collapsed: nothing further to check
                Some(p) => {
                    for v in p.vertices() {
                        prop_assert!(
                            region.contains(v, 1e-6),
                            "vertex {:?} escapes the region at d={}", v, d
                        );
                        let sum: f64 = v.iter().sum();
                        prop_assert!((sum - 1.0).abs() < 1e-6, "off-simplex vertex {:?}", v);
                    }
                    polytope = p;
                }
            }
        }
    }
}
