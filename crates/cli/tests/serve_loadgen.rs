//! Loadgen determinism + telemetry: two runs with the same seed must
//! replay identical per-user question counts (session isolation makes
//! them a pure function of the config, independent of concurrency and
//! batching), and the emitted trace must pass `trace-validate` with one
//! `serve_session` event per user.

use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn isrl(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_isrl"))
        .args(args)
        .output()
        .expect("failed to spawn isrl")
}

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join(format!("isrl_serve_loadgen_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_str().unwrap().to_string()
}

struct KillOnDrop(Child);
impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
    }
}

fn per_user_rounds(stdout: &str) -> String {
    stdout
        .lines()
        .find(|l| l.starts_with("per-user rounds:"))
        .unwrap_or_else(|| panic!("no per-user rounds line:\n{stdout}"))
        .to_string()
}

#[test]
fn loadgen_is_deterministic_and_traces_validate() {
    let ckpt = tmp("loadgen.ckpt");
    let out = isrl(&[
        "train",
        "--builtin",
        "anti:40x2",
        "--algo",
        "ea",
        "--episodes",
        "1",
        "--seed",
        "3",
        "--eps",
        "0.2",
        "--out",
        &ckpt,
    ]);
    assert!(
        out.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let port_file = tmp("loadgen.port");
    let _server = KillOnDrop(
        Command::new(env!("CARGO_BIN_EXE_isrl"))
            .args([
                "serve",
                "--builtin",
                "anti:40x2",
                "--model",
                &ckpt,
                "--listen",
                "127.0.0.1:0",
                "--port-file",
                &port_file,
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("failed to spawn isrl serve"),
    );
    let deadline = Instant::now() + Duration::from_secs(60);
    let port = loop {
        if let Some(p) = std::fs::read_to_string(&port_file)
            .ok()
            .and_then(|t| t.trim().parse::<u16>().ok())
        {
            break p;
        }
        assert!(
            Instant::now() < deadline,
            "server never wrote the port file"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    let addr = format!("127.0.0.1:{port}");

    // Two identical runs — but with different concurrency, which session
    // isolation says must not matter.
    let trace = tmp("loadgen.jsonl");
    let run = |concurrency: &str, trace_out: Option<&str>| -> String {
        let mut args = vec![
            "loadgen",
            "--connect",
            &addr,
            "--users",
            "64",
            "--seed",
            "7",
            "--eps",
            "0.2",
            "--concurrency",
            concurrency,
        ];
        if let Some(t) = trace_out {
            args.extend(["--trace-out", t]);
        }
        let out = isrl(&args);
        assert!(
            out.status.success(),
            "loadgen failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).to_string()
    };
    let first = run("8", Some(&trace));
    let second = run("3", None);
    assert_eq!(
        per_user_rounds(&first),
        per_user_rounds(&second),
        "per-user question counts must be a pure function of the seed"
    );

    // The trace passes schema validation and carries one serve_session
    // event per user.
    let v = isrl(&["trace-validate", &trace]);
    assert!(
        v.status.success(),
        "trace-validate failed: {}",
        String::from_utf8_lossy(&v.stderr)
    );
    let stdout = String::from_utf8_lossy(&v.stdout);
    let census = stdout
        .lines()
        .find(|l| l.starts_with("serve_session"))
        .unwrap_or_else(|| panic!("no serve_session census:\n{stdout}"));
    assert_eq!(
        census.split_whitespace().nth(1),
        Some("64"),
        "expected 64 serve_session events: {census}"
    );
}
