//! Golden test for the `trace-diff` regression explainer: two identically
//! seeded EA training runs, the second with an `ISRL_SLOW_SPAN` busy-wait
//! injected into every `sampling` span. The diff must (a) rank the slowed
//! subtree first and (b) attribute at least half of the total latency
//! delta to it — the acceptance bar for latency attribution being usable
//! as a "what regressed?" tool rather than a pretty table.
//!
//! The slowdown is injected via the environment of a *spawned* CLI binary,
//! so the in-process test harness never races on the global sink or the
//! once-parsed injection target.

use std::process::Command;

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join(format!("isrl_trace_diff_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_str().unwrap().to_string()
}

/// Runs one seeded EA training with `--trace-out`, optionally slowing a
/// span by `ISRL_SLOW_SPAN=<leaf>:<ms>`.
fn train_trace(trace: &str, ckpt: &str, slow: Option<&str>) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_isrl"));
    cmd.args([
        "train",
        "--builtin",
        "anti:80x2",
        "--algo",
        "ea",
        "--episodes",
        "8",
        "--seed",
        "7",
        "--eps",
        "0.15",
        "--out",
        ckpt,
        "--trace-out",
        trace,
    ]);
    cmd.env_remove("ISRL_SLOW_SPAN");
    if let Some(spec) = slow {
        cmd.env("ISRL_SLOW_SPAN", spec);
    }
    let out = cmd.output().expect("failed to spawn isrl");
    assert!(
        out.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn diff_attributes_injected_slowdown_to_the_right_subtree() {
    let (a, b) = (tmp("base.jsonl"), tmp("slow.jsonl"));
    train_trace(&a, &tmp("base.ckpt"), None);
    // 5 ms per sampling span: far above scheduler noise, far below test
    // timeout territory.
    train_trace(&b, &tmp("slow.ckpt"), Some("sampling:5"));

    let json_dir = tmp("diff_json");
    let out = Command::new(env!("CARGO_BIN_EXE_isrl"))
        .args(["trace-diff", &a, &b, "--top", "5", "--json", &json_dir])
        .output()
        .expect("failed to spawn isrl");
    assert!(
        out.status.success(),
        "trace-diff failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);

    // Deterministic header: totals and a signed delta.
    assert!(stdout.contains("profile event(s)"), "{stdout}");
    assert!(stdout.contains("delta (B − A):"), "{stdout}");

    // The first data row (after the `----` separator) must be the slowed
    // span, and its share of the delta must be at least 50%.
    let mut lines = stdout.lines().skip_while(|l| !l.starts_with("---"));
    lines.next().expect("separator");
    let first_row = lines.next().expect("at least one diff row");
    let cells: Vec<&str> = first_row.split_whitespace().collect();
    assert_eq!(
        cells.first().copied(),
        Some("sampling"),
        "slowed subtree not ranked first: {stdout}"
    );
    let share: f64 = cells
        .last()
        .unwrap()
        .trim_start_matches('+')
        .parse()
        .unwrap_or_else(|_| panic!("unparsable share column in {first_row:?}"));
    assert!(
        share >= 50.0,
        "only {share}% of the delta attributed to the slowed span: {stdout}"
    );

    // The JSON artifact mirrors the table.
    let json = std::fs::read_to_string(std::path::Path::new(&json_dir).join("trace_diff.json"))
        .expect("trace_diff.json written");
    assert!(json.contains("sampling"), "{json}");
}

#[test]
fn diff_rejects_traces_without_profile_events() {
    let plain = tmp("no_profile.jsonl");
    std::fs::write(
        &plain,
        concat!(
            r#"{"ev":"round","t_ms":1,"algo":"EA","round":1,"elapsed_ms":0.5}"#,
            "\n",
            r#"{"ev":"summary","t_ms":2,"counters":{},"spans":{},"hists":{}}"#,
            "\n"
        ),
    )
    .unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_isrl"))
        .args(["trace-diff", &plain, &plain])
        .output()
        .expect("failed to spawn isrl");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("no profile events"),
        "error must name the missing event kind"
    );
}
