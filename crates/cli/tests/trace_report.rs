//! End-to-end observability loop: train with `--trace-out` and
//! `--metrics-interval`, validate the trace, and report on it — twice with
//! the same seed, asserting the reports are byte-identical (determinism is
//! an acceptance gate: reports feed EXPERIMENTS.md and CI artifacts).

use std::path::Path;
use std::process::Command;

fn isrl(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_isrl"))
        .args(args)
        .output()
        .expect("failed to spawn isrl")
}

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join(format!("isrl_trace_report_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_str().unwrap().to_string()
}

fn train_with_trace(trace: &str, ckpt: &str) {
    let out = isrl(&[
        "train",
        "--builtin",
        "anti:60x2",
        "--algo",
        "ea",
        "--episodes",
        "6",
        "--seed",
        "11",
        "--eps",
        "0.2",
        "--out",
        ckpt,
        "--trace-out",
        trace,
        "--metrics-interval",
        "0.05",
    ]);
    assert!(
        out.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn report_is_byte_identical_across_same_seed_runs() {
    let (t1, t2) = (tmp("a.jsonl"), tmp("b.jsonl"));
    train_with_trace(&t1, &tmp("a.ckpt"));
    train_with_trace(&t2, &tmp("b.ckpt"));

    // Both traces pass schema validation (timeseries events included).
    for t in [&t1, &t2] {
        let v = isrl(&["trace-validate", t]);
        assert!(
            v.status.success(),
            "trace-validate {t} failed: {}",
            String::from_utf8_lossy(&v.stderr)
        );
        assert!(String::from_utf8_lossy(&v.stdout).contains("timeseries"));
    }

    // The snapshotter echoed at least the final sample.
    // (The train stderr went to the parent; re-check via the trace itself.)
    let trace_text = std::fs::read_to_string(&t1).unwrap();
    assert!(
        trace_text.contains(r#""ev":"timeseries"#),
        "no samples in trace"
    );

    // Reports: timeseries/rounds/census tables carry wall-clock values, so
    // only the deterministic aggregate tables are compared byte-for-byte.
    let mut renders = Vec::new();
    for t in [&t1, &t2] {
        let mut combined = String::new();
        for id in ["questions", "episodes"] {
            let r = isrl(&["trace-report", t, "--only", id]);
            assert!(
                r.status.success(),
                "trace-report {t} --only {id} failed: {}",
                String::from_utf8_lossy(&r.stderr)
            );
            combined.push_str(&String::from_utf8_lossy(&r.stdout));
        }
        renders.push(combined);
    }
    assert_eq!(
        renders[0], renders[1],
        "same-seed trace reports must be byte-identical"
    );
    assert!(renders[0].contains("EA"), "report names the algorithm");

    // And the same report, rendered twice from one trace, is identical too
    // (no hidden iteration-order dependence), including the JSON export.
    let dir1 = tmp("json1");
    let dir2 = tmp("json2");
    let full1 = isrl(&["trace-report", &t1, "--json", &dir1]);
    let full2 = isrl(&["trace-report", &t1, "--json", &dir2]);
    assert!(full1.status.success() && full2.status.success());
    assert_eq!(full1.stdout, full2.stdout);
    for id in ["questions", "episodes", "phases", "timeseries", "census"] {
        let f1 = Path::new(&dir1).join(format!("trace_{id}.json"));
        let f2 = Path::new(&dir2).join(format!("trace_{id}.json"));
        assert!(f1.is_file(), "missing JSON table {id}");
        assert_eq!(
            std::fs::read(&f1).unwrap(),
            std::fs::read(&f2).unwrap(),
            "JSON table {id} differs between renders"
        );
    }
}

#[test]
fn report_rejects_garbage_and_unknown_table_ids() {
    let bad = tmp("bad.jsonl");
    std::fs::write(&bad, "this is not json\n").unwrap();
    let r = isrl(&["trace-report", &bad]);
    assert!(!r.status.success());
    assert!(String::from_utf8_lossy(&r.stderr).contains("line 1"));

    let t = tmp("tiny.jsonl");
    std::fs::write(
        &t,
        concat!(
            r#"{"ev":"round","t_ms":1,"algo":"EA","round":1,"elapsed_ms":0.5}"#,
            "\n",
            r#"{"ev":"summary","t_ms":2,"counters":{"lp.solves":3},"spans":{},"hists":{}}"#,
            "\n"
        ),
    )
    .unwrap();
    let r = isrl(&["trace-report", &t, "--only", "nope"]);
    assert!(!r.status.success());
    assert!(
        String::from_utf8_lossy(&r.stderr).contains("available:"),
        "error lists available tables"
    );

    let ok = isrl(&["trace-report", &t, "--only", "lp"]);
    assert!(ok.status.success());
    let stdout = String::from_utf8_lossy(&ok.stdout);
    assert!(stdout.contains("lp.solves"), "{stdout}");
}

#[test]
fn only_accepts_comma_separated_lists_and_fails_fast_on_unknown_ids() {
    let t = tmp("list.jsonl");
    train_with_trace(&t, &tmp("list.ckpt"));

    // A two-table selection renders both, in the report's canonical order.
    let r = isrl(&["trace-report", &t, "--only", "questions,episodes"]);
    assert!(
        r.status.success(),
        "list --only failed: {}",
        String::from_utf8_lossy(&r.stderr)
    );
    let stdout = String::from_utf8_lossy(&r.stdout);
    assert!(stdout.contains("== questions"), "{stdout}");
    assert!(stdout.contains("== episodes"), "{stdout}");
    assert!(!stdout.contains("== phases"), "unselected table printed");

    // Spaces around commas are tolerated.
    let r = isrl(&["trace-report", &t, "--only", "questions, episodes"]);
    assert!(r.status.success());

    // One unknown id anywhere in the list fails upfront — nothing prints —
    // and the error enumerates what this trace can offer.
    let r = isrl(&["trace-report", &t, "--only", "questions,bogus"]);
    assert!(!r.status.success());
    assert!(r.stdout.is_empty(), "failed --only must not half-print");
    let err = String::from_utf8_lossy(&r.stderr);
    assert!(err.contains("bogus"), "{err}");
    assert!(err.contains("available:"), "{err}");
    assert!(err.contains("questions"), "{err}");
}
