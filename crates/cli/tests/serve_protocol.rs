//! Serve-path protocol conformance battery (DESIGN.md §14).
//!
//! Runs the real binary (`serve --listen`) and speaks the line-JSON
//! protocol over TCP, pinning:
//!
//! * golden transcripts — the same `hello` + answer stream yields
//!   byte-identical server frames (modulo the session id), across both
//!   repeat sessions on one connection and separate connections;
//! * malformed frames — truncated JSON, unknown kinds, answers for
//!   unknown/foreign sessions, and stale-round answers each get an
//!   `error` frame back without killing the connection, the server, or
//!   any other live session;
//! * request-id echo (DESIGN.md §16) — every `question` carries a `req`
//!   id; an answer echoing the wrong id is rejected with a
//!   `req_mismatch` error frame while the pending round stays answerable;
//! * the read-only `stats` frame — a live RED-metrics snapshot with its
//!   documented sections, and a malformed `stats` request erroring
//!   without collateral;
//! * clean shutdown — a `shutdown` frame stops the server with exit 0
//!   and the batch counters on stdout.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join(format!("isrl_serve_protocol_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_str().unwrap().to_string()
}

/// Trains the tiny checkpoint every server in this file serves.
fn train_ckpt(tag: &str) -> String {
    let ckpt = tmp(&format!("{tag}.ckpt"));
    let out = Command::new(env!("CARGO_BIN_EXE_isrl"))
        .args([
            "train",
            "--builtin",
            "anti:40x2",
            "--algo",
            "ea",
            "--episodes",
            "1",
            "--seed",
            "3",
            "--eps",
            "0.2",
            "--out",
            &ckpt,
        ])
        .output()
        .expect("failed to spawn isrl train");
    assert!(
        out.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    ckpt
}

struct Server {
    child: Child,
}

impl Server {
    /// Starts `serve --listen 127.0.0.1:0` and polls the port file.
    fn start(ckpt: &str, tag: &str) -> (Server, u16) {
        let port_file = tmp(&format!("{tag}.port"));
        let _ = std::fs::remove_file(&port_file);
        let child = Command::new(env!("CARGO_BIN_EXE_isrl"))
            .args([
                "serve",
                "--builtin",
                "anti:40x2",
                "--model",
                ckpt,
                "--listen",
                "127.0.0.1:0",
                "--port-file",
                &port_file,
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("failed to spawn isrl serve");
        let deadline = Instant::now() + Duration::from_secs(60);
        let port = loop {
            if let Some(p) = std::fs::read_to_string(&port_file)
                .ok()
                .and_then(|t| t.trim().parse::<u16>().ok())
            {
                break p;
            }
            assert!(
                Instant::now() < deadline,
                "server never wrote the port file"
            );
            std::thread::sleep(Duration::from_millis(20));
        };
        (Server { child }, port)
    }

    /// Waits for exit (the shutdown frame must already be sent) and
    /// returns the server's stdout; asserts exit 0.
    fn wait(mut self) -> String {
        let deadline = Instant::now() + Duration::from_secs(60);
        let status = loop {
            if let Some(s) = self.child.try_wait().expect("try_wait failed") {
                break s;
            }
            assert!(Instant::now() < deadline, "server did not exit");
            std::thread::sleep(Duration::from_millis(20));
        };
        let mut stdout = String::new();
        self.child
            .stdout
            .take()
            .unwrap()
            .read_to_string(&mut stdout)
            .unwrap();
        let mut stderr = String::new();
        self.child
            .stderr
            .take()
            .unwrap()
            .read_to_string(&mut stderr)
            .unwrap();
        assert!(
            status.success(),
            "server exited {:?}; stderr:\n{stderr}",
            status.code()
        );
        stdout
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
    }
}

struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn open(port: u16) -> Conn {
        let stream = TcpStream::connect(("127.0.0.1", port)).expect("connect failed");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        let writer = stream.try_clone().unwrap();
        Conn {
            writer,
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").unwrap();
        self.writer.flush().unwrap();
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read failed");
        assert!(n > 0, "server closed the connection unexpectedly");
        line.trim_end().to_string()
    }
}

/// Pulls the integer value of `"key":N` out of a frame.
fn field_u64(line: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let at = line
        .find(&needle)
        .unwrap_or_else(|| panic!("no {key} in {line}"))
        + needle.len();
    line[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap()
}

fn kind_of(line: &str) -> &'static str {
    for k in ["question", "done", "error", "stats"] {
        if line.contains(&format!("\"kind\":\"{k}\"")) {
            return k;
        }
    }
    panic!("unrecognized frame: {line}");
}

fn hello(seed: u64) -> String {
    format!(r#"{{"kind":"hello","algo":"ea","eps":0.2,"seed":{seed}}}"#)
}

fn answer(session: u64, round: u64, choice: u64) -> String {
    format!(r#"{{"kind":"answer","session":{session},"round":{round},"choice":{choice}}}"#)
}

fn answer_req(session: u64, round: u64, choice: u64, req: u64) -> String {
    format!(
        r#"{{"kind":"answer","session":{session},"round":{round},"choice":{choice},"req":{req}}}"#
    )
}

/// Strips the per-run wire ids (`session`, `conn`, `req`) from a frame so
/// transcripts from different sessions/connections compare byte-equal.
fn normalize(line: &str) -> String {
    let mut out = line.to_string();
    for key in ["session", "conn", "req"] {
        if out.contains(&format!("\"{key}\":")) {
            let v = field_u64(line, key);
            out = out.replace(&format!("\"{key}\":{v}"), &format!("\"{key}\":_"));
        }
    }
    out
}

/// Runs one full session (always answering option 1, echoing each
/// question's request id) and returns every server frame with the wire
/// ids normalized out.
fn run_session(conn: &mut Conn, seed: u64) -> Vec<String> {
    conn.send(&hello(seed));
    let mut transcript = Vec::new();
    loop {
        let line = conn.recv();
        let sid = field_u64(&line, "session");
        transcript.push(normalize(&line));
        match kind_of(&line) {
            "question" => {
                let round = field_u64(&line, "round");
                let req = field_u64(&line, "req");
                conn.send(&answer_req(sid, round, 1, req));
            }
            "done" => return transcript,
            other => panic!("unexpected {other} frame: {line}"),
        }
    }
}

#[test]
fn golden_transcripts_are_reproducible() {
    let ckpt = train_ckpt("golden");
    let (server, port) = Server::start(&ckpt, "golden");

    let mut conn = Conn::open(port);
    let first = run_session(&mut conn, 5);
    assert!(first.len() >= 2, "expected questions then done: {first:?}");
    assert_eq!(kind_of(first.last().unwrap()), "done");

    // Same connection, fresh session, same seed: byte-identical frames.
    let repeat = run_session(&mut conn, 5);
    assert_eq!(first, repeat, "same seed must replay identically");

    // A different connection is just as deterministic.
    let mut other = Conn::open(port);
    assert_eq!(first, run_session(&mut other, 5));

    // A different seed should (for this dataset) diverge somewhere.
    assert_ne!(first, run_session(&mut conn, 6));

    conn.send(r#"{"kind":"shutdown"}"#);
    let stdout = server.wait();
    assert!(
        stdout.contains("serve.batch.calls"),
        "missing batch counters:\n{stdout}"
    );
}

#[test]
fn malformed_frames_get_error_frames_without_collateral() {
    let ckpt = train_ckpt("malformed");
    let (server, port) = Server::start(&ckpt, "malformed");

    // A live session on connection 1, paused at its first question.
    let mut conn1 = Conn::open(port);
    conn1.send(&hello(9));
    let q1 = conn1.recv();
    assert_eq!(kind_of(&q1), "question");
    let sid1 = field_u64(&q1, "session");

    // Connection 2 sends garbage; each line gets an error frame and the
    // connection stays usable.
    let mut conn2 = Conn::open(port);
    for bad in [
        r#"{"kind":"hello","algo":"#, // truncated JSON
        r#"{"kind":"mystery"}"#,      // unknown kind
        "[1,2,3]",                    // not an object
        r#"{"kind":"answer","session":999,"round":1,"choice":1}"#, // never opened
    ] {
        conn2.send(bad);
        let resp = conn2.recv();
        assert_eq!(kind_of(&resp), "error", "for {bad}: {resp}");
    }

    // Sessions are only addressable from their owning connection.
    conn2.send(&answer(sid1, 1, 1));
    let resp = conn2.recv();
    assert_eq!(kind_of(&resp), "error");
    assert!(
        resp.contains("unknown session"),
        "foreign-session answer should be rejected: {resp}"
    );

    // The abused connection still serves a full session…
    let transcript = run_session(&mut conn2, 5);
    assert_eq!(kind_of(transcript.last().unwrap()), "done");

    // …and the paused session on connection 1 was never perturbed. An
    // answer for a round that is not pending is rejected without
    // advancing anything…
    conn1.send(&answer(sid1, 5, 1));
    let resp = conn1.recv();
    assert_eq!(kind_of(&resp), "error", "wrong-round answer: {resp}");
    assert!(resp.contains("round"), "should name the round: {resp}");

    // …then the still-pending round 1 answers normally through to done.
    conn1.send(&answer(sid1, 1, 1));
    let mut line = conn1.recv();
    loop {
        match kind_of(&line) {
            "done" => break,
            "question" => {
                conn1.send(&answer(sid1, field_u64(&line, "round"), 1));
                line = conn1.recv();
            }
            other => panic!("unexpected {other} frame: {line}"),
        }
    }

    // A double answer after completion hits a closed session.
    conn1.send(&answer(sid1, 1, 1));
    let resp = conn1.recv();
    assert_eq!(kind_of(&resp), "error", "answer after done: {resp}");

    conn1.send(r#"{"kind":"shutdown"}"#);
    let stdout = server.wait();
    // Every malformed line above was counted on the server side too.
    let errors: u64 = stdout
        .lines()
        .find(|l| l.starts_with("sessions:"))
        .and_then(|l| l.split_whitespace().nth(5))
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("no sessions line in stdout:\n{stdout}"));
    assert!(errors >= 7, "expected >= 7 error frames, saw {errors}");
}

#[test]
fn request_id_mismatch_is_rejected_without_collateral() {
    let ckpt = train_ckpt("reqid");
    let (server, port) = Server::start(&ckpt, "reqid");

    let mut conn = Conn::open(port);
    conn.send(&hello(9));
    let q = conn.recv();
    assert_eq!(kind_of(&q), "question");
    let sid = field_u64(&q, "session");
    let round = field_u64(&q, "round");
    let req = field_u64(&q, "req");

    // Echoing a request id the server never attached to this question is
    // a split-brain answer: rejected by code, session untouched.
    conn.send(&answer_req(sid, round, 1, req + 999));
    let resp = conn.recv();
    assert_eq!(kind_of(&resp), "error", "req mismatch: {resp}");
    assert!(
        resp.contains("\"code\":\"req_mismatch\""),
        "expected req_mismatch code: {resp}"
    );

    // The pending round is still answerable with the correct echo, and
    // the session runs through to done.
    conn.send(&answer_req(sid, round, 1, req));
    let mut line = conn.recv();
    loop {
        match kind_of(&line) {
            "done" => break,
            "question" => {
                let r = field_u64(&line, "round");
                let rq = field_u64(&line, "req");
                conn.send(&answer_req(sid, r, 1, rq));
                line = conn.recv();
            }
            other => panic!("unexpected {other} frame: {line}"),
        }
    }

    // An answer that omits `req` entirely is still accepted (the echo is
    // opt-in), pinned by a fresh session answered the legacy way.
    conn.send(&hello(11));
    let q = conn.recv();
    assert_eq!(kind_of(&q), "question");
    let sid = field_u64(&q, "session");
    conn.send(&answer(sid, field_u64(&q, "round"), 1));
    let next = conn.recv();
    assert_ne!(kind_of(&next), "error", "legacy answer rejected: {next}");

    conn.send(r#"{"kind":"shutdown"}"#);
    server.wait();
}

#[test]
fn stats_frame_snapshots_red_metrics_live() {
    let ckpt = train_ckpt("stats");
    let (server, port) = Server::start(&ckpt, "stats");

    // A session mid-flight so the snapshot has something to show.
    let mut busy = Conn::open(port);
    busy.send(&hello(9));
    let q = busy.recv();
    assert_eq!(kind_of(&q), "question");

    let mut conn = Conn::open(port);
    // Malformed stats request: `detail` must be a boolean. The error
    // names the code and the connection survives.
    conn.send(r#"{"kind":"stats","detail":1}"#);
    let resp = conn.recv();
    assert_eq!(kind_of(&resp), "error", "bad detail: {resp}");
    assert!(resp.contains("\"code\":\"parse\""), "code: {resp}");

    conn.send(r#"{"kind":"stats"}"#);
    let snap = conn.recv();
    assert_eq!(kind_of(&snap), "stats", "stats reply: {snap}");
    for section in [
        "\"uptime_ms\"",
        "\"connections\"",
        "\"sessions\"",
        "\"requests\"",
        "\"round_ms\"",
        "\"errors_by_kind\"",
        "\"batch\"",
        "\"flight\"",
    ] {
        assert!(snap.contains(section), "missing {section}: {snap}");
    }
    // The busy connection's open session and served request are visible.
    assert!(field_u64(&snap, "active") >= 1, "no active conns: {snap}");
    assert!(field_u64(&snap, "total") >= 1, "no requests: {snap}");
    // The parse error above is broken out by kind.
    assert!(snap.contains("\"parse\":1"), "error kinds: {snap}");

    // `--detail` adds the per-connection breakdown.
    conn.send(r#"{"kind":"stats","detail":true}"#);
    let snap = conn.recv();
    assert!(snap.contains("\"per_conn\""), "missing per_conn: {snap}");

    // The paused session was never perturbed: it still answers round 1.
    let sid = field_u64(&q, "session");
    busy.send(&answer_req(sid, 1, 1, field_u64(&q, "req")));
    let next = busy.recv();
    assert_ne!(kind_of(&next), "error", "paused session broke: {next}");

    // The `isrl stats` subcommand renders the same snapshot human-first.
    let out = Command::new(env!("CARGO_BIN_EXE_isrl"))
        .args(["stats", "--connect", &format!("127.0.0.1:{port}")])
        .output()
        .expect("failed to spawn isrl stats");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "isrl stats failed: {text}");
    assert!(text.contains("round latency:"), "stats output: {text}");
    let json = Command::new(env!("CARGO_BIN_EXE_isrl"))
        .args(["stats", "--connect", &format!("127.0.0.1:{port}"), "--json"])
        .output()
        .expect("failed to spawn isrl stats --json");
    let text = String::from_utf8_lossy(&json.stdout);
    assert!(json.status.success(), "isrl stats --json failed: {text}");
    assert!(
        text.trim_start().starts_with('{') && text.contains("\"round_ms\""),
        "json output: {text}"
    );

    conn.send(r#"{"kind":"shutdown"}"#);
    server.wait();
}
