//! The stdin interview must reject malformed answers with a re-prompt
//! (sharing the wire protocol's answer parser) instead of treating
//! garbage as a choice, and still finish the session.

use std::io::Write;
use std::process::{Command, Stdio};

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join(format!("isrl_serve_stdin_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_str().unwrap().to_string()
}

#[test]
fn interview_reprompts_on_malformed_answers() {
    let ckpt = tmp("stdin.ckpt");
    let out = Command::new(env!("CARGO_BIN_EXE_isrl"))
        .args([
            "train",
            "--builtin",
            "anti:40x2",
            "--algo",
            "ea",
            "--episodes",
            "1",
            "--seed",
            "3",
            "--eps",
            "0.2",
            "--out",
            &ckpt,
        ])
        .output()
        .expect("failed to spawn isrl train");
    assert!(
        out.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let mut child = Command::new(env!("CARGO_BIN_EXE_isrl"))
        .args([
            "serve",
            "--builtin",
            "anti:40x2",
            "--model",
            &ckpt,
            "--eps",
            "0.2",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("failed to spawn isrl serve");

    // Three invalid answers, one valid one, then EOF (which defaults the
    // remaining questions to option 1 so the run completes).
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"yes\n3\n0\n 1 \n")
        .unwrap();
    let out = child.wait_with_output().expect("wait failed");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "serve failed ({:?}): {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        stdout.matches("please answer 1 or 2").count(),
        3,
        "each malformed answer must re-prompt exactly once:\n{stdout}"
    );
    assert!(
        stdout.contains("your tuple"),
        "interview must still finish:\n{stdout}"
    );
}
