//! Smoke test: every subcommand's `--help` must parse, exit zero, and
//! document its flags — including the `--trace-out` telemetry flag whose
//! help text went missing in an earlier refactor. Runs the real binary via
//! `CARGO_BIN_EXE_isrl`, so this also covers arg parsing end to end.

use std::process::Command;

const SUBCOMMANDS: &[&str] = &[
    "generate",
    "train",
    "eval",
    "serve",
    "loadgen",
    "inspect",
    "trace-validate",
    "trace-report",
];

fn run(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_isrl"))
        .args(args)
        .output()
        .expect("failed to spawn isrl")
}

#[test]
fn every_subcommand_help_exits_zero_with_usage() {
    for cmd in SUBCOMMANDS {
        let out = run(&[cmd, "--help"]);
        let stdout = String::from_utf8_lossy(&out.stdout);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            out.status.success(),
            "`isrl {cmd} --help` failed ({:?}): {stderr}",
            out.status.code()
        );
        assert!(
            stdout.contains(&format!("isrl {cmd}")),
            "`isrl {cmd} --help` does not name the command:\n{stdout}"
        );
        assert!(
            stdout.contains("USAGE:"),
            "`isrl {cmd} --help` has no usage section:\n{stdout}"
        );
    }
}

#[test]
fn help_works_with_other_flags_present() {
    // `--help` must win even when mixed with otherwise-valid flags, instead
    // of the command running (or rejecting the combination).
    let out = run(&["eval", "--builtin", "car", "--help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("isrl eval"));
}

#[test]
fn train_and_eval_help_document_trace_out() {
    for cmd in ["train", "eval"] {
        let out = run(&[cmd, "--help"]);
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("--trace-out"),
            "`isrl {cmd} --help` lost the --trace-out help text:\n{stdout}"
        );
        assert!(stdout.contains("--metrics"));
        assert!(
            stdout.contains("--metrics-interval"),
            "`isrl {cmd} --help` lost the --metrics-interval help text:\n{stdout}"
        );
    }
}

#[test]
fn top_level_help_lists_every_subcommand() {
    let out = run(&["--help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    for cmd in SUBCOMMANDS {
        assert!(text.contains(cmd), "top-level help omits {cmd}:\n{text}");
    }
}

#[test]
fn unknown_command_help_still_errors() {
    let out = run(&["frobnicate", "--help"]);
    assert!(!out.status.success());
}
