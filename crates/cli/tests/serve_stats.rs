//! Operational-observability battery for `serve --listen` (DESIGN.md §16):
//!
//! * the live `stats` frame answers mid-run with nonzero RED metrics
//!   (rolling p99, active connections) while loadgen traffic is flowing;
//! * the flight recorder, drilled with an `ISRL_SLOW_SPAN` injection into
//!   one `top1` scan, dumps exactly one schema-valid `slow_round` event
//!   whose profile ranks the injected span first;
//! * the live snapshot agrees with the post-hoc trace: request counts
//!   match exactly and the rolling p99 matches a nearest-rank p99
//!   recomputed from the `serve_round` events within sketch error;
//! * `--metrics-interval` timeseries samples carry the serve gauges
//!   (`serve.active_sessions`, `serve.batch.window_occupancy`) and the
//!   final snapshot survives clean shutdown.

use std::io::Write;
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join(format!("isrl_serve_stats_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_str().unwrap().to_string()
}

fn isrl(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_isrl"))
        .args(args)
        .output()
        .expect("failed to spawn isrl")
}

struct KillOnDrop(Child);
impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
    }
}

/// Pulls the numeric value after `"key":` out of a one-line JSON document
/// (first occurrence).
fn field_f64(line: &str, key: &str) -> f64 {
    let needle = format!("\"{key}\":");
    let at = line
        .find(&needle)
        .unwrap_or_else(|| panic!("no {key} in {line}"))
        + needle.len();
    line[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect::<String>()
        .parse()
        .unwrap_or_else(|e| panic!("bad number for {key}: {e}"))
}

/// Nearest-rank percentile (the `trace-report` convention).
fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

#[test]
fn live_stats_and_flight_recorder_drill() {
    let ckpt = tmp("stats.ckpt");
    let out = isrl(&[
        "train",
        "--builtin",
        "anti:40x2",
        "--algo",
        "ea",
        "--episodes",
        "1",
        "--seed",
        "3",
        "--eps",
        "0.2",
        "--out",
        &ckpt,
    ]);
    assert!(
        out.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Server with telemetry, a fast snapshotter, and a slow-span drill:
    // the 12th `top1` scan process-wide busy-waits 500ms, stalling exactly
    // one micro-batch well past `slow_factor × rolling p99`. The factor is
    // deliberately high so only the injection can breach it, and the
    // cooldown is effectively infinite so at most one dump can ever fire —
    // "exactly one slow_round" is then a hard assertion, not a race.
    let port_file = tmp("stats.port");
    let trace = tmp("server.jsonl");
    let mut server = KillOnDrop(
        Command::new(env!("CARGO_BIN_EXE_isrl"))
            .env("ISRL_SLOW_SPAN", "top1:500:@12")
            .args([
                "serve",
                "--builtin",
                "anti:40x2",
                "--model",
                &ckpt,
                "--listen",
                "127.0.0.1:0",
                "--port-file",
                &port_file,
                "--trace-out",
                &trace,
                "--metrics-interval",
                "0.2",
                "--slow-warmup",
                "2",
                "--slow-factor",
                "30",
                "--slow-cooldown",
                "1000000",
                "--flight-depth",
                "8",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("failed to spawn isrl serve"),
    );
    let deadline = Instant::now() + Duration::from_secs(60);
    let port = loop {
        if let Some(p) = std::fs::read_to_string(&port_file)
            .ok()
            .and_then(|t| t.trim().parse::<u16>().ok())
        {
            break p;
        }
        assert!(
            Instant::now() < deadline,
            "server never wrote the port file"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    let addr = format!("127.0.0.1:{port}");

    let loadgen = KillOnDrop(
        Command::new(env!("CARGO_BIN_EXE_isrl"))
            .args([
                "loadgen",
                "--connect",
                &addr,
                "--users",
                "32",
                "--concurrency",
                "8",
                "--seed",
                "7",
                "--eps",
                "0.2",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("failed to spawn isrl loadgen"),
    );

    // Mid-run: poll the live endpoint until the snapshot shows traffic.
    // The injected stall guarantees the run lasts well past one poll.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let out = isrl(&["stats", "--connect", &addr, "--json"]);
        assert!(
            out.status.success(),
            "isrl stats failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let snap = String::from_utf8_lossy(&out.stdout).trim().to_string();
        let served = field_f64(&snap, "count");
        let active = field_f64(&snap, "active");
        if served > 0.0 && active >= 1.0 {
            assert!(
                field_f64(&snap, "p99") > 0.0,
                "rolling p99 should be nonzero once rounds are recorded: {snap}"
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "stats never showed live traffic: {snap}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    let mut loadgen = loadgen;
    let status = loadgen.0.wait().expect("loadgen wait failed");
    assert!(status.success(), "loadgen exited {:?}", status.code());

    // Quiescent snapshot: every request is recorded, nothing in flight.
    let out = isrl(&["stats", "--connect", &addr, "--json"]);
    assert!(out.status.success());
    let snap = String::from_utf8_lossy(&out.stdout).trim().to_string();
    let live_total = field_f64(&snap, "total");
    let live_count = field_f64(&snap, "count");
    let live_p99 = field_f64(&snap, "p99");
    let live_slow = field_f64(&snap, "slow_rounds");
    assert_eq!(live_total, live_count, "all requests in the window: {snap}");
    assert_eq!(live_slow, 1.0, "exactly one slow_round dump: {snap}");

    // Clean shutdown; the final metrics snapshot must still be flushed.
    let mut stream = TcpStream::connect(&addr).expect("connect for shutdown");
    stream.write_all(b"{\"kind\":\"shutdown\"}\n").unwrap();
    drop(stream);
    let deadline = Instant::now() + Duration::from_secs(60);
    let status = loop {
        if let Some(s) = server.0.try_wait().expect("try_wait failed") {
            break s;
        }
        assert!(Instant::now() < deadline, "server did not exit");
        std::thread::sleep(Duration::from_millis(20));
    };
    let mut stdout = String::new();
    std::io::Read::read_to_string(server.0.stdout.as_mut().unwrap(), &mut stdout).unwrap();
    assert!(
        status.success(),
        "server exited {:?}:\n{stdout}",
        status.code()
    );
    let requests_line = stdout
        .lines()
        .find(|l| l.starts_with("requests:"))
        .unwrap_or_else(|| panic!("no requests line:\n{stdout}"));
    let served: f64 = requests_line
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(served, live_total, "lifetime requests: {requests_line}");
    assert!(
        requests_line.contains("1 slow_round dump(s)"),
        "exactly one dump: {requests_line}"
    );

    // The trace validates, and the post-hoc view agrees with the live one:
    // the same number of serve_round events, and a nearest-rank p99 over
    // their exact latencies within the rolling sketch's error.
    let v = isrl(&["trace-validate", &trace]);
    assert!(
        v.status.success(),
        "trace-validate failed: {}\n{}",
        String::from_utf8_lossy(&v.stdout),
        String::from_utf8_lossy(&v.stderr)
    );
    let text = std::fs::read_to_string(&trace).unwrap();
    let mut round_ms: Vec<f64> = text
        .lines()
        .filter(|l| l.contains("\"ev\":\"serve_round\""))
        .map(|l| field_f64(l, "ms"))
        .collect();
    assert_eq!(
        round_ms.len() as f64,
        live_total,
        "one serve_round event per request"
    );
    round_ms.sort_by(f64::total_cmp);
    let exact_p99 = nearest_rank(&round_ms, 0.99);
    assert!(
        (live_p99 - exact_p99).abs() <= 0.05 * exact_p99 + 0.5,
        "live p99 {live_p99}ms vs post-hoc {exact_p99}ms"
    );

    // Exactly one slow_round event, blaming the injected span.
    let slow: Vec<&str> = text
        .lines()
        .filter(|l| l.contains("\"ev\":\"slow_round\""))
        .collect();
    assert_eq!(slow.len(), 1, "exactly one slow_round dump: {slow:?}");
    assert!(
        field_f64(slow[0], "ms") >= 400.0,
        "dump should carry the stalled round: {}",
        slow[0]
    );

    // The serve gauges ride the snapshotter's timeseries samples.
    let timeseries: Vec<&str> = text
        .lines()
        .filter(|l| l.contains("\"ev\":\"timeseries\""))
        .collect();
    assert!(!timeseries.is_empty(), "no timeseries events in trace");
    assert!(
        timeseries
            .iter()
            .any(|l| l.contains("serve.active_sessions")),
        "serve.active_sessions gauge missing from timeseries"
    );
    assert!(
        timeseries
            .iter()
            .any(|l| l.contains("serve.batch.window_occupancy")),
        "serve.batch.window_occupancy gauge missing from timeseries"
    );

    // `trace-report` turns the same trace into the serve tables; the slow
    // table ranks the injected span first.
    let dir = tmp("report");
    let r = isrl(&[
        "trace-report",
        &trace,
        "--only",
        "serve,slow",
        "--json",
        &dir,
    ]);
    assert!(
        r.status.success(),
        "trace-report failed: {}",
        String::from_utf8_lossy(&r.stderr)
    );
    let slow_json =
        std::fs::read_to_string(std::path::Path::new(&dir).join("trace_slow.json")).unwrap();
    assert!(
        slow_json.contains("serve_batch/top1"),
        "slow table should blame serve_batch/top1: {slow_json}"
    );
    let serve_json =
        std::fs::read_to_string(std::path::Path::new(&dir).join("trace_serve.json")).unwrap();
    assert!(
        serve_json.contains("p99_ms") || serve_json.contains("p99"),
        "serve table saved: {serve_json}"
    );
}
