//! The five CLI subcommands.

use crate::args::Args;
use crate::data_io::{resolve_dataset, DataSource};
use isrl_core::checkpoint;
use isrl_core::prelude::*;
use isrl_core::regret::regret_ratio_of_index;
use isrl_data::Dataset;
use isrl_geometry::GeometryBackend;
use std::io::Write as _;

/// Boxed error for command results.
pub type CmdResult = Result<(), Box<dyn std::error::Error>>;

/// Parses `--geometry exact|sampled|auto`. `None` when the flag is absent
/// (callers keep the agent's default, auto-by-dimension).
fn geometry_arg(args: &Args) -> Result<Option<GeometryBackend>, Box<dyn std::error::Error>> {
    match args.get("geometry") {
        None => Ok(None),
        Some(v) => GeometryBackend::parse(v)
            .map(Some)
            .ok_or_else(|| format!("--geometry must be exact|sampled|auto, got {v:?}").into()),
    }
}

/// Echoes every watchdog anomaly from a training run to stderr so broken
/// runs are loud even without a trace file.
fn warn_anomalies(anomalies: &[Anomaly]) {
    for a in anomalies {
        eprintln!(
            "warning: training anomaly {} at episode {}: {}",
            a.kind.as_str(),
            a.episode,
            a.detail
        );
    }
}

fn describe(data: &Dataset, source: &DataSource) {
    let attrs = if data.attributes().is_empty() {
        String::from("unnamed")
    } else {
        data.attributes().join(", ")
    };
    println!(
        "dataset: {:?} — {} tuples × {} attributes ({attrs})",
        source,
        data.len(),
        data.dim()
    );
}

/// `isrl generate` — write a dataset as CSV.
pub fn generate(args: &Args) -> CmdResult {
    args.ensure_known(&["builtin", "data", "smaller", "seed", "no-skyline", "out"])?;
    let (data, source) = resolve_dataset(args)?;
    describe(&data, &source);
    let out = args.required("out")?;
    let headers: Vec<String> = if data.attributes().is_empty() {
        (0..data.dim()).map(|i| format!("attr{i}")).collect()
    } else {
        data.attributes().to_vec()
    };
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<f64>> = data.iter().map(<[f64]>::to_vec).collect();
    std::fs::write(out, isrl_data::csv::write_csv(&header_refs, &rows))?;
    println!("wrote {} rows to {out}", data.len());
    Ok(())
}

/// `isrl train` — train an EA/AA agent and save a checkpoint.
pub fn train(args: &Args) -> CmdResult {
    args.ensure_known(&[
        "builtin",
        "data",
        "smaller",
        "seed",
        "no-skyline",
        "algo",
        "eps",
        "episodes",
        "lr",
        "geometry",
        "out",
        "trace-out",
        "metrics",
        "metrics-interval",
    ])?;
    let (data, source) = resolve_dataset(args)?;
    describe(&data, &source);
    let tracing = crate::trace::begin(args)?;
    let algo = args.get("algo").unwrap_or("ea");
    let eps = args.get_or("eps", 0.1f64, "number")?;
    let episodes = args.get_or("episodes", 200usize, "integer")?;
    let seed = args.get_or("seed", 7u64, "integer")?;
    // Deliberately accepts any f64 (including "nan"): a poisoned learning
    // rate is the standard training-health drill — the watchdog must catch
    // it, not the argument parser.
    let lr = match args.get("lr").filter(|v| !v.is_empty()) {
        None => None,
        Some(v) => Some(
            v.parse::<f64>()
                .map_err(|_| format!("--lr {v:?} is not a valid number"))?,
        ),
    };
    let geometry = geometry_arg(args)?;
    let out = args.required("out")?;
    let users = sample_users(data.dim(), episodes, seed.wrapping_add(1));

    println!("training {algo} for {episodes} episodes at eps {eps}…");
    let start = std::time::Instant::now();
    let blob = match algo {
        "ea" => {
            let mut cfg = EaConfig::paper_default().with_seed(seed);
            if let Some(backend) = geometry {
                cfg.geometry = backend;
            }
            if let Some(lr) = lr {
                cfg.lr = lr;
            }
            let mut agent = EaAgent::new(data.dim(), cfg);
            let report = agent.train(&data, &users, eps);
            println!(
                "final-quarter mean rounds: {:.2}",
                report.mean_rounds_final_quarter
            );
            warn_anomalies(&report.anomalies);
            checkpoint::save_ea(&agent)
        }
        "aa" => {
            if geometry.is_some() {
                return Err("--geometry applies to --algo ea only (AA never enumerates)".into());
            }
            let mut cfg = AaConfig::paper_default().with_seed(seed);
            if let Some(lr) = lr {
                cfg.lr = lr;
            }
            let mut agent = AaAgent::new(data.dim(), cfg);
            let report = agent.train(&data, &users, eps);
            println!(
                "final-quarter mean rounds: {:.2}",
                report.mean_rounds_final_quarter
            );
            warn_anomalies(&report.anomalies);
            checkpoint::save_aa(&agent)
        }
        other => return Err(format!("--algo must be ea or aa, got {other:?}").into()),
    };
    std::fs::write(out, &blob)?;
    println!(
        "trained in {:.1}s; checkpoint ({} bytes) saved to {out}",
        start.elapsed().as_secs_f64(),
        blob.len()
    );
    crate::trace::finish(tracing)
}

fn load_agent(
    path: &str,
    geometry: Option<GeometryBackend>,
) -> Result<Box<dyn InteractiveAlgorithm>, Box<dyn std::error::Error>> {
    let bytes = std::fs::read(path)?;
    if let Ok(mut agent) = checkpoint::load_ea(&bytes) {
        // The backend is a serving-time choice, not persisted state: a
        // checkpoint restores to the auto-by-dimension default unless the
        // flag overrides it here.
        if let Some(backend) = geometry {
            agent.set_geometry(backend);
        }
        return Ok(Box::new(agent));
    }
    if geometry.is_some() {
        return Err("--geometry applies to EA checkpoints only (AA never enumerates)".into());
    }
    Ok(Box::new(checkpoint::load_aa(&bytes)?))
}

/// `isrl eval` — run a trained (or baseline) algorithm over simulated users.
pub fn eval(args: &Args) -> CmdResult {
    args.ensure_known(&[
        "builtin",
        "data",
        "smaller",
        "seed",
        "no-skyline",
        "model",
        "baseline",
        "eps",
        "geometry",
        "users",
        "noise",
        "trace-out",
        "metrics",
        "metrics-interval",
    ])?;
    let (data, source) = resolve_dataset(args)?;
    describe(&data, &source);
    let tracing = crate::trace::begin(args)?;
    let eps = args.get_or("eps", 0.1f64, "number")?;
    let n_users = args.get_or("users", 30usize, "integer")?;
    let seed = args.get_or("seed", 7u64, "integer")?;
    let noise = args.get_or("noise", 0.0f64, "number")?;
    let geometry = geometry_arg(args)?;

    let mut algo: Box<dyn InteractiveAlgorithm> = match (args.get("model"), args.get("baseline")) {
        (Some(path), _) if !path.is_empty() => load_agent(path, geometry)?,
        (_, Some(name)) if !name.is_empty() => {
            if geometry.is_some() {
                return Err("--geometry applies to EA checkpoints, not baselines".into());
            }
            match name {
                "uh-random" => Box::new(UhBaseline::random(seed)),
                "uh-simplex" => Box::new(UhBaseline::simplex(seed)),
                "single-pass" => Box::new(SinglePass::seeded(seed)),
                "utility-approx" => Box::new(UtilityApprox::default()),
                other => {
                    return Err(format!(
                "--baseline must be uh-random|uh-simplex|single-pass|utility-approx, got {other:?}"
            )
                    .into())
                }
            }
        }
        _ => return Err("provide --model <ckpt> or --baseline <name>".into()),
    };

    let users = sample_users(data.dim(), n_users, seed.wrapping_add(2));
    let mut rounds = 0.0;
    let mut secs = 0.0;
    let mut regret_sum = 0.0;
    let mut regret_max: f64 = 0.0;
    let mut truncated = 0usize;
    for (i, u) in users.iter().enumerate() {
        let out = if noise > 0.0 {
            let mut user = NoisyUser::new(u.clone(), noise, seed + i as u64);
            algo.run(&data, &mut user, eps, TraceMode::Off)
        } else {
            let mut user = SimulatedUser::new(u.clone());
            algo.run(&data, &mut user, eps, TraceMode::Off)
        };
        let regret = regret_ratio_of_index(&data, out.point_index, u);
        rounds += out.rounds as f64;
        secs += out.elapsed.as_secs_f64();
        regret_sum += regret;
        regret_max = regret_max.max(regret);
        truncated += usize::from(out.truncated);
    }
    let n = users.len() as f64;
    println!("algorithm:    {}", algo.name());
    println!("users:        {n_users} (noise {noise})");
    println!("mean rounds:  {:.2}", rounds / n);
    println!("mean time:    {:.2}ms", secs / n * 1e3);
    println!(
        "mean regret:  {:.4} (max {:.4}, threshold {eps})",
        regret_sum / n,
        regret_max
    );
    println!("truncated:    {truncated}/{n_users}");
    crate::trace::finish(tracing)
}

/// Loads a checkpoint as a shared serving policy, applying the EA
/// geometry override with `load_agent`'s semantics.
fn load_policy(
    path: &str,
    geometry: Option<GeometryBackend>,
) -> Result<ServePolicy, Box<dyn std::error::Error>> {
    let bytes = std::fs::read(path)?;
    let mut policy = ServePolicy::from_checkpoint(&bytes)?;
    if let Some(backend) = geometry {
        if !policy.set_geometry(backend) {
            return Err("--geometry applies to EA checkpoints only (AA never enumerates)".into());
        }
    }
    Ok(policy)
}

/// `isrl serve --listen` — the multi-session TCP server (DESIGN.md §14),
/// with the operational-observability knobs of DESIGN.md §16.
fn serve_listen(args: &Args, data: Dataset, listen: &str) -> CmdResult {
    let tracing = crate::trace::begin(args)?;
    let policy = load_policy(args.required("model")?, geometry_arg(args)?)?;
    let defaults = ServerConfig::default();
    let rolling_window = args.get_or(
        "rolling-window",
        defaults.rolling_window.as_secs_f64(),
        "number of seconds",
    )?;
    if rolling_window.is_nan() || rolling_window <= 0.0 {
        return Err(format!("--rolling-window {rolling_window} must be > 0").into());
    }
    let slow_factor = args.get_or("slow-factor", defaults.slow_factor, "number")?;
    if slow_factor.is_nan() || slow_factor <= 1.0 {
        return Err(format!("--slow-factor {slow_factor} must be > 1").into());
    }
    let cfg = ServerConfig {
        addr: listen.to_string(),
        rolling_window: std::time::Duration::from_secs_f64(rolling_window),
        flight_depth: args.get_or("flight-depth", defaults.flight_depth, "integer")?,
        slow_factor,
        slow_warmup: args.get_or("slow-warmup", defaults.slow_warmup, "integer")?,
        slow_cooldown: args.get_or("slow-cooldown", defaults.slow_cooldown, "integer")?,
        ..defaults
    };
    let handle = spawn_server(
        std::sync::Arc::new(data),
        vec![std::sync::Arc::new(policy)],
        cfg,
    )?;
    println!("serving on {}", handle.addr());
    if let Some(path) = args.get("port-file").filter(|p| !p.is_empty()) {
        // Written after the listener is live, so anything polling this
        // file can connect as soon as it appears.
        std::fs::write(path, format!("{}\n", handle.addr().port()))?;
    }
    std::io::stdout().flush().ok();
    let stats = handle.join();
    println!(
        "sessions: {} opened, {} completed, {} error frame(s)",
        stats.sessions_opened, stats.sessions_completed, stats.errors
    );
    println!(
        "requests: {} served, {} slow_round dump(s)",
        stats.requests, stats.slow_rounds
    );
    println!("serve.batch.calls {}", stats.batch.calls);
    println!("serve.batch.coalesced {}", stats.batch.coalesced);
    println!("serve.batch.sessions {}", stats.batch.sessions_scanned);
    println!("serve.batch.utilities {}", stats.batch.utilities);
    // The final snapshot and sink drain happen here, after the reactor
    // has fully stopped — a clean shutdown flushes every buffered serve
    // event instead of losing the tail of the trace.
    crate::trace::finish(tracing)
}

/// `isrl serve` — interview a human on stdin with a trained agent, or run
/// the multi-session TCP server with `--listen`.
pub fn serve(args: &Args) -> CmdResult {
    args.ensure_known(&[
        "builtin",
        "data",
        "smaller",
        "seed",
        "no-skyline",
        "model",
        "eps",
        "geometry",
        "listen",
        "port-file",
        "rolling-window",
        "flight-depth",
        "slow-factor",
        "slow-warmup",
        "slow-cooldown",
        "trace-out",
        "metrics",
        "metrics-interval",
    ])?;
    let (data, source) = resolve_dataset(args)?;
    describe(&data, &source);
    if let Some(listen) = args.get("listen").filter(|a| !a.is_empty()) {
        let listen = listen.to_string();
        return serve_listen(args, data, &listen);
    }
    for flag in [
        "port-file",
        "rolling-window",
        "flight-depth",
        "slow-factor",
        "slow-warmup",
        "slow-cooldown",
    ] {
        if args.has(flag) {
            return Err(format!("--{flag} requires --listen").into());
        }
    }
    // Stdin interviews honor the telemetry flags too (they used to be
    // silently ignored on this path).
    let tracing = crate::trace::begin(args)?;
    let eps = args.get_or("eps", 0.1f64, "number")?;
    let mut algo = load_agent(args.required("model")?, geometry_arg(args)?)?;
    println!("answer each question with 1 or 2.\n");

    struct Stdin<'a> {
        attrs: &'a [String],
        asked: usize,
    }
    impl User for Stdin<'_> {
        fn prefers(&mut self, p_i: &[f64], p_j: &[f64]) -> bool {
            self.asked += 1;
            let show = |p: &[f64]| {
                p.iter()
                    .enumerate()
                    .map(|(k, v)| {
                        let name = self.attrs.get(k).map(String::as_str).unwrap_or("attr");
                        format!("{name} {:.0}%", v * 100.0)
                    })
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            println!("Q{}:", self.asked);
            println!("  option 1: {}", show(p_i));
            println!("  option 2: {}", show(p_j));
            loop {
                print!("> ");
                std::io::stdout().flush().ok();
                let mut line = String::new();
                if std::io::stdin().read_line(&mut line).is_err() || line.is_empty() {
                    return true; // EOF: pick option 1 and let the run finish
                }
                // The wire protocol's answer parser, so stdin and TCP
                // agree on what counts as a valid choice.
                match isrl_core::serving::parse_choice(&line) {
                    Some(choice) => return choice,
                    None => println!("please answer 1 or 2"),
                }
            }
        }
        fn questions_asked(&self) -> usize {
            self.asked
        }
    }

    let attrs = data.attributes().to_vec();
    let mut user = Stdin {
        attrs: &attrs,
        asked: 0,
    };
    let out = algo.run(&data, &mut user, eps, TraceMode::Off);
    let p = data.point(out.point_index);
    println!("\nafter {} questions, your tuple:", out.rounds);
    for (k, v) in p.iter().enumerate() {
        let name = attrs.get(k).map(String::as_str).unwrap_or("attr");
        println!("  {name}: {:.0}%", v * 100.0);
    }
    crate::trace::finish(tracing)
}

/// `isrl stats` — query a live `serve --listen` server's read-only
/// RED-metrics snapshot over the wire (DESIGN.md §16).
pub fn stats(args: &Args) -> CmdResult {
    use isrl_core::serving::protocol::{ClientFrame, ServerFrame};
    args.ensure_known(&["connect", "detail", "json"])?;
    let addr = args.required("connect")?;
    let detail = args.has("detail");
    let mut stream = std::net::TcpStream::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
    writeln!(stream, "{}", ClientFrame::Stats { detail }.to_line())?;
    stream.flush()?;
    let mut reader = std::io::BufReader::new(stream);
    let mut line = String::new();
    std::io::BufRead::read_line(&mut reader, &mut line)?;
    if line.trim().is_empty() {
        return Err("server closed the connection without answering".into());
    }
    let frame = ServerFrame::parse(line.trim_end()).map_err(|e| format!("bad reply: {e}"))?;
    let ServerFrame::Stats { body } = frame else {
        return Err(format!("unexpected reply frame: {}", line.trim_end()).into());
    };
    if args.has("json") {
        println!("{body}");
        return Ok(());
    }
    print!("{}", render_stats(&body));
    Ok(())
}

/// Human-readable rendering of a `stats` frame body. Unknown or missing
/// fields degrade to 0 rather than erroring — the snapshot is advisory.
fn render_stats(body: &isrl_obs::json::Json) -> String {
    use isrl_obs::json::Json;
    let num = |path: &[&str]| -> f64 {
        let mut cur = body;
        for key in path {
            match cur.get(key) {
                Some(v) => cur = v,
                None => return 0.0,
            }
        }
        cur.as_f64().unwrap_or(0.0)
    };
    let mut out = String::new();
    let push = |out: &mut String, line: String| {
        out.push_str(&line);
        out.push('\n');
    };
    push(
        &mut out,
        format!(
            "server stats (asked over conn {}, uptime {:.1}s)",
            num(&["conn"]),
            num(&["uptime_ms"]) / 1e3
        ),
    );
    push(
        &mut out,
        format!(
            "connections:   {} active ({} busy, {} idle), {} opened",
            num(&["connections", "active"]),
            num(&["connections", "busy"]),
            num(&["connections", "idle"]),
            num(&["connections", "opened"])
        ),
    );
    push(
        &mut out,
        format!(
            "sessions:      {} active, {} opened, {} completed",
            num(&["sessions", "active"]),
            num(&["sessions", "opened"]),
            num(&["sessions", "completed"])
        ),
    );
    push(
        &mut out,
        format!(
            "requests:      {} total, {:.1}/s over the last {:.0}s",
            num(&["requests", "total"]),
            num(&["requests", "rate_per_s"]),
            num(&["requests", "window_s"])
        ),
    );
    push(
        &mut out,
        format!(
            "round latency: p50 {:.3}ms  p90 {:.3}ms  p99 {:.3}ms  max {:.3}ms  (n={})",
            num(&["round_ms", "p50"]),
            num(&["round_ms", "p90"]),
            num(&["round_ms", "p99"]),
            num(&["round_ms", "max"]),
            num(&["round_ms", "count"])
        ),
    );
    let errors = body
        .get("errors_by_kind")
        .and_then(Json::as_obj)
        .unwrap_or(&[]);
    if errors.is_empty() {
        push(&mut out, "errors:        none".to_string());
    } else {
        let listed: Vec<String> = errors
            .iter()
            .map(|(k, v)| format!("{k} {}", v.as_f64().unwrap_or(0.0)))
            .collect();
        push(&mut out, format!("errors:        {}", listed.join(", ")));
    }
    push(
        &mut out,
        format!(
            "batch:         {} calls, {} coalesced, {} session-scans, {} utilities; \
             last window drained {} msg(s)",
            num(&["batch", "calls"]),
            num(&["batch", "coalesced"]),
            num(&["batch", "sessions_scanned"]),
            num(&["batch", "utilities"]),
            num(&["batch", "window_occupancy"])
        ),
    );
    push(
        &mut out,
        format!(
            "flight:        ring depth {}, {} buffered, {} recorded, {} slow_round dump(s)",
            num(&["flight", "depth"]),
            num(&["flight", "buffered"]),
            num(&["flight", "recorded"]),
            num(&["flight", "slow_rounds"])
        ),
    );
    if let Some(per_conn) = body.get("per_conn").and_then(Json::as_arr) {
        for c in per_conn {
            let id = c.get("conn").and_then(Json::as_f64).unwrap_or(0.0);
            let sessions = c.get("sessions").and_then(Json::as_f64).unwrap_or(0.0);
            push(&mut out, format!("  conn {id}: {sessions} session(s)"));
        }
    }
    out
}

/// `isrl loadgen` — replay N simulated users against a live server.
pub fn loadgen(args: &Args) -> CmdResult {
    args.ensure_known(&[
        "connect",
        "users",
        "concurrency",
        "seed",
        "eps",
        "algo",
        "noise",
        "shutdown",
        "out",
        "trace-out",
        "metrics",
        "metrics-interval",
    ])?;
    let tracing = crate::trace::begin(args)?;
    let algo = args.get("algo").unwrap_or("ea");
    let algo = isrl_core::serving::AlgoKind::parse(algo)
        .ok_or_else(|| format!("--algo must be ea or aa, got {algo:?}"))?;
    let cfg = LoadgenConfig {
        addr: args.required("connect")?.to_string(),
        users: args.get_or("users", 32usize, "integer")?,
        concurrency: args.get_or("concurrency", 8usize, "integer")?,
        seed: args.get_or("seed", 7u64, "integer")?,
        eps: args.get_or("eps", 0.1f64, "number")?,
        algo,
        noise: args.get_or("noise", 0.0f64, "number")?,
        send_shutdown: args.has("shutdown"),
    };
    let report = run_loadgen(&cfg).map_err(|e| format!("loadgen: {e}"))?;
    println!("users:          {} (algo {})", report.users, algo.as_str());
    println!(
        "rounds:         {} total, {} session(s) truncated",
        report.rounds_total, report.truncated
    );
    println!("elapsed:        {:.2}s", report.elapsed_secs);
    println!("sessions/sec:   {:.1}", report.sessions_per_sec);
    println!("round p50:      {:.3}ms", report.round_p50_ms);
    println!("round p99:      {:.3}ms", report.round_p99_ms);
    let per_user: Vec<String> = report
        .rounds_per_user
        .iter()
        .map(ToString::to_string)
        .collect();
    println!("per-user rounds: {}", per_user.join(","));
    if let Some(out) = args.get("out").filter(|p| !p.is_empty()) {
        std::fs::write(out, format!("{}\n", report.to_json()))?;
        println!("report saved to {out}");
    }
    crate::trace::finish(tracing)
}

/// `isrl inspect` — summarize a checkpoint.
pub fn inspect(args: &Args) -> CmdResult {
    args.ensure_known(&["model"])?;
    let path = args.required("model")?;
    let bytes = std::fs::read(path)?;
    if let Ok(agent) = checkpoint::load_ea(&bytes) {
        let cfg = agent.config();
        println!("kind:              EA (exact)");
        println!("dimensionality:    {}", agent.dim());
        println!("episodes trained:  {}", agent.episodes_trained());
        println!("network params:    {}", agent.dqn().network().n_params());
        println!(
            "state:             m_e={} d_eps={} variant={:?}",
            cfg.m_e, cfg.d_eps, cfg.state_variant
        );
        println!(
            "actions:           m_h={} n_samples={}",
            cfg.m_h, cfg.n_samples
        );
        println!(
            "rl:                gamma={} lr={} c={}",
            cfg.gamma, cfg.lr, cfg.reward_c
        );
        return Ok(());
    }
    let agent = checkpoint::load_aa(&bytes)?;
    let cfg = agent.config();
    println!("kind:              AA (approximate)");
    println!("dimensionality:    {}", agent.dim());
    println!("episodes trained:  {}", agent.episodes_trained());
    println!("network params:    {}", agent.dqn().network().n_params());
    println!(
        "actions:           m_h={} top_k={} rank_by_distance={}",
        cfg.m_h, cfg.pair_gen.top_k, cfg.pair_gen.rank_by_distance
    );
    println!(
        "rl:                gamma={} lr={} c={}",
        cfg.gamma, cfg.lr, cfg.reward_c
    );
    Ok(())
}
