//! Dataset resolution shared by the CLI commands: built-in generators,
//! CSV files, and the skyline/normalization pipeline.

use crate::args::{ArgError, Args};
use isrl_data::{csv, real, skyline, synthetic, Dataset, Direction, Distribution};

/// How the CLI found its dataset (for logging).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataSource {
    /// One of the built-in generators.
    Builtin(String),
    /// A user CSV file.
    Csv(String),
}

/// Errors while resolving a dataset.
#[derive(Debug)]
pub enum DataError {
    /// Argument problems.
    Arg(ArgError),
    /// File I/O failure.
    Io(std::io::Error),
    /// CSV parse/shape failure.
    Csv(csv::CsvError),
    /// Neither `--data` nor `--builtin` given, or an unknown builtin name.
    BadSource(String),
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataError::Arg(e) => write!(f, "{e}"),
            DataError::Io(e) => write!(f, "i/o error: {e}"),
            DataError::Csv(e) => write!(f, "csv error: {e}"),
            DataError::BadSource(s) => write!(f, "{s}"),
        }
    }
}

impl std::error::Error for DataError {}

impl From<ArgError> for DataError {
    fn from(e: ArgError) -> Self {
        DataError::Arg(e)
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

impl From<csv::CsvError> for DataError {
    fn from(e: csv::CsvError) -> Self {
        DataError::Csv(e)
    }
}

/// Parses the shared dataset flags:
///
/// * `--builtin car|player|anti:<n>x<d>|corr:<n>x<d>|indep:<n>x<d>`
/// * `--data file.csv [--smaller col1,col2]` — numeric CSV, every column an
///   attribute; listed columns are smaller-is-better
/// * `--no-skyline` to skip the skyline preprocessing (applied by default
///   for `d ≤ 8`, matching the evaluation protocol)
/// * `--seed` for the builtin generators
pub fn resolve_dataset(args: &Args) -> Result<(Dataset, DataSource), DataError> {
    let seed = args.get_or("seed", 7u64, "integer")?;
    let (raw, source) = match (args.get("builtin"), args.get("data")) {
        (Some(name), _) if !name.is_empty() => {
            (builtin(name, seed)?, DataSource::Builtin(name.to_string()))
        }
        (_, Some(path)) if !path.is_empty() => {
            let text = std::fs::read_to_string(path)?;
            (
                load_csv(&text, args.get("smaller").unwrap_or(""))?,
                DataSource::Csv(path.into()),
            )
        }
        _ => {
            return Err(DataError::BadSource(
                "provide a dataset: --builtin car|player|anti:<n>x<d> or --data file.csv".into(),
            ))
        }
    };
    let data = if args.has("no-skyline") || raw.dim() > 8 {
        raw
    } else {
        skyline(&raw)
    };
    Ok((data, source))
}

fn builtin(name: &str, seed: u64) -> Result<Dataset, DataError> {
    if name == "car" {
        return Ok(real::car_like(seed));
    }
    if name == "player" {
        return Ok(real::player_like(seed));
    }
    // Synthetic spec: "<dist>:<n>x<d>".
    let (dist_name, shape) = name
        .split_once(':')
        .ok_or_else(|| DataError::BadSource(format!("unknown builtin {name:?}")))?;
    let dist = match dist_name {
        "anti" => Distribution::AntiCorrelated,
        "corr" => Distribution::Correlated,
        "indep" => Distribution::Independent,
        other => {
            return Err(DataError::BadSource(format!(
                "unknown distribution {other:?}"
            )))
        }
    };
    let (n, d) = shape
        .split_once('x')
        .and_then(|(n, d)| Some((n.parse().ok()?, d.parse().ok()?)))
        .ok_or_else(|| {
            DataError::BadSource(format!("bad shape in {name:?}; expected e.g. anti:10000x4"))
        })?;
    Ok(synthetic::generate(n, d, dist, seed))
}

fn load_csv(text: &str, smaller: &str) -> Result<Dataset, DataError> {
    let table = csv::parse(text)?;
    let smaller: Vec<&str> = smaller.split(',').filter(|s| !s.is_empty()).collect();
    let columns: Vec<(&str, Direction)> = table
        .header
        .iter()
        .map(|h| {
            let dir = if smaller.contains(&h.as_str()) {
                Direction::SmallerBetter
            } else {
                Direction::LargerBetter
            };
            (h.as_str(), dir)
        })
        .collect();
    Ok(csv::load_dataset(text, &columns)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn builtin_synthetic_spec() {
        let (data, source) = resolve_dataset(&args("--builtin anti:200x3 --seed 1")).unwrap();
        assert_eq!(data.dim(), 3);
        assert!(data.len() <= 200, "skyline applied by default");
        assert_eq!(source, DataSource::Builtin("anti:200x3".into()));
    }

    #[test]
    fn no_skyline_flag_keeps_everything() {
        let (data, _) =
            resolve_dataset(&args("--builtin indep:150x3 --seed 1 --no-skyline")).unwrap();
        assert_eq!(data.len(), 150);
    }

    #[test]
    fn high_dim_skips_skyline_automatically() {
        let (data, _) = resolve_dataset(&args("--builtin anti:100x12 --seed 1")).unwrap();
        assert_eq!(data.len(), 100);
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(resolve_dataset(&args("--builtin nope:10x2")).is_err());
        assert!(resolve_dataset(&args("--builtin anti:banana")).is_err());
        assert!(resolve_dataset(&args("")).is_err());
    }

    #[test]
    fn csv_loading_with_direction_spec() {
        let dir = std::env::temp_dir().join("isrl_cli_test.csv");
        std::fs::write(&dir, "price,hp\n100,50\n80,70\n120,90\n").unwrap();
        let spec = format!("--data {} --smaller price --no-skyline", dir.display());
        let (data, source) = resolve_dataset(&args(&spec)).unwrap();
        assert_eq!(data.dim(), 2);
        assert_eq!(data.len(), 3);
        // Cheapest row gets price score 1.
        assert_eq!(data.point(1)[0], 1.0);
        assert!(matches!(source, DataSource::Csv(_)));
        std::fs::remove_file(dir).ok();
    }
}
