//! `isrl` — command-line tooling for Interactive Search with Reinforcement
//! Learning.
//!
//! ```text
//! isrl generate --builtin anti:10000x4 --out data.csv
//! isrl train    --builtin car --algo ea --eps 0.1 --episodes 300 --out ea.ckpt
//! isrl eval     --builtin car --model ea.ckpt --users 50
//! isrl eval     --builtin car --baseline single-pass --eps 0.1
//! isrl serve    --builtin car --model ea.ckpt
//! isrl inspect  --model ea.ckpt
//! ```

mod args;
mod commands;
mod data_io;
mod trace;

use args::Args;

const USAGE: &str = "\
isrl — Interactive Search with Reinforcement Learning (ICDE 2025)

USAGE: isrl <command> [flags]

COMMANDS:
  generate   write a dataset as CSV
             --builtin car|player|anti:<n>x<d>|corr:<n>x<d>|indep:<n>x<d>
             (or --data file.csv [--smaller col1,col2]) [--no-skyline]
             [--seed N] --out file.csv
  train      train an RL agent and save a checkpoint
             <dataset flags> --algo ea|aa [--eps 0.1] [--episodes 200]
             [--seed N] [--geometry exact|sampled|auto]
             [--trace-out t.jsonl] [--metrics] --out model.ckpt
  eval       evaluate a checkpoint or baseline over simulated users
             <dataset flags> (--model model.ckpt | --baseline
             uh-random|uh-simplex|single-pass|utility-approx)
             [--eps 0.1] [--users 30] [--noise 0.0]
             [--geometry exact|sampled|auto]
             [--trace-out t.jsonl] [--metrics]
  serve      interview a human on stdin, or serve many sessions over TCP
             <dataset flags> --model model.ckpt [--eps 0.1]
             [--listen host:port [--port-file f] [--trace-out t.jsonl]
              [--flight-depth 32] [--slow-factor 4] [--slow-warmup 64]]
  loadgen    replay simulated users against a live `serve --listen` server
             --connect host:port [--users 32] [--concurrency 8] [--seed 7]
             [--eps 0.1] [--algo ea|aa] [--noise 0.0] [--shutdown]
             [--out report.json] [--trace-out t.jsonl]
  stats      query a live server's RED-metrics snapshot over the wire
             --connect host:port [--detail] [--json]
  inspect    summarize a checkpoint
             --model model.ckpt
  trace-validate  check a --trace-out file against the event schema
             (exits nonzero on malformed lines or warning counters)
  trace-report    aggregate a trace into paper-style tables
             <file.jsonl> [--json <dir>] [--only <id>[,<id>…]]
  trace-diff      attribute the latency delta between two traces to
             span subtrees   <a.jsonl> <b.jsonl> [--top <k>] [--json <dir>]

TELEMETRY:
  --trace-out <file>      stream per-round / per-episode events as JSONL
                          (one event per line, trailing summary line)
  --metrics               print counter/span/histogram aggregates to stderr
  --metrics-interval <s>  sample aggregate deltas every <s> seconds as
                          timeseries events (live progress on stderr)
";

/// Shared dataset-selection flags, accepted by every command that loads data.
const DATASET_FLAGS: &str = "\
  --builtin <name>       car | player | anti:<n>x<d> | corr:<n>x<d> | indep:<n>x<d>
  --data <file.csv>      load a CSV instead of a builtin
  --smaller <c1,c2>      CSV columns where smaller is better
  --no-skyline           keep dominated tuples
  --seed <N>             dataset / simulation seed
";

/// Shared telemetry flags (`train` and `eval`).
const TELEMETRY_FLAGS: &str = "\
  --trace-out <file>     stream per-round / per-episode events as JSONL
                         (one event per line, trailing summary line)
  --metrics              print counter/span/histogram aggregates to stderr
  --metrics-interval <s> sample aggregate deltas every <s> seconds as
                         timeseries events (live progress on stderr)
";

/// Per-subcommand usage text for `isrl <command> --help`.
fn command_help(command: &str) -> Option<String> {
    let (summary, flags) = match command {
        "generate" => (
            "write a dataset as CSV",
            format!("{DATASET_FLAGS}  --out <file.csv>       output path (required)\n"),
        ),
        "train" => (
            "train an RL agent and save a checkpoint",
            format!(
                "{DATASET_FLAGS}\
  --algo ea|aa           algorithm to train (default ea)
  --eps <x>              stop-condition threshold (default 0.1)
  --episodes <N>         training episodes (default 200)
  --lr <x>               DQN learning-rate override (any float; \"nan\"
                         is the training-health watchdog drill)
  --geometry <mode>      EA utility-region backend: exact | sampled | auto
                         (default auto: exact up to d=7, sampled above)
  --out <model.ckpt>     checkpoint output path (required)
{TELEMETRY_FLAGS}"
            ),
        ),
        "eval" => (
            "evaluate a checkpoint or baseline over simulated users",
            format!(
                "{DATASET_FLAGS}\
  --model <model.ckpt>   trained agent to evaluate, or:
  --baseline <name>      uh-random | uh-simplex | single-pass | utility-approx
  --eps <x>              stop-condition threshold (default 0.1)
  --users <N>            simulated users (default 30)
  --noise <x>            answer-flip probability (default 0.0)
  --geometry <mode>      EA utility-region backend: exact | sampled | auto
                         (default auto: exact up to d=7, sampled above)
{TELEMETRY_FLAGS}"
            ),
        ),
        "serve" => (
            "interview a human on stdin, or serve many sessions over TCP",
            format!(
                "{DATASET_FLAGS}\
  --model <model.ckpt>   trained agent to serve (required)
  --eps <x>              stop-condition threshold (default 0.1; stdin mode —
                         TCP clients pick ε per session in their hello frame)
  --geometry <mode>      EA utility-region backend: exact | sampled | auto
                         (default auto: exact up to d=7, sampled above)
  --listen <host:port>   serve the line-JSON protocol over TCP instead of
                         interviewing on stdin (port 0 picks a free port);
                         runs until a client sends a shutdown frame
  --port-file <file>     write the bound port once listening (with --listen)
  --rolling-window <s>   horizon of the rolling round-latency sketch behind
                         the stats frame and slow-round threshold (default 30)
  --flight-depth <N>     rounds kept in the flight-recorder ring (default 32)
  --slow-factor <x>      a round slower than x × rolling p99 dumps a
                         slow_round event (default 4; must be > 1)
  --slow-warmup <N>      rolling samples required before the slow-round
                         trigger arms (default 64)
  --slow-cooldown <N>    requests to suppress further dumps after one fires
                         (default 64)
{TELEMETRY_FLAGS}"
            ),
        ),
        "loadgen" => (
            "replay simulated users against a live `serve --listen` server",
            format!(
                "\
  --connect <host:port>  server address (required)
  --users <N>            simulated users to replay (default 32)
  --concurrency <N>      client connections; users dealt round-robin (default 8)
  --seed <N>             base seed; user u plays utility mix(seed, u) (default 7)
  --eps <x>              per-session regret threshold (default 0.1)
  --algo ea|aa           which registered policy to request (default ea)
  --noise <x>            answer-flip probability (default 0.0)
  --shutdown             send a shutdown frame after all users finish
  --out <report.json>    save the aggregate report as JSON
{TELEMETRY_FLAGS}"
            ),
        ),
        "stats" => (
            "query a live server's RED-metrics snapshot over the wire",
            "  --connect <host:port>  server address (required)
  --detail               include the per-connection session breakdown
  --json                 print the raw stats frame body as one JSON line\n"
                .to_string(),
        ),
        "inspect" => (
            "summarize a checkpoint",
            "  --model <model.ckpt>   checkpoint to describe (required)\n".to_string(),
        ),
        "trace-validate" => (
            "check a --trace-out file against the event schema",
            "  <file.jsonl>           trace to validate (positional); exits
                         nonzero on malformed lines or warning counters\n"
                .to_string(),
        ),
        "trace-report" => (
            "aggregate a trace into paper-style tables",
            "  <file.jsonl>           trace to report on (positional)
  --json <dir>           also save each table as <dir>/trace_<id>.json
  --only <id>[,<id>…]    print only the listed tables (questions |
                         episodes | phases | rounds | lp | latency |
                         serve | serve_errors | slow | timeseries |
                         census); unknown ids fail upfront\n"
                .to_string(),
        ),
        "trace-diff" => (
            "attribute the latency delta between two traces to span subtrees",
            "  <a.jsonl> <b.jsonl>    baseline and candidate traces (positional);
                         both must contain profile events (--trace-out)
  --top <k>              rows to keep, ranked by |Δself| (default 10)
  --json <dir>           also save the table as <dir>/trace_diff.json\n"
                .to_string(),
        ),
        _ => return None,
    };
    Some(format!(
        "isrl {command} — {summary}\n\nUSAGE: isrl {command} [flags]\n\nFLAGS:\n{flags}"
    ))
}

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() || raw[0] == "--help" || raw[0] == "help" {
        eprint!("{USAGE}");
        std::process::exit(if raw.is_empty() { 2 } else { 0 });
    }
    let command = raw.remove(0);
    let args = Args::parse(raw);
    if args.wants_help() {
        match command_help(&command) {
            Some(text) => {
                print!("{text}");
                std::process::exit(0);
            }
            None => {
                eprintln!("unknown command {command:?}\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let result = match command.as_str() {
        "generate" => commands::generate(&args),
        "train" => commands::train(&args),
        "eval" => commands::eval(&args),
        "serve" => commands::serve(&args),
        "loadgen" => commands::loadgen(&args),
        "stats" => commands::stats(&args),
        "inspect" => commands::inspect(&args),
        "trace-validate" => trace::validate(&args),
        "trace-report" => trace::report(&args),
        "trace-diff" => trace::diff(&args),
        other => {
            eprintln!("unknown command {other:?}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
