//! Telemetry plumbing (`--trace-out`, `--metrics`, `--metrics-interval`)
//! and the `trace-validate` / `trace-report` commands.
//!
//! Telemetry is opt-in: the sink stays disabled (every instrumentation
//! site is one relaxed atomic load) unless one of the flags is given.
//! `--metrics-interval <secs>` additionally starts the background
//! snapshotter, which emits one `timeseries` event per interval (aggregate
//! deltas: episodes/sec, LP warm-hit rate, replay occupancy, per-phase
//! latency) and echoes a progress line to stderr. At the end of the
//! command the snapshotter is stopped (one final sample) and the sink is
//! drained exactly once — the JSONL file gets every buffered event plus
//! the trailing `summary` line, and `--metrics` prints the aggregate table
//! to stderr so it never mixes with a command's stdout output.

use std::time::Duration;

use crate::args::Args;
use crate::commands::CmdResult;

/// What the user asked for; returned by [`begin`], consumed by [`finish`].
pub struct TraceOpts {
    out: Option<String>,
    metrics: bool,
    snapshotter: Option<isrl_obs::Snapshotter>,
}

/// Reads `--trace-out` / `--metrics` / `--metrics-interval` and, if any is
/// present, resets and enables the global telemetry sink. A positive
/// `--metrics-interval` starts the periodic snapshotter (echoing one
/// progress line per sample).
pub fn begin(args: &Args) -> Result<TraceOpts, Box<dyn std::error::Error>> {
    let out = args
        .get("trace-out")
        .filter(|p| !p.is_empty())
        .map(String::from);
    let metrics = args.has("metrics");
    let interval = args.get_or("metrics-interval", 0.0f64, "number of seconds")?;
    if interval < 0.0 || interval.is_nan() {
        return Err(format!("--metrics-interval {interval} must be >= 0").into());
    }
    let snapshotter = if out.is_some() || metrics || interval > 0.0 {
        isrl_obs::reset();
        isrl_obs::set_enabled(true);
        (interval > 0.0)
            .then(|| isrl_obs::Snapshotter::start(Duration::from_secs_f64(interval), true))
    } else {
        None
    };
    Ok(TraceOpts {
        out,
        metrics,
        snapshotter,
    })
}

/// Stops the snapshotter (final sample) and drains the sink: writes the
/// JSONL trace (events + one `summary` line) when `--trace-out` was given,
/// prints the aggregate table to stderr when `--metrics` was given, and
/// warns loudly when the bounded event buffer overflowed (the trace is
/// incomplete and `trace-validate` would reject it). No-op when no
/// telemetry flag was present.
pub fn finish(opts: TraceOpts) -> CmdResult {
    if let Some(s) = opts.snapshotter {
        s.stop();
    } else if opts.out.is_none() && !opts.metrics {
        return Ok(());
    }
    isrl_obs::set_enabled(false);
    let snap = isrl_obs::snapshot();
    let dropped = isrl_obs::counter_value(isrl_obs::DROPPED_COUNTER);
    if let Some(path) = &opts.out {
        let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
        snap.write_jsonl(&mut file)?;
        use std::io::Write as _;
        file.flush()?;
        eprintln!(
            "trace: {} events written to {path}{}",
            snap.n_events(),
            if dropped > 0 {
                format!(" ({dropped} DROPPED — raise the interval or split the run)")
            } else {
                String::new()
            }
        );
    }
    if dropped > 0 {
        eprintln!(
            "warning: {dropped} event(s) dropped at the {} buffer cap; the trace is incomplete",
            isrl_obs::EVENT_CAP
        );
    }
    if opts.metrics {
        eprint!("{}", snap.render());
    }
    Ok(())
}

/// `isrl trace-validate <file>` — checks a `--trace-out` file against the
/// documented schema (DESIGN.md §9). Exits with an error when any line is
/// malformed, when the summary line is missing or duplicated, when round
/// or timeseries ordering is violated, or when a warning counter (LP
/// iteration caps, EA sampling fallbacks, dropped events) is nonzero.
pub fn validate(args: &Args) -> CmdResult {
    args.ensure_known(&[])?;
    let [path] = args.positional() else {
        return Err("usage: isrl trace-validate <trace.jsonl>".into());
    };
    let text = std::fs::read_to_string(path)?;
    let report = isrl_obs::schema::validate_trace(&text).map_err(|e| format!("{path}: {e}"))?;
    for (kind, n) in &report.events {
        println!("{kind:<12} {n}");
    }
    if !report.warnings.is_empty() {
        for (name, v) in &report.warnings {
            eprintln!("warning counter {name} = {v} (expected 0)");
        }
        return Err(format!(
            "{path}: {} warning counter(s) nonzero",
            report.warnings.len()
        )
        .into());
    }
    println!("{path}: valid trace");
    Ok(())
}

/// `isrl trace-report <file>` — aggregates any JSONL trace into the
/// paper-style tables (question-count distributions, per-phase time
/// breakdown, warm-vs-cold LP counters, quantile-sketch latencies,
/// snapshotter timeseries) and prints them. `--json <dir>` additionally
/// saves every table as `<dir>/trace_<id>.json` in the
/// `bench::report::Table` format, and `--only <id>[,<id>…]` restricts
/// output to the named tables — an unknown id fails upfront, listing the
/// ids this trace actually produced. Output is deterministic: the same
/// trace always renders byte-identically.
pub fn report(args: &Args) -> CmdResult {
    args.ensure_known(&["json", "only"])?;
    let [path] = args.positional() else {
        return Err(
            "usage: isrl trace-report <trace.jsonl> [--json <dir>] [--only <id>[,<id>…]]".into(),
        );
    };
    let text = std::fs::read_to_string(path)?;
    let tables = isrl_obs::report::report(&text).map_err(|e| format!("{path}: {e}"))?;
    if tables.is_empty() {
        return Err(format!("{path}: no reportable events in trace").into());
    }
    let only: Vec<&str> = args
        .get("only")
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.split(',')
                .map(str::trim)
                .filter(|t| !t.is_empty())
                .collect()
        })
        .unwrap_or_default();
    for id in &only {
        if !tables.iter().any(|t| t.id == *id) {
            return Err(format!(
                "no table with id {id:?}; available: {}",
                tables
                    .iter()
                    .map(|t| t.id.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
            .into());
        }
    }
    let json_dir = args.get("json").filter(|s| !s.is_empty());
    let mut printed = 0usize;
    for rt in &tables {
        if !only.is_empty() && !only.contains(&rt.id.as_str()) {
            continue;
        }
        let headers: Vec<&str> = rt.headers.iter().map(String::as_str).collect();
        let mut t = isrl_bench::report::Table::new(rt.id.clone(), rt.title.clone(), &headers);
        for row in &rt.rows {
            t.push_row(row.clone());
        }
        print!("{}", t.render());
        println!();
        if let Some(dir) = json_dir {
            let dir = std::path::Path::new(dir);
            std::fs::create_dir_all(dir)?;
            t.save_json(&dir.join(format!("trace_{}.json", t.id)))?;
        }
        printed += 1;
    }
    if let Some(dir) = json_dir {
        eprintln!("wrote {printed} table(s) as JSON under {dir}");
    }
    Ok(())
}

/// `isrl trace-diff <a> <b>` — aligns the span-tree profiles of two traces
/// and attributes the total latency delta (B − A) to per-subtree self-time
/// deltas (see `isrl_obs::profile`). Rows are ranked by absolute delta;
/// because self times partition each trace's attributed wall time, the
/// `share %` column says exactly which subtree owns the regression.
/// `--top <k>` bounds the table (default 10); `--json <dir>` also saves it
/// as `<dir>/trace_diff.json`.
pub fn diff(args: &Args) -> CmdResult {
    args.ensure_known(&["top", "json"])?;
    let [path_a, path_b] = args.positional() else {
        return Err("usage: isrl trace-diff <a.jsonl> <b.jsonl> [--top <k>] [--json <dir>]".into());
    };
    let top = args.get_or("top", 10usize, "integer")?;
    let load = |path: &str| -> Result<isrl_obs::profile::ProfileAccum, Box<dyn std::error::Error>> {
        let text = std::fs::read_to_string(path)?;
        let acc = isrl_obs::profile::ProfileAccum::from_trace(&text)
            .map_err(|e| format!("{path}: {e}"))?;
        if acc.events == 0 {
            return Err(format!(
                "{path}: no profile events — record the trace with --trace-out on a \
                 telemetry-enabled run"
            )
            .into());
        }
        Ok(acc)
    };
    let a = load(path_a)?;
    let b = load(path_b)?;
    let d = isrl_obs::profile::diff(&a, &b, top);
    println!(
        "trace A ({path_a}): {} profile event(s), {:.3} ms attributed",
        a.events, d.total_a_ms
    );
    println!(
        "trace B ({path_b}): {} profile event(s), {:.3} ms attributed",
        b.events, d.total_b_ms
    );
    println!("delta (B − A): {:+.3} ms\n", d.delta_ms);
    let mut t = isrl_bench::report::Table::new(
        "trace_diff",
        "Latency delta attribution by span subtree (self time, B − A)",
        &[
            "span",
            "count A",
            "count B",
            "total A (ms)",
            "total B (ms)",
            "Δself (ms)",
            "share %",
        ],
    );
    for r in &d.rows {
        t.push_row(vec![
            r.path.clone(),
            r.count_a.to_string(),
            r.count_b.to_string(),
            format!("{:.3}", r.total_a_ms),
            format!("{:.3}", r.total_b_ms),
            format!("{:+.3}", r.delta_self_ms),
            format!("{:+.1}", r.share_pct),
        ]);
    }
    print!("{}", t.render());
    if let Some(dir) = args.get("json").filter(|s| !s.is_empty()) {
        std::fs::create_dir_all(dir)?;
        t.save_json(&std::path::Path::new(dir).join("trace_diff.json"))?;
        eprintln!("wrote diff table as JSON under {dir}");
    }
    Ok(())
}
