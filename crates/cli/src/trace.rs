//! `--trace-out` / `--metrics` plumbing and the `trace-validate` command.
//!
//! Telemetry is opt-in: the sink stays disabled (every instrumentation
//! site is one relaxed atomic load) unless one of the two flags is given.
//! At the end of the command the sink is drained exactly once — the JSONL
//! file gets every buffered event plus the trailing `summary` line, and
//! `--metrics` prints the aggregate table to stderr so it never mixes
//! with a command's stdout output.

use crate::args::Args;
use crate::commands::CmdResult;

/// What the user asked for; returned by [`begin`], consumed by [`finish`].
pub struct TraceOpts {
    out: Option<String>,
    metrics: bool,
}

/// Reads `--trace-out` / `--metrics` and, if either is present, resets and
/// enables the global telemetry sink.
pub fn begin(args: &Args) -> TraceOpts {
    let out = args
        .get("trace-out")
        .filter(|p| !p.is_empty())
        .map(String::from);
    let metrics = args.has("metrics");
    if out.is_some() || metrics {
        isrl_obs::reset();
        isrl_obs::set_enabled(true);
    }
    TraceOpts { out, metrics }
}

/// Drains the sink: writes the JSONL trace (events + one `summary` line)
/// when `--trace-out` was given, prints the aggregate table to stderr when
/// `--metrics` was given. No-op when neither flag was present.
pub fn finish(opts: &TraceOpts) -> CmdResult {
    if opts.out.is_none() && !opts.metrics {
        return Ok(());
    }
    isrl_obs::set_enabled(false);
    let snap = isrl_obs::snapshot();
    if let Some(path) = &opts.out {
        let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
        snap.write_jsonl(&mut file)?;
        use std::io::Write as _;
        file.flush()?;
        eprintln!("trace: {} events written to {path}", snap.n_events());
    }
    if opts.metrics {
        eprint!("{}", snap.render());
    }
    Ok(())
}

/// `isrl trace-validate <file>` — checks a `--trace-out` file against the
/// documented schema (DESIGN.md §9). Exits with an error when any line is
/// malformed, when the summary line is missing or duplicated, or when a
/// warning counter (LP iteration caps, EA sampling fallbacks) is nonzero.
pub fn validate(args: &Args) -> CmdResult {
    args.ensure_known(&[])?;
    let [path] = args.positional() else {
        return Err("usage: isrl trace-validate <trace.jsonl>".into());
    };
    let text = std::fs::read_to_string(path)?;
    let report = isrl_obs::schema::validate_trace(&text).map_err(|e| format!("{path}: {e}"))?;
    for (kind, n) in &report.events {
        println!("{kind:<12} {n}");
    }
    if !report.warnings.is_empty() {
        for (name, v) in &report.warnings {
            eprintln!("warning counter {name} = {v} (expected 0)");
        }
        return Err(format!(
            "{path}: {} warning counter(s) nonzero",
            report.warnings.len()
        )
        .into());
    }
    println!("{path}: valid trace");
    Ok(())
}
