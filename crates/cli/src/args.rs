//! Minimal flag parser: `--key value` pairs plus positional arguments.
//! No external dependency; errors carry the offending flag for usable
//! messages.

use std::collections::BTreeMap;

/// Parsed command line: positionals in order, flags as key → value
/// (`--flag` with no value stores an empty string).
#[derive(Debug, Clone, Default)]
pub struct Args {
    positional: Vec<String>,
    flags: BTreeMap<String, String>,
}

/// Argument errors with enough context for a one-line message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A required flag was not supplied.
    Missing(&'static str),
    /// A flag's value failed to parse (flag, value, expected type).
    Invalid(&'static str, String, &'static str),
    /// A flag that this command does not understand.
    Unknown(String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::Missing(flag) => write!(f, "missing required flag --{flag}"),
            ArgError::Invalid(flag, val, ty) => {
                write!(f, "--{flag} {val:?} is not a valid {ty}")
            }
            ArgError::Unknown(flag) => write!(f, "unknown flag --{flag}"),
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw arguments (without the program name). A token starting
    /// with `--` becomes a flag; if the next token does not start with `--`
    /// it becomes that flag's value.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Self {
        let mut out = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(flag) = tok.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(next) if !next.starts_with("--") => iter.next().unwrap(),
                    _ => String::new(),
                };
                out.flags.insert(flag.to_string(), value);
            } else {
                out.positional.push(tok);
            }
        }
        out
    }

    /// Positional arguments in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// Raw string flag, if present.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).map(String::as_str)
    }

    /// `true` iff the flag was supplied (with or without a value).
    pub fn has(&self, flag: &str) -> bool {
        self.flags.contains_key(flag)
    }

    /// `true` iff `--help` was supplied. Checked before command dispatch so
    /// `isrl <command> --help` prints usage instead of tripping the
    /// unknown-flag rejection in [`Args::ensure_known`].
    pub fn wants_help(&self) -> bool {
        self.has("help")
    }

    /// Required string flag.
    pub fn required(&self, flag: &'static str) -> Result<&str, ArgError> {
        self.get(flag)
            .filter(|v| !v.is_empty())
            .ok_or(ArgError::Missing(flag))
    }

    /// Optional typed flag with a default.
    pub fn get_or<T: std::str::FromStr>(
        &self,
        flag: &'static str,
        default: T,
        ty: &'static str,
    ) -> Result<T, ArgError> {
        match self.get(flag) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError::Invalid(flag, v.to_string(), ty)),
        }
    }

    /// Rejects any flag not in the allow list (typo protection).
    pub fn ensure_known(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for key in self.flags.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(ArgError::Unknown(key.clone()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn splits_positionals_and_flags() {
        let a = parse("train --eps 0.1 --out model.ckpt");
        assert_eq!(a.positional(), &["train".to_string()]);
        assert_eq!(a.get("eps"), Some("0.1"));
        assert_eq!(a.get("out"), Some("model.ckpt"));
    }

    #[test]
    fn bare_flags_have_empty_values() {
        let a = parse("generate --skyline --n 100");
        assert!(a.has("skyline"));
        assert_eq!(a.get("skyline"), Some(""));
        assert_eq!(a.get("n"), Some("100"));
    }

    #[test]
    fn typed_defaults_and_errors() {
        let a = parse("x --n 100 --eps banana");
        assert_eq!(a.get_or("n", 5usize, "integer").unwrap(), 100);
        assert_eq!(a.get_or("missing", 5usize, "integer").unwrap(), 5);
        assert_eq!(
            a.get_or("eps", 0.1f64, "number"),
            Err(ArgError::Invalid("eps", "banana".into(), "number"))
        );
    }

    #[test]
    fn required_rejects_missing_and_empty() {
        let a = parse("x --empty --ok fine");
        assert_eq!(a.required("ok").unwrap(), "fine");
        assert_eq!(a.required("empty"), Err(ArgError::Missing("empty")));
        assert_eq!(a.required("absent"), Err(ArgError::Missing("absent")));
    }

    #[test]
    fn help_is_detected_anywhere_in_the_flags() {
        assert!(parse("train --help").wants_help());
        assert!(parse("eval --builtin car --help").wants_help());
        assert!(!parse("train --out m.ckpt").wants_help());
    }

    #[test]
    fn unknown_flags_are_caught() {
        let a = parse("x --good 1 --typo 2");
        assert!(a.ensure_known(&["good"]).is_err());
        assert!(a.ensure_known(&["good", "typo"]).is_ok());
    }

    #[test]
    fn errors_render_helpfully() {
        assert_eq!(
            ArgError::Missing("out").to_string(),
            "missing required flag --out"
        );
        assert!(ArgError::Unknown("nope".into())
            .to_string()
            .contains("nope"));
    }
}
