//! Span-tree profiles: per-episode call-tree latency attribution and the
//! `trace-diff` alignment algorithm.
//!
//! A profile is the flat `(path, count, total)` table a profile scope
//! collects ([`crate::profile_begin`]/[`crate::profile_end`]). This module
//! upgrades it to a tree: a path's *parent* is everything before its last
//! `/`, and a node's **self time** is its total minus the totals of its
//! direct children (clamped at zero against clock jitter) — so `lp` time
//! inside `geom_update` is charged to `geom_update/lp`, and `geom_update`'s
//! self time is what the cut bookkeeping itself cost.
//!
//! [`profile_event`] freezes one scope into a schema-validated `profile`
//! event (DESIGN.md §13). [`ProfileAccum`] re-aggregates those events out
//! of a trace file, and [`diff`] aligns two accumulations by path: because
//! self times partition each tree's total wall time, the per-path self-time
//! deltas partition the total latency delta exactly, which is what lets the
//! diff table say "this subtree owns N% of the regression".

use std::collections::BTreeMap;
use std::time::Duration;

use crate::event::Event;
use crate::json::{parse, Json};

/// Per-path statistics inside one profile (or an accumulation of many).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PathStat {
    /// Completed spans on this path.
    pub count: u64,
    /// Total wall time, milliseconds.
    pub total_ms: f64,
    /// Total minus direct children's totals, clamped at zero.
    pub self_ms: f64,
}

/// Computes self-vs-child accounting over a flat `(path, count, total)`
/// table: every node starts with `self = total`, then each node subtracts
/// its total from its parent's self time.
pub fn tree_stats(pairs: &[(String, u64, Duration)]) -> BTreeMap<String, PathStat> {
    let mut out: BTreeMap<String, PathStat> = BTreeMap::new();
    for (path, count, total) in pairs {
        let ms = total.as_secs_f64() * 1e3;
        let stat = out.entry(path.clone()).or_default();
        stat.count += count;
        stat.total_ms += ms;
        stat.self_ms += ms;
    }
    let totals: Vec<(String, f64)> = out.iter().map(|(p, s)| (p.clone(), s.total_ms)).collect();
    for (path, total_ms) in totals {
        if let Some((parent, _)) = path.rsplit_once('/') {
            if let Some(p) = out.get_mut(parent) {
                p.self_ms = (p.self_ms - total_ms).max(0.0);
            }
        }
    }
    out
}

/// Builds the `profile` event for one finished scope: `algo`, `rounds`,
/// and a `spans` object mapping each path to count/total/self.
pub fn profile_event(algo: &str, rounds: u64, pairs: &[(String, u64, Duration)]) -> Event {
    let stats = tree_stats(pairs);
    let spans = Json::Obj(
        stats
            .iter()
            .map(|(path, s)| {
                (
                    path.clone(),
                    Json::Obj(vec![
                        ("count".into(), Json::from(s.count)),
                        ("total_ms".into(), Json::from(s.total_ms)),
                        ("self_ms".into(), Json::from(s.self_ms)),
                    ]),
                )
            })
            .collect(),
    );
    Event::new("profile")
        .field("algo", algo.to_string())
        .field("rounds", rounds)
        .field("spans", spans)
}

/// Sum of every `profile` event in one trace, path-aligned.
#[derive(Debug, Clone, Default)]
pub struct ProfileAccum {
    /// Path → accumulated stats across all profile events.
    pub spans: BTreeMap<String, PathStat>,
    /// Number of `profile` events ingested.
    pub events: u64,
}

impl ProfileAccum {
    /// Ingests every `profile` event out of a JSONL trace. Non-profile
    /// lines are skipped; malformed JSON is an error.
    pub fn from_trace(text: &str) -> Result<Self, String> {
        let mut acc = Self::default();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let doc = parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            if doc.get("ev").and_then(Json::as_str) != Some("profile") {
                continue;
            }
            acc.events += 1;
            let Some(spans) = doc.get("spans").and_then(Json::as_obj) else {
                return Err(format!("line {}: profile event without spans", lineno + 1));
            };
            for (path, stat) in spans {
                let num = |k: &str| stat.get(k).and_then(Json::as_f64).unwrap_or(0.0);
                let slot = acc.spans.entry(path.clone()).or_default();
                slot.count += num("count") as u64;
                slot.total_ms += num("total_ms");
                slot.self_ms += num("self_ms");
            }
        }
        Ok(acc)
    }

    /// Total attributed wall time: the sum of self times, which equals the
    /// sum of root-span totals.
    pub fn total_ms(&self) -> f64 {
        self.spans.values().map(|s| s.self_ms).sum()
    }
}

/// One row of the trace-diff table: a path present in either trace, with
/// both sides' stats and its share of the total delta.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Span path.
    pub path: String,
    /// Span count in trace A.
    pub count_a: u64,
    /// Span count in trace B.
    pub count_b: u64,
    /// Total milliseconds in trace A.
    pub total_a_ms: f64,
    /// Total milliseconds in trace B.
    pub total_b_ms: f64,
    /// Self-time delta (B − A), milliseconds. These sum to the total delta
    /// across all rows.
    pub delta_self_ms: f64,
    /// `delta_self_ms` as a percentage of the total delta (0 when the
    /// total delta is negligible).
    pub share_pct: f64,
}

/// A full trace-diff: totals plus rows ranked by attribution.
#[derive(Debug, Clone)]
pub struct ProfileDiff {
    /// Total attributed milliseconds in trace A.
    pub total_a_ms: f64,
    /// Total attributed milliseconds in trace B.
    pub total_b_ms: f64,
    /// `total_b_ms - total_a_ms`.
    pub delta_ms: f64,
    /// Rows ranked by `|delta_self_ms|` descending (ties by path), cut to
    /// the requested top-k.
    pub rows: Vec<DiffRow>,
}

/// Aligns two profile accumulations by span path and attributes the total
/// latency delta to per-path self-time deltas, keeping the `top_k` largest
/// movers. Deterministic: ranked by `|delta_self_ms|` descending, ties
/// broken by path.
pub fn diff(a: &ProfileAccum, b: &ProfileAccum, top_k: usize) -> ProfileDiff {
    let total_a_ms = a.total_ms();
    let total_b_ms = b.total_ms();
    let delta_ms = total_b_ms - total_a_ms;
    let mut paths: Vec<&String> = a.spans.keys().chain(b.spans.keys()).collect();
    paths.sort_unstable();
    paths.dedup();
    let mut rows: Vec<DiffRow> = paths
        .into_iter()
        .map(|path| {
            let sa = a.spans.get(path).copied().unwrap_or_default();
            let sb = b.spans.get(path).copied().unwrap_or_default();
            let delta_self_ms = sb.self_ms - sa.self_ms;
            DiffRow {
                path: path.clone(),
                count_a: sa.count,
                count_b: sb.count,
                total_a_ms: sa.total_ms,
                total_b_ms: sb.total_ms,
                delta_self_ms,
                share_pct: if delta_ms.abs() > 1e-9 {
                    delta_self_ms / delta_ms * 100.0
                } else {
                    0.0
                },
            }
        })
        .collect();
    rows.sort_by(|x, y| {
        y.delta_self_ms
            .abs()
            .total_cmp(&x.delta_self_ms.abs())
            .then_with(|| x.path.cmp(&y.path))
    });
    rows.truncate(top_k);
    ProfileDiff {
        total_a_ms,
        total_b_ms,
        delta_ms,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: f64) -> Duration {
        Duration::from_secs_f64(v / 1e3)
    }

    #[test]
    fn self_time_subtracts_direct_children_only() {
        let pairs = vec![
            ("round".to_string(), 1, ms(10.0)),
            ("round/geom".to_string(), 2, ms(6.0)),
            ("round/geom/lp".to_string(), 4, ms(4.0)),
            ("round/nn".to_string(), 1, ms(1.0)),
        ];
        let t = tree_stats(&pairs);
        assert!((t["round"].self_ms - 3.0).abs() < 1e-9); // 10 - 6 - 1
        assert!((t["round/geom"].self_ms - 2.0).abs() < 1e-9); // 6 - 4
        assert!((t["round/geom/lp"].self_ms - 4.0).abs() < 1e-9); // leaf
        assert!((t["round/nn"].self_ms - 1.0).abs() < 1e-9);
    }

    #[test]
    fn self_time_clamps_clock_jitter() {
        let pairs = vec![
            ("a".to_string(), 1, ms(1.0)),
            ("a/b".to_string(), 1, ms(1.5)), // child "longer" than parent
        ];
        let t = tree_stats(&pairs);
        assert_eq!(t["a"].self_ms, 0.0);
    }

    #[test]
    fn accum_and_diff_attribute_the_delta() {
        let mk = |lp_ms: f64| {
            let pairs = vec![
                ("geom".to_string(), 1, ms(2.0 + lp_ms)),
                ("geom/lp".to_string(), 3, ms(lp_ms)),
                ("nn".to_string(), 1, ms(1.0)),
            ];
            let text = format!("{}", profile_event("EA", 4, &pairs).to_json());
            ProfileAccum::from_trace(&text).unwrap()
        };
        let a = mk(3.0);
        let b = mk(9.0);
        assert_eq!(a.events, 1);
        let d = diff(&a, &b, 10);
        assert!((d.delta_ms - 6.0).abs() < 1e-9);
        assert_eq!(d.rows[0].path, "geom/lp");
        assert!((d.rows[0].delta_self_ms - 6.0).abs() < 1e-9);
        assert!((d.rows[0].share_pct - 100.0).abs() < 1e-6);
        // Self-time deltas partition the total delta.
        let sum: f64 = diff(&a, &b, usize::MAX)
            .rows
            .iter()
            .map(|r| r.delta_self_ms)
            .sum();
        assert!((sum - d.delta_ms).abs() < 1e-9);
    }

    #[test]
    fn diff_handles_paths_missing_on_one_side() {
        let pairs = vec![("new_phase".to_string(), 2, ms(5.0))];
        let text = format!("{}", profile_event("AA", 1, &pairs).to_json());
        let b = ProfileAccum::from_trace(&text).unwrap();
        let d = diff(&ProfileAccum::default(), &b, 5);
        assert_eq!(d.rows[0].path, "new_phase");
        assert_eq!(d.rows[0].count_a, 0);
        assert!((d.rows[0].delta_self_ms - 5.0).abs() < 1e-9);
    }

    #[test]
    fn from_trace_skips_other_events_and_rejects_bad_json() {
        let text = "{\"ev\":\"round\",\"t_ms\":0,\"algo\":\"EA\",\"round\":1,\"elapsed_ms\":1}\n";
        let acc = ProfileAccum::from_trace(text).unwrap();
        assert_eq!(acc.events, 0);
        assert!(ProfileAccum::from_trace("not json").is_err());
    }
}
