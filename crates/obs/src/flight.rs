//! p99 outlier flight recorder for the serve path.
//!
//! The serve reactor keeps a bounded ring of the most recent per-round
//! flight records — `(conn, req, session, round, ms)` plus the profile
//! scope's `(path, count, total)` span table for the batch that produced
//! the round. When a round's latency breaches a configurable multiple of
//! the rolling p99 (see [`crate::quantile::RollingSketch`]), the recorder
//! freezes the offender into a schema-validated `slow_round` event: the
//! full span tree with self-vs-child accounting (via
//! [`crate::profile::tree_stats`]) plus one-line summaries of every round
//! still in the ring — so tail latency is *explained*, not just measured.
//!
//! Emission is rate-limited by the caller (one dump per incident, with a
//! cooldown in rounds); the recorder itself only buffers and formats.

use std::collections::VecDeque;
use std::time::Duration;

use crate::event::Event;
use crate::json::Json;
use crate::profile::tree_stats;

/// One round's worth of flight data: wire identity, server-side latency,
/// and the batch's profile-scope span table.
#[derive(Debug, Clone)]
pub struct FlightRecord {
    /// Connection the round belongs to.
    pub conn: u64,
    /// Request id of the round (0 for the session-opening `hello`).
    pub req: u64,
    /// Session id.
    pub session: u64,
    /// Round number just answered (0 for `hello` → first question).
    pub round: u64,
    /// Server-side latency: request accepted → response written, ms.
    pub ms: f64,
    /// `(path, count, total)` triples from the batch's profile scope.
    pub spans: Vec<(String, u64, Duration)>,
}

/// Bounded ring of recent [`FlightRecord`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    cap: usize,
    ring: VecDeque<FlightRecord>,
    recorded: u64,
}

impl FlightRecorder {
    /// A recorder keeping the last `cap` rounds (at least 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        Self {
            cap,
            ring: VecDeque::with_capacity(cap),
            recorded: 0,
        }
    }

    /// Ring capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Rounds currently buffered.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total rounds ever recorded (not capped).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Pushes one round, evicting the oldest past capacity.
    pub fn record(&mut self, rec: FlightRecord) {
        if self.ring.len() == self.cap {
            self.ring.pop_front();
        }
        self.ring.push_back(rec);
        self.recorded += 1;
    }

    /// Builds the `slow_round` event for `offender`: its span tree (same
    /// count/total/self shape as `profile` events) plus `recent` — one
    /// summary per buffered round, oldest first. The offender should
    /// already be recorded so it appears in its own `recent` tail.
    pub fn slow_round_event(
        &self,
        offender: &FlightRecord,
        threshold_ms: f64,
        p99_ms: f64,
    ) -> Event {
        let stats = tree_stats(&offender.spans);
        let spans = Json::Obj(
            stats
                .iter()
                .map(|(path, s)| {
                    (
                        path.clone(),
                        Json::Obj(vec![
                            ("count".into(), Json::from(s.count)),
                            ("total_ms".into(), Json::from(s.total_ms)),
                            ("self_ms".into(), Json::from(s.self_ms)),
                        ]),
                    )
                })
                .collect(),
        );
        let recent = Json::Arr(
            self.ring
                .iter()
                .map(|r| {
                    Json::Obj(vec![
                        ("conn".into(), Json::from(r.conn)),
                        ("req".into(), Json::from(r.req)),
                        ("session".into(), Json::from(r.session)),
                        ("round".into(), Json::from(r.round)),
                        ("ms".into(), Json::from(r.ms)),
                    ])
                })
                .collect(),
        );
        Event::new("slow_round")
            .field("conn", offender.conn)
            .field("req", offender.req)
            .field("session", offender.session)
            .field("round", offender.round)
            .field("ms", offender.ms)
            .field("threshold_ms", threshold_ms)
            .field("p99_ms", p99_ms)
            .field("spans", spans)
            .field("recent", recent)
    }
}

/// The span path with the largest self time in a `spans` tree object (the
/// `trace-report` `slow` table's "culprit" column). Ties break toward the
/// lexicographically first path. `None` for empty/non-object input.
pub fn top_self_span(spans: &Json) -> Option<(String, f64)> {
    let fields = spans.as_obj()?;
    fields
        .iter()
        .filter_map(|(path, stat)| {
            let self_ms = stat.get("self_ms").and_then(Json::as_f64)?;
            Some((path.clone(), self_ms))
        })
        .max_by(|a, b| a.1.total_cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: f64) -> Duration {
        Duration::from_secs_f64(v / 1e3)
    }

    fn rec(req: u64, latency: f64) -> FlightRecord {
        FlightRecord {
            conn: 1,
            req,
            session: 7,
            round: req,
            ms: latency,
            spans: vec![
                ("serve_batch".to_string(), 1, ms(latency)),
                ("serve_batch/top1".to_string(), 2, ms(latency * 0.8)),
            ],
        }
    }

    #[test]
    fn ring_is_bounded_and_keeps_newest() {
        let mut fr = FlightRecorder::new(3);
        for i in 0..5 {
            fr.record(rec(i, 1.0));
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.recorded(), 5);
        let ev = fr.slow_round_event(&rec(4, 9.0), 4.0, 1.0).to_json();
        let recent = ev.get("recent").and_then(Json::as_arr).unwrap();
        assert_eq!(recent.len(), 3);
        let reqs: Vec<f64> = recent
            .iter()
            .map(|r| r.get("req").and_then(Json::as_f64).unwrap())
            .collect();
        assert_eq!(reqs, vec![2.0, 3.0, 4.0]); // oldest first
    }

    #[test]
    fn slow_round_event_carries_span_tree_with_self_times() {
        let mut fr = FlightRecorder::new(8);
        let offender = rec(1, 10.0);
        fr.record(offender.clone());
        let ev = fr.slow_round_event(&offender, 8.0, 2.0).to_json();
        assert_eq!(ev.get("ev").and_then(Json::as_str), Some("slow_round"));
        assert_eq!(ev.get("ms").and_then(Json::as_f64), Some(10.0));
        assert_eq!(ev.get("threshold_ms").and_then(Json::as_f64), Some(8.0));
        let spans = ev.get("spans").unwrap();
        let batch = spans.get("serve_batch").unwrap();
        // parent self = 10 - 8 = 2
        assert!((batch.get("self_ms").and_then(Json::as_f64).unwrap() - 2.0).abs() < 1e-9);
        let (top, top_ms) = top_self_span(spans).unwrap();
        assert_eq!(top, "serve_batch/top1");
        assert!((top_ms - 8.0).abs() < 1e-9);
    }

    #[test]
    fn top_self_span_handles_empty_and_ties() {
        assert_eq!(top_self_span(&Json::Obj(vec![])), None);
        assert_eq!(top_self_span(&Json::Null), None);
        let tied = Json::Obj(vec![
            (
                "b".into(),
                Json::Obj(vec![("self_ms".into(), Json::from(1.0))]),
            ),
            (
                "a".into(),
                Json::Obj(vec![("self_ms".into(), Json::from(1.0))]),
            ),
        ]);
        assert_eq!(top_self_span(&tied).unwrap().0, "a");
    }
}
