//! Hierarchical span timers.
//!
//! [`span`] returns an RAII guard; while any guard is live on a thread, its
//! name sits on a thread-local stack, and the guard's drop attributes the
//! elapsed time to the `/`-joined path of the stack at entry (so `"round"`
//! inside `"episode"` aggregates as `"episode/round"`). Aggregation is
//! per-path into a global registry.
//!
//! Cost model: when the global sink is disabled *and* no round scope is
//! active on the thread, [`span`] is one atomic load plus one thread-local
//! flag read — no clock call, no allocation. That is the fast path the
//! `hotpath` bench guards.
//!
//! **Round scopes** exist so interactive sessions can fill
//! `RoundTrace::phases` without going through the global sink: between
//! [`round_begin`] and [`round_end`] every span finishing on the thread
//! also adds its duration to a per-leaf-name accumulator, which
//! [`round_end`] returns. This works even when the sink is disabled, so
//! `--trace-out`-less traced runs still get per-phase wall time.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    static ROUND: RefCell<Option<Vec<(&'static str, Duration)>>> = const { RefCell::new(None) };
}

/// Aggregated statistics of one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of completed spans on this path.
    pub count: u64,
    /// Total time across all of them.
    pub total: Duration,
    /// Longest single span.
    pub max: Duration,
}

impl SpanStat {
    fn add(&mut self, d: Duration) {
        self.count += 1;
        self.total += d;
        self.max = self.max.max(d);
    }
}

fn registry() -> &'static Mutex<BTreeMap<String, SpanStat>> {
    static REG: OnceLock<Mutex<BTreeMap<String, SpanStat>>> = OnceLock::new();
    REG.get_or_init(Default::default)
}

/// RAII guard created by [`span`]; records on drop.
#[must_use = "a span guard times the scope it lives in"]
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

fn round_active() -> bool {
    ROUND.with(|r| r.borrow().is_some())
}

/// Opens a span named `name`. Inert (no clock read) when the sink is
/// disabled and no round scope is active on this thread.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::enabled() && !round_active() {
        return SpanGuard { name, start: None };
    }
    STACK.with(|s| s.borrow_mut().push(name));
    SpanGuard {
        name,
        start: Some(Instant::now()),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur = start.elapsed();
        let path = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = stack.join("/");
            stack.pop();
            path
        });
        if crate::enabled() {
            registry().lock().unwrap().entry(path).or_default().add(dur);
        }
        ROUND.with(|r| {
            if let Some(acc) = r.borrow_mut().as_mut() {
                match acc.iter_mut().find(|(n, _)| *n == self.name) {
                    Some(slot) => slot.1 += dur,
                    None => acc.push((self.name, dur)),
                }
            }
        });
    }
}

/// Opens a round scope on this thread: until [`round_end`], finishing spans
/// also accumulate into a per-leaf-name table. Nested round scopes are not
/// supported; a second `round_begin` restarts the accumulator.
pub fn round_begin() {
    ROUND.with(|r| *r.borrow_mut() = Some(Vec::new()));
}

/// Closes the thread's round scope and returns `(leaf name, total)` pairs
/// in first-seen order. Empty if no scope was open.
pub fn round_end() -> Vec<(&'static str, Duration)> {
    ROUND.with(|r| r.borrow_mut().take()).unwrap_or_default()
}

/// All span paths and their aggregated stats, sorted by path.
pub(crate) fn snapshot_spans() -> Vec<(String, SpanStat)> {
    registry()
        .lock()
        .unwrap()
        .iter()
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

/// Clears the global span registry (thread-local scopes are unaffected).
pub(crate) fn reset_spans() {
    registry().lock().unwrap().clear();
}
