//! Hierarchical span timers.
//!
//! [`span`] returns an RAII guard; while any guard is live on a thread, its
//! name sits on a thread-local stack, and the guard's drop attributes the
//! elapsed time to the `/`-joined path of the stack at entry (so `"round"`
//! inside `"episode"` aggregates as `"episode/round"`). Aggregation is
//! per-path into a global registry.
//!
//! Path joining is bounded: nesting past [`MAX_DEPTH`] levels and paths
//! past [`MAX_PATH_LEN`] bytes truncate (with a `…` marker) and count in
//! [`TRUNCATED_COUNTER`], so pathological recursion cannot bloat the JSONL
//! buffer or the registry.
//!
//! Cost model: when the global sink is disabled *and* no round or profile
//! scope is active on the thread, [`span`] is one atomic load plus one
//! thread-local flag read — no clock call, no allocation. That is the fast
//! path the `hotpath` bench guards.
//!
//! **Round scopes** exist so interactive sessions can fill
//! `RoundTrace::phases` without going through the global sink: between
//! [`round_begin`] and [`round_end`] every span finishing on the thread
//! also adds its duration to a per-leaf-name accumulator, which
//! [`round_end`] returns. This works even when the sink is disabled, so
//! `--trace-out`-less traced runs still get per-phase wall time.
//!
//! **Profile scopes** ([`profile_begin`]/[`profile_end`]) accumulate
//! per-*path* `(count, total)` pairs the same way; `obs::profile` turns
//! the result into a span tree with self-vs-child wall-time accounting.
//!
//! For regression drills, `ISRL_SLOW_SPAN=<leaf>:<ms>` injects a busy-wait
//! into every span with that leaf name — the artificial slowdown the
//! `trace-diff` golden test and CI smoke job attribute back to the span.
//! The extended form `<leaf>:<ms>:@<n>` injects only into the *n*-th
//! (1-based, process-wide) span with that leaf name, which is how the
//! serve-path flight-recorder drill makes exactly one round slow.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Deepest span nesting that still joins into a full path; deeper frames
/// collapse into a trailing `…` segment.
pub const MAX_DEPTH: usize = 12;

/// Longest joined path kept verbatim; longer paths truncate with a `…`.
pub const MAX_PATH_LEN: usize = 160;

/// Counter incremented whenever a span path is truncated by either bound.
pub const TRUNCATED_COUNTER: &str = "obs.span.truncated";

/// Per-thread scope state: the live span stack plus the optional round and
/// profile accumulators. One `RefCell` so the [`span`] fast path checks
/// both scopes with a single thread-local access.
#[derive(Default)]
struct Scopes {
    stack: Vec<&'static str>,
    round: Option<Vec<(&'static str, Duration)>>,
    /// Path → (count, total) while a profile scope is open.
    profile: Option<BTreeMap<String, (u64, Duration)>>,
}

thread_local! {
    static SCOPES: RefCell<Scopes> = RefCell::new(Scopes::default());
}

/// Aggregated statistics of one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of completed spans on this path.
    pub count: u64,
    /// Total time across all of them.
    pub total: Duration,
    /// Longest single span.
    pub max: Duration,
}

impl SpanStat {
    fn add(&mut self, d: Duration) {
        self.count += 1;
        self.total += d;
        self.max = self.max.max(d);
    }
}

fn registry() -> &'static Mutex<BTreeMap<String, SpanStat>> {
    static REG: OnceLock<Mutex<BTreeMap<String, SpanStat>>> = OnceLock::new();
    REG.get_or_init(Default::default)
}

/// The `ISRL_SLOW_SPAN=<leaf>:<ms>[:@<n>]` injection target, parsed once.
/// `n`, when present, restricts the busy-wait to the n-th matching span
/// process-wide (1-based).
fn slow_span() -> Option<&'static (String, Duration, Option<u64>)> {
    static SLOW: OnceLock<Option<(String, Duration, Option<u64>)>> = OnceLock::new();
    SLOW.get_or_init(|| {
        let spec = std::env::var("ISRL_SLOW_SPAN").ok()?;
        parse_slow_spec(&spec)
    })
    .as_ref()
}

fn parse_slow_spec(spec: &str) -> Option<(String, Duration, Option<u64>)> {
    let (name, rest) = spec.split_once(':')?;
    let (ms_str, nth) = match rest.split_once(':') {
        Some((ms, at)) => {
            let n: u64 = at.strip_prefix('@')?.parse().ok()?;
            if n == 0 {
                return None;
            }
            (ms, Some(n))
        }
        None => (rest, None),
    };
    let ms: f64 = ms_str.parse().ok()?;
    (!name.is_empty() && ms.is_finite() && ms > 0.0)
        .then(|| (name.to_string(), Duration::from_secs_f64(ms / 1e3), nth))
}

/// Process-wide count of spans matching the `ISRL_SLOW_SPAN` leaf name,
/// used to resolve the `:@<n>` form.
static SLOW_SEEN: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Joins the current stack into a registry path, applying the depth and
/// length bounds. Returns the path and whether truncation happened.
fn join_path(stack: &[&'static str]) -> (String, bool) {
    let mut truncated = false;
    let mut path = if stack.len() > MAX_DEPTH {
        truncated = true;
        let mut p = stack[..MAX_DEPTH].join("/");
        p.push_str("/…");
        p
    } else {
        stack.join("/")
    };
    if path.len() > MAX_PATH_LEN {
        truncated = true;
        let mut cut = MAX_PATH_LEN;
        while !path.is_char_boundary(cut) {
            cut -= 1;
        }
        path.truncate(cut);
        path.push('…');
    }
    (path, truncated)
}

/// RAII guard created by [`span`]; records on drop.
#[must_use = "a span guard times the scope it lives in"]
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

fn scope_active() -> bool {
    SCOPES.with(|s| {
        let s = s.borrow();
        s.round.is_some() || s.profile.is_some()
    })
}

/// Opens a span named `name`. Inert (no clock read) when the sink is
/// disabled and no round or profile scope is active on this thread.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::enabled() && !scope_active() {
        return SpanGuard { name, start: None };
    }
    SCOPES.with(|s| s.borrow_mut().stack.push(name));
    SpanGuard {
        name,
        start: Some(Instant::now()),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        if let Some((slow_name, extra, nth)) = slow_span() {
            if self.name == slow_name {
                let seen = SLOW_SEEN.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
                if nth.map_or(true, |n| seen == n) {
                    // Busy-wait so the injected latency is real wall time —
                    // enclosing spans must see it too, or parents' self time
                    // would go negative in the profile tree.
                    while start.elapsed() < *extra {
                        std::hint::spin_loop();
                    }
                }
            }
        }
        let dur = start.elapsed();
        let (path, truncated) = SCOPES.with(|s| {
            let mut scopes = s.borrow_mut();
            let joined = join_path(&scopes.stack);
            scopes.stack.pop();
            if let Some(acc) = scopes.round.as_mut() {
                match acc.iter_mut().find(|(n, _)| *n == self.name) {
                    Some(slot) => slot.1 += dur,
                    None => acc.push((self.name, dur)),
                }
            }
            if let Some(prof) = scopes.profile.as_mut() {
                let slot = prof.entry(joined.0.clone()).or_insert((0, Duration::ZERO));
                slot.0 += 1;
                slot.1 += dur;
            }
            joined
        });
        if truncated {
            crate::add(TRUNCATED_COUNTER, 1);
        }
        if crate::enabled() {
            registry().lock().unwrap().entry(path).or_default().add(dur);
        }
    }
}

/// Opens a round scope on this thread: until [`round_end`], finishing spans
/// also accumulate into a per-leaf-name table. Nested round scopes are not
/// supported; a second `round_begin` restarts the accumulator.
pub fn round_begin() {
    SCOPES.with(|s| s.borrow_mut().round = Some(Vec::new()));
}

/// Closes the thread's round scope and returns `(leaf name, total)` pairs
/// in first-seen order. Empty if no scope was open.
pub fn round_end() -> Vec<(&'static str, Duration)> {
    SCOPES
        .with(|s| s.borrow_mut().round.take())
        .unwrap_or_default()
}

/// Opens a profile scope on this thread: until [`profile_end`], finishing
/// spans accumulate `(count, total)` per full `/`-joined path. Nested
/// profile scopes are not supported; a second `profile_begin` restarts the
/// accumulator.
pub fn profile_begin() {
    SCOPES.with(|s| s.borrow_mut().profile = Some(BTreeMap::new()));
}

/// Closes the thread's profile scope and returns `(path, count, total)`
/// triples sorted by path. Empty if no scope was open.
pub fn profile_end() -> Vec<(String, u64, Duration)> {
    SCOPES
        .with(|s| s.borrow_mut().profile.take())
        .map(|m| m.into_iter().map(|(p, (c, d))| (p, c, d)).collect())
        .unwrap_or_default()
}

/// All span paths and their aggregated stats, sorted by path.
pub(crate) fn snapshot_spans() -> Vec<(String, SpanStat)> {
    registry()
        .lock()
        .unwrap()
        .iter()
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

/// Clears the global span registry (thread-local scopes are unaffected).
pub(crate) fn reset_spans() {
    registry().lock().unwrap().clear();
}

#[cfg(test)]
mod tests {
    use super::parse_slow_spec;
    use std::time::Duration;

    #[test]
    fn slow_spec_parses_plain_and_nth_forms() {
        assert_eq!(
            parse_slow_spec("top1:5"),
            Some(("top1".into(), Duration::from_millis(5), None))
        );
        assert_eq!(
            parse_slow_spec("top1:2.5:@7"),
            Some(("top1".into(), Duration::from_micros(2500), Some(7)))
        );
        for bad in [
            "",
            "top1",
            ":5",
            "top1:nope",
            "top1:0",
            "top1:5:@0",
            "top1:5:7",
        ] {
            assert_eq!(
                parse_slow_spec(bad),
                None,
                "spec {bad:?} should be rejected"
            );
        }
    }
}
