//! Monotonic counters.
//!
//! A counter is a named `AtomicU64` in a global registry. The hot-path
//! contract: [`add`] costs one relaxed atomic load when the sink is
//! disabled; when enabled it takes the registry lock once per call, which
//! instrumented code keeps off inner loops by accumulating locally and
//! adding once per solve/scan/round.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A handle to one named counter; cheap to clone, usable from any thread.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` when the global sink is enabled; no-op otherwise.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one when the global sink is enabled.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

fn registry() -> &'static Mutex<BTreeMap<&'static str, Arc<AtomicU64>>> {
    static REG: OnceLock<Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>> = OnceLock::new();
    REG.get_or_init(Default::default)
}

/// Returns (registering on first use) the counter named `name`. Hot loops
/// should hold on to the handle instead of re-resolving per event.
pub fn counter(name: &'static str) -> Counter {
    let mut reg = registry().lock().unwrap();
    Counter(reg.entry(name).or_default().clone())
}

/// Adds `n` to the counter named `name`. Early-returns on the disabled
/// sink before touching the registry lock.
#[inline]
pub fn add(name: &'static str, n: u64) {
    if !crate::enabled() {
        return;
    }
    counter(name).0.fetch_add(n, Ordering::Relaxed);
}

/// Current value of the counter named `name` (0 if never registered).
pub fn counter_value(name: &str) -> u64 {
    registry()
        .lock()
        .unwrap()
        .get(name)
        .map_or(0, |c| c.load(Ordering::Relaxed))
}

/// All counters and their values, sorted by name.
pub(crate) fn snapshot_counters() -> Vec<(String, u64)> {
    registry()
        .lock()
        .unwrap()
        .iter()
        .map(|(k, v)| (k.to_string(), v.load(Ordering::Relaxed)))
        .collect()
}

/// Zeroes every registered counter.
pub(crate) fn reset_counters() {
    for c in registry().lock().unwrap().values() {
        c.store(0, Ordering::Relaxed);
    }
}
