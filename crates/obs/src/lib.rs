//! Telemetry substrate for the interactive-search workspace.
//!
//! Three primitives, all behind one global on/off switch:
//!
//! * **[`span`]** — hierarchical RAII wall-clock timers aggregated per
//!   `/`-joined path, plus per-round scopes feeding `RoundTrace::phases`;
//! * **[`counter`]/[`add`]** — named monotonic counters (LP pivots, cap
//!   hits, sampler acceptance, scan blocks, …);
//! * **[`record`]** — fixed-bucket log-scale histograms (DQN loss,
//!   per-phase latencies).
//!
//! Structured [`Event`]s stream into a bounded buffer; [`snapshot`] drains
//! it and freezes the aggregates, and the result serializes as JSONL (one
//! event per line, one trailing `summary` line) or renders as a text table
//! for `--metrics`. The schema is documented in DESIGN.md §9 and enforced
//! by [`schema::validate_trace`].
//!
//! The sink starts **disabled**; in that state every instrumentation call
//! is a single relaxed atomic load (no clock reads, no locks, no
//! allocation), which is what keeps the hot-path bench honest. Nothing in
//! here depends on crates outside `std` — the workspace builds offline.

pub mod flight;
pub mod json;
pub mod profile;
pub mod quantile;
pub mod report;
pub mod schema;

mod counter;
mod event;
mod gauge;
mod hist;
mod snapshotter;
mod span;

pub use counter::{add, counter, counter_value, Counter};
pub use event::{emit, Event, DROPPED_COUNTER, EVENT_CAP};
pub use flight::{FlightRecord, FlightRecorder};
pub use gauge::{gauge_set, gauge_value};
pub use hist::{bucket_bounds, bucket_index, histogram, record, HistSummary, N_BUCKETS};
pub use json::Json;
pub use quantile::{sketch_record, QuantileSketch, RollingSketch, SketchSummary};
pub use snapshotter::Snapshotter;
pub use span::{
    profile_begin, profile_end, round_begin, round_end, span, SpanGuard, SpanStat, MAX_DEPTH,
    MAX_PATH_LEN, TRUNCATED_COUNTER,
};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// `true` while the global sink accepts data.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the global sink on or off. Instrumentation everywhere becomes
/// live immediately; nothing recorded earlier is lost.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Clears every counter, span aggregate, histogram, and buffered event,
/// and restarts the event epoch. The enabled flag is left as-is. Tests
/// around the global sink call this between scenarios.
pub fn reset() {
    counter::reset_counters();
    span::reset_spans();
    hist::reset_hists();
    gauge::reset_gauges();
    quantile::reset_sketches();
    event::drain_events();
    event::reset_epoch();
}

/// A frozen view of the sink: aggregates copied, events drained.
#[derive(Debug)]
pub struct Snapshot {
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Span stats, sorted by path.
    pub spans: Vec<(String, SpanStat)>,
    /// Histogram summaries (only those with data), sorted by name.
    pub hists: Vec<(String, HistSummary)>,
    /// Gauge last-set values, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// Quantile-sketch summaries (only those with data), sorted by name.
    pub sketches: Vec<(String, SketchSummary)>,
    /// Buffered events in emission order (removed from the sink).
    pub events: Vec<Event>,
}

/// Drains the event buffer and copies the aggregates.
pub fn snapshot() -> Snapshot {
    Snapshot {
        counters: counter::snapshot_counters(),
        spans: span::snapshot_spans(),
        hists: hist::snapshot_hists(),
        gauges: gauge::snapshot_gauges(),
        sketches: quantile::snapshot_sketches(),
        events: event::drain_events(),
    }
}

impl Snapshot {
    /// The aggregate `summary` event object (counters, span stats in
    /// milliseconds, histogram summaries).
    pub fn summary_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Json::from(*v)))
                .collect(),
        );
        let spans = Json::Obj(
            self.spans
                .iter()
                .map(|(k, s)| {
                    (
                        k.clone(),
                        Json::Obj(vec![
                            ("count".into(), Json::from(s.count)),
                            ("total_ms".into(), Json::from(s.total.as_secs_f64() * 1e3)),
                            ("max_ms".into(), Json::from(s.max.as_secs_f64() * 1e3)),
                        ]),
                    )
                })
                .collect(),
        );
        let hists = Json::Obj(
            self.hists
                .iter()
                .map(|(k, h)| (k.clone(), h.to_json()))
                .collect(),
        );
        let gauges = Json::Obj(
            self.gauges
                .iter()
                .map(|(k, v)| (k.clone(), Json::from(*v)))
                .collect(),
        );
        let sketches = Json::Obj(
            self.sketches
                .iter()
                .map(|(k, s)| (k.clone(), s.to_json()))
                .collect(),
        );
        Json::Obj(vec![
            ("ev".into(), Json::from("summary")),
            ("t_ms".into(), Json::from(0.0)),
            ("counters".into(), counters),
            ("spans".into(), spans),
            ("hists".into(), hists),
            ("gauges".into(), gauges),
            ("sketches".into(), sketches),
        ])
    }

    /// Serializes the snapshot as JSONL: every event on its own line, then
    /// the `summary` line. This is the `--trace-out` file format.
    pub fn write_jsonl<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        for e in &self.events {
            writeln!(w, "{}", e.to_json())?;
        }
        writeln!(w, "{}", self.summary_json())
    }

    /// Human-readable aggregate table for `--metrics`.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k:<40} {v}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (k, v) in &self.gauges {
                let _ = writeln!(out, "  {k:<40} {v}");
            }
        }
        if !self.spans.is_empty() {
            out.push_str("spans:                                     count   total_ms    mean_ms     max_ms\n");
            for (k, s) in &self.spans {
                let total = s.total.as_secs_f64() * 1e3;
                let mean = if s.count == 0 {
                    0.0
                } else {
                    total / s.count as f64
                };
                let _ = writeln!(
                    out,
                    "  {k:<40} {:>6} {:>10.3} {:>10.4} {:>10.3}",
                    s.count,
                    total,
                    mean,
                    s.max.as_secs_f64() * 1e3
                );
            }
        }
        if !self.hists.is_empty() {
            out.push_str("histograms:                                 count       mean        p50        p90        max\n");
            for (k, h) in &self.hists {
                let _ = writeln!(
                    out,
                    "  {k:<40} {:>6} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
                    h.count, h.mean, h.p50, h.p90, h.max
                );
            }
        }
        if !self.sketches.is_empty() {
            out.push_str("sketches:                                   count        p50        p90        p99        max\n");
            for (k, s) in &self.sketches {
                let _ = writeln!(
                    out,
                    "  {k:<40} {:>6} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
                    s.count, s.p50, s.p90, s.p99, s.max
                );
            }
        }
        if out.is_empty() {
            out.push_str("(telemetry sink is empty)\n");
        }
        out
    }

    /// Number of drained events.
    pub fn n_events(&self) -> usize {
        self.events.len()
    }
}
