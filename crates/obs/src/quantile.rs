//! Mergeable streaming quantile sketches (DDSketch-style).
//!
//! A [`QuantileSketch`] summarizes a stream of non-negative values into
//! log-spaced buckets so that any quantile estimate carries a bounded
//! *relative* error: with accuracy parameter `alpha`, the bucket for value
//! `v` is `ceil(ln v / ln gamma)` with `gamma = (1 + alpha) / (1 - alpha)`,
//! and the bucket midpoint `2·gamma^k / (gamma + 1)` is within a factor
//! `1 ± alpha` of every value mapped to bucket `k`. Two sketches over
//! disjoint streams merge exactly by adding bucket counts, so per-worker
//! sketches compose into a run-level one without losing the guarantee.
//!
//! The bucket table is bounded: past [`QuantileSketch::max_buckets`] the
//! *lowest* buckets collapse pairwise (tail accuracy — the p99 this module
//! exists for — is preserved; the far low end degrades first). With the
//! default `alpha = 0.01` and 2048 buckets the sketch spans more than 17
//! orders of magnitude before any collapse happens, so in practice the
//! strict bound holds for every latency/pivot stream in this workspace.
//!
//! Like the rest of the sink, the global registry ([`sketch_record`]) is
//! inert while the sink is disabled: one relaxed atomic load, no locks.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::json::Json;

/// Default relative-error bound for registry sketches.
pub const DEFAULT_ALPHA: f64 = 0.01;

/// Default bucket-count bound for registry sketches.
pub const DEFAULT_MAX_BUCKETS: usize = 2048;

/// Values at or below this map to the zero bucket (reported as 0.0).
const MIN_TRACKABLE: f64 = 1e-9;

/// A mergeable quantile sketch over non-negative values with bounded
/// relative error `alpha` (see the module docs for the guarantee).
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    alpha: f64,
    /// `ln(gamma)`, precomputed; `gamma = (1 + alpha) / (1 - alpha)`.
    ln_gamma: f64,
    /// Bucket key → count. Key `k` covers `(gamma^(k-1), gamma^k]`.
    buckets: BTreeMap<i32, u64>,
    /// Values in `[0, MIN_TRACKABLE]` (and any negatives, clamped).
    zero: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    max_buckets: usize,
    /// Number of low-bucket collapses forced by the bucket bound.
    collapsed: u64,
}

impl QuantileSketch {
    /// A sketch with relative-error bound `alpha` and the default bucket
    /// bound.
    ///
    /// # Panics
    /// Panics unless `0 < alpha < 1`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "alpha must be in (0, 1), got {alpha}"
        );
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        Self {
            alpha,
            ln_gamma: gamma.ln(),
            buckets: BTreeMap::new(),
            zero: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            max_buckets: DEFAULT_MAX_BUCKETS,
            collapsed: 0,
        }
    }

    /// The registry configuration (`alpha = 0.01`, 2048 buckets).
    pub fn default_config() -> Self {
        Self::new(DEFAULT_ALPHA)
    }

    /// Caps the bucket table at `n` (≥ 2); lowest buckets collapse past it.
    pub fn with_max_buckets(mut self, n: usize) -> Self {
        self.max_buckets = n.max(2);
        self
    }

    /// The configured relative-error bound.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded value (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Number of forced low-bucket collapses (0 means the strict error
    /// bound held for every record).
    pub fn collapses(&self) -> u64 {
        self.collapsed
    }

    fn key_of(&self, v: f64) -> i32 {
        // ceil(ln v / ln gamma); clamp the exponent so absurd inputs cannot
        // overflow the i32 key space.
        (v.ln() / self.ln_gamma).ceil().clamp(-1e6, 1e6) as i32
    }

    fn value_of(&self, key: i32) -> f64 {
        // Midpoint (harmonic) estimate of bucket k: 2·gamma^k / (gamma + 1).
        let gamma = (1.0 + self.alpha) / (1.0 - self.alpha);
        2.0 * (key as f64 * self.ln_gamma).exp() / (gamma + 1.0)
    }

    /// Records one value. Negative or sub-[`MIN_TRACKABLE`] inputs land in
    /// the zero bucket; NaN is ignored.
    pub fn record(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        let v = v.max(0.0);
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v <= MIN_TRACKABLE {
            self.zero += 1;
        } else {
            *self.buckets.entry(self.key_of(v)).or_insert(0) += 1;
            self.enforce_bound();
        }
    }

    /// Merges `other` into `self` by bucket-count addition. Both sketches
    /// must share the same `alpha`.
    ///
    /// # Panics
    /// Panics on mismatched `alpha`.
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert!(
            (self.alpha - other.alpha).abs() < 1e-12,
            "cannot merge sketches with different alpha ({} vs {})",
            self.alpha,
            other.alpha
        );
        for (&k, &c) in &other.buckets {
            *self.buckets.entry(k).or_insert(0) += c;
        }
        self.zero += other.zero;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.collapsed += other.collapsed;
        self.enforce_bound();
    }

    fn enforce_bound(&mut self) {
        while self.buckets.len() > self.max_buckets {
            let (&lo, &lo_count) = self.buckets.iter().next().expect("len > max >= 2");
            self.buckets.remove(&lo);
            let (_, next) = self.buckets.iter_mut().next().expect("len >= 2");
            *next += lo_count;
            self.collapsed += 1;
        }
    }

    /// The estimated `q`-quantile (`q ∈ [0, 1]`), clamped to the recorded
    /// `[min, max]`. Returns 0.0 for an empty sketch.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * (self.count - 1) as f64).floor() as u64;
        if rank < self.zero {
            return if self.min <= MIN_TRACKABLE {
                self.min
            } else {
                0.0
            };
        }
        let mut cum = self.zero;
        for (&k, &c) in &self.buckets {
            cum += c;
            if cum > rank {
                return self.value_of(k).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The frozen five-number summary exposed in traces.
    pub fn summary(&self) -> SketchSummary {
        SketchSummary {
            count: self.count,
            mean: self.mean(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            max: self.max(),
        }
    }
}

/// Frozen summary of one sketch: count, mean, p50/p90/p99, max.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SketchSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Mean of recorded values.
    pub mean: f64,
    /// Median estimate.
    pub p50: f64,
    /// 90th-percentile estimate.
    pub p90: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
    /// Exact maximum.
    pub max: f64,
}

impl SketchSummary {
    /// JSON object form used in `summary` and `timeseries` events.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".into(), Json::from(self.count)),
            ("mean".into(), Json::from(self.mean)),
            ("p50".into(), Json::from(self.p50)),
            ("p90".into(), Json::from(self.p90)),
            ("p99".into(), Json::from(self.p99)),
            ("max".into(), Json::from(self.max)),
        ])
    }
}

/// A time-windowed quantile sketch: the last `window` of a stream,
/// summarized with the same bounded relative error as [`QuantileSketch`].
///
/// The window is a ring of `n_buckets` sub-sketches, each covering
/// `window / n_buckets` of wall time. Recording rotates the ring (expired
/// buckets are cleared), so a quantile query merges only the live buckets
/// — values older than the window have aged out entirely. This is what
/// the serve-path `stats` endpoint answers "what is p99 *right now*"
/// from: a cumulative sketch would dilute a fresh regression with hours
/// of healthy history.
///
/// Granularity note: expiry happens a bucket at a time, so the effective
/// window wobbles between `window - window/n_buckets` and `window`.
#[derive(Debug)]
pub struct RollingSketch {
    alpha: f64,
    bucket_window: std::time::Duration,
    buckets: Vec<QuantileSketch>,
    /// Ring index of the bucket currently recording.
    current: usize,
    /// Start of the current bucket's time slice.
    bucket_start: std::time::Instant,
    started: std::time::Instant,
}

impl RollingSketch {
    /// A rolling sketch covering `window`, split into `n_buckets` slices
    /// (clamped to at least 2), with relative-error bound `alpha`.
    pub fn new(alpha: f64, window: std::time::Duration, n_buckets: usize) -> Self {
        let n = n_buckets.max(2);
        let now = std::time::Instant::now();
        Self {
            alpha,
            bucket_window: window.max(std::time::Duration::from_millis(2)) / n as u32,
            buckets: (0..n).map(|_| QuantileSketch::new(alpha)).collect(),
            current: 0,
            bucket_start: now,
            started: now,
        }
    }

    /// The serve-path configuration: `alpha = 0.01` over a 30 s window in
    /// 6 slices.
    pub fn default_serve() -> Self {
        Self::new(DEFAULT_ALPHA, std::time::Duration::from_secs(30), 6)
    }

    /// Total window covered (bucket slice × ring length).
    pub fn window(&self) -> std::time::Duration {
        self.bucket_window * self.buckets.len() as u32
    }

    /// Advances the ring so `now` falls inside the current bucket,
    /// clearing every slice that expired on the way.
    fn rotate_to(&mut self, now: std::time::Instant) {
        let n = self.buckets.len();
        let mut steps = 0usize;
        while now.duration_since(self.bucket_start) >= self.bucket_window {
            self.bucket_start += self.bucket_window;
            self.current = (self.current + 1) % n;
            self.buckets[self.current] = QuantileSketch::new(self.alpha);
            steps += 1;
            if steps >= n {
                // Idle longer than the whole window: everything expired;
                // jump the clock instead of spinning per slice.
                for b in &mut self.buckets {
                    *b = QuantileSketch::new(self.alpha);
                }
                self.bucket_start = now;
                break;
            }
        }
    }

    fn record_at(&mut self, v: f64, now: std::time::Instant) {
        self.rotate_to(now);
        self.buckets[self.current].record(v);
    }

    fn merged_at(&mut self, now: std::time::Instant) -> QuantileSketch {
        self.rotate_to(now);
        let mut out = QuantileSketch::new(self.alpha);
        for b in &self.buckets {
            out.merge(b);
        }
        out
    }

    /// Records one value into the current time slice.
    pub fn record(&mut self, v: f64) {
        self.record_at(v, std::time::Instant::now());
    }

    /// Number of values still inside the window.
    pub fn count(&mut self) -> u64 {
        self.merged_at(std::time::Instant::now()).count()
    }

    /// The five-number summary of the values still inside the window.
    pub fn summary(&mut self) -> SketchSummary {
        self.merged_at(std::time::Instant::now()).summary()
    }

    /// Records per second over the window (or over the sketch's lifetime,
    /// when it is younger than the window).
    pub fn rate_per_sec(&mut self) -> f64 {
        let now = std::time::Instant::now();
        let horizon = self
            .window()
            .min(now.duration_since(self.started))
            .as_secs_f64()
            .max(1e-3);
        self.merged_at(now).count() as f64 / horizon
    }
}

type SketchRegistry = Mutex<BTreeMap<&'static str, Arc<Mutex<QuantileSketch>>>>;

fn registry() -> &'static SketchRegistry {
    static REG: OnceLock<SketchRegistry> = OnceLock::new();
    REG.get_or_init(Default::default)
}

/// Records `v` into the global sketch named `name` when the sink is
/// enabled; one relaxed atomic load otherwise. Instrumented code keeps
/// this off inner loops — once per round/solve/resample, like [`crate::add`].
#[inline]
pub fn sketch_record(name: &'static str, v: f64) {
    if !crate::enabled() {
        return;
    }
    let sketch = {
        let mut reg = registry().lock().unwrap();
        Arc::clone(
            reg.entry(name)
                .or_insert_with(|| Arc::new(Mutex::new(QuantileSketch::default_config()))),
        )
    };
    sketch.lock().unwrap().record(v);
}

/// Summaries of every non-empty global sketch, sorted by name.
pub(crate) fn snapshot_sketches() -> Vec<(String, SketchSummary)> {
    registry()
        .lock()
        .unwrap()
        .iter()
        .filter_map(|(k, s)| {
            let s = s.lock().unwrap();
            (s.count() > 0).then(|| (k.to_string(), s.summary()))
        })
        .collect()
}

/// Clears every global sketch.
pub(crate) fn reset_sketches() {
    registry().lock().unwrap().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let rank = (q * (sorted.len() - 1) as f64).floor() as usize;
        sorted[rank]
    }

    #[test]
    fn bounded_relative_error_on_a_uniform_stream() {
        let mut s = QuantileSketch::new(0.01);
        let mut vals: Vec<f64> = (1..=10_000).map(|i| i as f64 * 0.123).collect();
        for &v in &vals {
            s.record(v);
        }
        vals.sort_by(f64::total_cmp);
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let exact = exact_quantile(&vals, q);
            let est = s.quantile(q);
            assert!(
                (est - exact).abs() <= 0.011 * exact.abs() + 1e-12,
                "q={q}: est {est} vs exact {exact}"
            );
        }
        assert_eq!(s.collapses(), 0);
    }

    #[test]
    fn merge_equals_recording_the_concatenation() {
        let mut a = QuantileSketch::new(0.02);
        let mut b = QuantileSketch::new(0.02);
        let mut all = QuantileSketch::new(0.02);
        for i in 0..500 {
            let v = (i as f64).exp2().min(1e12) * 0.001;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), all.quantile(q), "q={q}");
        }
    }

    #[test]
    fn zero_and_negative_values_land_in_the_zero_bucket() {
        let mut s = QuantileSketch::new(0.01);
        for _ in 0..90 {
            s.record(0.0);
        }
        s.record(-3.0); // clamped
        for _ in 0..9 {
            s.record(100.0);
        }
        assert_eq!(s.count(), 100);
        assert_eq!(s.quantile(0.5), 0.0);
        assert!((s.quantile(0.99) - 100.0).abs() <= 1.1);
    }

    #[test]
    fn bucket_bound_collapses_low_end_only() {
        let mut s = QuantileSketch::new(0.05).with_max_buckets(8);
        for i in 0..1000 {
            s.record(1.001f64.powi(i));
        }
        assert!(s.collapses() > 0);
        // The top of the range stays accurate.
        let top = 1.001f64.powi(999);
        assert!((s.quantile(1.0) - top).abs() <= 0.06 * top);
        assert_eq!(s.count(), 1000);
    }

    #[test]
    fn empty_sketch_is_all_zeros() {
        let s = QuantileSketch::default_config();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    #[should_panic(expected = "different alpha")]
    fn merge_rejects_mismatched_alpha() {
        let mut a = QuantileSketch::new(0.01);
        a.merge(&QuantileSketch::new(0.02));
    }

    #[test]
    fn rolling_sketch_ages_out_old_values_bucket_by_bucket() {
        use std::time::{Duration, Instant};
        let mut r = RollingSketch::new(0.01, Duration::from_secs(8), 4);
        let t0 = Instant::now();
        // 100 slow samples in the first slice, then fast ones later.
        for _ in 0..100 {
            r.record_at(100.0, t0);
        }
        for _ in 0..100 {
            r.record_at(1.0, t0 + Duration::from_secs(5));
        }
        // Both slices still live: p99 sees the slow cohort.
        let now = t0 + Duration::from_secs(5);
        assert_eq!(r.merged_at(now).count(), 200);
        assert!(r.merged_at(now).quantile(0.99) > 90.0);
        // Past the window, the slow slice has expired.
        let later = t0 + Duration::from_secs(9);
        assert_eq!(r.merged_at(later).count(), 100);
        assert!(r.merged_at(later).quantile(0.99) < 2.0);
    }

    #[test]
    fn rolling_sketch_clears_everything_after_a_long_idle_gap() {
        use std::time::{Duration, Instant};
        let mut r = RollingSketch::new(0.01, Duration::from_secs(4), 4);
        let t0 = Instant::now();
        r.record_at(50.0, t0);
        assert_eq!(r.merged_at(t0).count(), 1);
        // An hour idle: the whole ring expired; rotation must not spin
        // per-slice for 3600 s worth of buckets.
        let later = t0 + Duration::from_secs(3600);
        assert_eq!(r.merged_at(later).count(), 0);
        r.record_at(2.0, later);
        assert_eq!(r.merged_at(later).count(), 1);
    }

    #[test]
    fn rolling_sketch_window_and_clamps() {
        use std::time::Duration;
        let r = RollingSketch::new(0.01, Duration::from_secs(30), 6);
        assert_eq!(r.window(), Duration::from_secs(30));
        // n_buckets clamps to >= 2.
        let r = RollingSketch::new(0.01, Duration::from_secs(10), 0);
        assert_eq!(r.window(), Duration::from_secs(10));
    }
}
