//! Minimal JSON value type, writer, and parser.
//!
//! The workspace policy is zero external dependencies (everything else is
//! vendored path-stubs), so the telemetry layer carries its own JSON just
//! like `bench::report` hand-rolls its table export. The writer emits
//! compact single-line documents (JSONL-friendly); the parser exists so the
//! CLI's `trace-validate` subcommand and the CI smoke job can check emitted
//! traces against the schema in DESIGN.md §9 without a registry dependency.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document. Numbers are stored as `f64` (ample for counters below
/// 2^53 and every duration/ratio we emit); objects preserve insertion order
/// so event fields render in the order they were attached.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also what non-finite floats serialize to).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered key-value list.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(fields: Vec<(String, Json)>) -> Self {
        Json::Obj(fields)
    }

    /// Looks up `key` in an object (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Object fields as a name → count map of numeric values (used by the
    /// schema validator to read counter maps out of summary events).
    pub fn to_num_map(&self) -> BTreeMap<String, f64> {
        let mut out = BTreeMap::new();
        if let Json::Obj(fields) = self {
            for (k, v) in fields {
                if let Some(n) = v.as_f64() {
                    out.insert(k.clone(), n);
                }
            }
        }
        out
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Num(v as f64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

impl From<&[f64]> for Json {
    fn from(v: &[f64]) -> Self {
        Json::Arr(v.iter().map(|&x| Json::Num(x)).collect())
    }
}

/// Writes `s` as a JSON string literal with the mandatory escapes.
fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(v) => {
                if !v.is_finite() {
                    f.write_str("null")
                } else if v.fract() == 0.0 && v.abs() < 9.0e15 {
                    write!(f, "{}", *v as i64)
                } else {
                    write!(f, "{v}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parses one JSON document, requiring it to span the whole input (modulo
/// surrounding whitespace). Errors carry a byte offset and a short message.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not reassembled; lone
                            // surrogates degrade to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8 by &str).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_document() {
        let doc = Json::Obj(vec![
            ("ev".into(), Json::from("round")),
            ("round".into(), Json::from(3usize)),
            ("ms".into(), Json::from(1.25)),
            ("ok".into(), Json::from(true)),
            ("cut".into(), Json::from(&[0.5, -0.5][..])),
            ("none".into(), Json::Null),
        ]);
        let text = doc.to_string();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(Json::Num(42.0).to_string(), "42");
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn escapes_are_parsed_and_written() {
        let v = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(parse(&v.to_string()).unwrap(), v);
        assert_eq!(parse("\"\\u0041\\t\"").unwrap(), Json::Str("A\t".into()));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("nul").is_err());
    }
}
