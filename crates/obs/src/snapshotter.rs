//! The periodic snapshotter: a background sampler turning the cumulative
//! aggregates into `timeseries` events.
//!
//! [`Snapshotter::start`] spawns one thread that wakes every `interval`,
//! computes the *delta* of every counter, span, and histogram against the
//! previous wake, and emits one `timeseries` event into the normal event
//! stream (plus the current level of every gauge). Long training runs and
//! sweeps thereby expose live progress — episodes per second, LP warm-hit
//! rate, replay occupancy, per-phase latency — instead of only end-of-run
//! aggregates; `obs::report` and the `trace-report` subcommand consume the
//! samples afterwards.
//!
//! The sampler is strictly opt-in and touches none of the instrumentation
//! fast paths: when no snapshotter is started (the default everywhere) the
//! cost is zero, and a started snapshotter whose sink is disabled skips the
//! wake without reading any registry. Stopping (or dropping) the handle
//! emits one final sample so short runs still produce at least one point.

use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::event::Event;
use crate::json::Json;

/// Cumulative values at the previous sample, for delta computation.
#[derive(Default)]
struct Baseline {
    counters: BTreeMap<String, u64>,
    /// Span path → (count, total seconds).
    spans: BTreeMap<String, (u64, f64)>,
    /// Histogram name → (count, sum).
    hists: BTreeMap<String, (u64, f64)>,
    /// Sketch name → count (quantiles report cumulative levels; the count
    /// baseline only decides whether a sketch moved since the last wake).
    sketches: BTreeMap<String, u64>,
}

/// One delta sample, ready to serialize as a `timeseries` event.
struct Sample {
    counters: Vec<(String, u64)>,
    /// Span path → (count delta, total-ms delta).
    spans: Vec<(String, u64, f64)>,
    /// Histogram name → (count delta, mean of the new values).
    hists: Vec<(String, u64, f64)>,
    /// Sketch name → cumulative summary, for sketches that moved since the
    /// previous wake. Quantiles do not delta; these are current levels.
    sketches: Vec<(String, crate::SketchSummary)>,
    gauges: Vec<(String, u64)>,
    buffered_events: usize,
}

/// Computes the delta of the live aggregates against `base` and advances
/// `base` to the current cumulative values. Zero-delta entries are elided
/// so idle phases serialize compactly.
fn take_sample(base: &mut Baseline) -> Sample {
    let mut counters = Vec::new();
    for (name, cur) in crate::counter::snapshot_counters() {
        let prev = base.counters.get(&name).copied().unwrap_or(0);
        if cur > prev {
            counters.push((name.clone(), cur - prev));
        }
        base.counters.insert(name, cur);
    }
    let mut spans = Vec::new();
    for (path, stat) in crate::span::snapshot_spans() {
        let cur = (stat.count, stat.total.as_secs_f64());
        let prev = base.spans.get(&path).copied().unwrap_or((0, 0.0));
        if cur.0 > prev.0 {
            spans.push((path.clone(), cur.0 - prev.0, (cur.1 - prev.1) * 1e3));
        }
        base.spans.insert(path, cur);
    }
    let mut hists = Vec::new();
    for (name, h) in crate::hist::snapshot_hists() {
        let cur = (h.count, h.mean * h.count as f64);
        let prev = base.hists.get(&name).copied().unwrap_or((0, 0.0));
        if cur.0 > prev.0 {
            let dcount = cur.0 - prev.0;
            hists.push((name.clone(), dcount, (cur.1 - prev.1) / dcount as f64));
        }
        base.hists.insert(name, cur);
    }
    let mut sketches = Vec::new();
    for (name, s) in crate::quantile::snapshot_sketches() {
        let prev = base.sketches.get(&name).copied().unwrap_or(0);
        if s.count > prev {
            sketches.push((name.clone(), s));
        }
        base.sketches.insert(name, s.count);
    }
    Sample {
        counters,
        spans,
        hists,
        sketches,
        gauges: crate::gauge::snapshot_gauges()
            .into_iter()
            .filter(|&(_, v)| v > 0)
            .collect(),
        buffered_events: crate::event::buffered_len(),
    }
}

fn sample_event(seq: u64, interval: Duration, s: &Sample) -> Event {
    let counters = Json::Obj(
        s.counters
            .iter()
            .map(|(k, v)| (k.clone(), Json::from(*v)))
            .collect(),
    );
    let spans = Json::Obj(
        s.spans
            .iter()
            .map(|(k, count, total_ms)| {
                (
                    k.clone(),
                    Json::Obj(vec![
                        ("count".into(), Json::from(*count)),
                        ("total_ms".into(), Json::from(*total_ms)),
                    ]),
                )
            })
            .collect(),
    );
    let hists = Json::Obj(
        s.hists
            .iter()
            .map(|(k, count, mean)| {
                (
                    k.clone(),
                    Json::Obj(vec![
                        ("count".into(), Json::from(*count)),
                        ("mean".into(), Json::from(*mean)),
                    ]),
                )
            })
            .collect(),
    );
    let gauges = Json::Obj(
        s.gauges
            .iter()
            .map(|(k, v)| (k.clone(), Json::from(*v)))
            .collect(),
    );
    let sketches = Json::Obj(
        s.sketches
            .iter()
            .map(|(k, summary)| (k.clone(), summary.to_json()))
            .collect(),
    );
    Event::new("timeseries")
        .field("seq", seq)
        .field("interval_ms", interval.as_secs_f64() * 1e3)
        .field("counters", counters)
        .field("spans", spans)
        .field("hists", hists)
        .field("sketches", sketches)
        .field("gauges", gauges)
        .field("buffered_events", s.buffered_events)
}

/// One compact stderr line per sample (the `--metrics-interval` live view):
/// the sample number plus the largest counter deltas and every gauge.
fn echo_line(seq: u64, interval: Duration, s: &Sample) -> String {
    use std::fmt::Write as _;
    let mut out = format!("[obs] sample #{seq} (+{:.1}s):", interval.as_secs_f64());
    let mut top: Vec<&(String, u64)> = s.counters.iter().collect();
    top.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    for (k, v) in top.into_iter().take(6) {
        let _ = write!(out, " {k}+{v}");
    }
    for (k, v) in &s.gauges {
        let _ = write!(out, " {k}={v}");
    }
    if s.counters.is_empty() && s.gauges.is_empty() {
        out.push_str(" (idle)");
    }
    out
}

/// Handle to the background sampler thread; stops (after one final sample)
/// when [`Snapshotter::stop`] is called or the handle is dropped.
pub struct Snapshotter {
    stop: Arc<(Mutex<bool>, Condvar)>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Snapshotter {
    /// Spawns the sampler. Every `interval` (and once more on stop) it
    /// emits a `timeseries` event with the aggregate deltas since the
    /// previous sample; with `echo` set it also prints one compact progress
    /// line per sample to stderr. Wakes while the sink is disabled sample
    /// nothing (and advance no baselines).
    pub fn start(interval: Duration, echo: bool) -> Self {
        let interval = interval.max(Duration::from_millis(1));
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let signal = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("obs-snapshotter".into())
            .spawn(move || {
                let mut base = Baseline::default();
                let mut seq = 0u64;
                let (lock, cvar) = &*signal;
                let mut stopped = lock.lock().unwrap();
                loop {
                    let (guard, _) = cvar.wait_timeout(stopped, interval).unwrap();
                    stopped = guard;
                    let finishing = *stopped;
                    if crate::enabled() {
                        seq += 1;
                        let sample = take_sample(&mut base);
                        if echo {
                            eprintln!("{}", echo_line(seq, interval, &sample));
                        }
                        crate::emit(sample_event(seq, interval, &sample));
                    }
                    if finishing {
                        return;
                    }
                }
            })
            .expect("spawning the snapshotter thread");
        Snapshotter {
            stop,
            thread: Some(thread),
        }
    }

    /// Signals the thread, waits for its final sample, and joins it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if let Some(thread) = self.thread.take() {
            let (lock, cvar) = &*self.stop;
            *lock.lock().unwrap() = true;
            cvar.notify_all();
            let _ = thread.join();
        }
    }
}

impl Drop for Snapshotter {
    fn drop(&mut self) {
        self.shutdown();
    }
}
