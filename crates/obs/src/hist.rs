//! Fixed-bucket log-scale histograms.
//!
//! Buckets are powers of two: bucket `i` covers `[2^(MIN_EXP + i),
//! 2^(MIN_EXP + i + 1))`. With `MIN_EXP = -30` and 56 buckets the grid
//! spans ~1e-9 … ~6.7e7, ample for the quantities we record (DQN losses,
//! acceptance ratios, millisecond timings). Bucket 0 additionally absorbs
//! everything at or below the floor (including zero and negatives); the
//! last bucket absorbs everything above the ceiling — recording never
//! drops a value, it only saturates resolution.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::json::Json;

/// Number of power-of-two buckets per histogram.
pub const N_BUCKETS: usize = 56;
/// Exponent of the lowest bucket's lower edge: bucket 0 starts at `2^MIN_EXP`.
pub const MIN_EXP: i32 = -30;

/// Index of the bucket holding `v` (see the module docs for edge handling).
pub fn bucket_index(v: f64) -> usize {
    if v <= 0.0 || v.is_nan() {
        return 0; // zero, negatives, NaN: underflow bucket
    }
    let e = v.log2().floor() as i64;
    (e - MIN_EXP as i64).clamp(0, N_BUCKETS as i64 - 1) as usize
}

/// The `[lo, hi)` value range of bucket `i` (ignoring the saturating edges).
pub fn bucket_bounds(i: usize) -> (f64, f64) {
    assert!(i < N_BUCKETS);
    (
        2f64.powi(MIN_EXP + i as i32),
        2f64.powi(MIN_EXP + i as i32 + 1),
    )
}

/// One histogram: bucket counts plus an exact running count/sum/max.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// `f64` bits, updated by CAS.
    sum_bits: AtomicU64,
    /// `f64` bits of the running maximum, updated by CAS.
    max_bits: AtomicU64,
}

fn cas_f64(cell: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let new = f(f64::from_bits(cur)).to_bits();
        match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

impl Histogram {
    fn new() -> Self {
        Self {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    fn record(&self, v: f64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        if v.is_finite() {
            cas_f64(&self.sum_bits, |s| s + v);
            cas_f64(&self.max_bits, |m| m.max(v));
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
        self.max_bits
            .store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
    }

    /// Aggregates the current state (racy reads are fine: telemetry).
    pub fn summary(&self) -> HistSummary {
        let count = self.count.load(Ordering::Relaxed);
        let sum = f64::from_bits(self.sum_bits.load(Ordering::Relaxed));
        let max = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let pct = |p: f64| -> f64 {
            let total: u64 = counts.iter().sum();
            if total == 0 {
                return 0.0;
            }
            let target = (p * total as f64).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= target {
                    let (lo, hi) = bucket_bounds(i);
                    return (lo * hi).sqrt(); // geometric bucket midpoint
                }
            }
            let (lo, hi) = bucket_bounds(N_BUCKETS - 1);
            (lo * hi).sqrt()
        };
        HistSummary {
            count,
            mean: if count == 0 { 0.0 } else { sum / count as f64 },
            p50: pct(0.50),
            p90: pct(0.90),
            max: if count == 0 { 0.0 } else { max },
        }
    }
}

/// The serialized view of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Exact mean of the recorded values.
    pub mean: f64,
    /// Bucket-resolution median (geometric midpoint of the median bucket).
    pub p50: f64,
    /// Bucket-resolution 90th percentile.
    pub p90: f64,
    /// Exact maximum recorded value.
    pub max: f64,
}

impl HistSummary {
    /// JSON object form used inside summary events.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".into(), Json::from(self.count)),
            ("mean".into(), Json::from(self.mean)),
            ("p50".into(), Json::from(self.p50)),
            ("p90".into(), Json::from(self.p90)),
            ("max".into(), Json::from(self.max)),
        ])
    }
}

fn registry() -> &'static Mutex<BTreeMap<&'static str, Arc<Histogram>>> {
    static REG: OnceLock<Mutex<BTreeMap<&'static str, Arc<Histogram>>>> = OnceLock::new();
    REG.get_or_init(Default::default)
}

/// Returns (registering on first use) the histogram named `name`.
pub fn histogram(name: &'static str) -> Arc<Histogram> {
    let mut reg = registry().lock().unwrap();
    reg.entry(name)
        .or_insert_with(|| Arc::new(Histogram::new()))
        .clone()
}

/// Records `v` into the histogram named `name` when the sink is enabled.
#[inline]
pub fn record(name: &'static str, v: f64) {
    if !crate::enabled() {
        return;
    }
    histogram(name).record(v);
}

/// All histograms with at least one recorded value, sorted by name.
pub(crate) fn snapshot_hists() -> Vec<(String, HistSummary)> {
    registry()
        .lock()
        .unwrap()
        .iter()
        .map(|(k, v)| (k.to_string(), v.summary()))
        .filter(|(_, s)| s.count > 0)
        .collect()
}

/// Clears every registered histogram.
pub(crate) fn reset_hists() {
    for h in registry().lock().unwrap().values() {
        h.reset();
    }
}
