//! Structured events and the JSONL buffer.
//!
//! An [`Event`] is a named bag of JSON fields stamped with milliseconds
//! since the recorder epoch. [`emit`] appends to a global buffer (bounded:
//! past [`EVENT_CAP`] events are counted in `obs.events.dropped` instead
//! of stored — a warning counter, so `trace-validate` surfaces the loss);
//! [`crate::snapshot`] drains the buffer for serialization.

use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::Json;

/// Hard cap on buffered events; a week-long sweep cannot OOM the sink.
pub const EVENT_CAP: usize = 1 << 20;

/// One structured telemetry event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Event kind (`"round"`, `"episode"`, `"sweep_item"`, …).
    pub name: &'static str,
    /// Milliseconds since the recorder epoch (process start or last reset).
    pub t_ms: f64,
    /// Ordered fields.
    pub fields: Vec<(&'static str, Json)>,
}

impl Event {
    /// Starts an event stamped now. Build fields with [`Event::field`],
    /// then [`emit`] it.
    pub fn new(name: &'static str) -> Self {
        Self {
            name,
            t_ms: since_epoch_ms(),
            fields: Vec::new(),
        }
    }

    /// Attaches one field (builder style).
    pub fn field(mut self, key: &'static str, value: impl Into<Json>) -> Self {
        self.fields.push((key, value.into()));
        self
    }

    /// The JSONL object form: `{"ev": name, "t_ms": …, fields…}`.
    pub fn to_json(&self) -> Json {
        let mut fields = Vec::with_capacity(self.fields.len() + 2);
        fields.push(("ev".to_string(), Json::from(self.name)));
        fields.push(("t_ms".to_string(), Json::from(self.t_ms)));
        for (k, v) in &self.fields {
            fields.push((k.to_string(), v.clone()));
        }
        Json::Obj(fields)
    }
}

fn epoch() -> &'static Mutex<Instant> {
    static EPOCH: OnceLock<Mutex<Instant>> = OnceLock::new();
    EPOCH.get_or_init(|| Mutex::new(Instant::now()))
}

fn since_epoch_ms() -> f64 {
    epoch().lock().unwrap().elapsed().as_secs_f64() * 1e3
}

pub(crate) fn reset_epoch() {
    *epoch().lock().unwrap() = Instant::now();
}

fn buffer() -> &'static Mutex<Vec<Event>> {
    static BUF: OnceLock<Mutex<Vec<Event>>> = OnceLock::new();
    BUF.get_or_init(Default::default)
}

/// Appends `e` to the event buffer when the sink is enabled. Dropped (and
/// counted) past [`EVENT_CAP`].
pub fn emit(e: Event) {
    if !crate::enabled() {
        return;
    }
    let mut buf = buffer().lock().unwrap();
    if buf.len() >= EVENT_CAP {
        drop(buf);
        crate::add(DROPPED_COUNTER, 1);
        return;
    }
    buf.push(e);
}

/// Name of the counter tracking events lost to the bounded buffer. Listed
/// in [`crate::schema::WARNING_COUNTERS`]: a nonzero value means the trace
/// is incomplete and `trace-validate` must say so.
pub const DROPPED_COUNTER: &str = "obs.events.dropped";

/// Number of events currently buffered (the snapshotter reports this so a
/// trace shows how close a run came to the cap).
pub(crate) fn buffered_len() -> usize {
    buffer().lock().unwrap().len()
}

/// Removes and returns every buffered event.
pub(crate) fn drain_events() -> Vec<Event> {
    std::mem::take(&mut *buffer().lock().unwrap())
}
