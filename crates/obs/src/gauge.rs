//! Last-value gauges.
//!
//! A gauge is a named `AtomicU64` holding the most recent *level* of some
//! quantity (replay-buffer occupancy, live session count) — unlike a
//! [`crate::counter`], setting it overwrites instead of accumulating, so
//! the periodic snapshotter can report the current level without delta
//! arithmetic. Same hot-path contract as the other primitives: one relaxed
//! atomic load when the sink is disabled.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

fn registry() -> &'static Mutex<BTreeMap<&'static str, Arc<AtomicU64>>> {
    static REG: OnceLock<Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>> = OnceLock::new();
    REG.get_or_init(Default::default)
}

/// Sets the gauge named `name` to `v`. Early-returns on the disabled sink
/// before touching the registry lock.
#[inline]
pub fn gauge_set(name: &'static str, v: u64) {
    if !crate::enabled() {
        return;
    }
    let mut reg = registry().lock().unwrap();
    reg.entry(name).or_default().store(v, Ordering::Relaxed);
}

/// Current value of the gauge named `name` (0 if never set).
pub fn gauge_value(name: &str) -> u64 {
    registry()
        .lock()
        .unwrap()
        .get(name)
        .map_or(0, |g| g.load(Ordering::Relaxed))
}

/// All gauges and their last-set values, sorted by name.
pub(crate) fn snapshot_gauges() -> Vec<(String, u64)> {
    registry()
        .lock()
        .unwrap()
        .iter()
        .map(|(k, v)| (k.to_string(), v.load(Ordering::Relaxed)))
        .collect()
}

/// Zeroes every registered gauge.
pub(crate) fn reset_gauges() {
    for g in registry().lock().unwrap().values() {
        g.store(0, Ordering::Relaxed);
    }
}
