//! The documented trace schema (DESIGN.md §9) and its validator.
//!
//! A trace file is JSONL: one event object per line, ending with exactly
//! one `summary` event. The validator is what `isrl trace-validate` and
//! the CI smoke job run; it checks structural requirements per event kind
//! and extracts the warning counters a healthy run must keep at zero.

use std::collections::BTreeMap;

use crate::json::{parse, Json};

/// Counters that indicate silent degradation when nonzero: LP iteration
/// caps (phase 1 or 2), EA's vertex-mixture sampling fallback, events lost
/// to the bounded buffer (an incomplete trace must not pass quietly),
/// training anomalies flagged by the watchdog (NaN/exploding loss, epsilon
/// stall, replay starvation), and span paths truncated by the depth/length
/// bounds.
pub const WARNING_COUNTERS: &[&str] = &[
    "lp.cap_hits",
    "lp.phase1_cap_hits",
    "ea.sample_fallbacks",
    "train.anomalies",
    "scan.top1_nan",
    crate::event::DROPPED_COUNTER,
    crate::span::TRUNCATED_COUNTER,
];

/// Field requirement: name plus expected shape.
enum Shape {
    Num,
    Str,
    Obj,
    Arr,
}

fn check(obj: &Json, field: &str, shape: Shape) -> Result<(), String> {
    let v = obj
        .get(field)
        .ok_or_else(|| format!("missing required field '{field}'"))?;
    let ok = match shape {
        Shape::Num => v.as_f64().is_some(),
        Shape::Str => v.as_str().is_some(),
        Shape::Obj => v.as_obj().is_some(),
        Shape::Arr => v.as_arr().is_some(),
    };
    if ok {
        Ok(())
    } else {
        Err(format!("field '{field}' has the wrong type"))
    }
}

/// Validates one JSONL line; returns the event kind on success.
pub fn validate_line(line: &str) -> Result<String, String> {
    let doc = parse(line)?;
    if doc.as_obj().is_none() {
        return Err("event line is not a JSON object".into());
    }
    let kind = doc
        .get("ev")
        .and_then(Json::as_str)
        .ok_or("missing string field 'ev'")?
        .to_string();
    check(&doc, "t_ms", Shape::Num)?;
    match kind.as_str() {
        "round" => {
            check(&doc, "algo", Shape::Str)?;
            check(&doc, "round", Shape::Num)?;
            check(&doc, "elapsed_ms", Shape::Num)?;
        }
        "episode" => {
            check(&doc, "algo", Shape::Str)?;
            check(&doc, "episode", Shape::Num)?;
            check(&doc, "rounds", Shape::Num)?;
            check(&doc, "epsilon", Shape::Num)?;
            check(&doc, "replay_len", Shape::Num)?;
        }
        "sweep_item" => {
            check(&doc, "cell", Shape::Str)?;
            check(&doc, "algo", Shape::Str)?;
            check(&doc, "user", Shape::Num)?;
            check(&doc, "rounds", Shape::Num)?;
            check(&doc, "secs", Shape::Num)?;
        }
        "serve_session" => {
            check(&doc, "algo", Shape::Str)?;
            check(&doc, "user", Shape::Num)?;
            check(&doc, "rounds", Shape::Num)?;
            check(&doc, "ms", Shape::Num)?;
        }
        "serve_round" => {
            check(&doc, "conn", Shape::Num)?;
            check(&doc, "req", Shape::Num)?;
            check(&doc, "session", Shape::Num)?;
            check(&doc, "round", Shape::Num)?;
            check(&doc, "ms", Shape::Num)?;
        }
        "serve_error" => {
            check(&doc, "conn", Shape::Num)?;
            check(&doc, "kind", Shape::Str)?;
        }
        "slow_round" => {
            check(&doc, "conn", Shape::Num)?;
            check(&doc, "req", Shape::Num)?;
            check(&doc, "session", Shape::Num)?;
            check(&doc, "round", Shape::Num)?;
            check(&doc, "ms", Shape::Num)?;
            check(&doc, "threshold_ms", Shape::Num)?;
            check(&doc, "spans", Shape::Obj)?;
            check(&doc, "recent", Shape::Arr)?;
        }
        "timeseries" => {
            check(&doc, "seq", Shape::Num)?;
            check(&doc, "counters", Shape::Obj)?;
        }
        "profile" => {
            check(&doc, "algo", Shape::Str)?;
            check(&doc, "rounds", Shape::Num)?;
            check(&doc, "spans", Shape::Obj)?;
        }
        "anomaly" => {
            check(&doc, "algo", Shape::Str)?;
            check(&doc, "kind", Shape::Str)?;
            check(&doc, "episode", Shape::Num)?;
            check(&doc, "detail", Shape::Str)?;
        }
        "summary" => {
            check(&doc, "counters", Shape::Obj)?;
            check(&doc, "spans", Shape::Obj)?;
            check(&doc, "hists", Shape::Obj)?;
        }
        other => return Err(format!("unknown event kind '{other}'")),
    }
    Ok(kind)
}

/// What [`validate_trace`] learned about a whole trace file.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// Events per kind.
    pub events: BTreeMap<String, usize>,
    /// Warning counters present in the summary with nonzero values.
    pub warnings: Vec<(String, u64)>,
}

/// Tracks round-index order across interleaved interactions. A trace may
/// mix sessions freely (the parallel sweep emits `round` events from many
/// workers), so strict per-algorithm monotonicity would false-positive;
/// instead we require that each algorithm's round stream *decomposes into
/// interleaved `1..n` prefixes*: a round `r` is in order iff `r == 1`
/// (a session opens) or some open session for that algorithm is currently
/// at `r - 1` (it advances). Streams like `1, 3` or `2` have no such
/// decomposition and are rejected.
#[derive(Default)]
struct RoundOrder {
    /// Per algorithm: open-session count by current round index.
    cursors: BTreeMap<String, BTreeMap<u64, usize>>,
}

impl RoundOrder {
    fn observe(&mut self, algo: &str, round: f64) -> Result<(), String> {
        if round < 1.0 || round.fract() != 0.0 {
            return Err(format!("round index {round} is not a positive integer"));
        }
        let round = round as u64;
        let sessions = self.cursors.entry(algo.to_string()).or_default();
        if round > 1 {
            match sessions.get_mut(&(round - 1)) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    if *n == 0 {
                        sessions.remove(&(round - 1));
                    }
                }
                _ => {
                    return Err(format!(
                        "out-of-order round {round} for algo '{algo}' \
                         (no open session at round {})",
                        round - 1
                    ))
                }
            }
        }
        *sessions.entry(round).or_insert(0) += 1;
        Ok(())
    }
}

/// Validates a whole JSONL trace: every line must pass [`validate_line`],
/// exactly one `summary` line must be present, round indices must be in
/// order (see [`RoundOrder`]), and `timeseries` sequence numbers must be
/// strictly increasing. Returns the per-kind event census and any nonzero
/// warning counters from the summary.
pub fn validate_trace(text: &str) -> Result<TraceReport, String> {
    let mut report = TraceReport::default();
    let mut summaries = 0usize;
    let mut order = RoundOrder::default();
    let mut last_seq = 0.0f64;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fail = |e: String| format!("line {}: {e}", lineno + 1);
        let kind = validate_line(line).map_err(&fail)?;
        match kind.as_str() {
            "round" => {
                let doc = parse(line).expect("validated above");
                let algo = doc.get("algo").and_then(Json::as_str).expect("validated");
                let round = doc.get("round").and_then(Json::as_f64).expect("validated");
                order.observe(algo, round).map_err(&fail)?;
            }
            "timeseries" => {
                let doc = parse(line).expect("validated above");
                let seq = doc.get("seq").and_then(Json::as_f64).expect("validated");
                if seq <= last_seq {
                    return Err(fail(format!(
                        "timeseries seq {seq} out of order (previous was {last_seq})"
                    )));
                }
                last_seq = seq;
            }
            "summary" => {
                summaries += 1;
                let doc = parse(line).expect("validated above");
                let counters = doc.get("counters").expect("validated above").to_num_map();
                for &w in WARNING_COUNTERS {
                    if let Some(&v) = counters.get(w) {
                        if v > 0.0 {
                            report.warnings.push((w.to_string(), v as u64));
                        }
                    }
                }
            }
            _ => {}
        }
        *report.events.entry(kind).or_insert(0) += 1;
    }
    if summaries != 1 {
        return Err(format!(
            "expected exactly one summary event, found {summaries}"
        ));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_documented_events() {
        assert_eq!(
            validate_line(
                r#"{"ev":"round","t_ms":1.5,"algo":"EA","round":1,"elapsed_ms":0.3,"i":2,"j":7}"#
            )
            .unwrap(),
            "round"
        );
        assert_eq!(
            validate_line(
                r#"{"ev":"episode","t_ms":9,"algo":"AA","episode":0,"rounds":4,"epsilon":0.9,"replay_len":12}"#
            )
            .unwrap(),
            "episode"
        );
        assert_eq!(
            validate_line(
                r#"{"ev":"sweep_item","t_ms":1,"cell":"d4","algo":"EA","user":3,"rounds":5,"secs":0.01}"#
            )
            .unwrap(),
            "sweep_item"
        );
        assert_eq!(
            validate_line(
                r#"{"ev":"profile","t_ms":3,"algo":"EA","rounds":5,"spans":{"lp":{"count":2,"total_ms":1.5,"self_ms":1.5}}}"#
            )
            .unwrap(),
            "profile"
        );
        assert_eq!(
            validate_line(
                r#"{"ev":"anomaly","t_ms":4,"algo":"EA","kind":"nonfinite_loss","episode":12,"value":null,"detail":"loss is NaN"}"#
            )
            .unwrap(),
            "anomaly"
        );
        assert_eq!(
            validate_line(
                r#"{"ev":"serve_session","t_ms":7,"algo":"EA","user":12,"rounds":5,"ms":43.1}"#
            )
            .unwrap(),
            "serve_session"
        );
        assert!(
            validate_line(r#"{"ev":"serve_session","t_ms":7,"algo":"EA","user":12}"#).is_err(),
            "serve_session requires rounds and ms"
        );
        assert_eq!(
            validate_line(
                r#"{"ev":"serve_round","t_ms":1,"conn":2,"req":17,"session":5,"round":3,"ms":4.2}"#
            )
            .unwrap(),
            "serve_round"
        );
        assert_eq!(
            validate_line(r#"{"ev":"serve_error","t_ms":1,"conn":2,"kind":"stale_round"}"#)
                .unwrap(),
            "serve_error"
        );
        assert_eq!(
            validate_line(
                r#"{"ev":"slow_round","t_ms":1,"conn":2,"req":17,"session":5,"round":3,"ms":80.0,"threshold_ms":12.0,"p99_ms":3.0,"spans":{"top1":{"count":1,"total_ms":79.0,"self_ms":79.0}},"recent":[{"conn":2,"req":17,"session":5,"round":3,"ms":80.0}]}"#
            )
            .unwrap(),
            "slow_round"
        );
        assert!(
            validate_line(
                r#"{"ev":"slow_round","t_ms":1,"conn":2,"req":17,"session":5,"round":3,"ms":80.0,"threshold_ms":12.0,"spans":{},"recent":{}}"#
            )
            .is_err(),
            "slow_round requires recent to be an array"
        );
        assert!(
            validate_line(r#"{"ev":"serve_round","t_ms":1,"conn":2,"req":17}"#).is_err(),
            "serve_round requires session, round, ms"
        );
    }

    #[test]
    fn rejects_unknown_or_malformed_events() {
        assert!(validate_line(r#"{"ev":"mystery","t_ms":0}"#).is_err());
        assert!(validate_line(r#"{"t_ms":0}"#).is_err());
        assert!(validate_line(r#"{"ev":"round","t_ms":0,"algo":"EA"}"#).is_err());
        assert!(validate_line("not json").is_err());
    }

    #[test]
    fn whole_trace_needs_one_summary_and_flags_warnings() {
        let good = concat!(
            r#"{"ev":"round","t_ms":0,"algo":"EA","round":1,"elapsed_ms":1}"#,
            "\n",
            r#"{"ev":"summary","t_ms":2,"counters":{"lp.pivots":9},"spans":{},"hists":{}}"#,
            "\n"
        );
        let r = validate_trace(good).unwrap();
        assert_eq!(r.events["round"], 1);
        assert!(r.warnings.is_empty());

        let warn =
            r#"{"ev":"summary","t_ms":2,"counters":{"lp.cap_hits":3},"spans":{},"hists":{}}"#;
        let r = validate_trace(warn).unwrap();
        assert_eq!(r.warnings, vec![("lp.cap_hits".to_string(), 3)]);

        let anomalous =
            r#"{"ev":"summary","t_ms":2,"counters":{"train.anomalies":2},"spans":{},"hists":{}}"#;
        let r = validate_trace(anomalous).unwrap();
        assert_eq!(r.warnings, vec![("train.anomalies".to_string(), 2)]);

        assert!(validate_trace("").is_err(), "no summary event");
    }
}
