//! The documented trace schema (DESIGN.md §9) and its validator.
//!
//! A trace file is JSONL: one event object per line, ending with exactly
//! one `summary` event. The validator is what `isrl trace-validate` and
//! the CI smoke job run; it checks structural requirements per event kind
//! and extracts the warning counters a healthy run must keep at zero.

use std::collections::BTreeMap;

use crate::json::{parse, Json};

/// Counters that indicate silent degradation when nonzero: LP iteration
/// caps (phase 1 or 2) and EA's vertex-mixture sampling fallback.
pub const WARNING_COUNTERS: &[&str] = &["lp.cap_hits", "lp.phase1_cap_hits", "ea.sample_fallbacks"];

/// Field requirement: name plus expected shape.
enum Shape {
    Num,
    Str,
    Obj,
}

fn check(obj: &Json, field: &str, shape: Shape) -> Result<(), String> {
    let v = obj
        .get(field)
        .ok_or_else(|| format!("missing required field '{field}'"))?;
    let ok = match shape {
        Shape::Num => v.as_f64().is_some(),
        Shape::Str => v.as_str().is_some(),
        Shape::Obj => v.as_obj().is_some(),
    };
    if ok {
        Ok(())
    } else {
        Err(format!("field '{field}' has the wrong type"))
    }
}

/// Validates one JSONL line; returns the event kind on success.
pub fn validate_line(line: &str) -> Result<String, String> {
    let doc = parse(line)?;
    if doc.as_obj().is_none() {
        return Err("event line is not a JSON object".into());
    }
    let kind = doc
        .get("ev")
        .and_then(Json::as_str)
        .ok_or("missing string field 'ev'")?
        .to_string();
    check(&doc, "t_ms", Shape::Num)?;
    match kind.as_str() {
        "round" => {
            check(&doc, "algo", Shape::Str)?;
            check(&doc, "round", Shape::Num)?;
            check(&doc, "elapsed_ms", Shape::Num)?;
        }
        "episode" => {
            check(&doc, "algo", Shape::Str)?;
            check(&doc, "episode", Shape::Num)?;
            check(&doc, "rounds", Shape::Num)?;
            check(&doc, "epsilon", Shape::Num)?;
            check(&doc, "replay_len", Shape::Num)?;
        }
        "sweep_item" => {
            check(&doc, "cell", Shape::Str)?;
            check(&doc, "algo", Shape::Str)?;
            check(&doc, "user", Shape::Num)?;
            check(&doc, "rounds", Shape::Num)?;
            check(&doc, "secs", Shape::Num)?;
        }
        "summary" => {
            check(&doc, "counters", Shape::Obj)?;
            check(&doc, "spans", Shape::Obj)?;
            check(&doc, "hists", Shape::Obj)?;
        }
        other => return Err(format!("unknown event kind '{other}'")),
    }
    Ok(kind)
}

/// What [`validate_trace`] learned about a whole trace file.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// Events per kind.
    pub events: BTreeMap<String, usize>,
    /// Warning counters present in the summary with nonzero values.
    pub warnings: Vec<(String, u64)>,
}

/// Validates a whole JSONL trace: every line must pass [`validate_line`]
/// and exactly one `summary` line must be present. Returns the per-kind
/// event census and any nonzero warning counters from the summary.
pub fn validate_trace(text: &str) -> Result<TraceReport, String> {
    let mut report = TraceReport::default();
    let mut summaries = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let kind = validate_line(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if kind == "summary" {
            summaries += 1;
            let doc = parse(line).expect("validated above");
            let counters = doc.get("counters").expect("validated above").to_num_map();
            for &w in WARNING_COUNTERS {
                if let Some(&v) = counters.get(w) {
                    if v > 0.0 {
                        report.warnings.push((w.to_string(), v as u64));
                    }
                }
            }
        }
        *report.events.entry(kind).or_insert(0) += 1;
    }
    if summaries != 1 {
        return Err(format!(
            "expected exactly one summary event, found {summaries}"
        ));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_documented_events() {
        assert_eq!(
            validate_line(
                r#"{"ev":"round","t_ms":1.5,"algo":"EA","round":1,"elapsed_ms":0.3,"i":2,"j":7}"#
            )
            .unwrap(),
            "round"
        );
        assert_eq!(
            validate_line(
                r#"{"ev":"episode","t_ms":9,"algo":"AA","episode":0,"rounds":4,"epsilon":0.9,"replay_len":12}"#
            )
            .unwrap(),
            "episode"
        );
        assert_eq!(
            validate_line(
                r#"{"ev":"sweep_item","t_ms":1,"cell":"d4","algo":"EA","user":3,"rounds":5,"secs":0.01}"#
            )
            .unwrap(),
            "sweep_item"
        );
    }

    #[test]
    fn rejects_unknown_or_malformed_events() {
        assert!(validate_line(r#"{"ev":"mystery","t_ms":0}"#).is_err());
        assert!(validate_line(r#"{"t_ms":0}"#).is_err());
        assert!(validate_line(r#"{"ev":"round","t_ms":0,"algo":"EA"}"#).is_err());
        assert!(validate_line("not json").is_err());
    }

    #[test]
    fn whole_trace_needs_one_summary_and_flags_warnings() {
        let good = concat!(
            r#"{"ev":"round","t_ms":0,"algo":"EA","round":1,"elapsed_ms":1}"#,
            "\n",
            r#"{"ev":"summary","t_ms":2,"counters":{"lp.pivots":9},"spans":{},"hists":{}}"#,
            "\n"
        );
        let r = validate_trace(good).unwrap();
        assert_eq!(r.events["round"], 1);
        assert!(r.warnings.is_empty());

        let warn =
            r#"{"ev":"summary","t_ms":2,"counters":{"lp.cap_hits":3},"spans":{},"hists":{}}"#;
        let r = validate_trace(warn).unwrap();
        assert_eq!(r.warnings, vec![("lp.cap_hits".to_string(), 3)]);

        assert!(validate_trace("").is_err(), "no summary event");
    }
}
