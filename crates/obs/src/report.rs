//! Trace-driven aggregate reports.
//!
//! [`report`] ingests any JSONL trace produced by `--trace-out` (round,
//! episode, sweep_item, and timeseries events, with or without the trailing
//! summary) and reduces it to the paper-style aggregate tables the
//! `trace-report` CLI subcommand renders: question-count distributions per
//! algorithm and sweep cell, the per-phase wall-clock breakdown, the
//! warm-vs-cold LP counters, and the live-progress series sampled by the
//! periodic snapshotter.
//!
//! Everything here is deterministic: events are reduced in file order into
//! `BTreeMap`s and every number is formatted with fixed precision, so two
//! reports over the same trace are byte-identical (an acceptance gate of
//! the observability layer — reports feed EXPERIMENTS.md and CI artifacts,
//! where spurious diffs would drown real changes).

use std::collections::BTreeMap;

use crate::json::{parse, Json};

/// A rendered-but-unstyled aggregate table: the CLI maps these 1:1 onto
/// `bench::report::Table` for terminal/JSON/CSV output without this crate
/// needing a dependency on the bench harness.
#[derive(Debug, Clone)]
pub struct ReportTable {
    /// Stable identifier (`questions`, `phases`, `lp`, `timeseries`, …).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Pre-formatted rows.
    pub rows: Vec<Vec<String>>,
}

impl ReportTable {
    fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }
}

/// Distribution accumulator over a list of observations.
#[derive(Debug, Clone, Default)]
pub struct Dist {
    values: Vec<f64>,
}

impl Dist {
    /// Records one observation.
    pub fn push(&mut self, v: f64) {
        self.values.push(v);
    }
    /// Number of observations.
    pub fn count(&self) -> usize {
        self.values.len()
    }
    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }
    /// Smallest observation.
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }
    /// Largest observation.
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }
    /// Lower median.
    pub fn p50(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let mut v = self.values.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        v[(v.len() - 1) / 2]
    }
}

/// Everything [`report`] extracted from a trace, reduced and ready for
/// table assembly. Exposed so programmatic consumers (tests, future
/// dashboards) can skip the string formatting.
#[derive(Debug, Default)]
pub struct TraceAggregates {
    /// Per (cell, algo): question counts of every `sweep_item`.
    pub sweep_questions: BTreeMap<(String, String), Dist>,
    /// Per algo: question counts of interactive sessions reconstructed
    /// from `round` events (each maximal `1..n` run is one session).
    pub session_questions: BTreeMap<String, Dist>,
    /// Per algo: rounds per training episode from `episode` events.
    pub episode_rounds: BTreeMap<String, Dist>,
    /// Per algo: truncated-episode count.
    pub episode_truncated: BTreeMap<String, u64>,
    /// Per algo: (rounds seen, total elapsed ms) from `round` events.
    pub round_time: BTreeMap<String, (u64, f64)>,
    /// Per algo: per-phase total milliseconds from `phase_ms` objects.
    pub phase_ms: BTreeMap<String, BTreeMap<String, f64>>,
    /// `timeseries` samples in file order:
    /// (seq, t_ms, counter deltas, gauges).
    #[allow(clippy::type_complexity)]
    pub series: Vec<(u64, f64, BTreeMap<String, f64>, BTreeMap<String, f64>)>,
    /// Per connection: server-side request latencies (ms) in file order,
    /// from wire-tagged `serve_round` events.
    pub serve_rounds: BTreeMap<u64, Vec<f64>>,
    /// Per connection: answered-round count (`serve_round` with
    /// `round >= 1`; the session-opening hello is a request but not a
    /// round).
    pub serve_answered: BTreeMap<u64, u64>,
    /// Per (connection, error kind): `serve_error` counts.
    pub serve_errors: BTreeMap<(u64, String), u64>,
    /// Flight-recorder dumps, in file order.
    pub slow_rounds: Vec<SlowRoundRow>,
    /// Counters from the trailing summary (empty when absent).
    pub summary_counters: BTreeMap<String, f64>,
    /// Quantile-sketch summaries from the trailing summary:
    /// name → (count, p50, p90, p99, max).
    pub summary_sketches: BTreeMap<String, (f64, f64, f64, f64, f64)>,
    /// Events per kind.
    pub census: BTreeMap<String, usize>,
}

/// One `slow_round` event reduced to its report row: wire identity,
/// latency vs threshold, and the span the tree blames (largest self time).
#[derive(Debug, Clone, PartialEq)]
pub struct SlowRoundRow {
    /// Connection id.
    pub conn: u64,
    /// Request id.
    pub req: u64,
    /// Session id.
    pub session: u64,
    /// Round number.
    pub round: u64,
    /// Observed latency, ms.
    pub ms: f64,
    /// Trigger threshold (factor × rolling p99), ms.
    pub threshold_ms: f64,
    /// Span path with the largest self time in the dump.
    pub top_span: String,
    /// That span's self time, ms.
    pub top_self_ms: f64,
}

fn num(doc: &Json, field: &str) -> Option<f64> {
    doc.get(field).and_then(Json::as_f64)
}

fn text(doc: &Json, field: &str) -> Option<String> {
    doc.get(field).and_then(Json::as_str).map(String::from)
}

/// Reduces a JSONL trace into [`TraceAggregates`]. Unknown event kinds are
/// skipped (forward compatibility); malformed JSON is an error with the
/// offending line number. Session reconstruction mirrors the validator's
/// interleaving rule: a `round == 1` opens a session, `round == r` advances
/// one open session sitting at `r - 1`; the multiset of final positions is
/// the question-count distribution regardless of which session advances.
pub fn ingest(trace: &str) -> Result<TraceAggregates, String> {
    let mut agg = TraceAggregates::default();
    // Per algo: open-session count by current round (see the doc comment).
    let mut open: BTreeMap<String, BTreeMap<u64, usize>> = BTreeMap::new();
    for (lineno, line) in trace.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let kind = match doc.get("ev").and_then(Json::as_str) {
            Some(k) => k.to_string(),
            None => return Err(format!("line {}: missing 'ev' field", lineno + 1)),
        };
        *agg.census.entry(kind.clone()).or_insert(0) += 1;
        match kind.as_str() {
            "round" => {
                let algo = text(&doc, "algo").unwrap_or_default();
                let round = num(&doc, "round").unwrap_or(0.0);
                if round >= 1.0 && round.fract() == 0.0 {
                    let r = round as u64;
                    let sessions = open.entry(algo.clone()).or_default();
                    if r > 1 {
                        if let Some(n) = sessions.get_mut(&(r - 1)) {
                            *n -= 1;
                            if *n == 0 {
                                sessions.remove(&(r - 1));
                            }
                        }
                    }
                    *sessions.entry(r).or_insert(0) += 1;
                }
                let (n, total) = agg.round_time.entry(algo.clone()).or_insert((0, 0.0));
                *n += 1;
                *total += num(&doc, "elapsed_ms").unwrap_or(0.0);
                if let Some(Json::Obj(fields)) = doc.get("phase_ms") {
                    let phases = agg.phase_ms.entry(algo).or_default();
                    for (phase, v) in fields {
                        if let Some(ms) = v.as_f64() {
                            *phases.entry(phase.clone()).or_insert(0.0) += ms;
                        }
                    }
                }
            }
            "episode" => {
                let algo = text(&doc, "algo").unwrap_or_default();
                if let Some(r) = num(&doc, "rounds") {
                    agg.episode_rounds.entry(algo.clone()).or_default().push(r);
                }
                if doc.get("truncated").and_then(Json::as_bool) == Some(true) {
                    *agg.episode_truncated.entry(algo).or_insert(0) += 1;
                }
            }
            "sweep_item" => {
                let cell = text(&doc, "cell").unwrap_or_default();
                let algo = text(&doc, "algo").unwrap_or_default();
                if let Some(r) = num(&doc, "rounds") {
                    agg.sweep_questions.entry((cell, algo)).or_default().push(r);
                }
            }
            "timeseries" => {
                let seq = num(&doc, "seq").unwrap_or(0.0) as u64;
                let t_ms = num(&doc, "t_ms").unwrap_or(0.0);
                let counters = doc
                    .get("counters")
                    .map(Json::to_num_map)
                    .unwrap_or_default();
                let gauges = doc.get("gauges").map(Json::to_num_map).unwrap_or_default();
                agg.series.push((seq, t_ms, counters, gauges));
            }
            "serve_round" => {
                let conn = num(&doc, "conn").unwrap_or(0.0) as u64;
                agg.serve_rounds
                    .entry(conn)
                    .or_default()
                    .push(num(&doc, "ms").unwrap_or(0.0));
                if num(&doc, "round").unwrap_or(0.0) >= 1.0 {
                    *agg.serve_answered.entry(conn).or_insert(0) += 1;
                }
            }
            "serve_error" => {
                let conn = num(&doc, "conn").unwrap_or(0.0) as u64;
                let kind = text(&doc, "kind").unwrap_or_default();
                *agg.serve_errors.entry((conn, kind)).or_insert(0) += 1;
            }
            "slow_round" => {
                let (top_span, top_self_ms) = doc
                    .get("spans")
                    .and_then(crate::flight::top_self_span)
                    .unwrap_or_default();
                agg.slow_rounds.push(SlowRoundRow {
                    conn: num(&doc, "conn").unwrap_or(0.0) as u64,
                    req: num(&doc, "req").unwrap_or(0.0) as u64,
                    session: num(&doc, "session").unwrap_or(0.0) as u64,
                    round: num(&doc, "round").unwrap_or(0.0) as u64,
                    ms: num(&doc, "ms").unwrap_or(0.0),
                    threshold_ms: num(&doc, "threshold_ms").unwrap_or(0.0),
                    top_span,
                    top_self_ms,
                });
            }
            "summary" => {
                if let Some(c) = doc.get("counters") {
                    agg.summary_counters = c.to_num_map();
                }
                if let Some(Json::Obj(sketches)) = doc.get("sketches") {
                    for (name, s) in sketches {
                        let g = |k: &str| s.get(k).and_then(Json::as_f64).unwrap_or(0.0);
                        agg.summary_sketches.insert(
                            name.clone(),
                            (g("count"), g("p50"), g("p90"), g("p99"), g("max")),
                        );
                    }
                }
            }
            _ => {}
        }
    }
    // Finished sessions are the final cursor positions.
    for (algo, sessions) in open {
        let dist = agg.session_questions.entry(algo).or_default();
        for (round, count) in sessions {
            for _ in 0..count {
                dist.push(round as f64);
            }
        }
    }
    Ok(agg)
}

fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Nearest-rank percentile over a sorted slice (same convention as the
/// loadgen's client-side percentiles, so server and client tables agree on
/// small samples). 0 when empty.
fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn u(x: f64) -> String {
    format!("{}", x as u64)
}

/// Assembles the aggregate tables. Tables with no underlying events are
/// omitted, so a pure-training trace reports episodes and phases while an
/// evaluation trace reports sessions and sweep cells.
pub fn tables(agg: &TraceAggregates) -> Vec<ReportTable> {
    let mut out = Vec::new();

    // Question-count distributions: the paper's headline metric.
    if !agg.session_questions.is_empty() || !agg.sweep_questions.is_empty() {
        let mut t = ReportTable::new(
            "questions",
            "Question-count distribution per algorithm (and sweep cell)",
            &["cell", "algo", "sessions", "mean", "min", "p50", "max"],
        );
        for (algo, d) in &agg.session_questions {
            t.rows.push(vec![
                "-".into(),
                algo.clone(),
                d.count().to_string(),
                f2(d.mean()),
                u(d.min()),
                u(d.p50()),
                u(d.max()),
            ]);
        }
        for ((cell, algo), d) in &agg.sweep_questions {
            t.rows.push(vec![
                cell.clone(),
                algo.clone(),
                d.count().to_string(),
                f2(d.mean()),
                u(d.min()),
                u(d.p50()),
                u(d.max()),
            ]);
        }
        out.push(t);
    }

    if !agg.episode_rounds.is_empty() {
        let mut t = ReportTable::new(
            "episodes",
            "Training-episode round counts per algorithm",
            &["algo", "episodes", "mean_rounds", "min", "max", "truncated"],
        );
        for (algo, d) in &agg.episode_rounds {
            t.rows.push(vec![
                algo.clone(),
                d.count().to_string(),
                f2(d.mean()),
                u(d.min()),
                u(d.max()),
                agg.episode_truncated
                    .get(algo)
                    .copied()
                    .unwrap_or(0)
                    .to_string(),
            ]);
        }
        out.push(t);
    }

    // Per-phase wall-clock breakdown of every round event.
    if !agg.phase_ms.is_empty() {
        let mut t = ReportTable::new(
            "phases",
            "Per-phase time breakdown across round events",
            &["algo", "phase", "total_ms", "share_pct", "ms_per_round"],
        );
        for (algo, phases) in &agg.phase_ms {
            let algo_total: f64 = phases.values().sum();
            let rounds = agg.round_time.get(algo).map_or(0, |&(n, _)| n).max(1);
            for (phase, &ms) in phases {
                t.rows.push(vec![
                    algo.clone(),
                    phase.clone(),
                    f2(ms),
                    f2(if algo_total > 0.0 {
                        100.0 * ms / algo_total
                    } else {
                        0.0
                    }),
                    format!("{:.4}", ms / rounds as f64),
                ]);
            }
        }
        out.push(t);
    }

    if !agg.round_time.is_empty() {
        let mut t = ReportTable::new(
            "rounds",
            "Round events and mean latency per algorithm",
            &["algo", "rounds", "total_ms", "mean_ms"],
        );
        for (algo, &(n, total)) in &agg.round_time {
            t.rows.push(vec![
                algo.clone(),
                n.to_string(),
                f2(total),
                format!("{:.4}", total / n.max(1) as f64),
            ]);
        }
        out.push(t);
    }

    // Warm-vs-cold LP counters from the summary.
    let lp: Vec<(&String, &f64)> = agg
        .summary_counters
        .iter()
        .filter(|(k, _)| k.starts_with("lp."))
        .collect();
    if !lp.is_empty() {
        let mut t = ReportTable::new(
            "lp",
            "LP solver counters (warm vs cold)",
            &["counter", "value"],
        );
        for (k, v) in lp {
            t.rows.push(vec![k.clone(), u(*v)]);
        }
        let attempts = agg.summary_counters.get("lp.warm.attempts").copied();
        let hits = agg.summary_counters.get("lp.warm.hits").copied();
        if let (Some(a), Some(h)) = (attempts, hits) {
            if a > 0.0 {
                t.rows
                    .push(vec!["warm_hit_rate_pct".into(), f2(100.0 * h / a)]);
            }
        }
        out.push(t);
    }

    // Tail-latency percentiles from the summary's quantile sketches.
    if !agg.summary_sketches.is_empty() {
        let mut t = ReportTable::new(
            "latency",
            "Quantile sketches (p50/p90/p99 with bounded relative error)",
            &["sketch", "count", "p50", "p90", "p99", "max"],
        );
        for (name, &(count, p50, p90, p99, max)) in &agg.summary_sketches {
            t.rows.push(vec![
                name.clone(),
                u(count),
                format!("{p50:.4}"),
                format!("{p90:.4}"),
                format!("{p99:.4}"),
                format!("{max:.4}"),
            ]);
        }
        out.push(t);
    }

    // Per-connection serve-path attribution from wire-tagged events.
    if !agg.serve_rounds.is_empty() || !agg.serve_errors.is_empty() {
        let mut t = ReportTable::new(
            "serve",
            "Per-connection serve rounds and latency (from serve_round/serve_error events)",
            &[
                "conn", "requests", "rounds", "errors", "p50_ms", "p99_ms", "max_ms",
            ],
        );
        let mut conns: Vec<u64> = agg.serve_rounds.keys().copied().collect();
        conns.extend(agg.serve_errors.keys().map(|(c, _)| *c));
        conns.sort_unstable();
        conns.dedup();
        for conn in conns {
            let ms = agg.serve_rounds.get(&conn).cloned().unwrap_or_default();
            let mut sorted = ms.clone();
            sorted.sort_by(f64::total_cmp);
            let errors: u64 = agg
                .serve_errors
                .iter()
                .filter(|((c, _), _)| *c == conn)
                .map(|(_, n)| n)
                .sum();
            t.rows.push(vec![
                conn.to_string(),
                ms.len().to_string(),
                agg.serve_answered
                    .get(&conn)
                    .copied()
                    .unwrap_or(0)
                    .to_string(),
                errors.to_string(),
                format!("{:.4}", nearest_rank(&sorted, 0.50)),
                format!("{:.4}", nearest_rank(&sorted, 0.99)),
                format!("{:.4}", sorted.last().copied().unwrap_or(0.0)),
            ]);
        }
        out.push(t);
    }

    // Error-kind histogram per connection.
    if !agg.serve_errors.is_empty() {
        let mut t = ReportTable::new(
            "serve_errors",
            "Serve error-kind histogram per connection",
            &["conn", "kind", "count"],
        );
        for ((conn, kind), n) in &agg.serve_errors {
            t.rows
                .push(vec![conn.to_string(), kind.clone(), n.to_string()]);
        }
        out.push(t);
    }

    // Flight-recorder dumps: which span owned each tail-latency outlier.
    if !agg.slow_rounds.is_empty() {
        let mut t = ReportTable::new(
            "slow",
            "Flight-recorder slow_round dumps (top span by self time)",
            &[
                "conn",
                "req",
                "session",
                "round",
                "ms",
                "threshold_ms",
                "top_span",
                "top_self_ms",
            ],
        );
        for s in &agg.slow_rounds {
            t.rows.push(vec![
                s.conn.to_string(),
                s.req.to_string(),
                s.session.to_string(),
                s.round.to_string(),
                f2(s.ms),
                f2(s.threshold_ms),
                s.top_span.clone(),
                f2(s.top_self_ms),
            ]);
        }
        out.push(t);
    }

    // Snapshotter samples: live-progress rates per interval.
    if !agg.series.is_empty() {
        let mut t = ReportTable::new(
            "timeseries",
            "Periodic snapshotter samples (deltas per interval)",
            &[
                "seq",
                "t_s",
                "episodes",
                "episodes_per_s",
                "rounds",
                "lp_solves",
                "warm_hit_pct",
                "replay_occupancy",
            ],
        );
        let mut last_t = 0.0f64;
        for (seq, t_ms, counters, gauges) in &agg.series {
            let dt = ((t_ms - last_t) / 1e3).max(1e-9);
            last_t = *t_ms;
            let c = |k: &str| counters.get(k).copied().unwrap_or(0.0);
            let episodes = c("train.episodes");
            let warm_attempts = c("lp.warm.attempts");
            let warm_pct = if warm_attempts > 0.0 {
                f2(100.0 * c("lp.warm.hits") / warm_attempts)
            } else {
                "-".into()
            };
            t.rows.push(vec![
                seq.to_string(),
                f2(t_ms / 1e3),
                u(episodes),
                f2(episodes / dt),
                u(c("rounds.total")),
                u(c("lp.solves")),
                warm_pct,
                u(gauges.get("dqn.replay_occupancy").copied().unwrap_or(0.0)),
            ]);
        }
        out.push(t);
    }

    if !agg.census.is_empty() {
        let mut t = ReportTable::new("census", "Events per kind", &["kind", "events"]);
        for (kind, n) in &agg.census {
            t.rows.push(vec![kind.clone(), n.to_string()]);
        }
        out.push(t);
    }

    out
}

/// One-call convenience: ingest a trace and assemble its tables.
pub fn report(trace: &str) -> Result<Vec<ReportTable>, String> {
    Ok(tables(&ingest(trace)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRACE: &str = concat!(
        r#"{"ev":"round","t_ms":1,"algo":"EA","round":1,"elapsed_ms":2.0,"phase_ms":{"lp":1.0,"top1":0.5}}"#,
        "\n",
        r#"{"ev":"round","t_ms":2,"algo":"EA","round":2,"elapsed_ms":3.0,"phase_ms":{"lp":2.0}}"#,
        "\n",
        r#"{"ev":"round","t_ms":3,"algo":"AA","round":1,"elapsed_ms":1.0}"#,
        "\n",
        r#"{"ev":"round","t_ms":4,"algo":"EA","round":1,"elapsed_ms":1.0}"#,
        "\n",
        r#"{"ev":"episode","t_ms":5,"algo":"EA","episode":0,"rounds":2,"epsilon":0.9,"replay_len":4,"truncated":true}"#,
        "\n",
        r#"{"ev":"sweep_item","t_ms":6,"cell":"c0_d4","algo":"EA","user":0,"rounds":5,"secs":0.01}"#,
        "\n",
        r#"{"ev":"timeseries","t_ms":1000,"seq":1,"interval_ms":1000,"counters":{"train.episodes":4,"lp.warm.attempts":10,"lp.warm.hits":9},"gauges":{"dqn.replay_occupancy":64}}"#,
        "\n",
        r#"{"ev":"summary","t_ms":7,"counters":{"lp.solves":12,"lp.warm.attempts":10,"lp.warm.hits":9},"spans":{},"hists":{}}"#,
        "\n",
    );

    #[test]
    fn sessions_reconstruct_from_interleaved_rounds() {
        let agg = ingest(TRACE).unwrap();
        // EA: one 2-round session plus one 1-round session; AA: one 1-round.
        let ea = &agg.session_questions["EA"];
        assert_eq!(ea.count(), 2);
        assert_eq!(ea.max(), 2.0);
        assert_eq!(ea.min(), 1.0);
        assert_eq!(agg.session_questions["AA"].count(), 1);
        assert_eq!(
            agg.sweep_questions[&("c0_d4".into(), "EA".into())].count(),
            1
        );
        assert_eq!(agg.phase_ms["EA"]["lp"], 3.0);
        assert_eq!(agg.episode_truncated["EA"], 1);
        assert_eq!(agg.series.len(), 1);
    }

    #[test]
    fn tables_are_deterministic() {
        let a = report(TRACE).unwrap();
        let b = report(TRACE).unwrap();
        let render = |ts: &[ReportTable]| {
            ts.iter()
                .map(|t| format!("{}|{:?}|{:?}", t.id, t.headers, t.rows))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(render(&a), render(&b));
        let ids: Vec<&str> = a.iter().map(|t| t.id.as_str()).collect();
        assert_eq!(
            ids,
            vec![
                "questions",
                "episodes",
                "phases",
                "rounds",
                "lp",
                "timeseries",
                "census"
            ]
        );
        let lp = a.iter().find(|t| t.id == "lp").unwrap();
        assert!(lp
            .rows
            .iter()
            .any(|r| r[0] == "warm_hit_rate_pct" && r[1] == "90.00"));
    }

    #[test]
    fn ingest_rejects_malformed_json_with_line_number() {
        let err = ingest("{\"ev\":\"round\"}\nnot json\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    const SERVE_TRACE: &str = concat!(
        r#"{"ev":"serve_round","t_ms":1,"conn":1,"req":1,"session":10,"round":0,"ms":2.0}"#,
        "\n",
        r#"{"ev":"serve_round","t_ms":2,"conn":1,"req":2,"session":10,"round":1,"ms":4.0}"#,
        "\n",
        r#"{"ev":"serve_round","t_ms":3,"conn":1,"req":3,"session":10,"round":2,"ms":6.0}"#,
        "\n",
        r#"{"ev":"serve_round","t_ms":4,"conn":2,"req":4,"session":11,"round":0,"ms":1.0}"#,
        "\n",
        r#"{"ev":"serve_error","t_ms":5,"conn":2,"kind":"stale_round"}"#,
        "\n",
        r#"{"ev":"serve_error","t_ms":6,"conn":2,"kind":"stale_round"}"#,
        "\n",
        r#"{"ev":"serve_error","t_ms":7,"conn":3,"kind":"parse"}"#,
        "\n",
        r#"{"ev":"slow_round","t_ms":8,"conn":1,"req":3,"session":10,"round":2,"ms":6.0,"threshold_ms":5.0,"p99_ms":1.2,"spans":{"serve_batch":{"count":1,"total_ms":6.0,"self_ms":0.5},"serve_batch/top1":{"count":2,"total_ms":5.5,"self_ms":5.5}},"recent":[{"conn":1,"req":3,"session":10,"round":2,"ms":6.0}]}"#,
        "\n",
    );

    #[test]
    fn serve_tables_attribute_per_connection() {
        let agg = ingest(SERVE_TRACE).unwrap();
        assert_eq!(agg.serve_rounds[&1].len(), 3);
        assert_eq!(agg.serve_answered[&1], 2); // hello row is not a round
        assert_eq!(agg.serve_errors[&(2, "stale_round".into())], 2);

        let ts = tables(&agg);
        let ids: Vec<&str> = ts.iter().map(|t| t.id.as_str()).collect();
        assert_eq!(ids, vec!["serve", "serve_errors", "slow", "census"]);

        let serve = ts.iter().find(|t| t.id == "serve").unwrap();
        // conn 1: 3 requests, 2 rounds, p50 = 4.0, p99 = max = 6.0.
        assert_eq!(
            serve.rows[0],
            vec!["1", "3", "2", "0", "4.0000", "6.0000", "6.0000"]
        );
        // conn 3 appears even though it only produced errors.
        assert_eq!(serve.rows[2][0], "3");
        assert_eq!(serve.rows[2][3], "1");

        let slow = ts.iter().find(|t| t.id == "slow").unwrap();
        assert_eq!(slow.rows.len(), 1);
        assert_eq!(slow.rows[0][6], "serve_batch/top1");

        // Deterministic across runs.
        let again = report(SERVE_TRACE).unwrap();
        let find = |ts: &[ReportTable]| ts.iter().find(|t| t.id == "serve").unwrap().rows.clone();
        assert_eq!(find(&ts), find(&again));
    }
}
