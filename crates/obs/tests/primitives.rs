//! Integration tests for the telemetry primitives.
//!
//! The sink is global, so every test takes one shared lock and calls
//! `obs::reset()` on entry — the cases can run under the default parallel
//! test harness without observing each other's data.

use std::sync::{Mutex, OnceLock};
use std::time::Duration;

fn sink_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = LOCK
        .get_or_init(Default::default)
        .lock()
        .unwrap_or_else(|p| p.into_inner());
    isrl_obs::set_enabled(false);
    isrl_obs::reset();
    guard
}

#[test]
fn spans_nest_into_slash_paths_across_threads() {
    let _g = sink_lock();
    isrl_obs::set_enabled(true);

    let worker = || {
        let _outer = isrl_obs::span("episode");
        for _ in 0..3 {
            let _inner = isrl_obs::span("round");
            std::hint::black_box(());
        }
    };
    let handles: Vec<_> = (0..4).map(|_| std::thread::spawn(worker)).collect();
    worker();
    for h in handles {
        h.join().unwrap();
    }

    let snap = isrl_obs::snapshot();
    let stat = |path: &str| {
        snap.spans
            .iter()
            .find(|(p, _)| p == path)
            .map(|(_, s)| *s)
            .unwrap_or_else(|| panic!("span path '{path}' missing from {:?}", snap.spans))
    };
    // 5 workers (4 threads + the main thread), each: 1 episode, 3 rounds.
    assert_eq!(stat("episode").count, 5);
    assert_eq!(stat("episode/round").count, 15);
    // The nested path exists instead of a flat "round" path.
    assert!(!snap.spans.iter().any(|(p, _)| p == "round"));
    // Parent spans cover their children.
    assert!(stat("episode").total >= stat("episode/round").total);
}

#[test]
fn round_scope_collects_phase_durations_even_when_sink_disabled() {
    let _g = sink_lock();
    assert!(!isrl_obs::enabled());

    isrl_obs::round_begin();
    {
        let _a = isrl_obs::span("lp");
        std::thread::sleep(Duration::from_millis(1));
    }
    {
        let _b = isrl_obs::span("lp");
    }
    {
        let _c = isrl_obs::span("top1");
    }
    let phases = isrl_obs::round_end();
    let names: Vec<&str> = phases.iter().map(|(n, _)| *n).collect();
    assert_eq!(names, vec!["lp", "top1"], "leaf names in first-seen order");
    assert!(phases[0].1 >= Duration::from_millis(1));

    // With the sink disabled nothing reached the global registry.
    assert!(isrl_obs::snapshot().spans.is_empty());
    // And a second round_end without a begin is empty, not stale.
    assert!(isrl_obs::round_end().is_empty());
}

#[test]
fn histogram_bucket_edges_are_powers_of_two() {
    let _g = sink_lock();

    // Exact powers of two land in their own bucket; the values just below
    // land one bucket down.
    let b1 = isrl_obs::bucket_index(1.0);
    assert_eq!(isrl_obs::bucket_index(2.0), b1 + 1);
    assert_eq!(isrl_obs::bucket_index(1.999_999), b1);
    assert_eq!(isrl_obs::bucket_index(0.999_999), b1 - 1);
    let (lo, hi) = isrl_obs::bucket_bounds(b1);
    assert_eq!(lo, 1.0);
    assert_eq!(hi, 2.0);

    // Saturating edges: zero/negative/NaN underflow to bucket 0, huge
    // values clamp to the last bucket.
    assert_eq!(isrl_obs::bucket_index(0.0), 0);
    assert_eq!(isrl_obs::bucket_index(-5.0), 0);
    assert_eq!(isrl_obs::bucket_index(f64::NAN), 0);
    assert_eq!(isrl_obs::bucket_index(1e300), isrl_obs::N_BUCKETS - 1);
    assert_eq!(isrl_obs::bucket_index(1e-300), 0);

    // Recorded summaries: exact count/mean/max, bucket-resolution median.
    isrl_obs::set_enabled(true);
    for v in [0.5, 1.5, 1.6, 100.0] {
        isrl_obs::record("t.hist", v);
    }
    let snap = isrl_obs::snapshot();
    let (_, h) = snap.hists.iter().find(|(k, _)| k == "t.hist").unwrap();
    assert_eq!(h.count, 4);
    assert!((h.mean - 25.9).abs() < 1e-9);
    assert_eq!(h.max, 100.0);
    assert!(
        h.p50 >= 1.0 && h.p50 < 2.0,
        "median bucket is [1,2): {}",
        h.p50
    );
}

#[test]
fn disabled_sink_records_nothing_and_stays_cheap() {
    let _g = sink_lock();
    assert!(!isrl_obs::enabled());

    let c = isrl_obs::counter("t.disabled");
    c.add(7);
    isrl_obs::add("t.disabled", 3);
    isrl_obs::record("t.disabled_hist", 1.0);
    isrl_obs::gauge_set("t.disabled_gauge", 42);
    isrl_obs::emit(isrl_obs::Event::new("round").field("round", 1usize));
    {
        let _s = isrl_obs::span("t.disabled_span");
    }
    let snap = isrl_obs::snapshot();
    assert_eq!(isrl_obs::counter_value("t.disabled"), 0);
    assert_eq!(isrl_obs::gauge_value("t.disabled_gauge"), 0);
    assert!(snap.hists.is_empty());
    assert!(snap.spans.is_empty());
    assert!(snap.events.is_empty());

    // Fast-path sanity: a disabled counter bump, span, and gauge set must
    // be orders of magnitude below a syscall — bound it loosely so the
    // test never flakes, while still catching an accidental clock read or
    // lock on the disabled path. A snapshotter is *running* during the
    // loop: with the sink disabled its wakes must not add overhead either
    // (the disabled-sink guarantee extends to the sampler).
    let sampler = isrl_obs::Snapshotter::start(Duration::from_millis(2), false);
    let iters = 100_000u32;
    let t = std::time::Instant::now();
    for _ in 0..iters {
        c.add(1);
        let _s = isrl_obs::span("t.fast");
        isrl_obs::gauge_set("t.fast_gauge", 1);
        std::hint::black_box(&c);
    }
    let per_op = t.elapsed().as_nanos() as f64 / iters as f64;
    sampler.stop();
    assert!(per_op < 1_000.0, "disabled-path op took {per_op} ns");
    // The disabled-sink snapshotter emitted nothing.
    assert!(isrl_obs::snapshot().events.is_empty());
}

#[test]
fn snapshotter_emits_increasing_timeseries_samples() {
    let _g = sink_lock();
    isrl_obs::set_enabled(true);

    let sampler = isrl_obs::Snapshotter::start(Duration::from_millis(5), false);
    for i in 0..4 {
        isrl_obs::add("t.snap.work", 10);
        isrl_obs::gauge_set("t.snap.level", 100 + i);
        std::thread::sleep(Duration::from_millis(8));
    }
    sampler.stop();

    let snap = isrl_obs::snapshot();
    let series: Vec<&isrl_obs::Event> = snap
        .events
        .iter()
        .filter(|e| e.name == "timeseries")
        .collect();
    assert!(!series.is_empty(), "no timeseries events sampled");

    // Sequence numbers start at 1 and strictly increase.
    let seqs: Vec<u64> = series
        .iter()
        .map(|e| {
            e.fields
                .iter()
                .find(|(k, _)| *k == "seq")
                .and_then(|(_, v)| v.as_f64())
                .unwrap() as u64
        })
        .collect();
    assert_eq!(seqs[0], 1);
    assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1), "{seqs:?}");

    // Counter deltas across all samples sum to the cumulative total.
    let delta_total: f64 = series
        .iter()
        .filter_map(|e| {
            e.fields
                .iter()
                .find(|(k, _)| *k == "counters")
                .and_then(|(_, v)| v.get("t.snap.work"))
                .and_then(|v| v.as_f64())
        })
        .sum();
    assert_eq!(delta_total, 40.0);

    // The serialized trace (events + summary) passes schema validation,
    // timeseries ordering rule included.
    let mut buf = Vec::new();
    snap.write_jsonl(&mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let report = isrl_obs::schema::validate_trace(&text).expect("schema-valid trace");
    assert_eq!(report.events.get("timeseries"), Some(&series.len()));
    assert!(report.warnings.is_empty());
}

#[test]
fn gauges_keep_last_value_and_reset_to_zero() {
    let _g = sink_lock();
    isrl_obs::set_enabled(true);

    isrl_obs::gauge_set("t.gauge", 7);
    isrl_obs::gauge_set("t.gauge", 3);
    assert_eq!(isrl_obs::gauge_value("t.gauge"), 3, "last set wins");
    let snap = isrl_obs::snapshot();
    assert!(snap.gauges.iter().any(|(k, v)| k == "t.gauge" && *v == 3));
    // The summary JSON carries a gauges object.
    let summary = snap.summary_json().to_string();
    assert!(summary.contains(r#""gauges":{"#), "{summary}");

    isrl_obs::reset();
    assert_eq!(isrl_obs::gauge_value("t.gauge"), 0);
}

#[test]
fn event_overflow_is_counted_not_silent() {
    // EVENT_CAP is 1<<20 — filling it for real is too slow for a unit
    // test, so this exercises the accounting contract indirectly: the
    // dropped-events counter is registered as a warning counter and the
    // buffered-events level is what the snapshotter reports.
    assert!(isrl_obs::schema::WARNING_COUNTERS.contains(&isrl_obs::DROPPED_COUNTER));
    assert_eq!(isrl_obs::DROPPED_COUNTER, "obs.events.dropped");
}

#[test]
fn events_serialize_as_schema_valid_jsonl() {
    let _g = sink_lock();
    isrl_obs::set_enabled(true);

    isrl_obs::add("lp.pivots", 12);
    isrl_obs::emit(
        isrl_obs::Event::new("round")
            .field("algo", "EA")
            .field("round", 1usize)
            .field("elapsed_ms", 0.25)
            .field("cut", &[0.5, -0.5][..]),
    );
    isrl_obs::emit(
        isrl_obs::Event::new("episode")
            .field("algo", "EA")
            .field("episode", 0usize)
            .field("rounds", 4usize)
            .field("epsilon", 0.9)
            .field("replay_len", 16usize),
    );

    let snap = isrl_obs::snapshot();
    let mut buf = Vec::new();
    snap.write_jsonl(&mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let report = isrl_obs::schema::validate_trace(&text).expect("schema-valid JSONL");
    assert_eq!(report.events.get("round"), Some(&1));
    assert_eq!(report.events.get("episode"), Some(&1));
    assert_eq!(report.events.get("summary"), Some(&1));
    assert!(report.warnings.is_empty());

    // A second snapshot has no events left (drained) but keeps aggregates.
    let again = isrl_obs::snapshot();
    assert!(again.events.is_empty());
    assert!(again
        .counters
        .iter()
        .any(|(k, v)| k == "lp.pivots" && *v == 12));
}

#[test]
fn span_paths_are_depth_and_length_bounded() {
    let _g = sink_lock();
    isrl_obs::set_enabled(true);

    // Recurse far past MAX_DEPTH with fat segment names so both the depth
    // and the byte-length bound trip; guards drop innermost-first.
    fn deep(n: usize) {
        if n == 0 {
            std::hint::black_box(());
            return;
        }
        let _g = isrl_obs::span("a_rather_long_span_segment_name");
        deep(n - 1);
    }
    deep(isrl_obs::MAX_DEPTH + 4);

    let snap = isrl_obs::snapshot();
    assert!(!snap.spans.is_empty());
    for (path, _) in &snap.spans {
        assert!(
            path.len() <= isrl_obs::MAX_PATH_LEN + '…'.len_utf8(),
            "unbounded span path ({} bytes): {path}",
            path.len()
        );
    }
    assert!(
        snap.spans.iter().any(|(p, _)| p.ends_with('…')),
        "no truncation marker in {:?}",
        snap.spans
    );
    assert!(
        isrl_obs::counter_value(isrl_obs::TRUNCATED_COUNTER) > 0,
        "truncations must be counted"
    );
    // The truncation counter is a warning counter: a trace written from
    // this state must fail validation loudly instead of silently losing
    // attribution fidelity.
    let mut buf = Vec::new();
    snap.write_jsonl(&mut buf).unwrap();
    let report = isrl_obs::schema::validate_trace(&String::from_utf8(buf).unwrap()).unwrap();
    assert!(report
        .warnings
        .iter()
        .any(|(name, _)| name == isrl_obs::TRUNCATED_COUNTER));
}
