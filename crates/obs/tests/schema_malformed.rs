//! Adversarial inputs for `schema::validate_trace`: truncated lines,
//! unknown event kinds, missing summaries, and out-of-order round indices
//! must all fail loudly with the offending line number — the validator is
//! the CI gate that keeps silent trace corruption out of reports.

use isrl_obs::schema::validate_trace;

const SUMMARY: &str = r#"{"ev":"summary","t_ms":9,"counters":{},"spans":{},"hists":{}}"#;

fn trace(lines: &[&str]) -> String {
    let mut out = String::new();
    for l in lines {
        out.push_str(l);
        out.push('\n');
    }
    out
}

#[test]
fn truncated_jsonl_line_fails_with_line_number() {
    // A writer killed mid-line leaves a prefix of a valid event.
    let full = r#"{"ev":"round","t_ms":1,"algo":"EA","round":1,"elapsed_ms":0.5}"#;
    let t = trace(&[full, &full[..30], SUMMARY]);
    let err = validate_trace(&t).unwrap_err();
    assert!(err.starts_with("line 2:"), "{err}");
}

#[test]
fn unknown_event_kind_fails() {
    let t = trace(&[r#"{"ev":"heartbeat","t_ms":1}"#, SUMMARY]);
    let err = validate_trace(&t).unwrap_err();
    assert!(err.contains("unknown event kind 'heartbeat'"), "{err}");
}

#[test]
fn missing_summary_line_fails() {
    let t = trace(&[r#"{"ev":"round","t_ms":1,"algo":"EA","round":1,"elapsed_ms":0.5}"#]);
    let err = validate_trace(&t).unwrap_err();
    assert!(err.contains("exactly one summary"), "{err}");

    // …and so does a duplicated summary.
    let t = trace(&[SUMMARY, SUMMARY]);
    let err = validate_trace(&t).unwrap_err();
    assert!(err.contains("found 2"), "{err}");
}

#[test]
fn out_of_order_round_indices_fail() {
    let r = |round: u64| {
        format!(r#"{{"ev":"round","t_ms":1,"algo":"EA","round":{round},"elapsed_ms":0.1}}"#)
    };
    // Skipping an index: 1 then 3.
    let t = trace(&[&r(1), &r(3), SUMMARY]);
    let err = validate_trace(&t).unwrap_err();
    assert!(err.contains("out-of-order round 3"), "{err}");

    // Starting mid-session: first event already at round 2.
    let t = trace(&[&r(2), SUMMARY]);
    let err = validate_trace(&t).unwrap_err();
    assert!(err.contains("out-of-order round 2"), "{err}");

    // Non-integer and non-positive indices are rejected outright.
    let bad = r#"{"ev":"round","t_ms":1,"algo":"EA","round":1.5,"elapsed_ms":0.1}"#;
    assert!(validate_trace(&trace(&[bad, SUMMARY])).is_err());
    let zero = r#"{"ev":"round","t_ms":1,"algo":"EA","round":0,"elapsed_ms":0.1}"#;
    assert!(validate_trace(&trace(&[zero, SUMMARY])).is_err());
}

#[test]
fn interleaved_sessions_are_accepted() {
    // Two EA sessions progressing concurrently (parallel sweep workers)
    // plus an AA session: every round is 1 or advances an open session.
    let ev = |algo: &str, round: u64| {
        format!(r#"{{"ev":"round","t_ms":1,"algo":"{algo}","round":{round},"elapsed_ms":0.1}}"#)
    };
    let t = trace(&[
        &ev("EA", 1),
        &ev("EA", 1),
        &ev("AA", 1),
        &ev("EA", 2),
        &ev("EA", 2),
        &ev("EA", 3),
        &ev("AA", 2),
        &ev("EA", 1),
        SUMMARY,
    ]);
    let report = validate_trace(&t).unwrap();
    assert_eq!(report.events["round"], 8);
}

#[test]
fn timeseries_seq_must_strictly_increase() {
    let ts = |seq: u64| format!(r#"{{"ev":"timeseries","t_ms":1,"seq":{seq},"counters":{{}}}}"#);
    let ok = trace(&[&ts(1), &ts(2), &ts(5), SUMMARY]);
    assert_eq!(validate_trace(&ok).unwrap().events["timeseries"], 3);

    let dup = trace(&[&ts(1), &ts(1), SUMMARY]);
    let err = validate_trace(&dup).unwrap_err();
    assert!(err.contains("seq 1 out of order"), "{err}");

    let back = trace(&[&ts(2), &ts(1), SUMMARY]);
    assert!(validate_trace(&back).is_err());
}

#[test]
fn dropped_event_counter_is_a_warning() {
    let s =
        r#"{"ev":"summary","t_ms":9,"counters":{"obs.events.dropped":17},"spans":{},"hists":{}}"#;
    let report = validate_trace(s).unwrap();
    assert_eq!(
        report.warnings,
        vec![("obs.events.dropped".to_string(), 17)]
    );
}
