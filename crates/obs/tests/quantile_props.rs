//! Property tests for the streaming quantile sketch: the DDSketch-style
//! relative-error guarantee must hold against exact sorted quantiles on
//! adversarial shapes (constant, bimodal, heavy-tailed), and merging must
//! be order-insensitive — associative and commutative — because the
//! snapshotter and `trace-diff` both assume sketches combine freely.
//!
//! The reference uses the same rank convention as the sketch
//! (`floor(q * (n - 1))` into the sorted sample), so the only divergence
//! the bound has to absorb is bucket-midpoint rounding: at most `alpha`
//! relative error per value, plus float slop.

use isrl_obs::QuantileSketch;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// The default sketch's relative-error budget, with a little float slack.
const ALPHA_BOUND: f64 = 0.0105;

/// Quantile grid every case is checked on (extremes included: p0 must hit
/// min, p100 must hit max thanks to clamping).
const QS: &[f64] = &[0.0, 0.25, 0.5, 0.9, 0.99, 1.0];

/// Exact `q`-quantile under the sketch's own rank convention.
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = (q * (sorted.len() - 1) as f64).floor() as usize;
    sorted[rank]
}

/// Asserts the sketch agrees with the exact quantiles of `values` on the
/// whole grid, within relative error [`ALPHA_BOUND`].
fn assert_within_bound(values: &[f64]) -> Result<(), TestCaseError> {
    let mut sk = QuantileSketch::default_config();
    for &v in values {
        sk.record(v);
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    for &q in QS {
        let exact = exact_quantile(&sorted, q);
        let est = sk.quantile(q);
        prop_assert!(
            (est - exact).abs() <= ALPHA_BOUND * exact + 1e-12,
            "q={q}: estimate {est} vs exact {exact} (n={})",
            values.len()
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Constant distribution: every quantile IS the value; the estimate
    // may only deviate by the bucket-midpoint rounding.
    #[test]
    fn constant_distribution_stays_within_alpha(
        value in 0.01f64..1e4,
        n in 1usize..=300,
    ) {
        let values = vec![value; n];
        assert_within_bound(&values)?;
    }

    // Bimodal: two far-apart modes, the worst case for any sketch that
    // interpolates between adjacent samples (ours must not).
    #[test]
    fn bimodal_distribution_stays_within_alpha(
        lo in 0.01f64..1.0,
        hi in 100.0f64..1e4,
        n_lo in 1usize..=120,
        n_hi in 1usize..=120,
    ) {
        let mut values = vec![lo; n_lo];
        values.extend(std::iter::repeat(hi).take(n_hi));
        assert_within_bound(&values)?;
    }

    // Heavy-tailed: exponents spanning eight decades, the regime round
    // latencies actually live in (most rounds fast, a few pathological).
    #[test]
    fn heavy_tailed_distribution_stays_within_alpha(
        exponents in proptest::collection::vec(-2.0f64..6.0, 1..200),
    ) {
        let values: Vec<f64> = exponents.iter().map(|e| 10f64.powf(*e)).collect();
        assert_within_bound(&values)?;
    }

    // Merge must commute and associate exactly (bucket-count addition),
    // and the merged sketch must answer like one sketch fed everything.
    #[test]
    fn merge_is_associative_commutative_and_within_alpha(
        a in proptest::collection::vec(0.01f64..1e4, 0..80),
        b in proptest::collection::vec(0.01f64..1e4, 0..80),
        c in proptest::collection::vec(0.01f64..1e4, 1..80),
    ) {
        let sketch_of = |vals: &[f64]| {
            let mut s = QuantileSketch::default_config();
            for &v in vals {
                s.record(v);
            }
            s
        };
        let (sa, sb, sc) = (sketch_of(&a), sketch_of(&b), sketch_of(&c));

        // (a ⊕ b) ⊕ c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        // a ⊕ (b ⊕ c)
        let mut right = sb.clone();
        right.merge(&sc);
        let mut right_assoc = sa.clone();
        right_assoc.merge(&right);
        // c ⊕ b ⊕ a (commuted)
        let mut commuted = sc.clone();
        commuted.merge(&sb);
        commuted.merge(&sa);
        // One sketch over the pooled stream.
        let pooled: Vec<f64> = a.iter().chain(&b).chain(&c).copied().collect();
        let direct = sketch_of(&pooled);

        for &q in QS {
            let l = left.quantile(q);
            prop_assert_eq!(l, right_assoc.quantile(q), "associativity at q={}", q);
            prop_assert_eq!(l, commuted.quantile(q), "commutativity at q={}", q);
            prop_assert_eq!(l, direct.quantile(q), "merge vs single stream at q={}", q);
        }
        prop_assert_eq!(left.count(), pooled.len() as u64);

        // And the merged answer still honors the error bound vs exact.
        let mut sorted = pooled;
        sorted.sort_by(f64::total_cmp);
        for &q in QS {
            let exact = exact_quantile(&sorted, q);
            let est = left.quantile(q);
            prop_assert!(
                (est - exact).abs() <= ALPHA_BOUND * exact + 1e-12,
                "merged q={}: estimate {} vs exact {}", q, est, exact
            );
        }
    }
}
