//! Differential suite for the sampled utility-region backend: at low
//! dimensionality (d ≤ 6), where the exact vertex-enumeration backend is
//! the ground truth, an EA episode on the sampled backend must land in the
//! same behavioral envelope — terminate without truncation, certify an
//! ε-valid recommendation, and ask a question count within a small band of
//! the exact run's. The two backends see different state encodings (true
//! vertices vs sample cloud), so per-round lockstep is not the contract the
//! way it is for `aa_warm_shadow`; *question-count parity plus identical
//! quality guarantees* is. DESIGN.md §12 records this parity definition and
//! the band used here.

use isrl_core::ea::{EaAgent, EaConfig};
use isrl_core::interaction::{InteractiveAlgorithm, TraceMode};
use isrl_core::regret::regret_ratio_of_index;
use isrl_core::user::SimulatedUser;
use isrl_data::Dataset;
use isrl_geometry::GeometryBackend;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random dataset of `n` points in `[0.05, 1]^d`.
fn synthetic_dataset(rng: &mut StdRng, n: usize, d: usize) -> Dataset {
    let points: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..d).map(|_| rng.gen_range(0.05..1.0)).collect())
        .collect();
    Dataset::from_points(points, d)
}

/// Random utility vector on the simplex interior.
fn synthetic_truth(rng: &mut StdRng, d: usize) -> Vec<f64> {
    let mut truth: Vec<f64> = (0..d).map(|_| rng.gen_range(0.05..1.0)).collect();
    let s: f64 = truth.iter().sum();
    truth.iter_mut().for_each(|t| *t /= s);
    truth
}

fn configs(seed: u64) -> (EaConfig, EaConfig) {
    let mut exact = EaConfig::paper_default().with_seed(seed);
    exact.geometry = GeometryBackend::Exact;
    let mut sampled = exact.clone();
    sampled.geometry = GeometryBackend::Sampled;
    (exact, sampled)
}

/// Per-episode question-count band: the sampled cloud blurs the state the
/// policy sees and the terminal certificate checks, so individual episodes
/// may ask a few more (or fewer) questions than the exact run. Parity
/// means staying inside this band while matching the quality guarantee.
const ROUND_BAND: usize = 4;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn sampled_episodes_match_exact_quality_and_round_band(
        seed in 0u64..1 << 20,
        d in 2usize..=6,
        n in 6usize..=12,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = synthetic_dataset(&mut rng, n, d);
        let truth = synthetic_truth(&mut rng, d);
        let eps = 0.2;
        let (exact_cfg, sampled_cfg) = configs(seed);

        let mut exact_agent = EaAgent::new(d, exact_cfg);
        let mut user = SimulatedUser::new(truth.clone());
        let exact_out = exact_agent.run(&data, &mut user, eps, TraceMode::Off);

        let mut sampled_agent = EaAgent::new(d, sampled_cfg);
        let mut user = SimulatedUser::new(truth.clone());
        let sampled_out = sampled_agent.run(&data, &mut user, eps, TraceMode::Off);

        prop_assert!(!exact_out.truncated, "exact run truncated");
        prop_assert!(!sampled_out.truncated, "sampled run truncated");

        let exact_regret = regret_ratio_of_index(&data, exact_out.point_index, &truth);
        let sampled_regret = regret_ratio_of_index(&data, sampled_out.point_index, &truth);
        prop_assert!(exact_regret < eps, "exact regret {} >= {}", exact_regret, eps);
        prop_assert!(sampled_regret < eps, "sampled regret {} >= {}", sampled_regret, eps);

        let diff = exact_out.rounds.abs_diff(sampled_out.rounds);
        prop_assert!(
            diff <= ROUND_BAND,
            "question counts diverged: exact {} vs sampled {} (band {})",
            exact_out.rounds, sampled_out.rounds, ROUND_BAND
        );
    }
}

#[test]
fn aggregate_round_counts_stay_close_at_d4() {
    // Run-level parity: over a fixed pool of users at d = 4, the two
    // backends' mean question counts must agree within one question —
    // the sampled backend is a speed knob, not a different questioner.
    let d = 4;
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let data = synthetic_dataset(&mut rng, 30, d);
    let eps = 0.15;
    let truths: Vec<Vec<f64>> = (0..12).map(|_| synthetic_truth(&mut rng, d)).collect();

    let mean_rounds = |backend: GeometryBackend| -> f64 {
        let mut cfg = EaConfig::paper_default().with_seed(9);
        cfg.geometry = backend;
        let mut agent = EaAgent::new(d, cfg);
        let mut total = 0usize;
        for (i, truth) in truths.iter().enumerate() {
            agent.reseed(0xbeef + i as u64);
            let mut user = SimulatedUser::new(truth.clone());
            let out = agent.run(&data, &mut user, eps, TraceMode::Off);
            assert!(!out.truncated, "episode truncated under {backend:?}");
            assert!(
                regret_ratio_of_index(&data, out.point_index, truth) < eps,
                "regret guarantee broken under {backend:?}"
            );
            total += out.rounds;
        }
        total as f64 / truths.len() as f64
    };

    let exact = mean_rounds(GeometryBackend::Exact);
    let sampled = mean_rounds(GeometryBackend::Sampled);
    assert!(
        (exact - sampled).abs() <= 1.0,
        "mean question counts diverged: exact {exact:.2} vs sampled {sampled:.2}"
    );
}
