//! Shadow-solver property test: a full AA episode with warm-started LPs
//! must be *observationally identical* to the same episode with the cold
//! solver — same question at every round, same round count, same final
//! recommendation, same truncation flag. `AaConfig::warm_lp` is documented
//! as a pure speed knob; this suite is the proof.
//!
//! Episodes are driven step-wise through [`AaAgent::start_session`] so the
//! two configurations can be compared round by round (not just on the
//! final output), on seeded synthetic datasets up to `d = 6`.

use isrl_core::aa::{AaAgent, AaConfig};
use isrl_core::interaction::{InteractiveAlgorithm, TraceMode};
use isrl_core::user::SimulatedUser;
use isrl_data::Dataset;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random dataset of `n` points in `[0.05, 1]^d` (AA's normalized domain).
fn synthetic_dataset(rng: &mut StdRng, n: usize, d: usize) -> Dataset {
    let points: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..d).map(|_| rng.gen_range(0.05..1.0)).collect())
        .collect();
    Dataset::from_points(points, d)
}

/// Random utility vector on the simplex interior.
fn synthetic_truth(rng: &mut StdRng, d: usize) -> Vec<f64> {
    let mut truth: Vec<f64> = (0..d).map(|_| rng.gen_range(0.05..1.0)).collect();
    let s: f64 = truth.iter().sum();
    truth.iter_mut().for_each(|t| *t /= s);
    truth
}

fn configs(seed: u64) -> (AaConfig, AaConfig) {
    let warm = AaConfig::paper_default().with_seed(seed);
    let mut cold = warm.clone();
    cold.warm_lp = false;
    assert!(warm.warm_lp, "warm path must be the default");
    (warm, cold)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Step-wise lockstep: the warm and cold agents must ask the exact same
    // question at every round and end in the same state.
    #[test]
    fn warm_and_cold_sessions_ask_identical_questions(
        seed in 0u64..1 << 20,
        d in 2usize..=6,
        n in 4usize..=10,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = synthetic_dataset(&mut rng, n, d);
        let truth = synthetic_truth(&mut rng, d);
        let eps = 0.15;
        let (warm_cfg, cold_cfg) = configs(seed);
        let mut warm_agent = AaAgent::new(d, warm_cfg);
        let mut cold_agent = AaAgent::new(d, cold_cfg);
        let mut warm = warm_agent.start_session(&data, eps);
        let mut cold = cold_agent.start_session(&data, eps);
        let mut guard = 0usize;
        loop {
            let wq = warm.current_question();
            let cq = cold.current_question();
            prop_assert_eq!(wq, cq, "question divergence at round {}", warm.rounds());
            let Some(q) = wq else { break };
            let dot = |u: &[f64], p: &[f64]| u.iter().zip(p).map(|(a, b)| a * b).sum::<f64>();
            let answer = dot(&truth, data.point(q.i)) >= dot(&truth, data.point(q.j));
            warm.answer(answer);
            cold.answer(answer);
            guard += 1;
            prop_assert!(guard < 500, "episode failed to terminate");
        }
        prop_assert!(cold.is_finished());
        prop_assert_eq!(warm.rounds(), cold.rounds());
        prop_assert_eq!(warm.recommendation(), cold.recommendation());
        prop_assert_eq!(warm.truncated(), cold.truncated());
    }

    // Callback-driven episodes (the `run` entry point AA's benchmarks use)
    // must return the same tuple, round count, and truncation flag.
    #[test]
    fn warm_and_cold_runs_return_the_same_tuple(
        seed in 0u64..1 << 20,
        d in 2usize..=6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd_1234);
        let data = synthetic_dataset(&mut rng, 8, d);
        let truth = synthetic_truth(&mut rng, d);
        let (warm_cfg, cold_cfg) = configs(seed);
        let mut warm_agent = AaAgent::new(d, warm_cfg);
        let mut cold_agent = AaAgent::new(d, cold_cfg);
        let mut warm_user = SimulatedUser::new(truth.clone());
        let mut cold_user = SimulatedUser::new(truth);
        let warm_out = warm_agent.run(&data, &mut warm_user, 0.12, TraceMode::Off);
        let cold_out = cold_agent.run(&data, &mut cold_user, 0.12, TraceMode::Off);
        prop_assert_eq!(warm_out.point_index, cold_out.point_index);
        prop_assert_eq!(warm_out.rounds, cold_out.rounds);
        prop_assert_eq!(warm_out.truncated, cold_out.truncated);
    }
}
