//! Serving-path differential tests (DESIGN.md §14).
//!
//! Two guarantees are pinned here:
//!
//! 1. **Session/agent parity** — a [`ServeSession`] (owned state, external
//!    scans) asks byte-identical question sequences to the borrowing
//!    `EaSession`/`AaSession` given the same policy and seed, and returns
//!    the same recommendation. The serving split is a refactor of the
//!    round loop, not a new algorithm.
//! 2. **Session isolation** — K sessions interleaved through a
//!    [`SessionRegistry`] with cross-user batching enabled see exactly
//!    what each would see running alone: the batcher may merge scans but
//!    must never let one user's traffic perturb another's questions.

use std::sync::Arc;

use isrl_core::prelude::*;
use isrl_data::synthetic::{generate, Distribution};
use isrl_data::Dataset;
use isrl_linalg::vector;

fn dataset() -> Arc<Dataset> {
    Arc::new(generate(60, 2, Distribution::AntiCorrelated, 11))
}

fn prefers(truth: &[f64], p: &[f64], q: &[f64]) -> bool {
    vector::dot(truth, p) >= vector::dot(truth, q)
}

/// Drives a [`ServeSession`] alone (inline scans) and records its question
/// sequence.
fn run_serve_session(
    policy: &Arc<ServePolicy>,
    data: &Arc<Dataset>,
    eps: f64,
    seed: u64,
    truth: &[f64],
) -> (Vec<(usize, usize)>, usize, usize) {
    let mut session = ServeSession::new(Arc::clone(policy), Arc::clone(data), eps, seed).unwrap();
    let mut questions = Vec::new();
    loop {
        session.step_blocking();
        if session.is_finished() {
            let rec = session.recommendation().unwrap();
            return (questions, session.rounds(), rec);
        }
        let q = session.current_question().unwrap();
        questions.push((q.i, q.j));
        let (p1, p2) = session
            .current_points()
            .map(|(a, b)| (a.to_vec(), b.to_vec()))
            .unwrap();
        session.answer(prefers(truth, &p1, &p2)).unwrap();
    }
}

#[test]
fn serve_session_matches_ea_session() {
    let data = dataset();
    let eps = 0.1;
    for geometry in ["exact", "sampled"] {
        let backend = isrl_geometry::GeometryBackend::parse(geometry).unwrap();
        let mut cfg = EaConfig::paper_default().with_seed(5);
        cfg.geometry = backend;
        for (seed, truth) in [(21u64, vec![0.35, 0.65]), (22, vec![0.7, 0.3])] {
            // Borrowing session: reseed pins the agent RNG to the session
            // seed, exactly what ServeSession::new does internally.
            let mut agent = EaAgent::new(2, cfg.clone());
            agent.reseed(seed);
            let mut session = agent.start_session(&data, eps);
            let mut inline_questions = Vec::new();
            while let Some(q) = session.current_question() {
                inline_questions.push((q.i, q.j));
                let (p1, p2) = session
                    .current_points()
                    .map(|(a, b)| (a.to_vec(), b.to_vec()))
                    .unwrap();
                session.answer(prefers(&truth, &p1, &p2));
            }

            let policy = Arc::new(ServePolicy::Ea(EaAgent::new(2, cfg.clone())));
            let (questions, rounds, rec) = run_serve_session(&policy, &data, eps, seed, &truth);
            assert_eq!(
                questions, inline_questions,
                "EA/{geometry} seed {seed}: question sequences must match"
            );
            assert_eq!(rounds, session.rounds());
            assert_eq!(rec, session.recommendation());
            assert!(
                regret_ratio_of_index(&data, rec, &truth) < eps || session.truncated(),
                "EA serving must stay exact"
            );
        }
    }
}

#[test]
fn serve_session_matches_aa_session() {
    let data = dataset();
    let eps = 0.15;
    let cfg = AaConfig::paper_default().with_seed(6);
    for (seed, truth) in [(31u64, vec![0.25, 0.75]), (32, vec![0.6, 0.4])] {
        let mut agent = AaAgent::new(2, cfg.clone());
        agent.reseed(seed);
        let mut session = agent.start_session(&data, eps);
        let mut inline_questions = Vec::new();
        while let Some(q) = session.current_question() {
            inline_questions.push((q.i, q.j));
            let (p1, p2) = session
                .current_points()
                .map(|(a, b)| (a.to_vec(), b.to_vec()))
                .unwrap();
            session.answer(prefers(&truth, &p1, &p2));
        }

        let policy = Arc::new(ServePolicy::Aa(AaAgent::new(2, cfg.clone())));
        let (questions, rounds, rec) = run_serve_session(&policy, &data, eps, seed, &truth);
        assert_eq!(
            questions, inline_questions,
            "AA seed {seed}: question sequences must match"
        );
        assert_eq!(rounds, session.rounds());
        assert_eq!(rec, session.recommendation());
    }
}

/// The per-session view of an interleaved run: every question seen, in
/// order, plus the outcome.
#[derive(Debug, PartialEq)]
struct SessionLog {
    questions: Vec<(usize, usize)>,
    rounds: usize,
    recommendation: usize,
    truncated: bool,
}

/// Runs K mixed EA/AA sessions through one registry until all finish.
/// `interleaved` answers sessions round-robin (all make progress together,
/// maximizing batcher coalescing); serial drains one session fully before
/// opening the next.
fn run_registry(
    data: &Arc<Dataset>,
    specs: &[(AlgoKind, u64, Vec<f64>)],
    eps: f64,
    interleaved: bool,
    batching: bool,
) -> (Vec<SessionLog>, isrl_core::serving::BatchStats) {
    let mut registry = SessionRegistry::new(Arc::clone(data));
    registry.set_batching(batching);
    let mut ea_cfg = EaConfig::paper_default().with_seed(5);
    ea_cfg.geometry = isrl_geometry::GeometryBackend::parse("exact").unwrap();
    registry.register(Arc::new(ServePolicy::Ea(EaAgent::new(2, ea_cfg))));
    registry.register(Arc::new(ServePolicy::Aa(AaAgent::new(
        2,
        AaConfig::paper_default().with_seed(6),
    ))));

    let mut logs: Vec<SessionLog> = Vec::new();
    if interleaved {
        let ids: Vec<u64> = specs
            .iter()
            .map(|(algo, seed, _)| registry.open(*algo, eps, *seed).unwrap())
            .collect();
        let mut questions: Vec<Vec<(usize, usize)>> = vec![Vec::new(); specs.len()];
        loop {
            registry.pump_all();
            let mut any_open = false;
            for (k, id) in ids.iter().enumerate() {
                let session = match registry.session(*id) {
                    Some(s) if !s.is_finished() => s,
                    _ => continue,
                };
                any_open = true;
                let q = session.current_question().unwrap();
                questions[k].push((q.i, q.j));
                let (p1, p2) = session
                    .current_points()
                    .map(|(a, b)| (a.to_vec(), b.to_vec()))
                    .unwrap();
                registry
                    .answer(*id, prefers(&specs[k].2, &p1, &p2))
                    .unwrap();
            }
            // After a pump_all, every unfinished session has a question,
            // so a pass with no question means everyone is done.
            if !any_open {
                break;
            }
        }
        for (k, id) in ids.iter().enumerate() {
            let s = registry.close(*id).unwrap();
            logs.push(SessionLog {
                questions: std::mem::take(&mut questions[k]),
                rounds: s.rounds(),
                recommendation: s.recommendation().unwrap(),
                truncated: s.truncated(),
            });
        }
    } else {
        for (algo, seed, truth) in specs {
            let id = registry.open(*algo, eps, *seed).unwrap();
            let mut qs = Vec::new();
            loop {
                registry.pump_all();
                let session = registry.session(id).unwrap();
                if session.is_finished() {
                    break;
                }
                let q = session.current_question().unwrap();
                qs.push((q.i, q.j));
                let (p1, p2) = session
                    .current_points()
                    .map(|(a, b)| (a.to_vec(), b.to_vec()))
                    .unwrap();
                registry.answer(id, prefers(truth, &p1, &p2)).unwrap();
            }
            let s = registry.close(id).unwrap();
            logs.push(SessionLog {
                questions: qs,
                rounds: s.rounds(),
                recommendation: s.recommendation().unwrap(),
                truncated: s.truncated(),
            });
        }
    }
    (logs, registry.stats())
}

#[test]
fn interleaved_sessions_are_isolated() {
    let data = dataset();
    let eps = 0.12;
    // K = 6 sessions, mixed algorithms, distinct seeds and users.
    let specs: Vec<(AlgoKind, u64, Vec<f64>)> = vec![
        (AlgoKind::Ea, 101, vec![0.2, 0.8]),
        (AlgoKind::Aa, 102, vec![0.35, 0.65]),
        (AlgoKind::Ea, 103, vec![0.5, 0.5]),
        (AlgoKind::Aa, 104, vec![0.65, 0.35]),
        (AlgoKind::Ea, 105, vec![0.8, 0.2]),
        (AlgoKind::Aa, 106, vec![0.45, 0.55]),
    ];

    let (interleaved, stats) = run_registry(&data, &specs, eps, true, true);
    let (serial, _) = run_registry(&data, &specs, eps, false, true);
    assert_eq!(
        interleaved, serial,
        "an interleaved session must see exactly its solo question sequence"
    );
    assert!(
        stats.coalesced > 0,
        "six lockstep sessions must coalesce scans: {stats:?}"
    );

    // And batching itself must be invisible.
    let (unbatched, unbatched_stats) = run_registry(&data, &specs, eps, true, false);
    assert_eq!(interleaved, unbatched);
    assert_eq!(unbatched_stats.coalesced, 0);
}
