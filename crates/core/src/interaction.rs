//! The interaction framework shared by every algorithm.
//!
//! §III of the paper structures the interactive regret query into rounds of
//! *question selection* → *information maintenance* → *stopping condition*.
//! This module fixes the common vocabulary: questions are index pairs into
//! the dataset, every algorithm implements [`InteractiveAlgorithm`], and a
//! run produces an [`InteractionOutcome`] optionally carrying a per-round
//! trace (the utility-range snapshot Figures 7–8 are computed from).

use isrl_data::Dataset;
use isrl_geometry::Region;
use std::time::{Duration, Instant};

use crate::user::User;

/// A question: "do you prefer `data[i]` or `data[j]`?".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Question {
    /// Index of the first point.
    pub i: usize,
    /// Index of the second point.
    pub j: usize,
}

/// Whether to collect per-round snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// No per-round data (fast path for sweeps).
    Off,
    /// Record round, elapsed time, current recommendation, and the region.
    PerRound,
    /// Like [`TraceMode::PerRound`] but only for the first `n` rounds —
    /// snapshots clone the region (O(rounds) half-spaces each), so tracing
    /// a multi-thousand-round SinglePass run would cost O(rounds²) memory.
    FirstRounds(usize),
}

impl TraceMode {
    /// `true` iff a snapshot should be recorded for 1-based `round`.
    pub fn should_trace(&self, round: usize) -> bool {
        match *self {
            TraceMode::Off => false,
            TraceMode::PerRound => true,
            TraceMode::FirstRounds(n) => round <= n,
        }
    }
}

/// One per-round snapshot.
#[derive(Debug, Clone)]
pub struct RoundTrace {
    /// 1-based round number.
    pub round: usize,
    /// Wall-clock time from the start of the interaction to the end of
    /// this round.
    pub elapsed: Duration,
    /// The point the algorithm would currently return.
    pub best_index: usize,
    /// The utility range learned so far (half-space view).
    pub region: Region,
    /// Per-phase wall time of this round, `(leaf span name, total)` in
    /// first-seen order — the output of the `isrl_obs` round scope
    /// (`geom_update`, `lp`, `sampling`, `nn`, `top1`, …). Populated by
    /// every algorithm whenever the round is traced; sums to *measured*
    /// section time, so `elapsed` deltas and the trace no longer disagree
    /// about where a round's cost went.
    pub phases: Vec<(&'static str, Duration)>,
    /// Vertex count of the incrementally-maintained polytope after this
    /// round's cut (algorithms that track vertices only).
    pub vertex_count: Option<usize>,
    /// Outer-rectangle volume proxy of the region after this round's cut
    /// (see `RegionGeometry::volume_proxy`), when cheaply available.
    pub volume_proxy: Option<f64>,
}

impl RoundTrace {
    /// A snapshot with the mandatory fields; phase timings and geometry
    /// summaries start empty and are filled in by instrumented callers.
    pub fn new(round: usize, elapsed: Duration, best_index: usize, region: Region) -> Self {
        Self {
            round,
            elapsed,
            best_index,
            region,
            phases: Vec::new(),
            vertex_count: None,
            volume_proxy: None,
        }
    }

    /// Total recorded time of the phase named `name`, if it was measured.
    pub fn phase(&self, name: &str) -> Option<Duration> {
        self.phases
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, d)| *d)
    }
}

/// The result of a full interaction.
#[derive(Debug, Clone)]
pub struct InteractionOutcome {
    /// Index of the returned point.
    pub point_index: usize,
    /// Number of questions asked (= interactive rounds).
    pub rounds: usize,
    /// Total wall-clock time of the interaction.
    pub elapsed: Duration,
    /// Per-round snapshots when requested, else empty.
    pub trace: Vec<RoundTrace>,
    /// `true` when the algorithm hit its safety round cap instead of its
    /// stopping condition (reported, never silently dropped).
    pub truncated: bool,
}

/// An interactive regret-query algorithm.
pub trait InteractiveAlgorithm {
    /// Short display name ("EA", "UH-Random", …).
    fn name(&self) -> &'static str;

    /// Runs a full interaction with `user` on `data`, targeting regret
    /// threshold `eps`.
    fn run(
        &mut self,
        data: &Dataset,
        user: &mut dyn User,
        eps: f64,
        trace: TraceMode,
    ) -> InteractionOutcome;

    /// Reseeds the algorithm's internal randomness. Parallel sweeps call
    /// this before every interaction with a seed derived from the work
    /// item's coordinates, making each outcome independent of thread
    /// scheduling. Deterministic algorithms keep the default no-op.
    fn reseed(&mut self, _seed: u64) {}
}

/// A tiny stopwatch wrapper so algorithms report consistent timings.
#[derive(Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing.
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn question_is_plain_data() {
        let q = Question { i: 3, j: 7 };
        assert_eq!(q, Question { i: 3, j: 7 });
    }

    #[test]
    fn stopwatch_reports_monotonically() {
        let sw = Stopwatch::start();
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a);
    }
}
