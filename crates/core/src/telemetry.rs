//! Event-emission helpers shared by the interactive algorithms.
//!
//! All algorithms speak the same trace schema (see `isrl_obs::schema` and
//! DESIGN.md §9): one `round` event per question asked, one `episode` event
//! per training episode. The helpers here own the field layout so EA, AA,
//! the baselines, and the step-wise sessions cannot drift apart.

use crate::interaction::Question;
use isrl_obs::{Event, Json};
use std::time::Duration;

/// Emits one `round` event. `q` is `None` for algorithms whose questions
/// are synthetic comparisons rather than dataset pairs (UtilityApprox);
/// `round_ms` is this round's own wall time (elapsed is cumulative) and
/// also feeds the `round.latency_ms` quantile sketch so traces carry
/// p50/p90/p99 round latency; `vertices_before`/`after` and `volume_proxy`
/// are omitted from the event when the algorithm does not track them.
/// No-op when the sink is disabled.
#[allow(clippy::too_many_arguments)]
pub(crate) fn emit_round_event(
    algo: &'static str,
    round: usize,
    q: Option<Question>,
    elapsed: Duration,
    round_ms: f64,
    vertices_before: Option<usize>,
    vertices_after: Option<usize>,
    volume_proxy: Option<f64>,
    phases: &[(&'static str, Duration)],
) {
    if !isrl_obs::enabled() {
        return;
    }
    isrl_obs::add("rounds.total", 1);
    isrl_obs::sketch_record("round.latency_ms", round_ms);
    let mut ev = Event::new("round")
        .field("algo", algo)
        .field("round", round)
        .field("elapsed_ms", elapsed.as_secs_f64() * 1e3)
        .field("round_ms", round_ms);
    if let Some(q) = q {
        ev = ev.field("i", q.i).field("j", q.j);
    }
    if let Some(v) = vertices_before {
        ev = ev.field("vertices_before", v);
    }
    if let Some(v) = vertices_after {
        ev = ev.field("vertices_after", v);
    }
    if let Some(v) = volume_proxy {
        ev = ev.field("volume_proxy", v);
    }
    if !phases.is_empty() {
        ev = ev.field("phase_ms", phases_json(phases));
    }
    isrl_obs::emit(ev);
}

/// Emits one `episode` event after a learning episode. No-op when the sink
/// is disabled.
#[allow(clippy::too_many_arguments)]
pub(crate) fn emit_episode_event(
    algo: &'static str,
    episode: u64,
    rounds: usize,
    epsilon: f64,
    reward: f64,
    replay_len: usize,
    truncated: bool,
    loss_mean: Option<f64>,
) {
    if !isrl_obs::enabled() {
        return;
    }
    // The snapshotter rates episodes/sec off this counter and reports the
    // replay level as a last-value gauge (levels don't delta-subtract).
    isrl_obs::add("train.episodes", 1);
    isrl_obs::gauge_set("dqn.replay_occupancy", replay_len as u64);
    let mut ev = Event::new("episode")
        .field("algo", algo)
        .field("episode", episode)
        .field("rounds", rounds)
        .field("epsilon", epsilon)
        .field("reward", reward)
        .field("replay_len", replay_len)
        .field("truncated", truncated);
    if let Some(l) = loss_mean {
        ev = ev.field("loss_mean", l);
    }
    isrl_obs::emit(ev);
}

/// `{"sampling": 1.25, "lp": 0.4, …}` — phase totals in milliseconds.
fn phases_json(phases: &[(&'static str, Duration)]) -> Json {
    Json::Obj(
        phases
            .iter()
            .map(|(name, d)| (name.to_string(), Json::from(d.as_secs_f64() * 1e3)))
            .collect(),
    )
}

/// RAII scope emitting one `profile` event per episode: while alive (and
/// the sink was enabled at entry) every finishing span accumulates into a
/// per-path call tree, and drop freezes it with self-vs-child accounting
/// (see `isrl_obs::profile`). Covering every return path of `episode()`
/// by construction is the point of doing this in a guard.
pub(crate) struct EpisodeProfile {
    algo: &'static str,
    rounds: usize,
    active: bool,
}

impl EpisodeProfile {
    /// Opens the scope (no-op when the sink is disabled).
    pub(crate) fn begin(algo: &'static str) -> Self {
        let active = isrl_obs::enabled();
        if active {
            isrl_obs::profile_begin();
        }
        Self {
            algo,
            rounds: 0,
            active,
        }
    }

    /// Updates the round count stamped on the event at drop.
    pub(crate) fn set_rounds(&mut self, rounds: usize) {
        self.rounds = rounds;
    }
}

impl Drop for EpisodeProfile {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let pairs = isrl_obs::profile_end();
        if pairs.is_empty() {
            return;
        }
        isrl_obs::emit(isrl_obs::profile::profile_event(
            self.algo,
            self.rounds as u64,
            &pairs,
        ));
    }
}
