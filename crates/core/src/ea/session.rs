//! Step-wise interaction sessions for EA (see [`crate::aa::AaSession`] for
//! the motivation: servers and GUIs need a state machine, not a callback).

use super::{EaAgent, Observation};
use crate::interaction::{Question, Stopwatch};
use crate::telemetry::emit_round_event;
use isrl_data::Dataset;
use isrl_geometry::{Halfspace, Region, RegionGeometry};

/// An in-flight EA interaction.
pub struct EaSession<'a> {
    agent: &'a mut EaAgent,
    data: &'a Dataset,
    eps: f64,
    geom: RegionGeometry,
    asked: Vec<(usize, usize)>,
    obs: Observation,
    question: Option<(usize, Question)>,
    rounds: usize,
    sw: Stopwatch,
    truncated: bool,
}

impl EaAgent {
    /// Starts a step-wise interaction on `data` with threshold `eps`,
    /// using the configured geometry backend (exact, sampled, or
    /// auto-by-dimension).
    ///
    /// # Panics
    /// Panics on dimension mismatch or an empty dataset.
    pub fn start_session<'a>(&'a mut self, data: &'a Dataset, eps: f64) -> EaSession<'a> {
        assert_eq!(data.dim(), self.dim, "dataset dimension mismatch");
        assert!(!data.is_empty(), "cannot interact over an empty dataset");
        let geom = self.new_geometry();
        let asked = Vec::new();
        let obs = self
            .observe(data, &geom, eps, &asked)
            .expect("the full utility simplex always has a point set");
        let mut session = EaSession {
            agent: self,
            data,
            eps,
            geom,
            asked,
            obs,
            question: None,
            rounds: 0,
            sw: Stopwatch::start(),
            truncated: false,
        };
        session.pick_question();
        session
    }
}

impl EaSession<'_> {
    fn pick_question(&mut self) {
        self.question = None;
        if self.obs.terminal.is_some() {
            return;
        }
        if self.obs.questions.is_empty() || self.rounds >= self.agent.cfg.max_rounds {
            self.truncated = true;
            return;
        }
        let (idx, _) = self
            .agent
            .dqn
            .best_action(&self.obs.state, &self.obs.action_feats);
        self.question = Some((idx, self.obs.questions[idx]));
    }

    /// The pending question, or `None` once the session is finished.
    pub fn current_question(&self) -> Option<Question> {
        self.question.map(|(_, q)| q)
    }

    /// The two points of the pending question, for display.
    pub fn current_points(&self) -> Option<(&[f64], &[f64])> {
        self.current_question()
            .map(|q| (self.data.point(q.i), self.data.point(q.j)))
    }

    /// Delivers the user's choice (`true` = first point preferred).
    ///
    /// # Panics
    /// Panics if the session is already finished.
    pub fn answer(&mut self, prefers_first: bool) {
        let (_, q) = self
            .question
            .take()
            .expect("session is finished; no pending question");
        let record = isrl_obs::enabled();
        if record {
            isrl_obs::round_begin();
        }
        let round_started = self.sw.elapsed();
        let (win, lose) = if prefers_first {
            (q.i, q.j)
        } else {
            (q.j, q.i)
        };
        self.asked.push((q.i.min(q.j), q.i.max(q.j)));
        self.rounds += 1;
        let support_before = self.geom.support_size();
        if let Some(h) = Halfspace::preferring(self.data.point(win), self.data.point(lose)) {
            self.geom.add(h);
        }
        match self
            .agent
            .observe(self.data, &self.geom, self.eps, &self.asked)
        {
            None => {
                self.truncated = true;
            }
            Some(next) => {
                self.obs = next;
                self.pick_question();
            }
        }
        if record {
            let phases = isrl_obs::round_end();
            emit_round_event(
                "EA",
                self.rounds,
                Some(q),
                self.sw.elapsed(),
                (self.sw.elapsed() - round_started).as_secs_f64() * 1e3,
                support_before,
                self.geom.support_size(),
                self.geom.volume_proxy(),
                &phases,
            );
        }
    }

    /// `true` once no further question will be asked.
    pub fn is_finished(&self) -> bool {
        self.question.is_none()
    }

    /// Questions answered so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Elapsed wall-clock time since the session started.
    pub fn elapsed(&self) -> std::time::Duration {
        self.sw.elapsed()
    }

    /// `true` when the session ended without certifying termination
    /// (Lemma 6 never fired).
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// The current (or final) recommendation: the certified terminal anchor
    /// when available, else the centroid's top-1 tuple.
    pub fn recommendation(&self) -> usize {
        self.obs.terminal.unwrap_or(self.obs.fallback_best)
    }

    /// The learned utility range so far (half-space view).
    pub fn region(&self) -> &Region {
        self.geom.region()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ea::EaConfig;
    use crate::interaction::{InteractiveAlgorithm, TraceMode};
    use crate::regret::regret_ratio_of_index;
    use crate::user::SimulatedUser;
    use isrl_linalg::vector;

    fn data() -> Dataset {
        Dataset::from_points(
            vec![
                vec![1.0, 0.05],
                vec![0.85, 0.4],
                vec![0.6, 0.65],
                vec![0.4, 0.85],
                vec![0.05, 1.0],
            ],
            2,
        )
    }

    #[test]
    fn session_matches_run_and_is_exact() {
        let d = data();
        let truth = vec![0.45, 0.55];
        let eps = 0.1;
        let mut agent1 = EaAgent::new(2, EaConfig::paper_default().with_seed(7));
        let mut user = SimulatedUser::new(truth.clone());
        let run_out = agent1.run(&d, &mut user, eps, TraceMode::Off);

        let mut agent2 = EaAgent::new(2, EaConfig::paper_default().with_seed(7));
        let mut session = agent2.start_session(&d, eps);
        while let Some((p, q)) = session
            .current_points()
            .map(|(a, b)| (a.to_vec(), b.to_vec()))
        {
            session.answer(vector::dot(&truth, &p) >= vector::dot(&truth, &q));
        }
        assert_eq!(session.rounds(), run_out.rounds);
        assert_eq!(session.recommendation(), run_out.point_index);
        let regret = regret_ratio_of_index(&d, session.recommendation(), &truth);
        assert!(regret < eps, "EA session must stay exact: {regret}");
        assert!(!session.truncated());
    }

    #[test]
    fn recommendation_is_available_mid_session() {
        let d = data();
        let mut agent = EaAgent::new(2, EaConfig::paper_default().with_seed(8));
        let session = agent.start_session(&d, 0.05);
        // Before any answer the recommendation is merely the centroid's
        // favorite — but it must be a valid index.
        assert!(session.recommendation() < d.len());
        assert_eq!(session.rounds(), 0);
        assert!(
            !session.is_finished(),
            "eps=0.05 needs at least one question here"
        );
    }
}
