//! EA's fixed-length state encoding (§IV-B, "MDP: State").
//!
//! A state is the utility range `R`; its encoding concatenates
//!
//! 1. `m_e` representative extreme utility vectors, chosen by the greedy
//!    max-coverage procedure of Lemma 2 (DBSCAN-style `d_ε` neighborhoods),
//!    padded with the vertex centroid when fewer exist; and
//! 2. the outer sphere — center and radius — from the paper's iterative
//!    minimum-enclosing-sphere scheme (Lemma 3),
//!
//! for a `d·m_e + d + 1`-dimensional vector.

use isrl_geometry::polytope::encode_representative_points;
use isrl_geometry::{min_enclosing_sphere, EnclosingSphereParams, Polytope};
use isrl_linalg::vector;

/// Which parts of EA's two-part state to encode — the ablation axis the
/// paper's state design motivates (representatives for detail, sphere for
/// overview).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StateVariant {
    /// The paper's state: greedy max-coverage representatives ⊕ outer sphere.
    #[default]
    Full,
    /// Representatives only (ablates the outer-sphere overview).
    RepsOnly,
    /// Outer sphere only (ablates the representative detail).
    SphereOnly,
    /// Evenly-strided vertices instead of the greedy max-coverage choice
    /// (ablates the Lemma-2 machinery), plus the sphere.
    StridedReps,
}

/// Encoder turning a [`Polytope`] into EA's state vector.
#[derive(Debug, Clone, Copy)]
pub struct EaStateEncoder {
    /// Number of representative extreme utility vectors (`m_e`).
    pub m_e: usize,
    /// Neighborhood radius for the max-coverage selection (`d_ε`).
    pub d_eps: f64,
    /// Ambient dimensionality.
    pub dim: usize,
    /// Which state parts to produce.
    pub variant: StateVariant,
}

impl EaStateEncoder {
    /// Creates an encoder with the paper's full state.
    ///
    /// # Panics
    /// Panics on zero `m_e`, non-positive `d_eps`, or `dim < 2`.
    pub fn new(dim: usize, m_e: usize, d_eps: f64) -> Self {
        Self::with_variant(dim, m_e, d_eps, StateVariant::Full)
    }

    /// Creates an encoder with an explicit [`StateVariant`].
    ///
    /// # Panics
    /// Panics on zero `m_e`, non-positive `d_eps`, or `dim < 2`.
    pub fn with_variant(dim: usize, m_e: usize, d_eps: f64, variant: StateVariant) -> Self {
        assert!(m_e > 0, "m_e must be positive");
        assert!(d_eps > 0.0, "d_eps must be positive");
        assert!(dim >= 2, "dimension must be at least 2");
        Self {
            m_e,
            d_eps,
            dim,
            variant,
        }
    }

    /// Width of the produced state vector for the configured variant.
    pub fn state_dim(&self) -> usize {
        match self.variant {
            StateVariant::Full | StateVariant::StridedReps => self.dim * self.m_e + self.dim + 1,
            StateVariant::RepsOnly => self.dim * self.m_e,
            StateVariant::SphereOnly => self.dim + 1,
        }
    }

    /// Fixed-length block of `m_e` evenly-strided points, mean-padded.
    fn encode_strided(&self, points: &[Vec<f64>]) -> Vec<f64> {
        let pad = vector::mean(points);
        let stride = (points.len() / self.m_e).max(1);
        let mut out = Vec::with_capacity(self.m_e * self.dim);
        for slot in 0..self.m_e {
            let v = points.get(slot * stride).unwrap_or(&pad);
            out.extend_from_slice(v);
        }
        out
    }

    /// Encodes a polytope (the current utility range) off its vertex set.
    ///
    /// # Panics
    /// Panics if the polytope's dimension disagrees with the encoder's.
    pub fn encode(&self, polytope: &Polytope) -> Vec<f64> {
        assert_eq!(polytope.dim(), self.dim, "polytope dimension mismatch");
        self.encode_points(polytope.vertices())
    }

    /// Encodes an explicit point set standing in for the extreme utility
    /// vectors — the polytope's vertices on the exact backend, the sample
    /// cloud on the sampled one. Representative selection, the strided
    /// ablation, and the enclosing sphere are all point-set operations, so
    /// the two backends share this encoding verbatim.
    ///
    /// # Panics
    /// Panics if `points` is empty or of the wrong dimensionality.
    pub fn encode_points(&self, points: &[Vec<f64>]) -> Vec<f64> {
        assert!(!points.is_empty(), "cannot encode an empty point set");
        assert_eq!(points[0].len(), self.dim, "point dimension mismatch");
        let mut state = match self.variant {
            StateVariant::Full | StateVariant::RepsOnly => {
                encode_representative_points(points, self.m_e, self.d_eps)
            }
            StateVariant::StridedReps => self.encode_strided(points),
            StateVariant::SphereOnly => Vec::new(),
        };
        if !matches!(self.variant, StateVariant::RepsOnly) {
            state.extend(min_enclosing_sphere(points, EnclosingSphereParams::default()).encode());
        }
        debug_assert_eq!(state.len(), self.state_dim());
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isrl_geometry::{Halfspace, Region};

    fn full_polytope(d: usize) -> Polytope {
        Polytope::from_region(&Region::full(d)).unwrap()
    }

    #[test]
    fn state_width_formula() {
        let enc = EaStateEncoder::new(4, 5, 0.2);
        assert_eq!(enc.state_dim(), 4 * 5 + 4 + 1);
        assert_eq!(enc.encode(&full_polytope(4)).len(), 25);
    }

    #[test]
    fn radius_is_last_component_and_shrinks_with_cuts() {
        let enc = EaStateEncoder::new(3, 3, 0.2);
        let before = enc.encode(&full_polytope(3));
        let mut r = Region::full(3);
        r.add(Halfspace::new(vec![1.0, -1.0, 0.0]));
        r.add(Halfspace::new(vec![0.0, 1.0, -1.0]));
        let after = enc.encode(&Polytope::from_region(&r).unwrap());
        let radius_idx = enc.state_dim() - 1;
        assert!(
            after[radius_idx] < before[radius_idx],
            "outer-sphere radius should shrink: {} -> {}",
            before[radius_idx],
            after[radius_idx]
        );
    }

    #[test]
    fn encoding_is_deterministic() {
        let enc = EaStateEncoder::new(4, 5, 0.2);
        let p = full_polytope(4);
        assert_eq!(enc.encode(&p), enc.encode(&p));
    }

    #[test]
    #[should_panic(expected = "m_e must be positive")]
    fn rejects_zero_m_e() {
        EaStateEncoder::new(3, 0, 0.2);
    }

    #[test]
    fn variant_widths() {
        let p = full_polytope(3);
        for (variant, width) in [
            (StateVariant::Full, 3 * 4 + 3 + 1),
            (StateVariant::RepsOnly, 3 * 4),
            (StateVariant::SphereOnly, 3 + 1),
            (StateVariant::StridedReps, 3 * 4 + 3 + 1),
        ] {
            let enc = EaStateEncoder::with_variant(3, 4, 0.2, variant);
            assert_eq!(enc.state_dim(), width, "{variant:?}");
            assert_eq!(enc.encode(&p).len(), width, "{variant:?}");
        }
    }

    #[test]
    fn encode_points_on_vertices_matches_encode() {
        // The sampled backend's entry point must be bit-identical to the
        // polytope path when fed the same point set, for every variant.
        let mut r = Region::full(3);
        r.add(Halfspace::new(vec![1.0, -1.0, 0.0]));
        let p = Polytope::from_region(&r).unwrap();
        for variant in [
            StateVariant::Full,
            StateVariant::RepsOnly,
            StateVariant::SphereOnly,
            StateVariant::StridedReps,
        ] {
            let enc = EaStateEncoder::with_variant(3, 4, 0.2, variant);
            assert_eq!(
                enc.encode(&p),
                enc.encode_points(p.vertices()),
                "{variant:?}"
            );
        }
    }

    #[test]
    fn encode_points_accepts_arbitrary_clouds() {
        // A cloud-like point set (not vertices of anything in particular).
        let cloud = vec![
            vec![0.5, 0.3, 0.2],
            vec![0.4, 0.4, 0.2],
            vec![0.3, 0.3, 0.4],
            vec![0.6, 0.2, 0.2],
        ];
        let enc = EaStateEncoder::new(3, 5, 0.15);
        let state = enc.encode_points(&cloud);
        assert_eq!(state.len(), enc.state_dim());
        assert!(state.iter().all(|x| x.is_finite()));
    }

    #[test]
    #[should_panic(expected = "empty point set")]
    fn encode_points_rejects_empty() {
        EaStateEncoder::new(3, 2, 0.2).encode_points(&[]);
    }

    #[test]
    fn strided_reps_are_actual_vertices_or_centroid() {
        let p = full_polytope(4);
        let enc = EaStateEncoder::with_variant(4, 6, 0.2, StateVariant::StridedReps);
        let state = enc.encode(&p);
        let centroid = p.centroid();
        for chunk in state[..4 * 6].chunks(4) {
            let is_vertex = p
                .vertices()
                .iter()
                .any(|v| v.iter().zip(chunk).all(|(a, b)| (a - b).abs() < 1e-12));
            let is_centroid = centroid
                .iter()
                .zip(chunk)
                .all(|(a, b)| (a - b).abs() < 1e-12);
            assert!(is_vertex || is_centroid);
        }
    }
}
