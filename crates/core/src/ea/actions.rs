//! EA's restricted action space (§IV-B, "MDP: Action").
//!
//! Instead of all `O(n²)` point pairs, EA draws `m_h` random pairs from
//! `P_R` — the anchor points of terminal polyhedrons constructed inside the
//! current utility range. Every such pair's hyperplane strictly narrows `R`
//! (Lemma 7), and each answer permanently eliminates at least one candidate
//! anchor, giving the `O(n)` round bound of Theorem 1.

use crate::interaction::Question;
use isrl_data::Dataset;
use rand::Rng;

/// Draws up to `m_h` distinct questions (unordered pairs) from the anchor
/// points `p_r`, excluding pairs listed in `asked` (either orientation).
/// Returns fewer than `m_h` when not enough unasked pairs exist, and an
/// empty vector when `p_r` has fewer than two points.
pub fn build_action_space<R: Rng + ?Sized>(
    p_r: &[usize],
    m_h: usize,
    asked: &[(usize, usize)],
    rng: &mut R,
) -> Vec<Question> {
    let k = p_r.len();
    if k < 2 || m_h == 0 {
        return Vec::new();
    }
    let normalized = |a: usize, b: usize| if a < b { (a, b) } else { (b, a) };
    let is_asked = |a: usize, b: usize| asked.contains(&normalized(a, b));

    let total_pairs = k * (k - 1) / 2;
    let mut out: Vec<Question> = Vec::with_capacity(m_h.min(total_pairs));
    let push_unique = |q: Question, out: &mut Vec<Question>| {
        let key = normalized(q.i, q.j);
        if !out.iter().any(|e| normalized(e.i, e.j) == key) && !is_asked(q.i, q.j) {
            out.push(q);
            true
        } else {
            false
        }
    };

    if total_pairs <= 4 * m_h {
        // Few enough pairs: enumerate, filter, then randomly keep m_h.
        let mut all: Vec<Question> = Vec::with_capacity(total_pairs);
        for a in 0..k {
            for b in a + 1..k {
                if !is_asked(p_r[a], p_r[b]) {
                    all.push(Question {
                        i: p_r[a],
                        j: p_r[b],
                    });
                }
            }
        }
        // Fisher–Yates prefix shuffle.
        for idx in 0..all.len().min(m_h) {
            let pick = rng.gen_range(idx..all.len());
            all.swap(idx, pick);
        }
        all.truncate(m_h);
        return all;
    }

    // Many pairs: rejection-sample random distinct pairs.
    let budget = 50 * m_h;
    for _ in 0..budget {
        if out.len() >= m_h {
            break;
        }
        let a = rng.gen_range(0..k);
        let b = rng.gen_range(0..k);
        if a == b {
            continue;
        }
        push_unique(
            Question {
                i: p_r[a],
                j: p_r[b],
            },
            &mut out,
        );
    }
    out
}

/// Action features for the Q-network: the two points concatenated (`2d`),
/// in canonical (lexicographic) order. A question is symmetric — asking
/// `⟨a, b⟩` is asking `⟨b, a⟩` — so the encoding must not depend on pair
/// orientation, or the network wastes capacity learning that symmetry.
pub fn encode_question(data: &Dataset, q: Question) -> Vec<f64> {
    let (p, q_) = (data.point(q.i), data.point(q.j));
    let (first, second) = if p <= q_ { (p, q_) } else { (q_, p) };
    let mut f = Vec::with_capacity(2 * data.dim());
    f.extend_from_slice(first);
    f.extend_from_slice(second);
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn returns_empty_for_tiny_pools() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(build_action_space(&[], 5, &[], &mut rng).is_empty());
        assert!(build_action_space(&[3], 5, &[], &mut rng).is_empty());
    }

    #[test]
    fn draws_at_most_m_h_distinct_pairs() {
        let mut rng = StdRng::seed_from_u64(2);
        let pool: Vec<usize> = (0..20).collect();
        let qs = build_action_space(&pool, 5, &[], &mut rng);
        assert_eq!(qs.len(), 5);
        for (a, q1) in qs.iter().enumerate() {
            assert_ne!(q1.i, q1.j);
            for q2 in &qs[a + 1..] {
                let k1 = (q1.i.min(q1.j), q1.i.max(q1.j));
                let k2 = (q2.i.min(q2.j), q2.i.max(q2.j));
                assert_ne!(k1, k2, "duplicate pair");
            }
        }
    }

    #[test]
    fn small_pool_enumerates_all_pairs() {
        let mut rng = StdRng::seed_from_u64(3);
        let qs = build_action_space(&[7, 8, 9], 10, &[], &mut rng);
        assert_eq!(qs.len(), 3, "C(3,2) = 3 pairs available");
    }

    #[test]
    fn asked_pairs_are_excluded_in_both_orientations() {
        let mut rng = StdRng::seed_from_u64(4);
        let qs = build_action_space(&[1, 2, 3], 10, &[(1, 2), (1, 3)], &mut rng);
        assert_eq!(qs.len(), 1);
        assert_eq!((qs[0].i.min(qs[0].j), qs[0].i.max(qs[0].j)), (2, 3));
    }

    #[test]
    fn question_features_are_orientation_invariant() {
        let d = isrl_data::Dataset::from_points(vec![vec![0.1, 0.2], vec![0.3, 0.4]], 2);
        assert_eq!(
            encode_question(&d, Question { i: 0, j: 1 }),
            vec![0.1, 0.2, 0.3, 0.4]
        );
        assert_eq!(
            encode_question(&d, Question { i: 1, j: 0 }),
            encode_question(&d, Question { i: 0, j: 1 }),
            "a question is symmetric; its encoding must be too"
        );
    }
}
