//! Algorithm EA — the exact RL interactive agent (§IV-B, Algorithms 1–2).
//!
//! EA maintains the utility range `R` exactly (vertex enumeration over the
//! learned half-spaces), encodes it as representative extreme vectors plus
//! the outer sphere, restricts its actions to pairs of terminal-polyhedron
//! anchor points, and trains a DQN to pick the question that minimizes the
//! *total* number of rounds. Its return is exact: the anchor of the single
//! terminal polyhedron covering `R` (Lemma 6), whose regret ratio is below
//! ε for the user's true utility vector wherever it is in `R`.

mod actions;
mod session;
mod state;
mod terminal;

pub use actions::{build_action_space, encode_question};
pub use session::EaSession;
pub use state::{EaStateEncoder, StateVariant};
pub use terminal::{check_terminal, in_terminal_polyhedron, terminal_points};

use crate::interaction::{
    InteractionOutcome, InteractiveAlgorithm, Question, RoundTrace, Stopwatch, TraceMode,
};
use crate::telemetry::{emit_episode_event, emit_round_event, EpisodeProfile};
use crate::user::User;
use crate::watchdog::TrainingWatchdog;
use isrl_data::Dataset;
use isrl_geometry::{sampling, GeometryBackend, Halfspace, RegionGeometry, WalkConfig};
use isrl_linalg::vector;
use isrl_rl::{Dqn, DqnConfig, EpsilonSchedule, NextState, Transition};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Hyper-parameters of [`EaAgent`]. `paper_default` reproduces §V.
#[derive(Debug, Clone)]
pub struct EaConfig {
    /// Representative extreme utility vectors in the state (`m_e`).
    pub m_e: usize,
    /// Neighborhood radius for representative selection (`d_ε`).
    pub d_eps: f64,
    /// Which parts of the two-part state to encode (ablation knob).
    pub state_variant: StateVariant,
    /// Action-space size (`m_h`; the paper: 5).
    pub m_h: usize,
    /// Utility vectors sampled per round for terminal-polyhedron
    /// construction (Lemma 5 sizes this; a few hundred suffice in practice).
    pub n_samples: usize,
    /// Terminal reward constant `c` (the paper: 100).
    pub reward_c: f64,
    /// Safety cap on rounds per interaction (Theorem 1 bounds rounds by
    /// `O(n)`; the cap guards numerical stalls only).
    pub max_rounds: usize,
    /// Discount factor γ (the paper: 0.8).
    pub gamma: f64,
    /// Learning rate (the paper: 0.003).
    pub lr: f64,
    /// Replay capacity (the paper: 5,000).
    pub replay_capacity: usize,
    /// Minibatch size (the paper: 64).
    pub batch_size: usize,
    /// Target-network sync period in updates (the paper: 20).
    pub target_sync_every: u64,
    /// Gradient steps per interactive round during training (1 = the
    /// paper's cadence; more steps squeeze small training budgets harder).
    pub train_steps_per_round: usize,
    /// Use Adam instead of plain gradient descent in the DQN.
    pub use_adam: bool,
    /// Exploration schedule (the paper: constant 0.9).
    pub epsilon: EpsilonSchedule,
    /// RNG seed (weights, sampling, exploration).
    pub seed: u64,
    /// Region representation: exact vertex enumeration, a hit-and-run
    /// sample cloud, or auto-by-dimension (the default — exact at the
    /// paper's low-`d` regime, sampled where enumeration is intractable).
    /// A speed/fidelity knob, not learned state: it is not serialized into
    /// checkpoints, and the differential suite pins the two backends'
    /// question counts against each other at low `d`.
    pub geometry: GeometryBackend,
    /// Chain parameters for the sampled backend (ignored when the resolved
    /// backend is exact).
    pub walk: WalkConfig,
}

impl EaConfig {
    /// The paper's §V hyper-parameters.
    pub fn paper_default() -> Self {
        Self {
            m_e: 5,
            d_eps: 0.15,
            state_variant: StateVariant::default(),
            m_h: 5,
            n_samples: 100,
            reward_c: 100.0,
            max_rounds: 100,
            gamma: 0.8,
            lr: 0.003,
            replay_capacity: 5_000,
            batch_size: 64,
            target_sync_every: 20,
            train_steps_per_round: 1,
            use_adam: false,
            epsilon: EpsilonSchedule::paper_default(),
            seed: 0,
            geometry: GeometryBackend::Auto,
            walk: WalkConfig::default(),
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Summary of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Episodes (training utility vectors) processed.
    pub episodes: usize,
    /// Rounds used by each training episode, in order.
    pub rounds_per_episode: Vec<usize>,
    /// Mean rounds over the final quarter of episodes (convergence proxy).
    pub mean_rounds_final_quarter: f64,
    /// Anomalies the training-health watchdog flagged (empty = healthy).
    pub anomalies: Vec<crate::watchdog::Anomaly>,
}

impl TrainReport {
    /// Builds a report from per-episode round counts.
    pub fn from_rounds(rounds: Vec<usize>) -> Self {
        let n = rounds.len();
        let tail = &rounds[n - (n / 4).max(1).min(n)..];
        let mean = if tail.is_empty() {
            0.0
        } else {
            tail.iter().sum::<usize>() as f64 / tail.len() as f64
        };
        Self {
            episodes: n,
            rounds_per_episode: rounds,
            mean_rounds_final_quarter: mean,
            anomalies: Vec::new(),
        }
    }
}

/// Everything EA derives from the current utility range in one round.
struct Observation {
    terminal: Option<usize>,
    state: Vec<f64>,
    questions: Vec<Question>,
    action_feats: Vec<Vec<f64>>,
    fallback_best: usize,
}

/// The scan-free opening of an EA round, split out of [`EaAgent::observe`]
/// for the serving path (`crate::serving`): the region's point set (vertex
/// set or sample cloud), its DQN state encoding, and the utility vectors
/// whose dataset top-1 scans are needed first — laid out `[points..,
/// centroid]`. No dataset access and no RNG draw happens here, so a
/// cross-user batcher can coalesce many sessions' scans into one
/// `top1_batch` call. Returns `None` when the region has collapsed.
pub(crate) fn ea_phase1(
    encoder: &EaStateEncoder,
    geom: &RegionGeometry,
) -> Option<(Vec<f64>, Vec<Vec<f64>>)> {
    let points: Vec<Vec<f64>> = if geom.is_sampled() {
        geom.sample_cloud()?.all_points()
    } else {
        geom.polytope()?.vertices().to_vec()
    };
    let state = encoder.encode_points(&points);
    let centroid = vector::mean(&points);
    let mut utilities = points;
    utilities.push(centroid);
    Some((state, utilities))
}

/// What the phase-1 scan results decide: terminal status, the fallback
/// recommendation, and the distinct region-point argmaxes (anchor set).
pub(crate) struct EaVerdict {
    /// Lemma 6 verdict: the certified anchor, when the region is terminal.
    pub(crate) terminal: Option<usize>,
    /// The centroid's top-1 index (recommendation when not terminal).
    pub(crate) fallback_best: usize,
    /// Distinct top-1 indices over the region points, first-appearance
    /// order — `terminal_points` of the point set.
    pub(crate) anchors: Vec<usize>,
}

/// Consumes the scan results for [`ea_phase1`]'s utility list (`top1[k]`
/// answers `utilities[k]`; the centroid is last) and runs the terminal
/// check. Mirrors [`check_terminal`] exactly — single-anchor fast path,
/// then the per-anchor ε-hyperplane membership sweep (the only remaining
/// dataset work, which stays session-local).
pub(crate) fn ea_verdict(
    data: &Dataset,
    points: &[Vec<f64>],
    top1: &[isrl_linalg::Top1],
    eps: f64,
) -> EaVerdict {
    debug_assert_eq!(points.len() + 1, top1.len());
    let mut anchors: Vec<usize> = Vec::new();
    for t in &top1[..points.len()] {
        if !anchors.contains(&t.index) {
            anchors.push(t.index);
        }
    }
    let terminal = {
        let _t = isrl_obs::span("terminal_check");
        if anchors.len() == 1 {
            Some(anchors[0])
        } else {
            anchors.iter().copied().find(|&a| {
                points
                    .iter()
                    .all(|e| in_terminal_polyhedron(data, a, e, eps))
            })
        }
    };
    EaVerdict {
        terminal,
        fallback_best: top1[points.len()].index,
        anchors,
    }
}

/// The exact backend's extra sample draw for V (Lemma 5/6), in the inline
/// path's exact order: rejection sampling, then the vertex-mixture
/// fallback on underfill (flagging the `ea.sample_fallbacks` warning
/// counter). The caller appends the vertices themselves by chaining the
/// phase-1 scan results — matching `samples.extend(vertices)` inline.
pub(crate) fn ea_sample_extras(
    cfg: &EaConfig,
    dim: usize,
    geom: &RegionGeometry,
    points: &[Vec<f64>],
    rng: &mut StdRng,
) -> Vec<Vec<f64>> {
    let mut samples = {
        let _s = isrl_obs::span("sampling");
        sampling::sample_region_rejection(
            dim,
            geom.region().halfspaces(),
            cfg.n_samples,
            cfg.n_samples * 10,
            rng,
        )
    };
    if samples.len() < cfg.n_samples {
        isrl_obs::add("ea.sample_fallbacks", 1);
        let _s = isrl_obs::span("sampling");
        let need = cfg.n_samples - samples.len();
        samples.extend(sampling::sample_vertex_mixture(points, need, rng));
    }
    samples
}

/// Builds the candidate action space from `P_R` with the inline path's
/// exhaustion retry, plus the per-question features.
pub(crate) fn ea_actions(
    cfg: &EaConfig,
    data: &Dataset,
    p_r: &[usize],
    asked: &[(usize, usize)],
    rng: &mut StdRng,
) -> (Vec<Question>, Vec<Vec<f64>>) {
    let mut questions = build_action_space(p_r, cfg.m_h, asked, rng);
    if questions.is_empty() && p_r.len() >= 2 {
        questions = build_action_space(p_r, cfg.m_h, &[], rng);
    }
    let action_feats = questions
        .iter()
        .map(|&q| encode_question(data, q))
        .collect();
    (questions, action_feats)
}

/// The exact RL interactive agent.
#[derive(Debug)]
pub struct EaAgent {
    cfg: EaConfig,
    dim: usize,
    encoder: EaStateEncoder,
    dqn: Dqn,
    rng: StdRng,
    episodes_trained: u64,
    /// Mean TD loss over the most recent learning episode (`None` until the
    /// replay buffer can fill a minibatch). Feeds the `episode` telemetry
    /// event stream.
    last_episode_loss: Option<f64>,
}

impl EaAgent {
    /// Creates an untrained agent for datasets of dimensionality `dim`.
    pub fn new(dim: usize, cfg: EaConfig) -> Self {
        let encoder = EaStateEncoder::with_variant(dim, cfg.m_e, cfg.d_eps, cfg.state_variant);
        let mut dqn_cfg = DqnConfig::paper_default(encoder.state_dim(), 2 * dim)
            .with_seed(cfg.seed.wrapping_add(1));
        dqn_cfg.lr = cfg.lr;
        dqn_cfg.gamma = cfg.gamma;
        dqn_cfg.replay_capacity = cfg.replay_capacity;
        dqn_cfg.batch_size = cfg.batch_size;
        dqn_cfg.target_sync_every = cfg.target_sync_every;
        dqn_cfg.use_adam = cfg.use_adam;
        let dqn = Dqn::new(dqn_cfg);
        let rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(2));
        Self {
            cfg,
            dim,
            encoder,
            dqn,
            rng,
            episodes_trained: 0,
            last_episode_loss: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &EaConfig {
        &self.cfg
    }

    /// Episodes trained so far.
    pub fn episodes_trained(&self) -> u64 {
        self.episodes_trained
    }

    /// Access to the underlying DQN (checkpointing).
    pub fn dqn(&self) -> &Dqn {
        &self.dqn
    }

    /// Dimensionality the agent was built for.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The state encoder (shared read-only by serving sessions).
    pub(crate) fn encoder(&self) -> &EaStateEncoder {
        &self.encoder
    }

    /// Restores trained Q-network parameters and the episode counter
    /// (checkpoint loading; see `crate::checkpoint`).
    pub fn restore(&mut self, params: &[f64], episodes_trained: u64) {
        self.dqn.load_params(params);
        self.episodes_trained = episodes_trained;
    }

    /// Overrides the region-geometry backend (e.g. from the CLI after a
    /// checkpoint load — the backend is a serving-time choice and is not
    /// persisted).
    pub fn set_geometry(&mut self, backend: GeometryBackend) {
        self.cfg.geometry = backend;
    }

    /// Fresh per-episode geometry for the configured backend. The sampled
    /// backend draws its cloud seed from the agent RNG, so episodes remain
    /// deterministic under [`InteractiveAlgorithm::reseed`]; the exact path
    /// consumes no randomness (identical behavior to before the backend
    /// existed).
    fn new_geometry(&mut self) -> RegionGeometry {
        if self.cfg.geometry.resolves_to_sampled(self.dim) {
            RegionGeometry::sampled(self.dim, self.cfg.walk, self.rng.next_u64())
        } else {
            RegionGeometry::exact(self.dim)
        }
    }

    /// Derives state, terminal status, and the candidate action space from
    /// the current region geometry. On the exact backend the point set
    /// standing for the region is the vertex set, read straight off the
    /// incrementally-maintained polytope — no re-enumeration per round; on
    /// the sampled backend it is the hit-and-run cloud, so no vertex is
    /// ever enumerated. Returns `None` when the region has collapsed.
    fn observe(
        &mut self,
        data: &Dataset,
        geom: &RegionGeometry,
        eps: f64,
        asked: &[(usize, usize)],
    ) -> Option<Observation> {
        let sampled = geom.is_sampled();
        let points: Vec<Vec<f64>> = if sampled {
            // Anchors first: the axis-extent LP optimizers are true region
            // vertices, so the terminal check and state encoding see the
            // extremes a uniform interior sample systematically misses
            // (without them the Monte-Carlo terminal check fires early).
            geom.sample_cloud()?.all_points()
        } else {
            geom.polytope()?.vertices().to_vec()
        };
        let terminal = {
            let _t = isrl_obs::span("terminal_check");
            check_terminal(data, &points, eps)
        };

        let centroid = vector::mean(&points);
        let fallback_best = {
            let _t = isrl_obs::span("top1");
            data.argmax_utility(&centroid)
        };
        let state = self.encoder.encode_points(&points);

        if terminal.is_some() {
            return Some(Observation {
                terminal,
                state,
                questions: Vec::new(),
                action_feats: Vec::new(),
                fallback_best,
            });
        }

        // Build V (Lemma 5/6). Exact backend: sampled utility vectors
        // (rejection, then vertex-mixture fallback) plus the extreme
        // utility vectors of R. Sampled backend: the cloud *is* already a
        // uniform sample of R — reuse it directly, skipping rejection (and
        // with it any chance of tripping the `ea.sample_fallbacks`
        // warning counter on small high-d regions).
        let samples = if sampled {
            points
        } else {
            let vertices = points;
            let mut samples = {
                let _s = isrl_obs::span("sampling");
                sampling::sample_region_rejection(
                    self.dim,
                    geom.region().halfspaces(),
                    self.cfg.n_samples,
                    self.cfg.n_samples * 10,
                    &mut self.rng,
                )
            };
            if samples.len() < self.cfg.n_samples {
                isrl_obs::add("ea.sample_fallbacks", 1);
                let _s = isrl_obs::span("sampling");
                let need = self.cfg.n_samples - samples.len();
                samples.extend(sampling::sample_vertex_mixture(
                    &vertices,
                    need,
                    &mut self.rng,
                ));
            }
            samples.extend(vertices);
            samples
        };
        let p_r = {
            let _t = isrl_obs::span("top1");
            terminal_points(data, samples.iter())
        };

        let mut questions = build_action_space(&p_r, self.cfg.m_h, asked, &mut self.rng);
        if questions.is_empty() && p_r.len() >= 2 {
            // Every unasked pair is exhausted; permit re-asking rather than
            // stalling (the DQN will pick the most informative repeat).
            questions = build_action_space(&p_r, self.cfg.m_h, &[], &mut self.rng);
        }
        let action_feats = questions
            .iter()
            .map(|&q| encode_question(data, q))
            .collect();
        Some(Observation {
            terminal: None,
            state,
            questions,
            action_feats,
            fallback_best,
        })
    }

    /// Runs one interaction episode. `answer` is the preference oracle;
    /// `explore_eps` is the ε-greedy rate (0 for pure inference);
    /// `learn` enables replay writes and gradient steps.
    fn episode(
        &mut self,
        data: &Dataset,
        answer: &mut dyn FnMut(&[f64], &[f64]) -> bool,
        eps: f64,
        explore_eps: f64,
        learn: bool,
        trace_mode: TraceMode,
    ) -> InteractionOutcome {
        assert_eq!(data.dim(), self.dim, "dataset dimension mismatch");
        assert!(!data.is_empty(), "cannot interact over an empty dataset");
        let sw = Stopwatch::start();
        let mut profile = EpisodeProfile::begin("EA");
        let mut geom = self.new_geometry();
        let mut asked: Vec<(usize, usize)> = Vec::new();
        let mut trace: Vec<RoundTrace> = Vec::new();
        let mut rounds = 0usize;
        let mut loss_sum = 0.0;
        let mut loss_n = 0u64;
        self.last_episode_loss = None;

        let mut obs = self
            .observe(data, &geom, eps, &asked)
            .expect("the full utility simplex always has a point set");

        loop {
            if let Some(p) = obs.terminal {
                return InteractionOutcome {
                    point_index: p,
                    rounds,
                    elapsed: sw.elapsed(),
                    trace,
                    truncated: false,
                };
            }
            if obs.questions.is_empty() || rounds >= self.cfg.max_rounds {
                return InteractionOutcome {
                    point_index: obs.fallback_best,
                    rounds,
                    elapsed: sw.elapsed(),
                    trace,
                    truncated: true,
                };
            }

            // Phase timings are collected per round (into the trace and the
            // `round` event stream) whenever either consumer is active.
            let record = trace_mode.should_trace(rounds + 1) || isrl_obs::enabled();
            if record {
                isrl_obs::round_begin();
            }
            let round_started = sw.elapsed();

            let idx = {
                let _nn = isrl_obs::span("nn");
                if learn {
                    self.dqn
                        .select_action(&obs.state, &obs.action_feats, explore_eps)
                } else {
                    self.dqn.best_action(&obs.state, &obs.action_feats).0
                }
            };
            let q = obs.questions[idx];
            let prefers_i = answer(data.point(q.i), data.point(q.j));
            let (win, lose) = if prefers_i { (q.i, q.j) } else { (q.j, q.i) };
            asked.push((q.i.min(q.j), q.i.max(q.j)));
            rounds += 1;
            profile.set_rounds(rounds);
            let support_before = geom.support_size();
            if let Some(h) = Halfspace::preferring(data.point(win), data.point(lose)) {
                geom.add(h);
            }

            let next_obs = match self.observe(data, &geom, eps, &asked) {
                None => {
                    // Region numerically collapsed — finish on the last
                    // known recommendation.
                    if record {
                        isrl_obs::round_end();
                    }
                    return InteractionOutcome {
                        point_index: obs.fallback_best,
                        rounds,
                        elapsed: sw.elapsed(),
                        trace,
                        truncated: true,
                    };
                }
                Some(next_obs) => next_obs,
            };

            if learn {
                let reached_terminal = next_obs.terminal.is_some();
                let dead_end = next_obs.questions.is_empty();
                let transition = Transition {
                    state: std::mem::take(&mut obs.state),
                    action: obs.action_feats[idx].clone(),
                    reward: if reached_terminal {
                        self.cfg.reward_c
                    } else {
                        0.0
                    },
                    next: if reached_terminal || dead_end {
                        None
                    } else {
                        Some(NextState {
                            state: next_obs.state.clone(),
                            actions: next_obs.action_feats.clone(),
                        })
                    },
                };
                self.dqn.push_transition(transition);
                for _ in 0..self.cfg.train_steps_per_round.max(1) {
                    if let Some(loss) = self.dqn.train_step() {
                        loss_sum += loss;
                        loss_n += 1;
                    }
                }
                if loss_n > 0 {
                    self.last_episode_loss = Some(loss_sum / loss_n as f64);
                }
            }

            if record {
                let phases = isrl_obs::round_end();
                let support_after = geom.support_size();
                let volume = geom.volume_proxy();
                if isrl_obs::enabled() {
                    emit_round_event(
                        "EA",
                        rounds,
                        Some(q),
                        sw.elapsed(),
                        (sw.elapsed() - round_started).as_secs_f64() * 1e3,
                        support_before,
                        support_after,
                        volume,
                        &phases,
                    );
                }
                if trace_mode.should_trace(rounds) {
                    let mut t = RoundTrace::new(
                        rounds,
                        sw.elapsed(),
                        next_obs.terminal.unwrap_or(next_obs.fallback_best),
                        geom.region().clone(),
                    );
                    t.phases = phases;
                    t.vertex_count = support_after;
                    t.volume_proxy = volume;
                    trace.push(t);
                }
            }
            obs = next_obs;
        }
    }

    /// Trains the agent on simulated users (Algorithm 1): one episode per
    /// training utility vector, ε-greedy per the configured schedule.
    pub fn train(&mut self, data: &Dataset, utilities: &[Vec<f64>], eps: f64) -> TrainReport {
        let mut rounds = Vec::with_capacity(utilities.len());
        let mut watchdog = TrainingWatchdog::new("EA", self.cfg.batch_size);
        for u in utilities {
            let explore = self.cfg.epsilon.value(self.episodes_trained);
            let u = u.clone();
            let mut answer =
                move |p_i: &[f64], p_j: &[f64]| vector::dot(&u, p_i) >= vector::dot(&u, p_j);
            let outcome = self.episode(data, &mut answer, eps, explore, true, TraceMode::Off);
            emit_episode_event(
                "EA",
                self.episodes_trained,
                outcome.rounds,
                explore,
                if outcome.truncated {
                    0.0
                } else {
                    self.cfg.reward_c
                },
                self.dqn.replay_len(),
                outcome.truncated,
                self.last_episode_loss,
            );
            watchdog.observe(
                self.episodes_trained,
                explore,
                self.dqn.replay_len(),
                self.last_episode_loss,
            );
            rounds.push(outcome.rounds);
            self.episodes_trained += 1;
        }
        self.dqn.sync_target();
        let mut report = TrainReport::from_rounds(rounds);
        report.anomalies = watchdog.anomalies().to_vec();
        report
    }
}

impl InteractiveAlgorithm for EaAgent {
    fn name(&self) -> &'static str {
        "EA"
    }

    fn run(
        &mut self,
        data: &Dataset,
        user: &mut dyn User,
        eps: f64,
        trace: TraceMode,
    ) -> InteractionOutcome {
        let mut answer = |p_i: &[f64], p_j: &[f64]| user.prefers(p_i, p_j);
        self.episode(data, &mut answer, eps, 0.0, false, trace)
    }

    fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regret::regret_ratio_of_index;
    use crate::user::SimulatedUser;

    fn small_data() -> Dataset {
        // A 2-d anti-chain: every point tops some utility vector.
        Dataset::from_points(
            vec![
                vec![1.0, 0.05],
                vec![0.85, 0.4],
                vec![0.6, 0.65],
                vec![0.4, 0.85],
                vec![0.05, 1.0],
            ],
            2,
        )
    }

    #[test]
    fn untrained_agent_still_terminates_with_valid_regret() {
        let data = small_data();
        let mut agent = EaAgent::new(2, EaConfig::paper_default().with_seed(1));
        let mut user = SimulatedUser::new(vec![0.35, 0.65]);
        let eps = 0.1;
        let out = agent.run(&data, &mut user, eps, TraceMode::Off);
        assert!(!out.truncated, "EA must hit its stopping condition");
        assert!(out.rounds <= 20, "rounds {}", out.rounds);
        let regret = regret_ratio_of_index(&data, out.point_index, user.ground_truth());
        assert!(
            regret < eps,
            "EA is exact: regret {regret} must be below {eps}"
        );
    }

    #[test]
    fn exactness_holds_across_users_and_eps() {
        let data = small_data();
        let mut agent = EaAgent::new(2, EaConfig::paper_default().with_seed(2));
        for eps in [0.05, 0.2] {
            for w in [0.1, 0.45, 0.8] {
                let mut user = SimulatedUser::new(vec![w, 1.0 - w]);
                let out = agent.run(&data, &mut user, eps, TraceMode::Off);
                let regret = regret_ratio_of_index(&data, out.point_index, user.ground_truth());
                assert!(
                    regret < eps,
                    "eps {eps}, user {w}: regret {regret} (rounds {})",
                    out.rounds
                );
            }
        }
    }

    #[test]
    fn training_runs_and_reports() {
        let data = small_data();
        let mut cfg = EaConfig::paper_default().with_seed(3);
        cfg.n_samples = 30;
        let mut agent = EaAgent::new(2, cfg);
        let utilities: Vec<Vec<f64>> = (1..=10)
            .map(|i| vec![i as f64 / 11.0, 1.0 - i as f64 / 11.0])
            .collect();
        let report = agent.train(&data, &utilities, 0.1);
        assert_eq!(report.episodes, 10);
        assert_eq!(agent.episodes_trained(), 10);
        assert!(report.rounds_per_episode.iter().all(|&r| r > 0));
    }

    #[test]
    fn larger_eps_needs_no_more_rounds() {
        // The §V trend: easier thresholds can only shorten interactions
        // (up to sampling noise; we compare means over several users).
        let data = small_data();
        let mut agent = EaAgent::new(2, EaConfig::paper_default().with_seed(4));
        let mean_rounds = |agent: &mut EaAgent, eps: f64| {
            let ws = [0.2, 0.35, 0.5, 0.65, 0.8];
            ws.iter()
                .map(|&w| {
                    let mut user = SimulatedUser::new(vec![w, 1.0 - w]);
                    agent.run(&data, &mut user, eps, TraceMode::Off).rounds as f64
                })
                .sum::<f64>()
                / ws.len() as f64
        };
        let tight = mean_rounds(&mut agent, 0.05);
        let loose = mean_rounds(&mut agent, 0.3);
        assert!(
            loose <= tight + 0.5,
            "looser eps should not need more rounds: {tight} vs {loose}"
        );
    }

    #[test]
    fn trace_records_every_round() {
        let data = small_data();
        let mut agent = EaAgent::new(2, EaConfig::paper_default().with_seed(5));
        let mut user = SimulatedUser::new(vec![0.3, 0.7]);
        let out = agent.run(&data, &mut user, 0.1, TraceMode::PerRound);
        assert_eq!(out.trace.len(), out.rounds);
        for (k, t) in out.trace.iter().enumerate() {
            assert_eq!(t.round, k + 1);
            assert_eq!(t.region.len(), k + 1, "one halfspace per round");
        }
    }

    #[test]
    fn sampled_backend_terminates_at_higher_dim() {
        use rand::Rng;
        // d = 8 resolves Auto to the sampled backend; no vertex set may
        // ever be materialized, yet the episode must still terminate with
        // a sane recommendation.
        let d = 8;
        let mut rng = StdRng::seed_from_u64(99);
        let points: Vec<Vec<f64>> = (0..30)
            .map(|_| (0..d).map(|_| rng.gen_range(0.05..1.0)).collect())
            .collect();
        let data = Dataset::from_points(points, d);
        let mut agent = EaAgent::new(d, EaConfig::paper_default().with_seed(5));
        assert!(agent.config().geometry.resolves_to_sampled(d));
        let truth: Vec<f64> = {
            let raw: Vec<f64> = (0..d).map(|_| rng.gen_range(0.05..1.0)).collect();
            let s: f64 = raw.iter().sum();
            raw.into_iter().map(|x| x / s).collect()
        };
        let mut user = SimulatedUser::new(truth.clone());
        let eps = 0.2;
        let out = agent.run(&data, &mut user, eps, TraceMode::Off);
        assert!(out.point_index < data.len());
        assert!(out.rounds <= agent.config().max_rounds);
        assert!(!out.truncated, "sampled EA should certify termination here");
        let regret = regret_ratio_of_index(&data, out.point_index, &truth);
        assert!(regret < eps, "regret {regret} at eps {eps}");
    }

    #[test]
    fn sampled_backend_is_deterministic_under_reseed() {
        use rand::Rng;
        let d = 9;
        let mut rng = StdRng::seed_from_u64(123);
        let points: Vec<Vec<f64>> = (0..25)
            .map(|_| (0..d).map(|_| rng.gen_range(0.05..1.0)).collect())
            .collect();
        let data = Dataset::from_points(points, d);
        let mut cfg = EaConfig::paper_default().with_seed(11);
        cfg.geometry = GeometryBackend::Sampled;
        let mut agent = EaAgent::new(d, cfg);
        let run_once = |agent: &mut EaAgent| {
            agent.reseed(0xfeed);
            let mut user = SimulatedUser::new(vec![1.0 / d as f64; d]);
            let out = agent.run(&data, &mut user, 0.2, TraceMode::Off);
            (out.point_index, out.rounds, out.truncated)
        };
        assert_eq!(run_once(&mut agent), run_once(&mut agent));
    }

    #[test]
    fn user_question_count_matches_rounds() {
        let data = small_data();
        let mut agent = EaAgent::new(2, EaConfig::paper_default().with_seed(6));
        let mut user = SimulatedUser::new(vec![0.6, 0.4]);
        let out = agent.run(&data, &mut user, 0.1, TraceMode::Off);
        assert_eq!(user.questions_asked(), out.rounds);
    }
}
