//! Terminal-polyhedron machinery (Lemmas 4–6 of the paper).
//!
//! A *terminal polyhedron* `T` is a sub-region of the utility range in which
//! one dataset point `p_T` has regret ratio below ε for every utility vector
//! (Lemma 4: `T = R ∩ ⋂_j εh⁺`). Algorithm EA uses them twice:
//!
//! * **action construction** — the points `P_R` anchoring the terminal
//!   polyhedrons built from sampled/extreme utility vectors become the
//!   question pool (Lemma 7 then guarantees strict narrowing);
//! * **stopping** — if the terminal polyhedrons constructed from the extreme
//!   utility vectors of `R` collapse to a single one, `R` itself is terminal
//!   (Lemma 6) and the interaction can stop.
//!
//! A key computational shortcut, derived from Lemma 4 in DESIGN.md: a
//! utility vector `u` whose top-1 point is `p_i` always lies inside `T_i`
//! (since `u·p_i ≥ u·p_j` implies `u·(p_i − (1−ε)p_j) ≥ ε·u·p_j > 0`), so
//! "construct the terminal polyhedron containing `u`" reduces to a single
//! utility scan, and only cross-membership tests need the full ε-hyperplane
//! sweep.

use isrl_data::Dataset;
use isrl_linalg::vector;

/// `true` iff `u` lies in the terminal polyhedron `T_i` anchored at point
/// `i` (Lemma 4): `u · (p_i − (1 − ε) p_j) > 0` for every other point `j`.
/// Exits on the first violated ε-hyperplane.
pub fn in_terminal_polyhedron(data: &Dataset, i: usize, u: &[f64], eps: f64) -> bool {
    let p_i = data.point(i);
    let base = vector::dot(u, p_i);
    let scale = 1.0 - eps;
    for (j, p_j) in data.iter().enumerate() {
        if j == i {
            continue;
        }
        if base - scale * vector::dot(u, p_j) <= 0.0 {
            return false;
        }
    }
    true
}

/// The anchor points `P_R` of the terminal polyhedrons constructed from the
/// given utility vectors: the distinct top-1 indices (each utility vector's
/// polyhedron is `T_{argmax(u)}` by the shortcut above). Order follows
/// first appearance.
///
/// All argmaxes come from one cache-blocked [`Dataset::top1_batch`] pass —
/// bit-identical to a per-vector [`Dataset::argmax_utility`] scan, but the
/// point buffer is streamed once instead of once per utility vector.
pub fn terminal_points<'a>(
    data: &Dataset,
    utilities: impl Iterator<Item = &'a Vec<f64>>,
) -> Vec<usize> {
    let us: Vec<&[f64]> = utilities.map(Vec::as_slice).collect();
    if us.is_empty() {
        return Vec::new();
    }
    let mut seen: Vec<usize> = Vec::new();
    for t in data.top1_batch(&us) {
        if !seen.contains(&t.index) {
            seen.push(t.index);
        }
    }
    seen
}

/// Lemma 6 stopping test over the extreme utility vectors of `R`: `R` is
/// terminal when a single terminal polyhedron covers every vertex (then,
/// by convexity, all of `R`), and that polyhedron's anchor point — whose
/// regret ratio is below ε everywhere in `R` — is returned.
///
/// The paper's one-pass construction ("build a polyhedron per uncovered
/// vertex, succeed iff exactly one gets built") is only a *sufficient*
/// test: on a vertex where several points tie for the top, the arbitrary
/// argmax tie-break can anchor the first polyhedron at a point that fails
/// to cover the other vertices even though a sibling anchor covers them
/// all — stalling the interaction on boundary ties. We therefore try every
/// distinct vertex argmax as a candidate anchor, which is exactly as sound
/// (each candidate is a genuine Lemma 4 polyhedron) and strictly more
/// complete.
pub fn check_terminal(data: &Dataset, vertices: &[Vec<f64>], eps: f64) -> Option<usize> {
    if vertices.is_empty() {
        return None;
    }
    let anchors = terminal_points(data, vertices.iter());
    // Fast path: a unique argmax across vertices is always terminal (every
    // vertex lies in its own argmax's polyhedron).
    if anchors.len() == 1 {
        return Some(anchors[0]);
    }
    anchors.into_iter().find(|&a| {
        vertices
            .iter()
            .all(|e| in_terminal_polyhedron(data, a, e, eps))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated specialists plus an all-rounder.
    fn data() -> Dataset {
        Dataset::from_points(vec![vec![0.95, 0.1], vec![0.1, 0.95], vec![0.6, 0.6]], 2)
    }

    #[test]
    fn top1_vector_is_inside_its_own_polyhedron() {
        // The DESIGN.md shortcut, verified directly.
        let d = data();
        for u in [vec![0.9, 0.1], vec![0.1, 0.9], vec![0.5, 0.5]] {
            let best = d.argmax_utility(&u);
            assert!(
                in_terminal_polyhedron(&d, best, &u, 0.1),
                "u = {u:?} must lie in T_argmax"
            );
        }
    }

    #[test]
    fn bad_point_is_outside_for_small_eps() {
        let d = data();
        // For a user loving attribute 1, the attribute-2 specialist has
        // regret near 0.9 — far above ε = 0.1.
        assert!(!in_terminal_polyhedron(&d, 1, &[0.95, 0.05], 0.1));
    }

    #[test]
    fn larger_eps_grows_the_polyhedron() {
        let d = data();
        let u = vec![0.55, 0.45];
        // The all-rounder point 2 w.r.t. u: utility 0.6; best is point 0
        // with 0.5675… — actually compute: p0 = 0.95·0.55 + 0.1·0.45 = 0.5675,
        // p2 = 0.6. So point 2 is already best here; take a u favoring p0.
        let u2 = vec![0.8, 0.2];
        // p0 = 0.78, p2 = 0.6 → regret of p2 = 0.18/0.78 ≈ 0.23.
        assert!(!in_terminal_polyhedron(&d, 2, &u2, 0.1));
        assert!(in_terminal_polyhedron(&d, 2, &u2, 0.3));
        let _ = u;
    }

    #[test]
    fn terminal_points_dedupe_by_argmax() {
        let d = data();
        let us = [
            vec![0.9, 0.1],
            vec![0.85, 0.15], // same argmax as above
            vec![0.1, 0.9],
            vec![0.5, 0.5],
        ];
        let pts = terminal_points(&d, us.iter());
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0], 0);
    }

    #[test]
    fn check_terminal_on_tight_vertex_cluster() {
        let d = data();
        // Vertices all deep inside attribute-1 territory → single terminal
        // polyhedron anchored at point 0.
        let vs = vec![vec![0.95, 0.05], vec![0.9, 0.1]];
        assert_eq!(check_terminal(&d, &vs, 0.1), Some(0));
    }

    #[test]
    fn check_terminal_fails_across_the_whole_simplex() {
        let d = data();
        // The full simplex's vertices span both specialists.
        let vs = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        assert_eq!(check_terminal(&d, &vs, 0.1), None);
    }

    #[test]
    fn check_terminal_passes_with_loose_eps() {
        let d = data();
        let vs = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        // With ε near 1 any point is acceptable everywhere.
        assert!(check_terminal(&d, &vs, 0.95).is_some());
    }

    #[test]
    fn returned_point_really_has_low_regret_on_vertices() {
        // End-to-end property: when check_terminal succeeds, the anchor's
        // regret at every vertex is below ε (Lemma 4 ⇒ below ε on all of R
        // by convexity).
        let d = data();
        let vs = vec![vec![0.52, 0.48], vec![0.48, 0.52], vec![0.5, 0.5]];
        if let Some(p) = check_terminal(&d, &vs, 0.15) {
            for v in &vs {
                let r = crate::regret::regret_ratio_of_index(&d, p, v);
                assert!(r < 0.15, "regret {r} at vertex {v:?}");
            }
        } else {
            panic!("balanced cluster should be terminal at eps = 0.15");
        }
    }
}
