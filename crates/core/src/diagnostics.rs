//! Interaction diagnostics: quantities that explain *why* a run took the
//! rounds it took. Computed from a per-round trace
//! ([`crate::interaction::TraceMode::PerRound`]), these are the tuning
//! instruments behind DESIGN.md §5's ablations:
//!
//! * **shrinkage** — per-round multiplicative decay of the region's volume
//!   fraction (an ideal binary-search question scores 0.5);
//! * **cut balance** — how evenly each asked hyperplane split the region
//!   *before* the answer (0.5 = perfect halving, near 0/1 = wasted
//!   question);
//! * **recommendation churn** — how often the interim recommendation
//!   changed (late churn means the stopping condition, not the questioning,
//!   is the bottleneck).

use crate::interaction::InteractionOutcome;
use isrl_geometry::{sampling, Region};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-round diagnostic row.
#[derive(Debug, Clone)]
pub struct RoundDiagnostic {
    /// 1-based round.
    pub round: usize,
    /// Monte-Carlo volume fraction of the region *after* this round.
    pub volume_fraction: f64,
    /// Fraction of the pre-answer region on the winning side of this
    /// round's hyperplane (0.5 = the question halved the region).
    pub cut_balance: f64,
    /// Whether the interim recommendation changed at this round.
    pub recommendation_changed: bool,
}

/// Full diagnostic report for one interaction.
#[derive(Debug, Clone)]
pub struct DiagnosticReport {
    /// Per-round rows, in order.
    pub rounds: Vec<RoundDiagnostic>,
    /// Geometric-mean per-round volume decay (lower = faster learning;
    /// 0.5 is the binary-search ideal).
    pub mean_decay: f64,
    /// Number of recommendation changes across the interaction.
    pub churn: usize,
}

/// Analyzes a traced interaction. `n_samples` controls the Monte-Carlo
/// volume estimates (a few thousand is plenty for d ≤ 10; the estimate —
/// and the `cut_balance` derived from it — loses resolution once the
/// region's volume fraction falls below ~1/n_samples).
///
/// Returns `None` when the outcome carries no trace.
pub fn analyze(
    outcome: &InteractionOutcome,
    n_samples: usize,
    seed: u64,
) -> Option<DiagnosticReport> {
    if outcome.trace.is_empty() {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let d = outcome.trace[0].region.dim();

    // Volume fraction before any answer is 1 by definition.
    let mut prev_fraction = 1.0f64;
    let mut prev_best: Option<usize> = None;
    let mut rounds = Vec::with_capacity(outcome.trace.len());
    let mut decay_log_sum = 0.0;
    let mut churn = 0usize;

    for t in &outcome.trace {
        let fraction = t.region.approx_volume_fraction(n_samples, &mut rng);
        // Balance of this round's cut: fraction of the *previous* region
        // kept by the newest half-space. Estimated against the previous
        // region's half-space set (all but the newest).
        let balance = cut_balance(&t.region, n_samples, &mut rng, d);
        let changed = prev_best.is_some_and(|b| b != t.best_index);
        if changed {
            churn += 1;
        }
        prev_best = Some(t.best_index);
        let decay = if prev_fraction > 0.0 {
            fraction / prev_fraction
        } else {
            1.0
        };
        decay_log_sum += decay.max(1e-12).ln();
        prev_fraction = fraction;
        rounds.push(RoundDiagnostic {
            round: t.round,
            volume_fraction: fraction,
            cut_balance: balance,
            recommendation_changed: changed,
        });
    }
    let mean_decay = (decay_log_sum / rounds.len() as f64).exp();
    Some(DiagnosticReport {
        rounds,
        mean_decay,
        churn,
    })
}

/// Fraction of the region-before-the-last-answer kept by the last answer's
/// half-space, estimated by sampling the before-region.
fn cut_balance(after: &Region, n_samples: usize, rng: &mut StdRng, d: usize) -> f64 {
    let hs = after.halfspaces();
    let Some((newest, before)) = hs.split_last() else {
        return 1.0;
    };
    let mut kept = 0usize;
    let mut inside = 0usize;
    for _ in 0..n_samples * 4 {
        if inside >= n_samples {
            break;
        }
        let u = sampling::sample_simplex(d, rng);
        if before.iter().all(|h| h.contains(&u, 0.0)) {
            inside += 1;
            if newest.contains(&u, 0.0) {
                kept += 1;
            }
        }
    }
    if inside == 0 {
        // The before-region is too small to sample; report a neutral value.
        0.5
    } else {
        kept as f64 / inside as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interaction::{InteractiveAlgorithm, TraceMode};
    use crate::prelude::*;
    use isrl_data::Dataset;

    fn traced_outcome() -> (Dataset, InteractionOutcome) {
        let data = Dataset::from_points(
            vec![
                vec![1.0, 0.05],
                vec![0.85, 0.4],
                vec![0.6, 0.65],
                vec![0.4, 0.85],
                vec![0.05, 1.0],
            ],
            2,
        );
        let mut agent = AaAgent::new(2, AaConfig::paper_default().with_seed(3));
        let mut user = SimulatedUser::new(vec![0.45, 0.55]);
        let out = agent.run(&data, &mut user, 0.05, TraceMode::PerRound);
        (data, out)
    }

    #[test]
    fn report_shapes_match_the_trace() {
        let (_, out) = traced_outcome();
        let report = analyze(&out, 2_000, 1).expect("trace present");
        assert_eq!(report.rounds.len(), out.trace.len());
        assert!(report.mean_decay > 0.0 && report.mean_decay <= 1.0 + 1e-9);
        assert!(report.churn <= out.rounds);
    }

    #[test]
    fn volume_fractions_are_monotone_non_increasing() {
        let (_, out) = traced_outcome();
        let report = analyze(&out, 3_000, 2).unwrap();
        for w in report.rounds.windows(2) {
            assert!(
                w[1].volume_fraction <= w[0].volume_fraction + 0.03,
                "volume grew: {} -> {}",
                w[0].volume_fraction,
                w[1].volume_fraction
            );
        }
    }

    #[test]
    fn cut_balances_are_probabilities() {
        let (_, out) = traced_outcome();
        let report = analyze(&out, 2_000, 3).unwrap();
        for r in &report.rounds {
            assert!(
                (0.0..=1.0).contains(&r.cut_balance),
                "balance {}",
                r.cut_balance
            );
        }
    }

    #[test]
    fn untraced_outcome_yields_none() {
        let (data, _) = traced_outcome();
        let mut agent = AaAgent::new(2, AaConfig::paper_default().with_seed(4));
        let mut user = SimulatedUser::new(vec![0.5, 0.5]);
        let out = agent.run(&data, &mut user, 0.1, TraceMode::Off);
        assert!(analyze(&out, 100, 4).is_none());
    }

    #[test]
    fn good_questioners_decay_fast() {
        // AA's near-center cuts should average well below "no progress".
        let (_, out) = traced_outcome();
        let report = analyze(&out, 3_000, 5).unwrap();
        assert!(
            report.mean_decay < 0.9,
            "AA's questions should shrink the region: decay {}",
            report.mean_decay
        );
    }
}
