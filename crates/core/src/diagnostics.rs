//! Interaction diagnostics: quantities that explain *why* a run took the
//! rounds it took. Computed from a per-round trace
//! ([`crate::interaction::TraceMode::PerRound`]), these are the tuning
//! instruments behind DESIGN.md §5's ablations:
//!
//! * **shrinkage** — per-round multiplicative decay of the region's volume
//!   measure (an ideal binary-search question scores 0.5);
//! * **cut balance** — how much of the pre-answer region each asked
//!   hyperplane kept (0.5 = perfect halving, near 1 = wasted question);
//! * **recommendation churn** — how often the interim recommendation
//!   changed (late churn means the stopping condition, not the questioning,
//!   is the bottleneck).
//!
//! Two volume backends. The default, [`VolumeMode::Geometric`], reads the
//! outer-rectangle volume proxy the session's incrementally-maintained
//! [`isrl_geometry::RegionGeometry`] already computed (recorded in
//! [`crate::interaction::RoundTrace::volume_proxy`]); it is deterministic,
//! costs nothing beyond the interaction itself, and keeps resolution at
//! volume fractions far below what sampling can see. The pre-telemetry
//! Monte-Carlo estimator remains available behind
//! [`VolumeMode::MonteCarlo`] as a cross-check — it measures true
//! simplex-relative volume, at O(n_samples · rounds²) cost and with noise
//! floor ~1/n_samples.

use crate::interaction::InteractionOutcome;
use isrl_geometry::{sampling, Region, RegionGeometry};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// How per-round region volumes are measured.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum VolumeMode {
    /// Outer-rectangle volume proxy from the trace's cached geometry
    /// (exact, deterministic, already paid for by the interaction). In this
    /// mode `cut_balance` is the per-round proxy decay — the fraction of
    /// the previous round's box volume the answer kept.
    #[default]
    Geometric,
    /// Fresh Monte-Carlo estimation per round with the given sample count.
    /// True simplex-relative volume, but noisy below ~1/n_samples and
    /// O(rounds) half-space tests per sample.
    MonteCarlo {
        /// Samples per round for the volume and balance estimates.
        n_samples: usize,
    },
}

/// Configuration of [`analyze`].
#[derive(Debug, Clone, Default)]
pub struct DiagnosticsConfig {
    /// Volume backend.
    pub mode: VolumeMode,
    /// RNG seed (Monte-Carlo mode only).
    pub seed: u64,
}

impl DiagnosticsConfig {
    /// The pre-telemetry behavior: Monte-Carlo volumes.
    pub fn monte_carlo(n_samples: usize, seed: u64) -> Self {
        Self {
            mode: VolumeMode::MonteCarlo { n_samples },
            seed,
        }
    }
}

/// Per-round diagnostic row.
#[derive(Debug, Clone)]
pub struct RoundDiagnostic {
    /// 1-based round.
    pub round: usize,
    /// Volume measure of the region *after* this round: the rectangle
    /// proxy (geometric mode) or the Monte-Carlo simplex fraction.
    pub volume_fraction: f64,
    /// Fraction of the pre-answer region kept by this round's answer
    /// (0.5 = the question halved the region).
    pub cut_balance: f64,
    /// Whether the interim recommendation changed at this round.
    pub recommendation_changed: bool,
}

/// Full diagnostic report for one interaction.
#[derive(Debug, Clone)]
pub struct DiagnosticReport {
    /// Per-round rows, in order.
    pub rounds: Vec<RoundDiagnostic>,
    /// Geometric-mean per-round volume decay (lower = faster learning;
    /// 0.5 is the binary-search ideal).
    pub mean_decay: f64,
    /// Number of recommendation changes across the interaction.
    pub churn: usize,
}

/// Analyzes a traced interaction. Returns `None` when the outcome carries
/// no trace.
pub fn analyze(outcome: &InteractionOutcome, cfg: &DiagnosticsConfig) -> Option<DiagnosticReport> {
    if outcome.trace.is_empty() {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let d = outcome.trace[0].region.dim();

    // Volume measure before any answer is 1 by definition (both the unit
    // box proxy of the full simplex and the Monte-Carlo fraction).
    let mut prev_fraction = 1.0f64;
    let mut prev_best: Option<usize> = None;
    let mut rounds = Vec::with_capacity(outcome.trace.len());
    let mut decay_log_sum = 0.0;
    let mut churn = 0usize;

    for t in &outcome.trace {
        let fraction = match cfg.mode {
            VolumeMode::Geometric => geometric_volume(t),
            VolumeMode::MonteCarlo { n_samples } => {
                t.region.approx_volume_fraction(n_samples, &mut rng)
            }
        };
        let decay = if prev_fraction > 0.0 {
            (fraction / prev_fraction).min(1.0)
        } else {
            1.0
        };
        let balance = match cfg.mode {
            // Proxy decay *is* the kept fraction under the box measure.
            VolumeMode::Geometric => decay,
            VolumeMode::MonteCarlo { n_samples } => {
                mc_cut_balance(&t.region, n_samples, &mut rng, d)
            }
        };
        let changed = prev_best.is_some_and(|b| b != t.best_index);
        if changed {
            churn += 1;
        }
        prev_best = Some(t.best_index);
        decay_log_sum += decay.max(1e-12).ln();
        prev_fraction = fraction;
        rounds.push(RoundDiagnostic {
            round: t.round,
            volume_fraction: fraction,
            cut_balance: balance,
            recommendation_changed: changed,
        });
    }
    let mean_decay = (decay_log_sum / rounds.len() as f64).exp();
    Some(DiagnosticReport {
        rounds,
        mean_decay,
        churn,
    })
}

/// The round's volume proxy: recorded by the session when tracing was on,
/// else recomputed once through the geometry's summary cache (2d extent
/// LPs). A collapsed (empty) region measures 0.
///
/// On a sampled-backend trace ([`isrl_geometry::GeometryBackend::Sampled`])
/// the recorded proxy is the bounding rectangle of the *sample cloud*, not
/// of the true region, so consecutive rounds can wobble by sampling noise;
/// `analyze` already clamps each per-round decay to `<= 1`, which absorbs
/// the wobble without letting it inflate `mean_decay`.
fn geometric_volume(t: &crate::interaction::RoundTrace) -> f64 {
    if let Some(v) = t.volume_proxy {
        return v;
    }
    RegionGeometry::from_region(t.region.clone(), false)
        .volume_proxy()
        .unwrap_or(0.0)
}

/// Fraction of the region-before-the-last-answer kept by the last answer's
/// half-space, estimated by sampling the before-region.
fn mc_cut_balance(after: &Region, n_samples: usize, rng: &mut StdRng, d: usize) -> f64 {
    let hs = after.halfspaces();
    let Some((newest, before)) = hs.split_last() else {
        return 1.0;
    };
    let mut kept = 0usize;
    let mut inside = 0usize;
    for _ in 0..n_samples * 4 {
        if inside >= n_samples {
            break;
        }
        let u = sampling::sample_simplex(d, rng);
        if before.iter().all(|h| h.contains(&u, 0.0)) {
            inside += 1;
            if newest.contains(&u, 0.0) {
                kept += 1;
            }
        }
    }
    if inside == 0 {
        // The before-region is too small to sample; report a neutral value.
        0.5
    } else {
        kept as f64 / inside as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interaction::{InteractiveAlgorithm, RoundTrace, TraceMode};
    use crate::prelude::*;
    use isrl_data::Dataset;
    use isrl_geometry::Halfspace;
    use std::time::Duration;

    fn traced_outcome() -> (Dataset, InteractionOutcome) {
        let data = Dataset::from_points(
            vec![
                vec![1.0, 0.05],
                vec![0.85, 0.4],
                vec![0.6, 0.65],
                vec![0.4, 0.85],
                vec![0.05, 1.0],
            ],
            2,
        );
        let mut agent = AaAgent::new(2, AaConfig::paper_default().with_seed(3));
        let mut user = SimulatedUser::new(vec![0.45, 0.55]);
        let out = agent.run(&data, &mut user, 0.05, TraceMode::PerRound);
        (data, out)
    }

    #[test]
    fn report_shapes_match_the_trace() {
        let (_, out) = traced_outcome();
        let report = analyze(&out, &DiagnosticsConfig::default()).expect("trace present");
        assert_eq!(report.rounds.len(), out.trace.len());
        assert!(report.mean_decay > 0.0 && report.mean_decay <= 1.0 + 1e-9);
        assert!(report.churn <= out.rounds);
    }

    #[test]
    fn geometric_mode_reads_the_traced_proxies() {
        let (_, out) = traced_outcome();
        assert!(
            out.trace.iter().all(|t| t.volume_proxy.is_some()),
            "AA records the proxy every traced round"
        );
        let report = analyze(&out, &DiagnosticsConfig::default()).unwrap();
        for (r, t) in report.rounds.iter().zip(&out.trace) {
            assert_eq!(r.volume_fraction, t.volume_proxy.unwrap());
        }
    }

    #[test]
    fn volume_fractions_are_monotone_non_increasing() {
        let (_, out) = traced_outcome();
        // Geometric: exactly monotone (boxes nest under cuts).
        let report = analyze(&out, &DiagnosticsConfig::default()).unwrap();
        for w in report.rounds.windows(2) {
            assert!(
                w[1].volume_fraction <= w[0].volume_fraction + 1e-12,
                "proxy grew: {} -> {}",
                w[0].volume_fraction,
                w[1].volume_fraction
            );
        }
        // Monte-Carlo: monotone up to sampling noise.
        let report = analyze(&out, &DiagnosticsConfig::monte_carlo(3_000, 2)).unwrap();
        for w in report.rounds.windows(2) {
            assert!(
                w[1].volume_fraction <= w[0].volume_fraction + 0.03,
                "volume grew: {} -> {}",
                w[0].volume_fraction,
                w[1].volume_fraction
            );
        }
    }

    #[test]
    fn cut_balances_are_probabilities_in_both_modes() {
        let (_, out) = traced_outcome();
        for cfg in [
            DiagnosticsConfig::default(),
            DiagnosticsConfig::monte_carlo(2_000, 3),
        ] {
            let report = analyze(&out, &cfg).unwrap();
            for r in &report.rounds {
                assert!(
                    (0.0..=1.0).contains(&r.cut_balance),
                    "balance {} under {cfg:?}",
                    r.cut_balance
                );
            }
        }
    }

    #[test]
    fn untraced_outcome_yields_none() {
        let (data, _) = traced_outcome();
        let mut agent = AaAgent::new(2, AaConfig::paper_default().with_seed(4));
        let mut user = SimulatedUser::new(vec![0.5, 0.5]);
        let out = agent.run(&data, &mut user, 0.1, TraceMode::Off);
        assert!(analyze(&out, &DiagnosticsConfig::default()).is_none());
        assert!(analyze(&out, &DiagnosticsConfig::monte_carlo(100, 4)).is_none());
    }

    #[test]
    fn empty_trace_on_a_nonempty_outcome_yields_none() {
        // An outcome can report rounds > 0 with an empty trace (TraceMode::
        // FirstRounds(0)); analyze must refuse rather than divide by zero.
        let out = InteractionOutcome {
            point_index: 0,
            rounds: 3,
            elapsed: Duration::from_millis(1),
            trace: Vec::new(),
            truncated: false,
        };
        assert!(analyze(&out, &DiagnosticsConfig::default()).is_none());
    }

    #[test]
    fn degenerate_region_trace_stays_finite() {
        // A trace whose region collapses to empty mid-interaction: the
        // geometric volume hits 0 and every later decay must stay finite.
        let mut region = Region::full(2);
        region.add(Halfspace::new(vec![1.0, -3.0]));
        let t1 = RoundTrace::new(1, Duration::from_millis(1), 0, region.clone());
        region.add(Halfspace::new(vec![-3.0, 1.0])); // contradicts the first
        let t2 = RoundTrace::new(2, Duration::from_millis(2), 1, region.clone());
        region.add(Halfspace::new(vec![0.0, 1.0]));
        let t3 = RoundTrace::new(3, Duration::from_millis(3), 1, region);
        let out = InteractionOutcome {
            point_index: 1,
            rounds: 3,
            elapsed: Duration::from_millis(3),
            trace: vec![t1, t2, t3],
            truncated: true,
        };
        let report = analyze(&out, &DiagnosticsConfig::default()).expect("trace present");
        assert_eq!(report.rounds.len(), 3);
        for r in &report.rounds {
            assert!(r.volume_fraction.is_finite());
            assert!(r.cut_balance.is_finite());
            assert!((0.0..=1.0).contains(&r.cut_balance), "{}", r.cut_balance);
        }
        assert!(report.mean_decay.is_finite() && report.mean_decay >= 0.0);
        assert_eq!(report.rounds[1].volume_fraction, 0.0, "collapsed region");
        assert_eq!(report.churn, 1);
    }

    #[test]
    fn sampled_backend_traces_analyze_cleanly() {
        // An EA run on the sampled geometry backend records cloud-bbox
        // volume proxies; the report must stay finite with every decay
        // clamped despite sampling-noise wobble in the raw proxies.
        use isrl_geometry::GeometryBackend;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let d = 8;
        let mut rng = StdRng::seed_from_u64(17);
        let points: Vec<Vec<f64>> = (0..40)
            .map(|_| (0..d).map(|_| rng.gen_range(0.05..1.0)).collect())
            .collect();
        let data = Dataset::from_points(points, d);
        let mut cfg = EaConfig::paper_default().with_seed(11);
        cfg.geometry = GeometryBackend::Sampled;
        let mut agent = EaAgent::new(d, cfg);
        let truth: Vec<f64> = vec![1.0 / d as f64; d];
        let mut user = SimulatedUser::new(truth);
        let out = agent.run(&data, &mut user, 0.25, TraceMode::PerRound);
        assert!(
            out.trace.iter().all(|t| t.volume_proxy.is_some()),
            "sampled sessions record the cloud-bbox proxy every round"
        );
        let report = analyze(&out, &DiagnosticsConfig::default()).expect("trace present");
        assert_eq!(report.rounds.len(), out.trace.len());
        for r in &report.rounds {
            assert!(r.volume_fraction.is_finite() && r.volume_fraction >= 0.0);
            assert!(
                (0.0..=1.0).contains(&r.cut_balance),
                "decay must be clamped on noisy proxies: {}",
                r.cut_balance
            );
        }
        assert!(report.mean_decay > 0.0 && report.mean_decay <= 1.0 + 1e-9);
    }

    #[test]
    fn good_questioners_decay_fast() {
        // AA's near-center cuts should average well below "no progress".
        let (_, out) = traced_outcome();
        let report = analyze(&out, &DiagnosticsConfig::monte_carlo(3_000, 5)).unwrap();
        assert!(
            report.mean_decay < 0.9,
            "AA's questions should shrink the region: decay {}",
            report.mean_decay
        );
    }
}
